"""CLM-SLOWDOWN — the CCC runs ASCEND/DESCEND at a 4-6x constant slowdown.

Preparata & Vuillemin's theorem, which the whole BVM realization rests
on: "these hypercube network algorithms can be simulated on a CCC at a
slowdown of a factor of 4 to 6, regardless of the network sizes."

We execute identical ASCEND programs on the ideal hypercube and on the
CCC emulator under both schedules and tabulate route-step ratios.  The
checks: the pipelined slowdown sits in a small constant band across
machine sizes, while the naive (unpipelined) slowdown grows with Q —
the quantitative reason the ASCEND/DESCEND transformation matters.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import random_instance
from repro.hypercube import CCC, Hypercube, make_state, min_reduce_program
from repro.ttpar import solve_tt_ccc


def full_ascend_slowdown(r, schedule, rng):
    ccc = CCC(r)
    vals = rng.uniform(0, 1, 1 << ccc.dims)
    st = make_state(ccc.dims, M=vals)
    ref = st.copy()
    prog = min_reduce_program(0, ccc.dims)
    Hypercube(ccc.dims).run(ref, prog, discipline="ascend")
    stats = ccc.run(st, prog, schedule=schedule)
    assert st.equal(ref)
    return stats


def test_slowdown_band(rng):
    rows = []
    pipelined = {}
    naive = {}
    for r in (1, 2, 3):
        sp = full_ascend_slowdown(r, "pipelined", rng)
        sn = full_ascend_slowdown(r, "naive", rng)
        pipelined[r], naive[r] = sp.slowdown, sn.slowdown
        Q = 1 << r
        rows.append(
            [
                r,
                Q,
                Q * (1 << Q),
                sp.ideal_dimops,
                sp.route_steps,
                f"{sp.slowdown:.2f}",
                sn.route_steps,
                f"{sn.slowdown:.2f}",
            ]
        )
    print_table(
        "CLM-SLOWDOWN: full-cube ASCEND on CCC vs ideal hypercube",
        ["r", "Q", "n", "cube steps", "ccc pipelined", "ratio", "ccc naive", "ratio"],
        rows,
    )
    # Pipelined: small constant band, NOT growing with size.
    vals = list(pipelined.values())
    assert max(vals) <= 6.0
    assert max(vals) / min(vals) < 2.5
    # Naive: grows with Q (the motivation for pipelining).
    assert naive[3] > naive[1]
    assert naive[3] > pipelined[3]


def test_tt_program_slowdown(rng):
    """The actual TT program's slowdown (its dim pattern is the real
    workload: high-dim e-loop sweeps + low-dim minimization)."""
    rows = []
    for k, seed in ((3, 0), (4, 1)):
        problem = random_instance(k, 3, 2, seed=seed)
        res = solve_tt_ccc(problem, schedule="pipelined")
        resn = solve_tt_ccc(problem, schedule="naive")
        rows.append(
            [
                k,
                res.ccc_stats.ideal_dimops,
                res.ccc_stats.route_steps,
                f"{res.ccc_stats.slowdown:.2f}",
                f"{resn.ccc_stats.slowdown:.2f}",
            ]
        )
        assert 1.0 < res.ccc_stats.slowdown <= 8.0
        assert resn.ccc_stats.slowdown >= res.ccc_stats.slowdown
    print_table(
        "CLM-SLOWDOWN: TT program on CCC",
        ["k", "ideal dimops", "ccc steps (pipelined)", "pipelined", "naive"],
        rows,
    )


def test_slowdown_benchmark(benchmark, rng):
    stats = benchmark(full_ascend_slowdown, 2, "pipelined", rng)
    assert stats.slowdown <= 6.0
