"""FIG1 — regenerate a Fig-1-style TT procedure tree.

The paper's Fig. 1 shows a typical TT procedure: a binary decision tree
mixing test nodes (single arcs, positive branch left) and treatment
nodes (double arc = treated set).  We solve a small instance optimally
and print the procedure; the benchmark measures the end-to-end
solve+extract time.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import Action, TTProblem, solve_dp


def fig1_instance() -> TTProblem:
    """A compact instance whose optimum mixes tests and treatments."""
    return TTProblem.build(
        weights=[4.0, 2.0, 1.0, 1.0],
        actions=[
            Action.test({0, 1}, 1.0, name="T1"),
            Action.test({0, 2}, 1.5, name="T2"),
            Action.treatment({0}, 3.0, name="R1"),
            Action.treatment({1, 2}, 4.0, name="R2"),
            Action.treatment({2, 3}, 4.0, name="R3"),
        ],
        name="fig1",
    )


def solve_and_extract(problem):
    result = solve_dp(problem)
    tree = result.tree()
    return result, tree


def test_fig1_tree(benchmark):
    problem = fig1_instance()
    result, tree = benchmark(solve_and_extract, problem)

    tree.validate()
    stats = tree.stats()
    assert stats["expected_cost"] == pytest.approx(result.optimal_cost)

    print("\n=== FIG1: optimal TT procedure ===")
    print(tree.render())
    print_table(
        "FIG1 summary",
        ["C(U)", "nodes", "depth", "distinct actions"],
        [[f"{result.optimal_cost:.3f}", stats["nodes"], stats["depth"], stats["distinct_actions"]]],
    )
    # The optimum must use at least one test and one treatment (Fig 1's
    # point: both node kinds appear on an equal basis).
    kinds = {problem.actions[i].kind.value for i in tree.actions_used()}
    assert kinds == {"test", "treatment"}
