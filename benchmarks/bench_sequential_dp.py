"""SEQ-DP — throughput of the sequential comparator.

The speedup claims are made against "the known sequential algorithm ...
modifying the backward induction algorithm given by Garey".  This bench
measures our vectorized implementation across instance sizes and checks
the O(2^k * N) work scaling it must exhibit.
"""

import time

import pytest

from benchmarks.conftest import print_table
from repro.core import random_instance, solve_dp, solve_dp_reference


@pytest.mark.parametrize("k", [6, 10, 14])
def test_dp_benchmark(benchmark, k):
    problem = random_instance(k, n_tests=k, n_treatments=k // 2 + 1, seed=k)
    result = benchmark(solve_dp, problem)
    assert result.feasible


def test_work_scaling_table():
    rows = []
    times = {}
    for k in (8, 10, 12, 14, 16):
        problem = random_instance(k, n_tests=10, n_treatments=6, seed=k)
        t0 = time.perf_counter()
        result = solve_dp(problem)
        dt = time.perf_counter() - t0
        times[k] = dt
        rows.append(
            [
                k,
                problem.n_actions,
                result.op_count,
                f"{dt * 1e3:.1f}",
                f"{result.op_count / dt / 1e6:.1f}",
            ]
        )
    print_table(
        "SEQ-DP: backward induction throughput",
        ["k", "N", "M[S,i] evals", "ms", "Mevals/s"],
        rows,
    )
    # Work is Theta(2^k * N): +2 on k with fixed N => ~4x evals; time
    # should grow superlinearly too (loose: at least 2x over 4 steps).
    assert times[16] > times[8]


def test_vectorized_vs_reference_speed():
    """The vectorized solver must beat the plain-Python reference by a
    wide margin at k=10 (that is its reason to exist)."""
    problem = random_instance(10, 8, 5, seed=0)
    t0 = time.perf_counter()
    a = solve_dp(problem)
    t_vec = time.perf_counter() - t0
    t0 = time.perf_counter()
    b = solve_dp_reference(problem)
    t_ref = time.perf_counter() - t0
    assert abs(a.optimal_cost - b.optimal_cost) < 1e-9
    print(f"\nSEQ-DP: vectorized {t_vec * 1e3:.1f} ms vs reference "
          f"{t_ref * 1e3:.1f} ms ({t_ref / t_vec:.0f}x)")
    assert t_vec < t_ref
