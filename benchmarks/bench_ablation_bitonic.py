"""ABL-BITONIC — the ASCEND/DESCEND class beyond TT, and the pipelined
schedule's value.

§3's design thesis: "designing an ASCEND/DESCEND algorithm for a
hypercube, and transforming it into a CCC algorithm seems to be a
reasonable way of designing an efficient CCC algorithm."  The TT program
is one member of the class; Batcher's bitonic sorter is the canonical
other.  This ablation runs bitonic sort on the ideal hypercube and on
the CCC under both schedules, isolating what the pipelined sweep buys —
the design choice DESIGN.md calls out for the CCC emulator.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.hypercube import CCC, Hypercube, bitonic_sort_program, bitonic_stage_count, make_state


def sort_on(machine_kind, r, seed, schedule="pipelined"):
    ccc = CCC(r)
    rng = np.random.default_rng(seed)
    vals = rng.uniform(0, 1, ccc.n)
    st = make_state(ccc.dims, X=vals)
    prog = bitonic_sort_program(ccc.dims)
    if machine_kind == "hypercube":
        stats = Hypercube(ccc.dims).run(st, prog)
        steps = stats.route_steps
    else:
        stats = ccc.run(st, prog, schedule=schedule)
        steps = stats.route_steps
    assert (st["X"] == np.sort(vals)).all()
    return steps, stats


def test_ablation_table():
    rows = []
    for r in (1, 2, 3):
        ccc = CCC(r)
        ideal = bitonic_stage_count(ccc.dims)
        pipe, _ = sort_on("ccc", r, seed=r, schedule="pipelined")
        naive, _ = sort_on("ccc", r, seed=r, schedule="naive")
        rows.append(
            [
                r,
                ccc.n,
                ideal,
                pipe,
                f"{pipe / ideal:.2f}",
                naive,
                f"{naive / ideal:.2f}",
            ]
        )
    print_table(
        "ABL-BITONIC: bitonic sort, CCC schedules vs ideal hypercube",
        ["r", "n", "cube steps", "pipelined", "ratio", "naive", "ratio"],
        rows,
    )
    # Pipelining must win, and its ratio must stay in a constant band.
    ratios = [float(row[4]) for row in rows]
    assert all(float(row[4]) <= float(row[6]) for row in rows)
    assert max(ratios) <= 6.0


def test_descend_sweeps_engaged():
    """The sort's inner loops are DESCEND runs; the pipelined schedule
    must batch them into sweeps rather than falling back to naive."""
    ccc = CCC(2)
    vals = np.random.default_rng(0).uniform(0, 1, ccc.n)
    st = make_state(ccc.dims, X=vals)
    stats = ccc.run(st, bitonic_sort_program(ccc.dims), schedule="pipelined")
    assert stats.sweeps >= 2


def test_sort_benchmark_hypercube(benchmark):
    steps, _ = benchmark(sort_on, "hypercube", 2, 5)
    assert steps == bitonic_stage_count(6)


def test_sort_benchmark_ccc(benchmark):
    steps, _ = benchmark(sort_on, "ccc", 2, 5)
    assert steps > 0
