"""FIG7 — the §6 ASCEND minimization with p = 3.

The paper's Fig. 7 walks the min-flood for N = 2^3 columns: after the
three ASCEND steps every PE of a column group holds the group minimum.
We trace the intermediate states (the figure's rows), verify the §6
induction at each step, and benchmark the flood at several sizes.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.hypercube import Hypercube, make_state, min_reduce_program


def run_min(dims, values):
    st = make_state(dims, M=values)
    stats = Hypercube(dims).run(st, min_reduce_program(0, dims), discipline="ascend")
    return st, stats


def test_fig7_trace():
    """Step-by-step contents for p=3, printed like the figure."""
    vals = np.array([31.0, 5.0, 17.0, 9.0, 22.0, 4.0, 40.0, 11.0])
    dims = 3
    st = make_state(dims, M=vals)
    hc = Hypercube(dims)
    rows = [["t=init"] + [f"{v:g}" for v in vals]]
    for t in range(dims):
        hc.run(st, min_reduce_program(t, t + 1))
        rows.append([f"t={t}"] + [f"{v:g}" for v in st["M"]])
        # §6 induction: groups of 2^(t+1) aligned PEs share their min.
        g = 1 << (t + 1)
        grouped = st["M"].reshape(-1, g)
        assert (grouped == grouped.min(axis=1, keepdims=True)).all()
    print_table("FIG7: ASCEND min, p=3", ["step"] + [f"PE{j}" for j in range(8)], rows)
    assert (st["M"] == vals.min()).all()


@pytest.mark.parametrize("p", [3, 6, 10])
def test_fig7_flood_sizes(p, rng):
    vals = rng.uniform(0, 100, 1 << p)
    st, stats = run_min(p, vals)
    assert np.allclose(st["M"], vals.min())
    assert stats.route_steps == p  # log N steps, the §6 claim


def test_fig7_benchmark(benchmark, rng):
    vals = rng.uniform(0, 100, 1 << 10)
    st, stats = benchmark(run_min, 10, vals)
    assert np.allclose(st["M"], vals.min())
