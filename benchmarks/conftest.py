"""Shared helpers for the benchmark harness.

Each bench module regenerates one figure or quantitative claim of the
paper (see DESIGN.md's per-experiment index) and prints the same rows /
series the paper presents; run with ``pytest benchmarks/ --benchmark-only
-s`` to see the tables.  Loose shape assertions make regressions fail
rather than silently drift.
"""

import json
import os
import pathlib

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(2026)


def bench_workers(default=(1, 2, 4, 8)):
    """Worker counts for the parallel-scaling benches.

    Overridable with ``REPRO_BENCH_WORKERS`` (comma- or space-separated,
    e.g. ``REPRO_BENCH_WORKERS="1,2,16"``) so CI and bigger hosts can pick
    their own ladder without editing the bench.
    """
    env = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    if env:
        return tuple(int(tok) for tok in env.replace(",", " ").split())
    return tuple(default)


BENCH_SCHEMA = 1


def bench_payload(name: str, fields: dict) -> dict:
    """The shared ``BENCH_*.json`` header: every artifact this harness
    writes starts with ``schema`` (bumped on breaking payload changes)
    and ``name`` so ``benchmarks/collect.py`` can merge them into one
    trajectory summary without per-bench special cases."""
    return {"schema": BENCH_SCHEMA, "name": name, "bench": name, **fields}


def merge_bench_json(path, section: str, payload: dict) -> None:
    """Read-modify-write one section of a multi-bench JSON artifact.

    ``BENCH_BVM.json`` holds one section per bench (``replay``,
    ``end2end``); merging instead of overwriting lets the benches run in
    any order — or individually — without clobbering each other.
    """
    path = pathlib.Path(path)
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    if not isinstance(data, dict):
        data = {}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2) + "\n")


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Uniform fixed-width table printer for the paper-style outputs."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
