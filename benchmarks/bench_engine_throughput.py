"""ENGINE-THROUGHPUT — warm ``SolverEngine.solve_many`` vs cold per-call solves.

The ROADMAP's serving regime is a *stream* of instances, where the
one-shot ``solve(backend="parallel")`` path pays pool fork + shared-
segment setup + teardown on every call.  The warm engine creates that
state once per ``k`` and amortizes it across the stream, pipelining each
next instance's ``subset_weights`` against the in-flight solve.  This
bench solves the same stream both ways, proves every result bit-for-bit
identical, and reports the throughput ratio.

Knobs: ``REPRO_BENCH_ENGINE_K`` (default 16), ``REPRO_BENCH_ENGINE_COUNT``
(default 8), ``REPRO_BENCH_ENGINE_WORKERS`` (default 2 — both paths use
the same worker count, so only the *lifetime* of the pool differs),
``REPRO_BENCH_ENGINE_MIN`` (minimum acceptable warm/cold ratio, default
1.0 — CI's regression floor; the committed ``BENCH_THROUGHPUT.json``
from the full run shows the >= 1.5x result).

Output: a ``BENCH_JSON`` line, a table, and ``BENCH_THROUGHPUT.json``
written next to the repo root:

    BENCH_JSON {"bench": "ENGINE-THROUGHPUT", "k": ..., "count": ...,
                "cold_s": ..., "warm_s": ..., "speedup": ...}
"""

import json
import os
import pathlib
import time

import numpy as np
import pytest

from benchmarks._kernel_timer import summarize_pairs, timed
from benchmarks.conftest import bench_payload, print_table
from repro.core import SolverEngine, solve
from repro.core.dispatch import _clear_weights_cache
from repro.core.generators import random_instance

pytestmark = pytest.mark.slow

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def test_engine_throughput():
    k = _env_int("REPRO_BENCH_ENGINE_K", 16)
    count = _env_int("REPRO_BENCH_ENGINE_COUNT", 8)
    workers = _env_int("REPRO_BENCH_ENGINE_WORKERS", 2)
    min_speedup = float(os.environ.get("REPRO_BENCH_ENGINE_MIN", "1.0"))

    stream = [
        random_instance(k, n_tests=10, n_treatments=6, seed=seed)
        for seed in range(count)
    ]

    # Cold: the pre-engine serving story — every call forks a pool,
    # allocates shared segments, tears both down.  The weights cache is
    # cleared so neither path inherits the other's precompute.
    cold_results = []

    def _cold_stream():
        for problem in stream:
            cold_results.append(
                solve(problem, backend="parallel", workers=workers)
            )

    warm_results = []

    def _warm_stream():
        with SolverEngine(workers=workers, backend="parallel") as engine:
            warm_results.extend(engine.solve_many(stream))

    _clear_weights_cache()
    cold_s = timed(_cold_stream)
    _clear_weights_cache()
    warm_s = timed(_warm_stream)

    # Amortization must never cost correctness.
    for cold, warm in zip(cold_results, warm_results):
        assert np.array_equal(cold.cost, warm.cost)
        assert np.array_equal(cold.best_action, warm.best_action)
        assert cold.op_count == warm.op_count

    # One adjacent (cold, warm) pair: the two sides each stream all
    # `count` instances back to back, so summarize_pairs degenerates to
    # the single ratio — but the summary path is the shared one.
    stats = summarize_pairs([(cold_s, warm_s)])
    speedup = stats["speedup"]
    payload = bench_payload("ENGINE-THROUGHPUT", {
        "k": k,
        "count": count,
        "workers": workers,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 3),
        "cold_per_solve_s": round(cold_s / count, 4),
        "warm_per_solve_s": round(warm_s / count, 4),
        "bit_identical": True,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    })
    print(f"\nBENCH_JSON {json.dumps(payload)}")
    print_table(
        f"engine throughput, k={k}, {count} instances, {workers} workers",
        ["path", "total", "per solve", "speedup"],
        [
            ["cold solve()", f"{cold_s:.2f} s", f"{cold_s / count:.3f} s", "1.00x"],
            [
                "warm solve_many()",
                f"{warm_s:.2f} s",
                f"{warm_s / count:.3f} s",
                f"{speedup:.2f}x",
            ],
        ],
    )
    (_REPO_ROOT / "BENCH_THROUGHPUT.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert speedup >= min_speedup, (
        f"warm engine speedup {speedup:.2f}x below the {min_speedup:.2f}x floor"
    )
