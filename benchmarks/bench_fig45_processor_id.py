"""FIG4/5 — the processor-ID pattern: every PE holds its own address.

Fig. 4 shows the 8-PE pattern (each address read down its column);
Fig. 5 shows the stages of the generation.  We regenerate the pattern,
check it against the closed form at several machine sizes, and record
the O(log^2 n) instruction scaling.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.bvm import ProgramBuilder, render_pid_columns
from repro.bvm.primitives import cycle_id_input_bits, processor_id


def generate(r):
    prog = ProgramBuilder(r)
    w = r + (1 << r)
    pid = prog.pool.alloc(w)
    processor_id(prog, pid)
    m = prog.build_machine()
    m.feed_input(cycle_id_input_bits(prog.Q))
    prog.run(m)
    return m, pid, len(prog)


def _addresses(m, pid):
    addr = np.zeros(m.n, dtype=np.int64)
    for b, reg in enumerate(pid):
        addr |= m.read(reg).astype(np.int64) << b
    return addr


def test_fig4_pattern_8pes(benchmark):
    m, pid, n_instr = benchmark(generate, 1)  # n = 8, the figure's size
    assert (_addresses(m, pid) == np.arange(8)).all()
    print("\n=== FIG4: processor-ID, 8 PEs ===")
    print(render_pid_columns(m, pid, max_pes=8))
    print(f"instructions: {n_instr}")


@pytest.mark.parametrize("r", [1, 2, 3])
def test_fig5_all_sizes(r):
    m, pid, _ = generate(r)
    assert (_addresses(m, pid) == np.arange(m.n)).all()


def test_fig5_scaling_table():
    rows = []
    for r in (1, 2, 3):
        m, _, n_instr = generate(r)
        Q = m.topology.Q
        rows.append([r, Q, m.n, n_instr, Q * Q])
    print_table(
        "FIG5 scaling (O(log^2 n))",
        ["r", "Q", "n PEs", "instructions", "Q^2"],
        rows,
    )
    # Instructions grow ~quadratically in Q, not in n.
    assert rows[-1][3] < 4 * rows[-1][4] + 16 * rows[-1][1]
