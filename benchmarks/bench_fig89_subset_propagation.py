"""FIG8/9 — the ``R[S,i] = M[S - T_i, i]`` broadcast.

Fig. 8 tabulates ``S - T`` for ``U = {0,1,2}``, ``T = {0,1}``; Fig. 9
shows which ``M`` value each ``R[S]`` holds after every iteration of the
``e``-loop.  We regenerate both tables from the traced dataflow and
verify the §6 invariant (``R[(S-T) ∪ (S ∩ T ∩ I_{e})]`` holds
``M[S-T]``) at every step.
"""

import pytest

from benchmarks.conftest import print_table
from repro.ttpar import trace_r_propagation
from repro.util.bitops import subset_str


def test_fig8_s_minus_t_table():
    k, t = 3, 0b011  # U = {0,1,2}, T = {0,1}
    rows = []
    for s in range(1 << k):
        rows.append([subset_str(s), subset_str(s & ~t)])
    print_table("FIG8: S - T for U={0,1,2}, T={0,1}", ["S", "S-T"], rows)

    trace = trace_r_propagation(k, t)
    final = trace.source[-1]
    for s in range(1 << k):
        assert final[s] == s & ~t


def test_fig9_per_iteration_table():
    k, t = 3, 0b011
    trace = trace_r_propagation(k, t)
    rows = []
    for s in range(1 << k):
        row = [subset_str(s)]
        for e in range(k):
            row.append(subset_str(trace.source[e][s]))
        rows.append(row)
    print_table(
        "FIG9: source of R[S] after iteration e",
        ["S"] + [f"e={e}" for e in range(k)],
        rows,
    )
    # §6 invariant: after iteration e, R[S] sources M[S minus the
    # T-elements <= e].
    for e in range(k):
        removed = t & ((1 << (e + 1)) - 1)
        for s in range(1 << k):
            assert trace.source[e][s] == s & ~removed


@pytest.mark.parametrize("k,t", [(4, 0b0110), (5, 0b10101), (6, 0b111000)])
def test_fig9_other_masks(k, t):
    final = trace_r_propagation(k, t).source[-1]
    for s in range(1 << k):
        assert final[s] == s & ~t


def test_fig9_benchmark(benchmark):
    trace = benchmark(trace_r_propagation, 10, 0b1010101010)
    assert trace.source[-1][(1 << 10) - 1] == 0b0101010101
