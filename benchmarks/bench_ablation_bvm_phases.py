"""ABL-PHASES — where the bit-level TT program spends its cycles.

Phase-level ablation of the §7 realization, the design-choice data
behind the complexity claims: the ``e``-loop's lateral routing must
dominate (that is the communication cost the paper's ``log p`` speedup
denominator pays for), control-bit generation must be a small one-off,
and the minimization must scale with ``p = log N'`` rather than ``k``.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import random_instance
from repro.ttpar.bvm_tt import build_bvm_tt


def breakdown(k, seed=1, width=16):
    problem = random_instance(k, n_tests=2, n_treatments=2, seed=seed)
    plan = build_bvm_tt(problem, width=width)
    return plan.prog.phase_breakdown(), len(plan.prog)


def test_phase_table():
    phases_by_k = {}
    all_labels = []
    for k in (2, 3, 4):
        phases, total = breakdown(k)
        phases_by_k[k] = (phases, total)
        for label in phases:
            if label not in all_labels:
                all_labels.append(label)
    rows = []
    for label in all_labels:
        row = [label]
        for k in (2, 3, 4):
            phases, total = phases_by_k[k]
            cycles = phases.get(label, 0)
            row.append(f"{cycles} ({100 * cycles / total:.0f}%)")
        rows.append(row)
    rows.append(["TOTAL"] + [str(phases_by_k[k][1]) for k in (2, 3, 4)])
    print_table(
        "ABL-PHASES: BVM TT cycles per phase",
        ["phase", "k=2", "k=3", "k=4"],
        rows,
    )


def test_eloop_dominates():
    """Communication (the e-loop's lateral sweeps) is the dominant cost —
    the structural reason for the speedup's log factor."""
    phases, total = breakdown(3)
    assert phases["e-loop"] > 0.4 * total
    assert phases["e-loop"] > phases["min-ascend"]


def test_setup_is_one_off():
    """Processor-ID + control bits are O(log^2 n + N log N) — a sliver."""
    phases, total = breakdown(3)
    setup = phases["processor-id"] + phases["control-bits"]
    assert setup < 0.1 * total


def test_min_scales_with_p_not_k():
    """Growing k (with N fixed) must grow the e-loop share faster than
    the minimization share."""
    p2, _ = breakdown(2)
    p4, _ = breakdown(4)
    eloop_growth = p4["e-loop"] / p2["e-loop"]
    min_growth = p4["min-ascend"] / p2["min-ascend"]
    assert eloop_growth > min_growth


def test_breakdown_sums_to_total():
    phases, total = breakdown(3)
    assert sum(phases.values()) == total


def test_breakdown_benchmark(benchmark):
    phases, total = benchmark(breakdown, 3)
    assert total > 0
