"""BVM-PACKED — word-packed replay vs the boolean oracle.

Times the *execution* of the full §7 TT instruction stream — the same
program the end-to-end bench solves — on both BVM backends: the boolean
byte-per-bit interpreter and the word-packed bit-plane engine
(:mod:`repro.bvm.packed`, 64 PEs per machine word).  The packed side
replays a :class:`~repro.bvm.program.CompiledProgram` (compile time is
reported separately; the end-to-end bench charges it).

Methodology (cf. ``bench_kernel_fusion``): each rep times both backends
**adjacently** on fresh machines, alternating which backend goes first
between reps, and the reported speedup is the **median of the per-rep
ratios** — a host-wide slow burst lands on both sides of a ratio instead
of one, and alternation cancels the second runner's warm-cache edge.
Before any timing, one differential pass asserts the two machines end
bit-for-bit identical: every live register plane, the output log, and
the cycle count.

Knobs: ``REPRO_BENCH_BVM_R`` (CCC size, default 3 — the 2048-PE
reference machine; CI's quick variant uses 2), ``REPRO_BENCH_BVM_REPS``
(default 5), ``REPRO_BENCH_BVM_MIN`` (speedup floor, default 1.0 — the
regression guard; the committed ``BENCH_BVM.json`` from the full r=3
run shows the >= 10x replay result).

Output: a ``BENCH_JSON`` line, a table, and the ``"replay"`` section of
``BENCH_BVM.json`` at the repo root.
"""

import json
import os
import pathlib
import time

import pytest

from benchmarks._kernel_timer import alternate, summarize_pairs, timed
from benchmarks.bench_bvm_tt_end2end import integral_instance
from benchmarks.conftest import bench_payload, merge_bench_json, print_table
from repro.bvm.isa import A, B, E, Reg
from repro.bvm.topology import pack_row
from repro.ttpar.bvm_tt import build_bvm_tt

pytestmark = pytest.mark.slow

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# CCC size -> the largest integral instance whose §7 layout fits it.
_K_FOR_R = {2: 3, 3: 4}


def _bench_r() -> int:
    return int(os.environ.get("REPRO_BENCH_BVM_R", "3"))


def _reps() -> int:
    return int(os.environ.get("REPRO_BENCH_BVM_REPS", "5"))


def _min_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_BVM_MIN", "1.0"))


def _fresh(plan, backend):
    m = plan.prog.build_machine(backend=backend)
    m.feed_input(plan.input_bits())
    return m


def _assert_identical(plan, ref, fast):
    L = plan.prog.pool.high_water
    for reg in [Reg("R", j) for j in range(L)] + [A, B, E]:
        assert fast.plane(reg) == pack_row(ref.read(reg)), f"plane {reg} differs"
    assert [bool(x) for x in fast.output_log] == [bool(x) for x in ref.output_log]
    assert fast.cycles == ref.cycles


def test_bvm_packed_replay():
    r = _bench_r()
    if r not in _K_FOR_R:
        pytest.skip(f"no reference instance mapped for r={r}")
    problem = integral_instance(_K_FOR_R[r], seed=7)
    plan = build_bvm_tt(problem, width=16)
    assert plan.r == r, f"instance landed on CCC({plan.r}), wanted CCC({r})"
    instructions = plan.prog.instructions

    t0 = time.perf_counter()
    compiled = plan.prog.compiled()
    compile_s = time.perf_counter() - t0

    # Differential pass first: the speedup claim is only meaningful if
    # the packed machine is bit-for-bit the boolean machine.
    ref, fast = _fresh(plan, "bool"), _fresh(plan, "packed")
    ref.run(instructions)
    compiled.run(fast)
    _assert_identical(plan, ref, fast)

    pairs = []
    for rep in range(_reps()):
        sides = {}
        for backend in alternate(rep, "bool", "packed"):
            m = _fresh(plan, backend)
            if backend == "packed":
                sides[backend] = timed(compiled.run, m)
            else:
                sides[backend] = timed(m.run, instructions)
        pairs.append((sides["bool"], sides["packed"]))

    stats = summarize_pairs(pairs)
    speedup = stats["speedup"]
    bool_s, packed_s = stats["baseline_s"], stats["candidate_s"]

    payload = bench_payload("BVM-PACKED", {
        "r": r,
        "n_pes": (1 << r) * (1 << (1 << r)),
        "k": _K_FOR_R[r],
        "instructions": len(instructions),
        "bool_s": round(bool_s, 6),
        "packed_s": round(packed_s, 6),
        "compile_s": round(compile_s, 6),
        "speedup": round(speedup, 3),
        "reps": _reps(),
        "pair_ratios": stats["ratios"],
        "methodology": (
            "fresh machines per rep, backends timed adjacently, order "
            "alternating; median of per-rep ratios; bit-identical state "
            "verified before timing"
        ),
        "bit_identical": True,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    })
    print(f"\nBENCH_JSON {json.dumps(payload)}")
    print_table(
        f"BVM replay, CCC({r}) ({payload['n_pes']} PEs), "
        f"{len(instructions)} instructions",
        ["backend", "seconds", "speedup"],
        [
            ["bool", f"{bool_s * 1e3:.1f} ms", "1.00x"],
            ["packed", f"{packed_s * 1e3:.1f} ms", f"{speedup:.2f}x"],
            ["(compile)", f"{compile_s * 1e3:.1f} ms", "once per program"],
        ],
    )
    merge_bench_json(_REPO_ROOT / "BENCH_BVM.json", "replay", payload)

    assert speedup >= _min_speedup(), (
        f"packed replay speedup {speedup:.2f}x below the "
        f"{_min_speedup():.2f}x floor"
    )
