"""Paired-adjacent timing helpers + the kernel-fusion subprocess body.

Every comparative bench in this repo uses the same methodology — the
two sides of a comparison are timed **adjacently** (back to back, so a
host-wide slow burst lands on both sides of a ratio instead of one),
the order **alternates** between reps (cancelling the second runner's
warm-cache edge), and the reported speedup is the **median of the
per-rep ratios** rather than a ratio of totals (so one outlier rep
cannot skew the claim).  :func:`alternate`, :func:`timed` and
:func:`summarize_pairs` carry that methodology once; the bench modules
(``bench_kernel_fusion``, ``bench_bvm_packed``, ``bench_bvm_batch``,
``bench_engine_throughput``) only decide *what* to time.

This module is also runnable as ``python -m benchmarks._kernel_timer
--order {legacy-first,fused-first} ...`` — the fresh-subprocess rep
body of the kernel-fusion bench; it times BOTH kernel variants over
the middle layers of a reference instance and prints a JSON summary
on stdout.

Subprocess methodology notes:

* **Fresh process per rep** keeps the comparison honest: the legacy
  kernel's dominant cost is allocator traffic (eight-plus full-layer
  temporaries per action), and a warmed-up allocator from previous
  timed reps would understate it — while the fused kernel's arena
  reuse needs no such warm-up.  Single-shot per layer is exactly the
  production profile (one kernel call per layer per solve).
* **Per-layer adjacency**: within one process the two variants are
  timed back-to-back *per layer*, so a host-wide slow burst lands on
  both sides of the ratio instead of one — the drift window is the
  ~10 ms of one layer, not the seconds between two processes.
* **Alternating order** (``--order``, flipped per rep by the caller)
  cancels the residual bias of the second variant finding the cost
  table cache-warm.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.core.generators import random_instance
from repro.core.kernels import LayerArena, layer_plan, solve_layer_kernel_fused
from repro.core.sequential import solve_layer_kernel, subset_weights


def alternate(rep: int, a, b) -> tuple:
    """``(first, second)`` for this rep — flipped on odd reps so neither
    side systematically inherits the other's warm caches."""
    return (a, b) if rep % 2 == 0 else (b, a)


def timed(fn, *args, **kwargs) -> float:
    """Wall-clock seconds of one single-shot call."""
    t0 = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - t0


def summarize_pairs(pairs) -> dict:
    """Reduce per-rep ``(baseline_s, candidate_s)`` pairs to the shared
    summary: per-side medians plus the median-of-ratios speedup (each
    ratio pairs adjacent timings, so host drift cancels inside it)."""
    ratios = sorted(base / cand for base, cand in pairs)
    return {
        "baseline_s": float(np.median(sorted(base for base, _ in pairs))),
        "candidate_s": float(np.median(sorted(cand for _, cand in pairs))),
        "speedup": float(np.median(ratios)),
        "ratios": [round(x, 3) for x in ratios],
    }


def build_tables(problem, plan, p):
    """Replay a full solve with the *legacy* kernel, snapshotting the cost
    table as it stood before each layer — both variants then time against
    byte-identical inputs."""
    subsets, costs, is_test = (
        problem.subset_array,
        problem.cost_array,
        problem.test_mask_array,
    )
    cost = np.full(1 << problem.k, np.inf)
    cost[0] = 0.0
    tables = {}
    for j in range(1, problem.k + 1):
        layer = plan.layer(j)
        layer_best, _ = solve_layer_kernel(
            layer, p[layer], cost, subsets, costs, is_test
        )
        tables[j] = cost.copy()
        cost[layer] = layer_best
    return tables


def middle_layers(plan, k):
    cutoff = plan.max_layer_size // 2
    return [j for j in range(1, k + 1) if plan.layer(j).size >= cutoff]


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument(
        "--order", choices=("legacy-first", "fused-first"), default="legacy-first"
    )
    ap.add_argument("--k", type=int, default=18)
    ap.add_argument("--n-tests", type=int, default=20)
    ap.add_argument("--n-treatments", type=int, default=12)
    args = ap.parse_args()

    problem = random_instance(
        args.k, args.n_tests, args.n_treatments, seed=args.k
    )
    p = subset_weights(problem)
    plan = layer_plan(args.k)
    subsets, costs, is_test = (
        problem.subset_array,
        problem.cost_array,
        problem.test_mask_array,
    )
    tables = build_tables(problem, plan, p)
    layers = middle_layers(plan, args.k)
    arena = LayerArena()

    def run_legacy(layer, p_layer, cost):
        return timed(
            solve_layer_kernel, layer, p_layer, cost, subsets, costs, is_test
        )

    def run_fused(layer, p_layer, cost):
        return timed(
            solve_layer_kernel_fused,
            layer, p_layer, cost, subsets, costs, is_test, arena=arena,
        )

    first, second = alternate(
        0 if args.order == "legacy-first" else 1,
        ("legacy", run_legacy),
        ("fused", run_fused),
    )

    totals = {"legacy": 0.0, "fused": 0.0}
    per_layer = []
    for j in layers:
        layer = plan.layer(j)
        p_layer = p[layer]
        cost = tables[j]
        entry = {"layer": j}
        for name, fn in (first, second):
            dt = fn(layer, p_layer, cost)
            totals[name] += dt
            entry[name] = dt
        per_layer.append(entry)

    print(
        json.dumps(
            {
                "order": args.order,
                "legacy_s": totals["legacy"],
                "fused_s": totals["fused"],
                "layers": per_layer,
            }
        )
    )


if __name__ == "__main__":
    main()
