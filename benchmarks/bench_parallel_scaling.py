"""PAR-SCALE — wall-clock scaling of the multi-core layer-parallel engine.

The paper's speedup story is "one PE per (S, i) pair, layers are the only
barriers"; `repro.core.parallel` maps the same layer-barrier dataflow onto
OS processes over a `multiprocessing.shared_memory` cost table.  This
bench runs the worker ladder (1/2/4/8 by default; `REPRO_BENCH_WORKERS`
overrides) against the single-process `solve_dp` baseline and emits one
machine-readable `BENCH_JSON` line per run:

    BENCH_JSON {"bench": "PAR-SCALE", "k": ..., "baseline_s": ...,
                "series": [{"workers": w, "seconds": t, "speedup": s}, ...]}

Instance size comes from `REPRO_BENCH_K` (default 16; the paper-scale
demonstration is k >= 18, which needs a few GiB-seconds).  Speedup is
asserted only when the host actually has spare cores — on a single-core
machine the ladder still runs (correctness is always checked bit-for-bit)
but the wall-clock assertion would be meaningless.
"""

import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import bench_payload, bench_workers, print_table
from repro.core import random_instance, solve_dp
from repro.core.parallel import solve_dp_parallel

pytestmark = pytest.mark.slow


def _bench_k() -> int:
    return int(os.environ.get("REPRO_BENCH_K", "16"))


def test_parallel_scaling_table():
    k = _bench_k()
    problem = random_instance(k, n_tests=12, n_treatments=8, seed=k)

    t0 = time.perf_counter()
    base = solve_dp(problem)
    baseline = time.perf_counter() - t0

    rows = []
    series = []
    for w in bench_workers():
        t0 = time.perf_counter()
        result = solve_dp_parallel(problem, workers=w)
        dt = time.perf_counter() - t0
        # Scaling must never cost correctness: bit-for-bit, every worker count.
        assert np.array_equal(result.cost, base.cost)
        assert np.array_equal(result.best_action, base.best_action)
        speedup = baseline / dt
        series.append(
            {"workers": w, "seconds": round(dt, 4), "speedup": round(speedup, 3)}
        )
        rows.append([w, f"{dt * 1e3:.0f}", f"{speedup:.2f}x"])

    print_table(
        f"PAR-SCALE: layer-parallel engine vs solve_dp (k={k}, "
        f"N={problem.n_actions}, baseline {baseline * 1e3:.0f} ms)",
        ["workers", "ms", "speedup"],
        rows,
    )
    payload = bench_payload("PAR-SCALE", {
        "k": k,
        "n_actions": problem.n_actions,
        "cpu_count": os.cpu_count(),
        "baseline_s": round(baseline, 4),
        "series": series,
    })
    print("BENCH_JSON " + json.dumps(payload))

    cores = os.cpu_count() or 1
    if cores >= 4 and k >= 18:
        best = max(s["speedup"] for s in series if s["workers"] >= 4)
        assert best > 1.5, f"expected >1.5x at k={k} with 4+ workers, got {best}"


def test_parallel_matches_baseline_small():
    """Cheap always-on sanity: the ladder agrees with solve_dp at k=10."""
    problem = random_instance(10, n_tests=8, n_treatments=5, seed=7)
    base = solve_dp(problem)
    for w in (1, 2, 4):
        result = solve_dp_parallel(problem, workers=w, min_shard=64)
        assert np.array_equal(result.cost, base.cost)
        assert np.array_equal(result.best_action, base.best_action)
