"""FIG6 — the 16-PE broadcast schedule.

The paper's Fig. 6 lists the transmissions of Broadcasting() on a 16-PE
array round by round (``0000 -> 0001``; then ``0000 -> 0010,
0001 -> 0011``; ...).  We print exactly those rows from the schedule
generator, verify them against a machine run on both the ideal hypercube
and the BVM, and benchmark the flood.
"""

import numpy as np

from repro.hypercube import Hypercube, broadcast_program, broadcast_schedule, make_state


def run_broadcast(dims):
    n = 1 << dims
    v = np.zeros(n)
    v[0] = 1.0
    s = np.zeros(n, dtype=bool)
    s[0] = True
    st = make_state(dims, V=v, SENDER=s)
    stats = Hypercube(dims).run(st, broadcast_program(dims), discipline="ascend")
    return st, stats


def test_fig6_schedule(benchmark):
    st, stats = benchmark(run_broadcast, 4)
    assert (st["V"] == 1.0).all()
    assert stats.route_steps == 4

    print("\n=== FIG6: 16-PE broadcast transmissions ===")
    for i, rnd in enumerate(broadcast_schedule(4), start=1):
        pairs = ", ".join(f"{s:04b} -> {r:04b}" for s, r in rnd)
        print(f"{i}. {pairs}")

    # The figure's literal first rows:
    rounds = broadcast_schedule(4)
    assert rounds[0] == [(0b0000, 0b0001)]
    assert (0b0000, 0b0010) in rounds[1] and (0b0001, 0b0011) in rounds[1]
    assert rounds[3] == [(s, s | 8) for s in range(8)]


def test_fig6_on_bvm():
    """The same flood at the bit level: O(km) for k broadcast bits."""
    from repro.bvm import ProgramBuilder
    from repro.bvm.hyperops import route_dim
    from repro.bvm.primitives import broadcast_bit, cycle_id_input_bits, processor_id

    r = 2
    prog = ProgramBuilder(r)
    V, S = prog.pool.alloc(2)
    pid = prog.pool.alloc(r + (1 << r))
    processor_id(prog, pid)
    base = len(prog)
    broadcast_bit(prog, V, S, pid, route_dim)
    per_bit = len(prog) - base

    m = prog.build_machine()
    m.feed_input(cycle_id_input_bits(prog.Q))
    v = np.zeros(m.n, bool)
    v[0] = True
    m.poke(V, v.copy())
    m.poke(S, v.copy())
    prog.run(m)
    assert m.read(V).all() and m.read(S).all()
    print(f"\nFIG6 on BVM(r=2): {per_bit} instructions per broadcast bit "
          f"(k bits => ~{per_bit}k, the paper's O(km))")
