"""CLM-SPEEDUP — speedup O(P / log P) over the sequential DP.

The paper's headline: with ``P = N * 2^k`` PEs the parallel algorithm is
``O(P / log P)`` times faster than the sequential backward induction
(the ``log P`` paying for communication; a fan-in argument shows
``Ω(k + log N)`` communication is unavoidable on a bounded-degree
network).

We measure both sides in *word operations* — the DP's ``(2^k - 1) * N``
action evaluations vs the parallel program's ``k * (k + log N')``
dimension exchanges (counted, not modeled) — so bit-serial and 64-bit
datapath factors cancel as the paper nets them off.  The shape check:
``speedup / (P / log P)`` stays within constant factors along the curve.
"""

import math

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import random_instance, solve_dp
from repro.ttpar import solve_tt_hypercube, speedup_curve, speedup_point


def test_speedup_curve_shape():
    pts = speedup_curve(range(6, 18), lambda k: 2**k)
    rows = []
    ratios = []
    for pt in pts:
        ratio = pt.speedup / pt.p_over_logp
        ratios.append(ratio)
        rows.append(
            [
                pt.k,
                pt.pe_count,
                pt.seq_ops,
                pt.par_steps,
                f"{pt.speedup:.0f}",
                f"{pt.p_over_logp:.0f}",
                f"{ratio:.3f}",
            ]
        )
    print_table(
        "CLM-SPEEDUP: S = T_seq/T_par vs P/log P  (N = 2^k regime)",
        ["k", "P", "seq ops", "par steps", "speedup", "P/logP", "ratio"],
        rows,
    )
    assert max(ratios) / min(ratios) < 3.0  # constant-factor band


def test_speedup_polynomial_action_regime():
    """The paper optimized for N = O(k^b); check the quadratic regime."""
    pts = speedup_curve(range(6, 18), lambda k: k * k)
    ratios = [pt.speedup / pt.p_over_logp for pt in pts]
    print_table(
        "CLM-SPEEDUP: N = k^2 regime",
        ["k", "P", "speedup", "P/logP", "ratio"],
        [
            [pt.k, pt.pe_count, f"{pt.speedup:.0f}", f"{pt.p_over_logp:.0f}", f"{r:.3f}"]
            for pt, r in zip(pts, ratios)
        ],
    )
    assert max(ratios) / min(ratios) < 4.0


def test_measured_counters_match_model_points():
    """The model's numerator/denominator against executed counters."""
    for k in (4, 5, 6):
        problem = random_instance(k, n_tests=k, n_treatments=k, seed=k)
        dp = solve_dp(problem)
        par = solve_tt_hypercube(problem)
        from repro.ttpar import pad_actions

        pt = speedup_point(k, pad_actions(problem).n_actions)
        assert par.stats.route_steps == pt.par_steps
        # dp.op_count uses the unpadded N; the model uses padded N'.
        assert dp.op_count == ((1 << k) - 1) * problem.n_actions


def test_paper_headline_number():
    """'A speedup of roughly 10^6 could thus be realized' for k=15,
    N=O(2^k) on ~2^30 PEs.

    The paper's parenthetical '(this allows for the parallelism of 64
    bits that a sequential machine might possess)' nets the BVM's
    bit-serial factor W~64 against the sequential 64-bit datapath, so the
    word-level ratio seq_ops / par_steps IS the quoted figure:
    2^30 / (15 * 30) ~ 2.4e6, i.e. 'roughly 10^6'."""
    pt = speedup_point(15, 2**15)
    print(f"\nCLM-SPEEDUP headline: k=15, N=2^15, P=2^30 PEs: "
          f"speedup {pt.speedup:,.0f} (paper: 'roughly 10^6')")
    assert 10**5.5 < pt.speedup < 10**7


def test_wallclock_crossover_simulated(benchmark):
    """Simulator wall-clock is *not* the claim (one host simulates all
    PEs), but the counter-based speedup is still reportable."""
    problem = random_instance(6, 6, 4, seed=9)

    def both():
        return solve_dp(problem), solve_tt_hypercube(problem)

    dp, par = benchmark(both)
    assert np.allclose(dp.cost, par.cost)
    counted = dp.op_count / par.stats.route_steps
    print(f"\ncounted word-op speedup at k=6: {counted:.1f}x "
          f"({dp.op_count} seq ops / {par.stats.route_steps} par steps)")
    assert counted > math.log2(dp.op_count)
