"""CLM-BENES — "it can accomplish any permutation within O(log n) time
if the control bits are precalculated" (§2).

We precalculate Beneš control bits with the looping algorithm, route
random permutations through the ``2·log n - 1`` exchange stages, and
verify (a) correctness, (b) the stage count, (c) that the stage order is
DESCEND-then-ASCEND (so the whole thing runs on the CCC at the usual
constant slowdown), and (d) the wall time of the control-bit
precalculation itself (the part the paper says is done offline).
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.hypercube import CCC, benes_schedule, benes_stage_count, make_state, permutation_program


def test_stage_count_table(rng):
    rows = []
    for m in (3, 5, 8, 11):
        n = 1 << m
        dest = rng.permutation(n)
        sched = benes_schedule(dest)
        swaps = sum(int(mask.sum()) for _, mask in sched) // 2
        rows.append([m, n, len(sched), benes_stage_count(m), swaps])
        assert len(sched) == 2 * m - 1
    print_table(
        "CLM-BENES: permutation routing in 2*log(n)-1 stages",
        ["log n", "n", "stages", "2m-1", "pair swaps used"],
        rows,
    )


def test_descend_ascend_order(rng):
    sched = benes_schedule(rng.permutation(64))
    dims = [d for d, _ in sched]
    mid = len(dims) // 2
    assert dims[: mid + 1] == sorted(dims[: mid + 1], reverse=True)
    assert dims[mid:] == sorted(dims[mid:])


def test_ccc_slowdown_for_permutation(rng):
    ccc = CCC(2)
    dest = rng.permutation(ccc.n)
    vals = rng.uniform(0, 1, ccc.n)
    st = make_state(ccc.dims, X=vals)
    stats = ccc.run(st, permutation_program(dest), schedule="pipelined")
    want = np.empty(ccc.n)
    want[dest] = vals
    assert (st["X"] == want).all()
    print(f"\nCLM-BENES on CCC(2): {stats.ideal_dimops} ideal stages, "
          f"{stats.route_steps} CCC steps (slowdown {stats.slowdown:.2f}x)")
    assert stats.slowdown < 6.0


def test_control_bit_precalc_benchmark(benchmark, rng):
    dest = rng.permutation(1 << 10)
    sched = benchmark(benes_schedule, dest)
    assert len(sched) == 19


def test_routing_benchmark(benchmark, rng):
    from repro.hypercube import route_permutation

    n = 1 << 8
    dest = rng.permutation(n)
    vals = np.arange(n)
    out = benchmark(route_permutation, dest, vals)
    want = np.empty(n, dtype=vals.dtype)
    want[dest] = vals
    assert (out == want).all()
