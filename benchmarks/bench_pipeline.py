"""PIPELINE — what the strict default and the async committer bought.

Two paired comparisons, each timed with the repo's standard
paired-adjacent methodology (:mod:`benchmarks._kernel_timer`): the two
sides of a ratio run back to back within a rep, the order alternates
between reps, and the claim is the median of per-rep ratios.

**strict vs snapshot (RAM)** — the snapshot discipline copies the full
cost table and re-``INF``\\ s the own-layer slice before every layer;
the strict default reads the live table through explicit validity
masks.  The saved traffic is ``k`` full-table copies per solve, so the
win grows with ``k`` and shrinks with the number of actions (which set
the kernel's own gather traffic).  Floor: **>= 1.1x**.

**async vs sync commits (mmap)** — the synchronous protocol serializes
compute-then-commit at every layer barrier; the async committer runs
layer ``j``'s slab write + sha256 + fsync + rename while the pool
computes layer ``j + 1``.  Two floors, because the end-to-end payout
depends on the host: the *functional* floor — the committer must move
**>= 50%** of commit seconds off the layer barrier
(``commit.overlap_s``) — holds anywhere; the *end-to-end* floor of
**>= 1.15x** is enforced only with two or more cores, since on a
single-core machine only the commit's IO-wait slice (fsync, rename)
can hide behind compute while its hash + write CPU slice serializes
with the pool either way.  ``host_cores`` and ``enforced`` in the
payload record which regime the committed numbers come from.

**async vs sync on a slow store (mmap + slow-io)** — the payout the
end-to-end leg can only show on multi-core hardware is demonstrated
host-independently here: a ``slow-io`` storage fault (the fault
grammar's deterministic commit-latency injection) adds a fixed sleep
to every layer's first commit attempt.  Sleep is pure IO wait, so it
overlaps compute even on one core — the sync protocol pays it at every
barrier, the async committer hides it behind the next layer.  Floor:
**>= 1.15x**, enforced everywhere.

All comparisons also re-assert bit-identity — the speedups are only
claimable because the bytes are the same.

Knobs: ``REPRO_BENCH_PIPELINE_K_RAM`` (default 18),
``REPRO_BENCH_PIPELINE_K_MMAP`` (default 22),
``REPRO_BENCH_PIPELINE_K_SLOW`` / ``REPRO_BENCH_PIPELINE_SLOW_MS``
(defaults 22 / 40), ``REPRO_BENCH_PIPELINE_REPS`` (default 3), and
``REPRO_BENCH_PIPELINE_QUICK=1`` for a CI-sized smoke run (small k,
floors recorded but not enforced — the overheads being amortized are
table-sized, so tiny tables cannot show them).  Output: ``BENCH_JSON``
lines, tables, and ``BENCH_PIPELINE.json`` at the repo root.
"""

import json
import os
import pathlib
import shutil
import tempfile
import time

import pytest

from benchmarks._kernel_timer import alternate, summarize_pairs
from benchmarks.conftest import bench_payload, merge_bench_json, print_table
from repro.core import random_instance
from repro.core.faults import FAULT_SPEC_ENV
from repro.core.parallel import solve_dp_parallel
from repro.store import StoreSpec

pytestmark = pytest.mark.slow

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_OUT = _REPO_ROOT / "BENCH_PIPELINE.json"

QUICK = os.environ.get("REPRO_BENCH_PIPELINE_QUICK", "").strip() == "1"
REPS = int(os.environ.get("REPRO_BENCH_PIPELINE_REPS", "2" if QUICK else "3"))

STRICT_FLOOR = 1.1
ASYNC_FLOOR = 1.15
OVERLAP_FLOOR = 0.5


def _identical(a, b):
    return (
        a.cost.tobytes() == b.cost.tobytes()
        and a.best_action.tobytes() == b.best_action.tobytes()
    )


def test_strict_vs_snapshot_ram():
    k = int(
        os.environ.get("REPRO_BENCH_PIPELINE_K_RAM", "12" if QUICK else "18")
    )
    problem = random_instance(k, n_tests=6, n_treatments=4, seed=k)
    # workers=2 exercises the *shard* path the tentpole changed: under
    # the snapshot discipline every worker copies the full table per
    # layer, so the saved traffic scales with the worker count.
    workers = int(os.environ.get("REPRO_BENCH_PIPELINE_WORKERS", "2"))

    def run(discipline):
        t0 = time.perf_counter()
        result = solve_dp_parallel(
            problem, workers=workers, discipline=discipline, min_shard=1
        )
        return time.perf_counter() - t0, result

    # Bit-identity first (also warms caches for the timed reps).
    base = run("snapshot")[1]
    strict = run("strict")[1]
    assert _identical(base, strict), "disciplines diverged bit-for-bit"

    pairs = []
    for rep in range(REPS):
        first, second = alternate(rep, "snapshot", "strict")
        times = {first: run(first)[0], second: run(second)[0]}
        pairs.append((times["snapshot"], times["strict"]))

    summary = summarize_pairs(pairs)
    payload = bench_payload(
        "PIPELINE-STRICT",
        {
            "k": k,
            "workers": workers,
            "reps": REPS,
            "snapshot_s": summary["baseline_s"],
            "strict_s": summary["candidate_s"],
            "speedup": round(summary["speedup"], 3),
            "ratios": summary["ratios"],
            "floor": STRICT_FLOOR,
            "enforced": not QUICK,
            "bit_identical": True,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
    )
    print(f"\nBENCH_JSON {json.dumps(payload)}")
    print_table(
        f"shard discipline, k={k}, workers={workers}",
        ["discipline", "median", "speedup"],
        [
            ["snapshot (legacy)", f"{summary['baseline_s']:.3f} s", "1.00x"],
            [
                "strict (default)",
                f"{summary['candidate_s']:.3f} s",
                f"{summary['speedup']:.2f}x",
            ],
        ],
    )
    merge_bench_json(_OUT, "strict", payload)
    if not QUICK:
        assert summary["speedup"] >= STRICT_FLOOR, (
            f"strict discipline speedup {summary['speedup']:.2f}x is below "
            f"the {STRICT_FLOOR}x floor"
        )


def test_async_vs_sync_commits_mmap():
    k = int(
        os.environ.get("REPRO_BENCH_PIPELINE_K_MMAP", "14" if QUICK else "22")
    )
    # Few actions: the commit bytes are fixed by k while the kernel work
    # scales with the action count, so a small action set gives the
    # commit share the paper-style "persistence-bound" profile this
    # bench is pricing.
    problem = random_instance(k, n_tests=3, n_treatments=2, seed=k)
    tmp = tempfile.mkdtemp(prefix="repro-bench-pipeline-")
    cores = os.cpu_count() or 1

    def run(commit, keep_tables=False):
        spill = os.path.join(tmp, f"spill-{commit}")
        shutil.rmtree(spill, ignore_errors=True)
        # Quiesce writeback from the previous run's slab traffic so the
        # second runner of a pair does not inherit its predecessor's
        # deferred IO (journal flushes after a 64 MB rmtree + rewrite).
        os.sync()
        time.sleep(0.2)
        spec = StoreSpec(kind="mmap", spill_dir=spill)
        t0 = time.perf_counter()
        result = solve_dp_parallel(
            problem, workers=1, store=spec, commit=commit
        )
        dt = time.perf_counter() - t0
        if keep_tables:
            # The tables are memmaps of files the next run deletes.
            return dt, (result.cost.copy(), result.best_action.copy()), None
        return dt, None, dict(result.metrics)

    try:
        _, sync_tables, _ = run("sync", keep_tables=True)
        _, async_tables, _ = run("async", keep_tables=True)
        assert sync_tables[0].tobytes() == async_tables[0].tobytes()
        assert sync_tables[1].tobytes() == async_tables[1].tobytes()

        pairs = []
        async_metrics = {}
        for rep in range(REPS):
            first, second = alternate(rep, "sync", "async")
            times = {}
            for mode in (first, second):
                dt, _, metrics = run(mode)
                times[mode] = dt
                if mode == "async":
                    async_metrics = metrics
            pairs.append((times["sync"], times["async"]))
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    summary = summarize_pairs(pairs)
    commit_s = async_metrics.get("commit.async_s", {}).get("total", 0.0)
    overlap_s = async_metrics.get("commit.overlap_s", 0.0)
    overlap_frac = overlap_s / commit_s if commit_s else 0.0
    payload = bench_payload(
        "PIPELINE-ASYNC",
        {
            "k": k,
            "host_cores": cores,
            "reps": REPS,
            "sync_s": summary["baseline_s"],
            "async_s": summary["candidate_s"],
            "speedup": round(summary["speedup"], 3),
            "ratios": summary["ratios"],
            "commit_s": round(commit_s, 4),
            "overlap_s": round(overlap_s, 4),
            "overlap_frac": round(overlap_frac, 3),
            "overlap_floor": OVERLAP_FLOOR,
            "floor": ASYNC_FLOOR,
            "enforced": not QUICK and cores >= 2,
            "bit_identical": True,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
    )
    print(f"\nBENCH_JSON {json.dumps(payload)}")
    print_table(
        f"commit pipeline, k={k}, mmap store, workers=1",
        ["commit mode", "median", "speedup"],
        [
            ["sync (inline)", f"{summary['baseline_s']:.3f} s", "1.00x"],
            [
                "async (default)",
                f"{summary['candidate_s']:.3f} s",
                f"{summary['speedup']:.2f}x",
            ],
        ],
    )
    merge_bench_json(_OUT, "async", payload)
    if QUICK:
        return
    # The functional floor holds on any host: the committer must move
    # the majority of commit seconds off the layer barrier.
    assert overlap_frac >= OVERLAP_FLOOR, (
        f"only {overlap_frac:.0%} of commit time overlapped compute "
        f"(floor {OVERLAP_FLOOR:.0%})"
    )
    # The end-to-end floor needs a second core to pay out (see module
    # docstring); single-core hosts record the ratio without enforcing.
    if cores >= 2:
        assert summary["speedup"] >= ASYNC_FLOOR, (
            f"async commit speedup {summary['speedup']:.2f}x is below "
            f"the {ASYNC_FLOOR}x floor"
        )


def test_async_hides_slow_store_latency():
    k = int(
        os.environ.get("REPRO_BENCH_PIPELINE_K_SLOW", "12" if QUICK else "22")
    )
    ms = int(os.environ.get("REPRO_BENCH_PIPELINE_SLOW_MS", "40"))
    # A fuller action set than the end-to-end leg: hiding is bounded per
    # layer by the next layer's compute, so the pipeline only pays out
    # when total compute exceeds total committer occupancy
    # (sleep + real commit per layer) — k=22 with ten actions does.
    problem = random_instance(k, n_tests=6, n_treatments=4, seed=k)
    tmp = tempfile.mkdtemp(prefix="repro-bench-pipeline-slow-")

    def run(commit, keep_tables=False):
        spill = os.path.join(tmp, f"spill-{commit}")
        shutil.rmtree(spill, ignore_errors=True)
        os.sync()
        spec = StoreSpec(kind="mmap", spill_dir=spill)
        t0 = time.perf_counter()
        result = solve_dp_parallel(
            problem, workers=1, store=spec, commit=commit
        )
        dt = time.perf_counter() - t0
        if keep_tables:
            return dt, (result.cost.copy(), result.best_action.copy())
        return dt, None

    old_spec = os.environ.get(FAULT_SPEC_ENV)
    os.environ[FAULT_SPEC_ENV] = f"slow-io:ms={ms}"
    try:
        _, sync_tables = run("sync", keep_tables=True)
        _, async_tables = run("async", keep_tables=True)
        assert sync_tables[0].tobytes() == async_tables[0].tobytes()
        assert sync_tables[1].tobytes() == async_tables[1].tobytes()

        pairs = []
        for rep in range(REPS):
            first, second = alternate(rep, "sync", "async")
            times = {first: run(first)[0], second: run(second)[0]}
            pairs.append((times["sync"], times["async"]))
    finally:
        if old_spec is None:
            os.environ.pop(FAULT_SPEC_ENV, None)
        else:
            os.environ[FAULT_SPEC_ENV] = old_spec
        shutil.rmtree(tmp, ignore_errors=True)

    summary = summarize_pairs(pairs)
    payload = bench_payload(
        "PIPELINE-ASYNC-SLOW",
        {
            "k": k,
            "slow_ms": ms,
            "injected_s": round(k * ms / 1000.0, 3),
            "reps": REPS,
            "sync_s": summary["baseline_s"],
            "async_s": summary["candidate_s"],
            "speedup": round(summary["speedup"], 3),
            "ratios": summary["ratios"],
            "floor": ASYNC_FLOOR,
            "enforced": not QUICK,
            "bit_identical": True,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
    )
    print(f"\nBENCH_JSON {json.dumps(payload)}")
    print_table(
        f"commit pipeline vs slow store, k={k}, +{ms} ms/commit",
        ["commit mode", "median", "speedup"],
        [
            ["sync (inline)", f"{summary['baseline_s']:.3f} s", "1.00x"],
            [
                "async (default)",
                f"{summary['candidate_s']:.3f} s",
                f"{summary['speedup']:.2f}x",
            ],
        ],
    )
    merge_bench_json(_OUT, "async_slow", payload)
    if not QUICK:
        assert summary["speedup"] >= ASYNC_FLOOR, (
            f"async speedup over a slow store is {summary['speedup']:.2f}x, "
            f"below the {ASYNC_FLOOR}x floor"
        )
