"""Merge every committed ``BENCH_*.json`` into one trajectory summary.

Each bench writes its own artifact at the repo root — some a single
payload, some sectioned (``BENCH_BVM.json`` holds one payload per
bench).  Every payload carries the shared header (``schema``, ``name``;
see :func:`benchmarks.conftest.bench_payload`), so this collector needs
no per-bench knowledge: it walks the artifacts, flattens sections, and
emits one JSON document keyed by payload name with the headline figure
of each bench surfaced in a compact table.

Run as ``python -m benchmarks.collect [--out FILE]`` from the repo
root (or with it on ``sys.path``).  With ``--out`` the merged summary
is written to ``FILE``; otherwise it prints to stdout.  Payloads
missing the shared header are reported and skipped rather than
guessed at — an artifact produced by a pre-header writer should be
regenerated, not silently mangled.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# The one number a reader scans for per bench, when the payload has it.
_HEADLINE_KEYS = ("speedup", "slowdown", "ratio", "overlap_frac")


def _payloads(doc: dict):
    """Yield every payload in an artifact (flattening sectioned files)."""
    if "name" in doc or "bench" in doc:
        yield doc
        return
    for value in doc.values():
        if isinstance(value, dict):
            yield value


def collect(root: pathlib.Path = _REPO_ROOT) -> dict:
    """Gather all ``BENCH_*.json`` payloads under ``root`` by name."""
    merged: dict[str, dict] = {}
    skipped: list[str] = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            skipped.append(f"{path.name}: unreadable JSON")
            continue
        if not isinstance(doc, dict):
            skipped.append(f"{path.name}: not a JSON object")
            continue
        for payload in _payloads(doc):
            name = payload.get("name")
            if payload.get("schema") != 1 or not name:
                skipped.append(
                    f"{path.name}: payload without schema-1 header "
                    f"({payload.get('bench', '?')})"
                )
                continue
            merged[name] = {**payload, "source": path.name}
    return {"schema": 1, "benches": merged, "skipped": skipped}


def _headline(payload: dict) -> str:
    for key in _HEADLINE_KEYS:
        if key in payload:
            return f"{key}={payload[key]}"
    return "-"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None, help="repo root to scan")
    ap.add_argument("--out", default=None, help="write merged JSON here")
    args = ap.parse_args(argv)

    root = pathlib.Path(args.root) if args.root else _REPO_ROOT
    summary = collect(root)

    width = max((len(n) for n in summary["benches"]), default=4)
    for name, payload in sorted(summary["benches"].items()):
        stamp = payload.get("timestamp", "?")
        print(
            f"{name.ljust(width)}  {_headline(payload).ljust(18)}  "
            f"{stamp}  ({payload['source']})"
        )
    for note in summary["skipped"]:
        print(f"skipped: {note}", file=sys.stderr)

    if args.out:
        pathlib.Path(args.out).write_text(
            json.dumps(summary, indent=2) + "\n"
        )
        print(f"\nwrote {args.out}")
    else:
        print(json.dumps(summary, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
