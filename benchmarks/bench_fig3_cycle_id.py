"""FIG3 — the cycle-ID pattern on the 64-PE CCC.

The paper's Fig. 3 prints, for n = 64 (Q = 4, 16 cycles), the bit each
PE holds after cycle-ID(): the digit at cycle ``i``, position ``j`` is
bit ``j`` of ``i``.  We regenerate the grid on the simulator, verify it
bit-for-bit against the closed form, and benchmark the generation.
"""

import pytest

from benchmarks.conftest import print_table
from repro.bvm import ProgramBuilder, render_cycle_grid
from repro.bvm.primitives import cycle_id, cycle_id_input_bits


def generate(r):
    prog = ProgramBuilder(r)
    dst = prog.pool.alloc1()
    cycle_id(prog, dst)
    m = prog.build_machine()
    m.feed_input(cycle_id_input_bits(prog.Q))
    prog.run(m)
    return m, dst, len(prog)


def test_fig3_pattern(benchmark):
    m, dst, n_instr = benchmark(generate, 2)  # n = 64, the figure's size

    topo = m.topology
    got = m.read(dst)
    want = ((topo.cycle_of >> topo.pos_of) & 1).astype(bool)
    assert (got == want).all()

    print("\n=== FIG3: cycle-ID on the 64-PE CCC ===")
    print(render_cycle_grid(m, dst, max_cycles=16))
    print(f"instructions: {n_instr} (O(log n): Q={topo.Q})")


@pytest.mark.parametrize("r", [1, 2, 3])
def test_fig3_instruction_scaling(r):
    """Cycle-ID is O(Q) = O(log n) instructions at every size."""
    _, _, n_instr = generate(r)
    Q = 1 << r
    assert n_instr <= 4 * Q + 4


def test_fig3_scaling_table():
    rows = []
    for r in (1, 2, 3):
        m, _, n_instr = generate(r)
        rows.append([r, m.topology.Q, m.n, n_instr])
    print_table("FIG3 scaling", ["r", "Q", "n PEs", "instructions"], rows)
