"""FIG2 — the BVM bit-array picture: registers as rows, PEs as columns.

Regenerates the paper's Fig. 2 view from a live simulator and measures
raw instruction throughput of the machine core (the number that bounds
every other BVM experiment's wall-clock).
"""

import numpy as np

from repro.bvm import BVM, FN, A, Instruction, Operand, R
from repro.bvm.render import render_machine


def _mk_instr():
    return Instruction(dest=R(0), f=FN.XOR, fsrc=R(1), dsrc=Operand(R(2), "L"), g=FN.MAJ3)


def run_block(machine, instr, count=64):
    for _ in range(count):
        machine.execute(instr)
    return machine.cycles


def test_fig2_layout_and_throughput(benchmark):
    m = BVM(r=2)  # 64 PEs, matching the figure's small machine
    rng = np.random.default_rng(0)
    m.poke(R(1), rng.integers(0, 2, m.n).astype(bool))
    m.poke(R(2), rng.integers(0, 2, m.n).astype(bool))

    cycles = benchmark(run_block, m, _mk_instr())
    assert cycles > 0

    view = render_machine(
        m, [("Reg. A", A), ("Reg. R[0]", R(0)), ("Reg. R[1]", R(1)), ("Reg. R[2]", R(2))],
        max_pes=32,
    )
    print("\n=== FIG2: BVM bit array (registers x PEs) ===")
    print(view)
    assert "Reg. R[0]" in view


def test_fig2_machine_sizes():
    """The register-file geometry the paper quotes: L = 256 rows."""
    m = BVM(r=2)
    assert m.L == 256
    assert m.regs.shape == (256, 64)
    print(f"\nFIG2: machine CCC(2): n={m.n} PEs x L={m.L} registers "
          f"= {m.regs.size} bits of state")
