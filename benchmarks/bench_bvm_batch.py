"""BVM-BATCH — lockstep instance batching vs ``B = 1`` replays.

The paper's §5 sizing claim is that one machine runs many TT candidates
*simultaneously*; :func:`~repro.ttpar.bvm_tt.solve_tt_bvm_batch` makes
that real by replaying one shape-generic compiled program over a
:class:`~repro.bvm.batch.PackedBatchBVM` whose register planes carry a
``(B, n/64)`` instance-batch axis.  This bench measures exactly the win
that axis buys: one ``B``-lane lockstep replay against ``B`` sequential
one-lane replays of the *same* compiled program on the same engine —
both sides pay identical per-instruction interpreter overhead, so the
ratio isolates the batching, not an engine difference.  Host pokes and
table decodes happen outside the timed region on both sides (they are
the paper's zero-cycle host load).

Methodology (cf. ``bench_kernel_fusion``): fresh poked machines per
rep, the two sides timed adjacently, order alternating between reps,
speedup = median of the per-rep ratios.  Before any timing, every lane
of a batched run is checked bit-for-bit against its own ``B = 1`` run —
tables, feasibility and the replay cycle count.

Knobs: ``REPRO_BENCH_BVM_BATCH_K`` (default 4 — with 6 actions the
2048-PE CCC(3) reference shape; CI's quick variant uses 3),
``REPRO_BENCH_BVM_BATCH_B`` (batch width, default 16),
``REPRO_BENCH_BVM_BATCH_REPS`` (default 5),
``REPRO_BENCH_BVM_BATCH_MIN`` (speedup floor; default 4.0 at B >= 16
per the ROADMAP's batching claim, 1.0 at smaller quick widths).

Output: a ``BENCH_JSON`` line, a table, and the ``"batch"`` section of
``BENCH_BVM.json`` at the repo root.
"""

import json
import os
import pathlib
import time

import numpy as np
import pytest

from benchmarks._kernel_timer import alternate, summarize_pairs, timed
from benchmarks.bench_bvm_tt_end2end import integral_instance
from benchmarks.conftest import bench_payload, merge_bench_json, print_table
from repro.bvm.batch import PackedBatchBVM
from repro.ttpar.bvm_tt import (
    _choose_r,
    _encode_instance,
    _poke_lane,
    build_bvm_tt_batch,
    solve_tt_bvm_batch,
)
from repro.ttpar.layout import TTLayout, pad_actions

pytestmark = pytest.mark.slow

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

WIDTH = 16


def _bench_k() -> int:
    return int(os.environ.get("REPRO_BENCH_BVM_BATCH_K", "4"))


def _bench_b() -> int:
    return int(os.environ.get("REPRO_BENCH_BVM_BATCH_B", "16"))


def _reps() -> int:
    return int(os.environ.get("REPRO_BENCH_BVM_BATCH_REPS", "5"))


def _min_speedup(b: int) -> float:
    default = "4.0" if b >= 16 else "1.0"
    return float(os.environ.get("REPRO_BENCH_BVM_BATCH_MIN", default))


def _same_shape_instances(k: int, count: int, n_actions: int = 6) -> list:
    """``count`` instances sharing one ``(r, k, p)`` shape group — a
    lockstep batch only forms among instances of the same machine shape,
    and the action count pins the padded ``p``."""
    out, seed = [], 0
    while len(out) < count:
        problem = integral_instance(k, seed, n_tests=3, n_treats=3)
        if problem.n_actions == n_actions:
            out.append(problem)
        seed += 1
    return out


def test_bvm_batch_replay():
    k, B = _bench_k(), _bench_b()
    problems = _same_shape_instances(k, B)
    layout = TTLayout.for_problem(problems[0])
    rr = _choose_r(layout.dims)
    plan = build_bvm_tt_batch(rr, layout.k, layout.p, WIDTH)

    # Compile before the correctness gate warms the per-shape cache, so
    # the reported once-per-shape cost is the real one.
    t0 = time.perf_counter()
    compiled = plan.prog.compiled()
    compile_s = time.perf_counter() - t0

    # Correctness gate: every lane of the B-wide run must be bit-for-bit
    # its own B = 1 run — tables AND the lockstep cycle count.
    batched = solve_tt_bvm_batch(problems, width=WIDTH)
    singles = [solve_tt_bvm_batch([p], width=WIDTH)[0] for p in problems]
    for lane, (got, want) in enumerate(zip(batched, singles)):
        assert np.array_equal(got.cost, want.cost), f"lane {lane} cost"
        assert np.array_equal(got.best_action, want.best_action), f"lane {lane} arg"
        assert got.cycles == want.cycles, f"lane {lane} cycles"

    lanes = []
    for problem in problems:
        padded = pad_actions(problem)
        scale, enc_costs, enc_weights = _encode_instance(
            problem, padded, layout.k, WIDTH
        )
        lanes.append((padded, scale, enc_costs, enc_weights))

    def _poked_machine(batch: int, members) -> PackedBatchBVM:
        m = PackedBatchBVM(rr, batch=batch, L=plan.prog.L)
        for lane, (padded, scale, enc_costs, enc_weights) in enumerate(members):
            _poke_lane(
                lambda row, bits, lane=lane: m.poke_lane(row, lane, bits),
                plan, padded, scale, enc_costs, enc_weights,
            )
        return m

    def _run_batched() -> float:
        m = _poked_machine(B, lanes)  # built outside the timed region
        return timed(compiled.run, m)

    def _run_singles() -> float:
        machines = [_poked_machine(1, [lane]) for lane in lanes]
        total = 0.0
        for m in machines:
            total += timed(compiled.run, m)
        return total

    sides = {"singles": _run_singles, "batched": _run_batched}
    pairs = []
    for rep in range(_reps()):
        rep_times = {}
        for name in alternate(rep, "singles", "batched"):
            rep_times[name] = sides[name]()
        pairs.append((rep_times["singles"], rep_times["batched"]))

    stats = summarize_pairs(pairs)
    speedup = stats["speedup"]
    singles_s, batched_s = stats["baseline_s"], stats["candidate_s"]

    payload = bench_payload("BVM-BATCH", {
        "r": rr,
        "n_pes": (1 << rr) * (1 << (1 << rr)),
        "k": k,
        "p": layout.p,
        "batch": B,
        "instructions": len(plan.prog.instructions),
        "cycles": batched[0].cycles,
        "singles_s": round(singles_s, 6),
        "batched_s": round(batched_s, 6),
        "compile_s": round(compile_s, 6),
        "per_instance_batched_ms": round(batched_s / B * 1e3, 3),
        "per_instance_single_ms": round(singles_s / B * 1e3, 3),
        "speedup": round(speedup, 3),
        "reps": _reps(),
        "pair_ratios": stats["ratios"],
        "methodology": (
            "B sequential one-lane replays vs one B-lane lockstep replay "
            "of the same compiled program; fresh poked machines per rep, "
            "sides timed adjacently, order alternating; median of "
            "per-rep ratios; per-lane bit-identity vs B=1 verified "
            "before timing"
        ),
        "bit_identical": True,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    })
    print(f"\nBENCH_JSON {json.dumps(payload)}")
    print_table(
        f"BVM batch replay, CCC({rr}) ({payload['n_pes']} PEs), "
        f"B={B}, {payload['instructions']} instructions",
        ["side", "seconds", "per instance", "speedup"],
        [
            [
                f"{B} x B=1",
                f"{singles_s * 1e3:.1f} ms",
                f"{singles_s / B * 1e3:.2f} ms",
                "1.00x",
            ],
            [
                f"B={B} lockstep",
                f"{batched_s * 1e3:.1f} ms",
                f"{batched_s / B * 1e3:.2f} ms",
                f"{speedup:.2f}x",
            ],
            ["(compile)", f"{compile_s * 1e3:.1f} ms", "-", "once per shape"],
        ],
    )
    merge_bench_json(_REPO_ROOT / "BENCH_BVM.json", "batch", payload)

    floor = _min_speedup(B)
    assert speedup >= floor, (
        f"B={B} lockstep replay speedup {speedup:.2f}x below the "
        f"{floor:.2f}x floor"
    )
