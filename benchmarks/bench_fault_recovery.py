"""FAULT-RECOVER — overhead and recovery cost of the supervised engine.

The supervisor turns the bare `pool.map` barrier into monitored
`apply_async` dispatch (per-shard deadlines, PID liveness, retry
bookkeeping).  That vigilance must be close to free on the happy path,
and a recovery drill — a worker killed mid-layer — must cost roughly one
re-executed shard, not a restarted solve.  This bench measures both and
emits one machine-readable `BENCH_JSON` line:

    BENCH_JSON {"bench": "FAULT-RECOVER", "k": ...,
                "clean_s": ..., "baseline_s": ..., "overhead": ...,
                "drills": [{"fault": "kill:...", "seconds": ...,
                            "ratio": ...}, ...]}

Instance size comes from `REPRO_BENCH_K` (default 10 — big enough that a
layer re-execution is visible, small enough to stay in the seconds
range).  Every drill result is checked bit-for-bit against the clean
solve: recovery must never cost correctness.
"""

import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import random_instance
from repro.core.faults import FAULT_SPEC_ENV
from repro.core.parallel import solve_dp_parallel
from repro.core.supervisor import ResiliencePolicy

pytestmark = pytest.mark.slow


def _bench_k() -> int:
    return int(os.environ.get("REPRO_BENCH_K", "10"))


def _timed_solve(problem, policy, fault=None):
    if fault is not None:
        os.environ[FAULT_SPEC_ENV] = fault
    try:
        t0 = time.perf_counter()
        # min_shard=1 keeps every layer on the pool so drills always land.
        result = solve_dp_parallel(problem, workers=2, min_shard=1, policy=policy)
        return result, time.perf_counter() - t0
    finally:
        os.environ.pop(FAULT_SPEC_ENV, None)


def test_supervised_overhead_and_recovery_drills():
    k = _bench_k()
    mid = k // 2
    problem = random_instance(k, n_tests=10, n_treatments=6, seed=k)
    policy = ResiliencePolicy(timeout=60.0, max_retries=2, backoff=0.01)

    # Happy path: supervised dispatch vs the same engine, no supervision
    # events possible (the dispatch machinery itself is the only delta).
    clean, clean_s = _timed_solve(problem, policy)
    base, baseline_s = _timed_solve(problem, None)
    assert np.array_equal(clean.cost, base.cost)
    overhead = clean_s / baseline_s if baseline_s > 0 else float("inf")

    drills = []
    rows = [["(clean)", f"{clean_s * 1e3:.0f}", "1.00x", "-"]]
    for fault, must_fire in (
        (f"kill:layer={mid}:shard=0", True),
        (f"exc:layer={mid}:shard=0", True),
        (f"slow:ms=50:layer={mid}", False),  # slow shards finish, no retry
    ):
        recovered, dt = _timed_solve(problem, policy, fault=fault)
        # Recovery must reproduce the clean tables exactly.
        assert np.array_equal(recovered.cost, clean.cost), fault
        assert np.array_equal(recovered.best_action, clean.best_action), fault
        ratio = dt / clean_s if clean_s > 0 else float("inf")
        events = sum(
            recovered.recovery[key]
            for key in ("retries", "crashes", "timeouts", "fallback_shards")
        )
        # The drill is only a drill if the fault actually fired.
        if must_fire:
            assert events > 0, f"fault {fault!r} never reached a worker"
        drills.append(
            {"fault": fault, "seconds": round(dt, 4), "ratio": round(ratio, 3)}
        )
        rows.append([fault, f"{dt * 1e3:.0f}", f"{ratio:.2f}x", events])

    print_table(
        f"FAULT-RECOVER (k={k}, workers=2)",
        ["fault", "ms", "vs clean", "events"],
        rows,
    )
    print(
        "BENCH_JSON "
        + json.dumps(
            {
                "bench": "FAULT-RECOVER",
                "k": k,
                "clean_s": round(clean_s, 4),
                "baseline_s": round(baseline_s, 4),
                "overhead": round(overhead, 3),
                "drills": drills,
            }
        )
    )

    # Loose shape assertions: drills recover, they do not restart from
    # scratch — a full re-solve would show up as ratio >> layer share.
    for drill in drills:
        assert drill["ratio"] < 25.0, drill
