"""TRACE — telemetry overhead floors on the reference parallel solve.

The observability contract has a price ceiling, not just a determinism
clause: tracing *disabled* must cost ≤2% of solve wall time, tracing
*enabled* ≤10%.  Two measurements enforce it:

* **Disabled** — the instrumented code path differs from an
  uninstrumented build only by per-layer/per-shard no-op work: NULL
  tracer calls, ``collecting`` gate checks, metrics-registry updates and
  a few ``time.monotonic()`` reads.  No uninstrumented build exists in
  the tree to diff against, so the bench prices that bundle directly
  (micro-timing many iterations) and multiplies by a *generous*
  overcount of how often the solve executes it, derived from the solve's
  own metrics (layers, shard dispatches, store commits).  The resulting
  upper bound is asserted ≤2% of measured solve wall time.
* **Enabled** — paired wall-clock: best-of-``R`` traced solve over
  best-of-``R`` untraced solve on the same instance, same workers,
  worker event flush included.  Asserted ≤10%.

Instance size comes from ``REPRO_BENCH_TRACE_K`` (default 18, the
reference solve; CI's bench-smoke runs a smaller k).  Output: a
``BENCH_JSON`` line, a table, and ``BENCH_TRACE.json``.
"""

import json
import os
import pathlib
import time

import pytest

from benchmarks.conftest import bench_payload, print_table
from repro.core import random_instance
from repro.core.parallel import solve_dp_parallel
from repro.obs import NULL, MetricsRegistry, Tracer

pytestmark = pytest.mark.slow

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_REPEATS = int(os.environ.get("REPRO_BENCH_TRACE_REPEATS", "3"))


def _disabled_bundle_cost_s(iters: int = 200_000) -> float:
    """Seconds per one disabled-path instrumentation bundle.

    One bundle deliberately over-represents a single instrumentation
    site: a counter inc, a histogram observe, a NULL-tracer complete,
    two ``collecting`` gate reads and two monotonic clock reads.
    """
    reg = MetricsRegistry()
    t0 = time.perf_counter()
    for _ in range(iters):
        if NULL.collecting:
            pass
        reg.inc("layers.computed")
        reg.observe("layer.seconds", 0.001)
        NULL.complete("layer", "layer", 0.0, 1.0, layer=0)
        if NULL.collecting:
            pass
        time.monotonic()
        time.monotonic()
    return (time.perf_counter() - t0) / iters


def _best_wall(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_trace_overhead_floors():
    k = int(os.environ.get("REPRO_BENCH_TRACE_K", "18"))
    workers = int(os.environ.get("REPRO_BENCH_TRACE_WORKERS", "2"))
    problem = random_instance(k, n_tests=10, n_treatments=6, seed=k)

    # Warm the per-k plan cache and the fork machinery out of the timing.
    result = solve_dp_parallel(problem, workers=workers)

    plain_s = _best_wall(
        lambda: solve_dp_parallel(problem, workers=workers), _REPEATS
    )
    traced_s = _best_wall(
        lambda: solve_dp_parallel(problem, workers=workers, tracer=Tracer()),
        _REPEATS,
    )

    # Disabled floor: generous overcount of bundle executions per solve.
    m = result.metrics
    bundles = (
        int(m["layers.computed"]) * 8
        + int(m["shard.dispatched"]) * 6
        + int(m["store.commits"]) * 6
        + 100
    )
    bundle_s = _disabled_bundle_cost_s()
    disabled_pct = 100.0 * (bundles * bundle_s) / plain_s
    enabled_pct = max(0.0, 100.0 * (traced_s / plain_s - 1.0))

    payload = bench_payload("TRACE", {
        "k": k,
        "workers": workers,
        "repeats": _REPEATS,
        "plain_s": round(plain_s, 4),
        "traced_s": round(traced_s, 4),
        "bundle_us": round(bundle_s * 1e6, 4),
        "bundles": bundles,
        "disabled_overhead_pct": round(disabled_pct, 4),
        "enabled_overhead_pct": round(enabled_pct, 3),
        "floor_disabled_pct": 2.0,
        "floor_enabled_pct": 10.0,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    })
    print(f"\nBENCH_JSON {json.dumps(payload)}")
    print_table(
        f"telemetry overhead, k={k}, workers={workers} (best of {_REPEATS})",
        ["mode", "wall", "overhead", "floor"],
        [
            ["tracing off", f"{plain_s:.3f} s", f"{disabled_pct:.3f}%", "2%"],
            ["tracing on", f"{traced_s:.3f} s", f"{enabled_pct:.2f}%", "10%"],
        ],
    )
    (_REPO_ROOT / "BENCH_TRACE.json").write_text(json.dumps(payload, indent=2) + "\n")

    assert disabled_pct <= 2.0, (
        f"disabled-path telemetry bound {disabled_pct:.3f}% exceeds the 2% floor"
    )
    assert enabled_pct <= 10.0, (
        f"enabled tracing overhead {enabled_pct:.2f}% exceeds the 10% floor"
    )
