"""CLM-SIZING — how many candidates a given machine handles.

§1: "For 2^30 PEs, approximately 15 elements (say, disease candidates)
could be processed in parallel ... even if all possible tests and
treatments were available (i.e. N = O(2^k)) ... a few more elements,
e.g. 20, can be processed in parallel if N = O(k^2)".  The PE demand is
``N' * 2^k``; we tabulate the maximum ``k`` per machine size and regime
and assert the paper's two quoted figures.
"""

from benchmarks.conftest import print_table
from repro.ttpar import machine_sizing_table, max_k_for_budget


def test_paper_sizing_figures():
    rows = []
    for row in machine_sizing_table(budgets=(2**10, 2**20, 2**30, 2**40)):
        rows.append(
            [
                f"2^{row['pe_budget'].bit_length() - 1}",
                row["max_k_exponential_actions"],
                row["max_k_quadratic_actions"],
            ]
        )
    print_table(
        "CLM-SIZING: max candidates k per machine",
        ["PE budget", "k (N=2^k)", "k (N=k^2)"],
        rows,
    )
    table = {r["pe_budget"]: r for r in machine_sizing_table()}
    # The paper's figures: ~15 candidates at 2^30 with exponential actions,
    # ~20 with quadratic actions.
    assert table[2**30]["max_k_exponential_actions"] == 15
    assert 19 <= table[2**30]["max_k_quadratic_actions"] <= 22
    # And the "currently implementable" 2^20 machine.
    assert table[2**20]["max_k_exponential_actions"] == 10


def test_pe_demand_monotone():
    ks = [max_k_for_budget(1 << b, lambda k: 2**k) for b in range(12, 42, 2)]
    assert ks == sorted(ks)


def test_linear_action_regime():
    """N = O(k): nearly all budget goes to the subset dimension."""
    k40 = max_k_for_budget(2**40, lambda k: 2 * k)
    k20 = max_k_for_budget(2**20, lambda k: 2 * k)
    print(f"\nCLM-SIZING, N=2k regime: k={k20} at 2^20 PEs, k={k40} at 2^40 PEs")
    assert k40 > k20 >= 13


def test_paper_scale_wall_time_estimate():
    """What the sizing buys: estimated solve time on the 2^20-PE machine
    (exact loop-cycle model x a mid-80s 10 MHz bit-serial clock)."""
    from repro.ttpar import paper_scale_estimate

    rows = []
    for k, n in ((8, 256), (10, 1024), (10, 64), (16, 16)):
        est = paper_scale_estimate(k, n, width=64, r=4)
        rows.append(
            [k, n, f"{est['loop_cycles']:,}", f"{est['seconds_at_clock'] * 1e3:.1f}"]
        )
    print_table(
        "CLM-SIZING: estimated §6-loop time on the 2^20-PE BVM (W=64, 10 MHz)",
        ["k", "N", "machine cycles", "ms"],
        rows,
    )
    # The flagship configuration solves in well under a second.
    assert paper_scale_estimate(10, 1024, r=4)["seconds_at_clock"] < 1.0


def test_sizing_benchmark(benchmark):
    rows = benchmark(machine_sizing_table)
    assert len(rows) == 2
