"""CLM-LINKS — CCC wiring is 3n/2 links vs n*log(n)/2 for the hypercube.

§1/§3's hardware argument: "with n PEs a hypercube network requires
about n*log2(n)/2 links.  With a CCC connection only about 3n/2 links
are needed" — which is why 2^20 PEs are implementable and 2^30 feasible.
We census both topologies over the constructible sizes and check the
exact formulas against the neighbor maps.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.bvm.topology import CCCTopology
from repro.hypercube import ccc_links, hypercube_links


def census_ccc_links(r):
    """Count distinct undirected links straight from the neighbor maps."""
    topo = CCCTopology(r)
    edges = set()
    for name in ("S", "P", "L"):
        idx = topo.neighbor_index(name)
        for a, b in enumerate(idx):
            edges.add((min(a, int(b)), max(a, int(b))))
    return len(edges)


def test_link_formulas_match_census():
    rows = []
    for r in (1, 2, 3):
        topo = CCCTopology(r)
        counted = census_ccc_links(r)
        formula = topo.link_count()
        dims = topo.hypercube_dims()
        hc = hypercube_links(dims)
        rows.append(
            [r, topo.n, counted, formula, hc, f"{hc / counted:.1f}x"]
        )
        assert counted == formula == ccc_links(r)
    print_table(
        "CLM-LINKS: CCC vs hypercube wiring (equal PE counts)",
        ["r", "n PEs", "CCC links (census)", "3n/2 formula", "hypercube links", "saving"],
        rows,
    )


def test_asymptotic_table():
    """The machine sizes the paper talks about: 2^20 and 2^30 PEs."""
    rows = []
    for dims in (20, 30):
        n = 1 << dims
        ccc = 3 * n // 2
        hc = hypercube_links(dims)
        rows.append([f"2^{dims}", f"{ccc:,}", f"{hc:,}", f"{hc / ccc:.1f}x"])
    print_table(
        "CLM-LINKS at paper scale",
        ["PEs", "CCC links", "hypercube links", "ratio"],
        rows,
    )
    assert hypercube_links(30) / (3 * (1 << 30) // 2) == 10.0


def test_degree_is_three():
    """'each processing element is connected to three other PEs by a
    one-bit wide connection path'."""
    for r in (2, 3):
        topo = CCCTopology(r)
        neigh = np.stack(
            [topo.neighbor_index(nm) for nm in ("S", "P", "L")]
        )
        # every PE has exactly 3 distinct neighbors (Q > 2)
        distinct = [len({int(neigh[i, q]) for i in range(3)}) for q in range(topo.n)]
        assert all(d == 3 for d in distinct)


def test_census_benchmark(benchmark):
    n_edges = benchmark(census_ccc_links, 3)
    assert n_edges == 3 * CCCTopology(3).n // 2
