"""E2E-BVM — the bit-level TT program end to end.

Runs the full §7 realization — processor-ID, control-bit generation,
in-machine p(S)/TP arithmetic, e-loop lateral sweeps, bit-serial tagged
minimization — on the cycle-accurate simulator, verifies exact agreement
with the sequential DP, and reports the machine-cycle budget per phase
of the machine-size table.

``test_e2e_backend_speedup`` additionally races the two BVM backends on
the same instance — full ``solve_tt_bvm`` including program build,
compile and table decode, not just replay — asserts their tables and
cycle counts bit-identical, and records the measured ratio in the
``"end2end"`` section of ``BENCH_BVM.json``.  Knobs:
``REPRO_BENCH_E2E_K`` (default 4, the 2048-PE CCC(3) reference size),
``REPRO_BENCH_E2E_REPS`` (default 5), ``REPRO_BENCH_E2E_MIN`` (speedup
floor; default 5.0 at the reference size, 1.0 at quick sizes).
"""

import json
import os
import pathlib
import time

import numpy as np
import pytest

from benchmarks._kernel_timer import alternate, summarize_pairs, timed
from benchmarks.conftest import bench_payload, merge_bench_json, print_table
from repro.core import Action, TTProblem, solve_dp
from repro.ttpar.bvm_tt import solve_tt_bvm

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def integral_instance(k, seed, n_tests=2, n_treats=2):
    rng = np.random.default_rng(seed)
    full = (1 << k) - 1
    weights = rng.integers(1, 6, k).astype(float)
    acts = []
    for _ in range(n_tests):
        acts.append(Action.test(int(rng.integers(1, full)), float(rng.integers(0, 6))))
    cov = 0
    for _ in range(n_treats):
        s = int(rng.integers(1, full + 1))
        acts.append(Action.treatment(s, float(rng.integers(1, 6))))
        cov |= s
    if cov != full:
        acts.append(Action.treatment(full & ~cov, 3.0))
    return TTProblem.build(weights, acts)


def test_e2e_table():
    rows = []
    for k, seed in ((2, 3), (3, 1), (4, 7)):
        problem = integral_instance(k, seed)
        res = solve_tt_bvm(problem, width=16)
        dp = solve_dp(problem)
        exact = np.allclose(res.cost, dp.cost) and (
            res.best_action == dp.best_action
        ).all()
        assert exact
        rows.append(
            [
                k,
                problem.n_actions,
                res.r,
                (1 << res.r) * (1 << (1 << res.r)),
                res.cycles,
                "exact",
            ]
        )
    print_table(
        "E2E-BVM: bit-level TT vs sequential DP",
        ["k", "N", "CCC r", "n PEs", "machine cycles", "agreement"],
        rows,
    )


def test_tree_roundtrip():
    problem = integral_instance(3, 5)
    res = solve_tt_bvm(problem, width=16)
    tree = res.tree()
    tree.validate()
    assert tree.expected_cost() == pytest.approx(res.optimal_cost)


def test_e2e_benchmark_k3(benchmark):
    problem = integral_instance(3, 2)
    res = benchmark(solve_tt_bvm, problem, 16)
    assert res.feasible


@pytest.mark.slow
def test_e2e_benchmark_k4_2048pes(benchmark):
    problem = integral_instance(4, 11, n_tests=3, n_treats=3)
    res = benchmark(solve_tt_bvm, problem, 16)
    assert res.feasible
    print(f"\nE2E-BVM: k=4 on CCC(3) (2048 PEs): {res.cycles} machine cycles")


def _e2e_k() -> int:
    return int(os.environ.get("REPRO_BENCH_E2E_K", "4"))


def _e2e_reps() -> int:
    return int(os.environ.get("REPRO_BENCH_E2E_REPS", "5"))


def _e2e_min(k: int) -> float:
    default = "5.0" if k >= 4 else "1.0"
    return float(os.environ.get("REPRO_BENCH_E2E_MIN", default))


@pytest.mark.slow
def test_e2e_backend_speedup():
    """Boolean vs word-packed backend on the same instance, end to end."""
    k = _e2e_k()
    problem = integral_instance(k, seed=7)

    # Correctness gate: the packed run must be indistinguishable.
    ref = solve_tt_bvm(problem, width=16, backend="bool")
    fast = solve_tt_bvm(problem, width=16, backend="packed")
    assert (ref.cost == fast.cost).all()
    assert (ref.best_action == fast.best_action).all()
    assert ref.cycles == fast.cycles

    # Adjacent full-solve timings, order alternating between reps;
    # speedup = median of the per-rep ratios (cf. bench_kernel_fusion).
    pairs = []
    for rep in range(_e2e_reps()):
        sides = {}
        for backend in alternate(rep, "bool", "packed"):
            sides[backend] = timed(
                solve_tt_bvm, problem, width=16, backend=backend
            )
        pairs.append((sides["bool"], sides["packed"]))
    stats = summarize_pairs(pairs)
    speedup = stats["speedup"]
    bool_s, packed_s = stats["baseline_s"], stats["candidate_s"]

    payload = bench_payload("E2E-BVM", {
        "k": k,
        "r": ref.r,
        "n_pes": (1 << ref.r) * (1 << (1 << ref.r)),
        "cycles": ref.cycles,
        "bool_s": round(bool_s, 6),
        "packed_s": round(packed_s, 6),
        "speedup": round(speedup, 3),
        "reps": _e2e_reps(),
        "pair_ratios": stats["ratios"],
        "methodology": (
            "full solve_tt_bvm per side (build + compile + run + decode), "
            "timed adjacently, order alternating; median of per-rep ratios"
        ),
        "bit_identical": True,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    })
    print(f"\nBENCH_JSON {json.dumps(payload)}")
    print_table(
        f"E2E-BVM backends, k={k} on CCC({ref.r}) ({payload['n_pes']} PEs)",
        ["backend", "seconds", "speedup"],
        [
            ["bool", f"{bool_s * 1e3:.1f} ms", "1.00x"],
            ["packed", f"{packed_s * 1e3:.1f} ms", f"{speedup:.2f}x"],
        ],
    )
    merge_bench_json(_REPO_ROOT / "BENCH_BVM.json", "end2end", payload)

    floor = _e2e_min(k)
    assert speedup >= floor, (
        f"end-to-end packed speedup {speedup:.2f}x below the {floor:.2f}x floor"
    )
