"""E2E-BVM — the bit-level TT program end to end.

Runs the full §7 realization — processor-ID, control-bit generation,
in-machine p(S)/TP arithmetic, e-loop lateral sweeps, bit-serial tagged
minimization — on the cycle-accurate simulator, verifies exact agreement
with the sequential DP, and reports the machine-cycle budget per phase
of the machine-size table.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import Action, TTProblem, solve_dp
from repro.ttpar.bvm_tt import solve_tt_bvm


def integral_instance(k, seed, n_tests=2, n_treats=2):
    rng = np.random.default_rng(seed)
    full = (1 << k) - 1
    weights = rng.integers(1, 6, k).astype(float)
    acts = []
    for _ in range(n_tests):
        acts.append(Action.test(int(rng.integers(1, full)), float(rng.integers(0, 6))))
    cov = 0
    for _ in range(n_treats):
        s = int(rng.integers(1, full + 1))
        acts.append(Action.treatment(s, float(rng.integers(1, 6))))
        cov |= s
    if cov != full:
        acts.append(Action.treatment(full & ~cov, 3.0))
    return TTProblem.build(weights, acts)


def test_e2e_table():
    rows = []
    for k, seed in ((2, 3), (3, 1), (4, 7)):
        problem = integral_instance(k, seed)
        res = solve_tt_bvm(problem, width=16)
        dp = solve_dp(problem)
        exact = np.allclose(res.cost, dp.cost) and (
            res.best_action == dp.best_action
        ).all()
        assert exact
        rows.append(
            [
                k,
                problem.n_actions,
                res.r,
                (1 << res.r) * (1 << (1 << res.r)),
                res.cycles,
                "exact",
            ]
        )
    print_table(
        "E2E-BVM: bit-level TT vs sequential DP",
        ["k", "N", "CCC r", "n PEs", "machine cycles", "agreement"],
        rows,
    )


def test_tree_roundtrip():
    problem = integral_instance(3, 5)
    res = solve_tt_bvm(problem, width=16)
    tree = res.tree()
    tree.validate()
    assert tree.expected_cost() == pytest.approx(res.optimal_cost)


def test_e2e_benchmark_k3(benchmark):
    problem = integral_instance(3, 2)
    res = benchmark(solve_tt_bvm, problem, 16)
    assert res.feasible


@pytest.mark.slow
def test_e2e_benchmark_k4_2048pes(benchmark):
    problem = integral_instance(4, 11, n_tests=3, n_treats=3)
    res = benchmark(solve_tt_bvm, problem, 16)
    assert res.feasible
    print(f"\nE2E-BVM: k=4 on CCC(3) (2048 PEs): {res.cycles} machine cycles")
