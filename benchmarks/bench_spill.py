"""SPILL — out-of-core solve under a RAM budget the tables cannot fit.

The mmap layer store exists so the ``k`` ceiling is set by disk, not by
RAM: the four ``2^k`` tables become ``MAP_SHARED`` file mappings whose
pages are reclaimable page cache, and every table-sized pass (order
generation, slab commit, the in-parent kernel) streams through fixed
chunks.  This bench proves the budget story end to end and prices the
durability tax:

* under ``REPRO_RAM_BUDGET_BYTES`` set *below the cost table alone*,
  the in-RAM store must refuse the solve (loudly, pointing at the spill
  store) — and the spill store must complete it;
* the spilled tables must be bit-for-bit the unbudgeted in-RAM tables;
* the slowdown vs the in-RAM solve is recorded, not asserted tightly —
  it is dominated by slab checksumming and fsync, both of which scale
  with table bytes, not with ``k``'s combinatorics.

Instance size comes from ``REPRO_BENCH_SPILL_K`` (default 16; the
committed ``BENCH_SPILL.json`` was produced at ``k=24``, where the cost
table alone is 128 MiB and the budget was 64 MiB).  Output: a
``BENCH_JSON`` line, a table, and ``BENCH_SPILL.json``.
"""

import json
import os
import pathlib
import shutil
import tempfile
import time

import pytest

from benchmarks.conftest import bench_payload, print_table
from repro.core import random_instance
from repro.core.errors import SolverError
from repro.core.parallel import solve_dp_parallel
from repro.store import RAM_BUDGET_ENV, StoreSpec, tables_nbytes

pytestmark = pytest.mark.slow

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_spill_solve_under_ram_budget():
    k = int(os.environ.get("REPRO_BENCH_SPILL_K", "16"))
    problem = random_instance(k, n_tests=10, n_treatments=6, seed=k)
    tables = tables_nbytes(k)
    # An eighth of the table footprint: strictly below even the cost
    # table alone (8 * 2^k of the 32 * 2^k total).
    budget = tables // 8

    # Truth: the unbudgeted in-RAM solve.
    t0 = time.perf_counter()
    base = solve_dp_parallel(problem, workers=1)
    ram_s = time.perf_counter() - t0

    tmp = tempfile.mkdtemp(prefix="repro-bench-spill-")
    old = os.environ.get(RAM_BUDGET_ENV)
    os.environ[RAM_BUDGET_ENV] = str(budget)
    try:
        # Under the budget the RAM store must refuse, not thrash.
        with pytest.raises(SolverError) as excinfo:
            solve_dp_parallel(problem, workers=1)
        assert "mmap" in str(excinfo.value)

        # The spill store must complete the same solve under the budget.
        spec = StoreSpec(kind="mmap", spill_dir=os.path.join(tmp, "spill"))
        t0 = time.perf_counter()
        spilled = solve_dp_parallel(problem, workers=1, store=spec)
        spill_s = time.perf_counter() - t0

        identical = (
            base.cost.tobytes() == spilled.cost.tobytes()
            and base.best_action.tobytes() == spilled.best_action.tobytes()
        )
        spill_bytes = sum(
            os.path.getsize(os.path.join(root, name))
            for root, _, names in os.walk(tmp)
            for name in names
        )
    finally:
        if old is None:
            os.environ.pop(RAM_BUDGET_ENV, None)
        else:
            os.environ[RAM_BUDGET_ENV] = old
        shutil.rmtree(tmp, ignore_errors=True)

    assert identical, "spilled tables diverged from the in-RAM tables"
    slowdown = spill_s / ram_s if ram_s > 0 else float("inf")

    payload = bench_payload("SPILL", {
        "k": k,
        "tables_bytes": tables,
        "budget_bytes": budget,
        "spill_dir_bytes": spill_bytes,
        "ram_s": round(ram_s, 4),
        "spill_s": round(spill_s, 4),
        "slowdown": round(slowdown, 3),
        "bit_identical": True,
        "store": str(spilled.recovery.get("store")),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    })
    print(f"\nBENCH_JSON {json.dumps(payload)}")
    print_table(
        f"out-of-core solve, k={k}, budget {budget >> 20} MiB "
        f"(tables {tables >> 20} MiB)",
        ["store", "total", "vs ram", "on disk"],
        [
            ["ram (no budget)", f"{ram_s:.2f} s", "1.00x", "-"],
            [
                "mmap (budgeted)",
                f"{spill_s:.2f} s",
                f"{slowdown:.2f}x",
                f"{spill_bytes >> 20} MiB",
            ],
        ],
    )
    (_REPO_ROOT / "BENCH_SPILL.json").write_text(json.dumps(payload, indent=2) + "\n")

    # Durability tax, not a different algorithm: the spilled solve does
    # the same kernel work plus one hash+write pass per layer.
    assert slowdown < 30.0, f"spill slowdown {slowdown:.1f}x is pathological"
