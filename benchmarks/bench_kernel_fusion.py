"""KERNEL-FUSION — fused zero-allocation layer kernel vs the legacy kernel.

The inner loop of every host backend evaluates one popcount layer per
action scan; the legacy ``solve_layer_kernel`` materializes ~8 full-layer
temporaries per action while ``solve_layer_kernel_fused`` runs entirely
in a preallocated :class:`~repro.core.kernels.LayerArena` (see the
memory-traffic model in DESIGN.md).  This bench measures both on the
*middle layers* of a ``k = 18, N = 32`` reference instance — the layers
that dominate a real solve — and proves the outputs bit-for-bit
identical first.

Methodology: each rep is **one fresh subprocess** that times both
variants *adjacently per layer*, single-shot, alternating which
variant goes first between reps; the reported speedup is the **median
of the per-rep ratios** over ``REPRO_BENCH_KERNEL_REPS`` (default 5)
reps.  Fresh processes keep the comparison honest (in-process repeat
timing would understate the legacy kernel's dominant cost — glibc
adapts its mmap threshold to the allocation churn — and single-shot
is the production profile: one kernel call per layer per solve);
per-layer adjacency means a host-wide slow burst lands on both sides
of a ratio instead of one; and the alternating order cancels the
residual warm-cache advantage of going second.

Knobs: ``REPRO_BENCH_KERNEL_K`` (default 18; CI's quick variant uses a
smaller k), ``REPRO_BENCH_KERNEL_MIN`` (minimum acceptable speedup,
default 1.0 — the regression guard CI enforces; the committed
``BENCH_KERNEL.json`` from the full k=18 run shows the >= 2x result).

Output: a ``BENCH_JSON`` line, a table, and ``BENCH_KERNEL.json``
written next to the repo root to seed the performance trajectory:

    BENCH_JSON {"bench": "KERNEL-FUSION", "k": ..., "legacy_s": ...,
                "fused_s": ..., "speedup": ...}
"""

import json
import os
import pathlib
import subprocess
import sys
import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.generators import random_instance
from repro.core.kernels import LayerArena, layer_plan, solve_layer_kernel_fused
from repro.core.sequential import solve_layer_kernel, subset_weights

pytestmark = pytest.mark.slow

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

N_TESTS = 20
N_TREATMENTS = 12


def _bench_k() -> int:
    return int(os.environ.get("REPRO_BENCH_KERNEL_K", "18"))


def _reps() -> int:
    return int(os.environ.get("REPRO_BENCH_KERNEL_REPS", "5"))


def _min_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_KERNEL_MIN", "1.0"))


def _time_rep(order: str, k: int) -> dict:
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "benchmarks._kernel_timer",
            "--order",
            order,
            "--k",
            str(k),
            "--n-tests",
            str(N_TESTS),
            "--n-treatments",
            str(N_TREATMENTS),
        ],
        capture_output=True,
        text=True,
        cwd=_REPO_ROOT,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_kernel_fusion():
    k = _bench_k()
    problem = random_instance(k, N_TESTS, N_TREATMENTS, seed=k)
    p = subset_weights(problem)
    plan = layer_plan(k)
    subsets, costs, is_test = (
        problem.subset_array,
        problem.cost_array,
        problem.test_mask_array,
    )

    # Correctness first: bit-for-bit over EVERY layer, tiled and untiled.
    cost = np.full(1 << k, np.inf)
    cost[0] = 0.0
    arena = LayerArena()
    for j in range(1, k + 1):
        layer = plan.layer(j)
        legacy_best, legacy_arg = solve_layer_kernel(
            layer, p[layer], cost, subsets, costs, is_test
        )
        for tile in (None, 0):
            fused_best, fused_arg = solve_layer_kernel_fused(
                layer, p[layer], cost, subsets, costs, is_test, arena=arena, tile=tile
            )
            assert np.array_equal(legacy_best, fused_best), f"layer {j} cost"
            assert np.array_equal(legacy_arg, fused_arg), f"layer {j} arg"
        cost[layer] = legacy_best

    # Timing: one fresh subprocess per rep, both variants timed
    # adjacently per layer inside it, order alternating between reps.
    # The speedup is the median of the per-rep ratios, so host-wide
    # drift (which lands on both sides of a ratio) cancels instead of
    # skewing the comparison.
    pairs = []
    for rep in range(_reps()):
        order = "legacy-first" if rep % 2 == 0 else "fused-first"
        res = _time_rep(order, k)
        pairs.append((res["legacy_s"], res["fused_s"]))
    ratios = sorted(leg / fus for leg, fus in pairs)
    speedup = float(np.median(ratios))
    legacy_s = float(np.median(sorted(leg for leg, _ in pairs)))
    fused_s = float(np.median(sorted(fus for _, fus in pairs)))

    middle = [
        j for j in range(1, k + 1) if plan.layer(j).size >= plan.max_layer_size // 2
    ]
    payload = {
        "bench": "KERNEL-FUSION",
        "k": k,
        "n_actions": problem.n_actions,
        "middle_layers": middle,
        "legacy_s": round(legacy_s, 6),
        "fused_s": round(fused_s, 6),
        "speedup": round(speedup, 3),
        "reps": _reps(),
        "pair_ratios": [round(r, 3) for r in ratios],
        "methodology": (
            "fresh process per rep, variants timed adjacently per layer "
            "single-shot, order alternating; median of per-rep ratios"
        ),
        "bit_identical": True,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    print(f"\nBENCH_JSON {json.dumps(payload)}")
    print_table(
        f"kernel fusion, k={k}, N={problem.n_actions} (middle layers)",
        ["kernel", "seconds", "speedup"],
        [
            ["legacy", f"{legacy_s * 1e3:.1f} ms", "1.00x"],
            ["fused", f"{fused_s * 1e3:.1f} ms", f"{speedup:.2f}x"],
        ],
    )
    (_REPO_ROOT / "BENCH_KERNEL.json").write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup >= _min_speedup(), (
        f"fused kernel speedup {speedup:.2f}x below the "
        f"{_min_speedup():.2f}x floor"
    )
