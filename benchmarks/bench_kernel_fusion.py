"""KERNEL-FUSION — fused zero-allocation layer kernel vs the legacy kernel.

The inner loop of every host backend evaluates one popcount layer per
action scan; the legacy ``solve_layer_kernel`` materializes ~8 full-layer
temporaries per action while ``solve_layer_kernel_fused`` runs entirely
in a preallocated :class:`~repro.core.kernels.LayerArena` (see the
memory-traffic model in DESIGN.md).  This bench measures both on the
*middle layers* of a ``k = 18, N = 32`` reference instance — the layers
that dominate a real solve — and proves the outputs bit-for-bit
identical first.

Methodology: each rep is **one fresh subprocess** that times both
variants *adjacently per layer*, single-shot, alternating which
variant goes first between reps; the reported speedup is the **median
of the per-rep ratios** over ``REPRO_BENCH_KERNEL_REPS`` (default 5)
reps.  Fresh processes keep the comparison honest (in-process repeat
timing would understate the legacy kernel's dominant cost — glibc
adapts its mmap threshold to the allocation churn — and single-shot
is the production profile: one kernel call per layer per solve);
per-layer adjacency means a host-wide slow burst lands on both sides
of a ratio instead of one; and the alternating order cancels the
residual warm-cache advantage of going second.

Knobs: ``REPRO_BENCH_KERNEL_K`` (default 18; CI's quick variant uses a
smaller k), ``REPRO_BENCH_KERNEL_MIN`` (minimum acceptable speedup,
default 1.0 — the regression guard CI enforces; the committed
``BENCH_KERNEL.json`` from the full k=18 run shows the >= 2x result).

``test_kernel_native`` races the numba-jitted native tier against the
fused kernel on the same layers (skipped loudly when numba is absent —
this is the only bench that needs the optional ``native`` extra).  Its
floor ``REPRO_BENCH_KERNEL_NATIVE_MIN`` defaults to 0.0 (informational):
the native tier's contract is bit-identity plus whatever a given host's
jit delivers, and no committed full-run artifact can back a floor from
an environment without numba.

Output: ``BENCH_JSON`` lines, tables, and the ``"fusion"`` /
``"native"`` sections of ``BENCH_KERNEL.json`` at the repo root:

    BENCH_JSON {"bench": "KERNEL-FUSION", "k": ..., "legacy_s": ...,
                "fused_s": ..., "speedup": ...}
"""

import json
import os
import pathlib
import subprocess
import sys
import time

import numpy as np
import pytest

from benchmarks._kernel_timer import alternate, summarize_pairs, timed
from benchmarks.conftest import bench_payload, merge_bench_json, print_table
from repro.core.generators import random_instance
from repro.core.kernels import LayerArena, layer_plan, solve_layer_kernel_fused
from repro.core.native import native_available, solve_layer_kernel_native
from repro.core.sequential import solve_layer_kernel, subset_weights

pytestmark = pytest.mark.slow

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

N_TESTS = 20
N_TREATMENTS = 12


def _bench_k() -> int:
    return int(os.environ.get("REPRO_BENCH_KERNEL_K", "18"))


def _reps() -> int:
    return int(os.environ.get("REPRO_BENCH_KERNEL_REPS", "5"))


def _min_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_KERNEL_MIN", "1.0"))


def _time_rep(order: str, k: int) -> dict:
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "benchmarks._kernel_timer",
            "--order",
            order,
            "--k",
            str(k),
            "--n-tests",
            str(N_TESTS),
            "--n-treatments",
            str(N_TREATMENTS),
        ],
        capture_output=True,
        text=True,
        cwd=_REPO_ROOT,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_kernel_fusion():
    k = _bench_k()
    problem = random_instance(k, N_TESTS, N_TREATMENTS, seed=k)
    p = subset_weights(problem)
    plan = layer_plan(k)
    subsets, costs, is_test = (
        problem.subset_array,
        problem.cost_array,
        problem.test_mask_array,
    )

    # Correctness first: bit-for-bit over EVERY layer, tiled and untiled.
    cost = np.full(1 << k, np.inf)
    cost[0] = 0.0
    arena = LayerArena()
    for j in range(1, k + 1):
        layer = plan.layer(j)
        legacy_best, legacy_arg = solve_layer_kernel(
            layer, p[layer], cost, subsets, costs, is_test
        )
        for tile in (None, 0):
            fused_best, fused_arg = solve_layer_kernel_fused(
                layer, p[layer], cost, subsets, costs, is_test, arena=arena, tile=tile
            )
            assert np.array_equal(legacy_best, fused_best), f"layer {j} cost"
            assert np.array_equal(legacy_arg, fused_arg), f"layer {j} arg"
        cost[layer] = legacy_best

    # Timing: one fresh subprocess per rep, both variants timed
    # adjacently per layer inside it, order alternating between reps.
    # The speedup is the median of the per-rep ratios, so host-wide
    # drift (which lands on both sides of a ratio) cancels instead of
    # skewing the comparison.
    pairs = []
    for rep in range(_reps()):
        order, _ = alternate(rep, "legacy-first", "fused-first")
        res = _time_rep(order, k)
        pairs.append((res["legacy_s"], res["fused_s"]))
    stats = summarize_pairs(pairs)
    speedup = stats["speedup"]
    legacy_s, fused_s = stats["baseline_s"], stats["candidate_s"]

    middle = [
        j for j in range(1, k + 1) if plan.layer(j).size >= plan.max_layer_size // 2
    ]
    payload = bench_payload("KERNEL-FUSION", {
        "k": k,
        "n_actions": problem.n_actions,
        "middle_layers": middle,
        "legacy_s": round(legacy_s, 6),
        "fused_s": round(fused_s, 6),
        "speedup": round(speedup, 3),
        "reps": _reps(),
        "pair_ratios": stats["ratios"],
        "methodology": (
            "fresh process per rep, variants timed adjacently per layer "
            "single-shot, order alternating; median of per-rep ratios"
        ),
        "bit_identical": True,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    })
    print(f"\nBENCH_JSON {json.dumps(payload)}")
    print_table(
        f"kernel fusion, k={k}, N={problem.n_actions} (middle layers)",
        ["kernel", "seconds", "speedup"],
        [
            ["legacy", f"{legacy_s * 1e3:.1f} ms", "1.00x"],
            ["fused", f"{fused_s * 1e3:.1f} ms", f"{speedup:.2f}x"],
        ],
    )
    merge_bench_json(_REPO_ROOT / "BENCH_KERNEL.json", "fusion", payload)

    assert speedup >= _min_speedup(), (
        f"fused kernel speedup {speedup:.2f}x below the "
        f"{_min_speedup():.2f}x floor"
    )


def test_kernel_native():
    """Native (numba-jitted) tier vs the fused kernel, same layers."""
    if not native_available():
        pytest.skip(
            "native kernel bench skipped: numba is not installed "
            "(pip install 'repro[native]')"
        )
    k = _bench_k()
    min_speedup = float(os.environ.get("REPRO_BENCH_KERNEL_NATIVE_MIN", "0.0"))
    problem = random_instance(k, N_TESTS, N_TREATMENTS, seed=k)
    p = subset_weights(problem)
    plan = layer_plan(k)
    subsets, costs, is_test = (
        problem.subset_array,
        problem.cost_array,
        problem.test_mask_array,
    )

    # Correctness first (bit-for-bit over EVERY layer), snapshotting the
    # cost table before each layer so both variants later time against
    # byte-identical inputs.  One arena per variant — arena output
    # buffers are reused across calls, so sharing one would alias the
    # two results being compared.  The first native call also pays the
    # jit compile here, outside the timed region.
    cost = np.full(1 << k, np.inf)
    cost[0] = 0.0
    fused_arena, native_arena = LayerArena(), LayerArena()
    tables = {}
    for j in range(1, k + 1):
        layer = plan.layer(j)
        fused_best, fused_arg = solve_layer_kernel_fused(
            layer, p[layer], cost, subsets, costs, is_test, arena=fused_arena
        )
        native_best, native_arg = solve_layer_kernel_native(
            layer, p[layer], cost, subsets, costs, is_test, arena=native_arena
        )
        assert np.array_equal(fused_best, native_best), f"layer {j} cost"
        assert np.array_equal(fused_arg, native_arg), f"layer {j} arg"
        tables[j] = cost.copy()
        cost[layer] = fused_best

    # Timing: both kernels adjacently per middle layer, single-shot (the
    # production profile), order alternating between reps, median of the
    # per-rep ratios.  In-process reps are fine here — neither variant
    # has the legacy kernel's allocator-churn sensitivity.
    middle = [
        j for j in range(1, k + 1) if plan.layer(j).size >= plan.max_layer_size // 2
    ]
    variants = {
        "fused": lambda layer, p_layer, cost: timed(
            solve_layer_kernel_fused,
            layer, p_layer, cost, subsets, costs, is_test, arena=fused_arena,
        ),
        "native": lambda layer, p_layer, cost: timed(
            solve_layer_kernel_native,
            layer, p_layer, cost, subsets, costs, is_test, arena=native_arena,
        ),
    }
    pairs = []
    for rep in range(_reps()):
        totals = {"fused": 0.0, "native": 0.0}
        for j in middle:
            layer = plan.layer(j)
            for name in alternate(rep, "fused", "native"):
                totals[name] += variants[name](layer, p[layer], tables[j])
        pairs.append((totals["fused"], totals["native"]))
    stats = summarize_pairs(pairs)
    speedup = stats["speedup"]
    fused_s, native_s = stats["baseline_s"], stats["candidate_s"]

    payload = bench_payload("KERNEL-NATIVE", {
        "k": k,
        "n_actions": problem.n_actions,
        "middle_layers": middle,
        "fused_s": round(fused_s, 6),
        "native_s": round(native_s, 6),
        "speedup": round(speedup, 3),
        "reps": _reps(),
        "pair_ratios": stats["ratios"],
        "methodology": (
            "variants timed adjacently per layer single-shot, order "
            "alternating; median of per-rep ratios; jit warm-up and "
            "bit-identity check before timing"
        ),
        "bit_identical": True,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    })
    print(f"\nBENCH_JSON {json.dumps(payload)}")
    print_table(
        f"native kernel, k={k}, N={problem.n_actions} (middle layers)",
        ["kernel", "seconds", "speedup"],
        [
            ["fused", f"{fused_s * 1e3:.1f} ms", "1.00x"],
            ["native", f"{native_s * 1e3:.1f} ms", f"{speedup:.2f}x"],
        ],
    )
    merge_bench_json(_REPO_ROOT / "BENCH_KERNEL.json", "native", payload)

    assert speedup >= min_speedup, (
        f"native kernel speedup {speedup:.2f}x below the "
        f"{min_speedup:.2f}x floor"
    )
