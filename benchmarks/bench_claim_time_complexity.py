"""CLM-TIME — parallel time O(k * p * (k + log N)).

The paper's §1 complexity claim.  Word-level: the §6 program performs
exactly ``k * (k + log N')`` dimension exchanges (measured against the
executor's counters); bit-level: every exchanged/combined word costs
``W`` single-bit cycles, giving ``O(k * W * (k + log N))`` BVM cycles.
We sweep ``k``, ``N`` and ``W`` and tabulate measured vs model.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import random_instance
from repro.ttpar import model_route_steps, pad_actions, solve_tt_hypercube
from repro.ttpar.bvm_tt import solve_tt_bvm


def test_word_steps_match_model_exactly():
    rows = []
    for k in (3, 4, 5, 6, 7):
        problem = random_instance(k, n_tests=k, n_treatments=k // 2 + 1, seed=k)
        par = solve_tt_hypercube(problem)
        model = model_route_steps(k, pad_actions(problem).n_actions)
        rows.append([k, problem.n_actions, par.stats.route_steps, model])
        assert par.stats.route_steps == model
    print_table(
        "CLM-TIME: word-level steps = k*(k + log N')",
        ["k", "N", "measured", "model"],
        rows,
    )


def test_bit_cycles_scale_linearly_in_width():
    """Doubling W should roughly double the arithmetic-dominated cycles."""
    problem = random_instance(3, 2, 2, seed=1)
    rows = []
    cycles = {}
    for width in (8, 16, 32):
        res = solve_tt_bvm(problem, width=width)
        cycles[width] = res.cycles
        rows.append([width, res.cycles, round(res.cycles / width, 1)])
    print_table("CLM-TIME: BVM cycles vs word width", ["W", "cycles", "cycles/W"], rows)
    ratio = cycles[32] / cycles[8]
    assert 2.0 < ratio < 6.0  # linear-ish in W (fixed overheads damp it)


def test_bit_cycles_scale_with_k():
    """The k*(k + log N) shape in the machine-cycle counts."""
    rows = []
    measured = {}
    for k in (2, 3, 4):
        problem = random_instance(k, 2, 2, seed=7)
        res = solve_tt_bvm(problem, width=12)
        p = pad_actions(problem).n_actions.bit_length() - 1
        model = k * (k + p)
        measured[k] = res.cycles
        rows.append([k, res.cycles, model, round(res.cycles / model)])
    print_table(
        "CLM-TIME: BVM cycles vs k*(k+log N) model",
        ["k", "cycles", "k*(k+p)", "cycles per model unit"],
        rows,
    )
    assert measured[4] > measured[3] > measured[2]


def test_solve_benchmark_hypercube(benchmark):
    problem = random_instance(7, 8, 4, seed=3)
    res = benchmark(solve_tt_hypercube, problem)
    assert res.feasible


def test_solve_benchmark_bvm(benchmark):
    problem = random_instance(3, 2, 2, seed=3)
    res = benchmark(solve_tt_bvm, problem, 12)
    assert res.feasible
