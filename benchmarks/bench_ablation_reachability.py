"""ABL-REACH — reachable-subset ablation of the sequential solvers.

The parallel algorithm dedicates a PE to *every* ``(S, i)`` pair because
a SIMD machine cannot skip work; a sequential top-down solve memoizes
only the subsets reachable from ``U`` under the given action set.  This
ablation quantifies that gap across workloads: unstructured repairs
reach the full lattice (the paper's worst case, where the parallel
machine's ``O(N·2^k)`` PEs all matter), while structured probe chains
collapse it to a polynomial sliver.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import (
    WORKLOADS,
    Action,
    TTProblem,
    solve_dp,
    solve_dp_topdown,
)
from repro.util.bitops import mask_of


def prefix_chain_instance(k):
    tests = [Action.test(mask_of(range(0, i + 1)), 1.0) for i in range(k - 1)]
    return TTProblem.build([1.0] * k, tests + [Action.treatment((1 << k) - 1, 4.0)])


def test_reachability_table():
    rows = []
    k = 9
    for name, make in sorted(WORKLOADS.items()):
        problem = make(k, seed=0)
        td = solve_dp_topdown(problem)
        rows.append(
            [name, 1 << k, td.reachable_subsets, f"{td.lattice_fraction:.1%}"]
        )
    chain = prefix_chain_instance(k)
    td = solve_dp_topdown(chain)
    rows.append(["prefix-chain", 1 << k, td.reachable_subsets, f"{td.lattice_fraction:.1%}"])
    print_table(
        "ABL-REACH: reachable subsets per workload (k=9)",
        ["workload", "lattice", "reachable", "fraction"],
        rows,
    )
    # Unstructured workloads saturate; the chain stays polynomial.
    assert td.reachable_subsets <= k * (k + 1) // 2 + 1


@pytest.mark.parametrize("k", [8, 12, 16])
def test_chain_scales_quadratically(k):
    td = solve_dp_topdown(prefix_chain_instance(k))
    assert td.reachable_subsets <= k * (k + 1) // 2 + 1
    assert td.feasible


def test_topdown_agrees_with_bottom_up_across_workloads():
    for name, make in WORKLOADS.items():
        problem = make(7, seed=2)
        assert solve_dp_topdown(problem).optimal_cost == pytest.approx(
            solve_dp(problem).optimal_cost
        ), name


def test_topdown_benchmark_structured(benchmark):
    res = benchmark(solve_dp_topdown, prefix_chain_instance(16))
    assert res.feasible


def test_bottomup_benchmark_same_instance(benchmark):
    res = benchmark(solve_dp, prefix_chain_instance(16))
    assert res.feasible
