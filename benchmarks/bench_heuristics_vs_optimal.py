"""CLM-NPHARD — the DP optimum against heuristics and exhaustive search.

The TT problem is NP-hard (it generalizes binary testing, NP-hard per
Garey/Loveland), so greedy strategies are the practical sequential
alternative.  This bench quantifies the optimality gap of each heuristic
across the paper's application workloads — the value the exponential
(and hence parallel-worthy) DP delivers — and anchors the DP itself
against brute-force enumeration and the Huffman identity.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import (
    HEURISTICS,
    WORKLOADS,
    best_tree_exhaustive,
    complete_test_instance,
    huffman_cost,
    solve_binary_testing,
    solve_dp,
)


def gap_study(k=7, seeds=(0, 1, 2)):
    rows = []
    for name, make in sorted(WORKLOADS.items()):
        gaps = {h: [] for h in HEURISTICS}
        for seed in seeds:
            problem = make(k, seed=seed)
            opt = solve_dp(problem).optimal_cost
            for hname, h in HEURISTICS.items():
                gaps[hname].append(h(problem).expected_cost() / opt)
        row = [name] + [f"{np.mean(gaps[h]):.3f}" for h in sorted(HEURISTICS)]
        rows.append(row)
    return rows


def test_heuristic_gap_table():
    rows = gap_study()
    print_table(
        "CLM-NPHARD: heuristic cost / optimal cost (k=7, mean of 3 seeds)",
        ["workload"] + sorted(HEURISTICS),
        rows,
    )
    # Every ratio >= 1 (the DP is a true lower bound) ...
    for row in rows:
        for cell in row[1:]:
            assert float(cell) >= 1.0 - 1e-9
    # ... and blind treatment is the worst strategy somewhere.
    treat_col = 1 + sorted(HEURISTICS).index("treatment_only")
    assert any(float(row[treat_col]) > 1.05 for row in rows)


def test_dp_vs_bruteforce_anchor():
    """On tiny instances the DP equals full tree enumeration."""
    rows = []
    for name, make in sorted(WORKLOADS.items()):
        problem = make(3, seed=0)
        opt = solve_dp(problem).optimal_cost
        brute = best_tree_exhaustive(problem, limit=2_000_000)
        rows.append([name, f"{opt:.4f}", f"{brute.expected_cost_by_paths():.4f}"])
        assert opt == pytest.approx(brute.expected_cost_by_paths())
    print_table("CLM-NPHARD: DP vs exhaustive enumeration (k=3)", ["workload", "DP", "brute"], rows)


def test_huffman_anchor():
    """Binary-testing reduction: DP == Huffman with all unit-cost tests."""
    weights = [8.0, 5.0, 3.0, 2.0, 1.0]
    ident, _ = solve_binary_testing(complete_test_instance(weights))
    hc = huffman_cost(weights)
    print(f"\nCLM-NPHARD Huffman anchor: identification={ident:.3f}, huffman={hc:.3f}")
    assert ident == pytest.approx(hc)


def test_gap_study_benchmark(benchmark):
    rows = benchmark(gap_study, 6, (0,))
    assert len(rows) == len(WORKLOADS)
