"""One-shot reproduction report.

``generate_report()`` re-measures the paper's claims on the current
machine and emits a self-contained Markdown document — the programmatic
companion to ``EXPERIMENTS.md`` (which records a reference run).  Used
by ``python -m repro report``.

Everything here calls the same public APIs the benchmarks use; no
numbers are hard-coded beyond the paper's claimed values that the tables
compare against.
"""

from __future__ import annotations

import numpy as np

from . import __version__
from .core import HEURISTICS, WORKLOADS, random_instance, solve
from .hypercube import (
    CCC,
    Hypercube,
    benes_stage_count,
    bitonic_sort_program,
    ccc_links,
    hypercube_links,
    make_state,
    min_reduce_program,
    permutation_program,
)
from .ttpar import (
    machine_sizing_table,
    mark_policy_subsets,
    policy_subsets_reference,
    solve_tt_bvm,
    solve_tt_ccc,
    solve_tt_hypercube,
    speedup_curve,
    verify_cost_table,
)

__all__ = ["generate_report"]


def _md_table(headers, rows) -> str:
    out = ["| " + " | ".join(str(h) for h in headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for r in rows:
        out.append("| " + " | ".join(str(c) for c in r) + " |")
    return "\n".join(out)


def _section_agreement() -> str:
    problem = random_instance(3, 2, 2, seed=0)
    # integral costs for an exact BVM comparison
    from .core import Action, TTProblem

    rng = np.random.default_rng(0)
    problem = TTProblem.build(
        rng.integers(1, 5, 3).astype(float),
        [
            Action.test({0, 1}, 1.0),
            Action.treatment({0}, 3.0),
            Action.treatment({1, 2}, 4.0),
        ],
    )
    dp = solve(problem)
    rows = []
    for name, result in (
        ("sequential DP", dp),
        ("hypercube", solve_tt_hypercube(problem)),
        ("CCC (pipelined)", solve_tt_ccc(problem)),
        ("BVM (bit level)", solve_tt_bvm(problem, width=16)),
    ):
        agree = bool(np.allclose(result.cost, dp.cost))
        rows.append([name, f"{result.optimal_cost:g}", "yes" if agree else "NO"])
    verified = verify_cost_table(problem, dp.cost).ok
    marking = bool(
        (mark_policy_subsets(problem) == policy_subsets_reference(problem)).all()
    )
    body = _md_table(["solver", "C(U)", "table agrees"], rows)
    body += f"\n\nBellman self-certification: **{'pass' if verified else 'FAIL'}**; "
    body += f"DESCEND policy marking matches extracted tree: **{'pass' if marking else 'FAIL'}**."
    return body


def _section_speedup() -> str:
    rows = []
    for pt in speedup_curve(range(6, 19, 3), lambda k: 2**k):
        rows.append(
            [pt.k, f"{pt.pe_count:,}", f"{pt.speedup:,.0f}", f"{pt.p_over_logp:,.0f}",
             f"{pt.speedup / pt.p_over_logp:.3f}"]
        )
    return _md_table(["k", "P", "speedup", "P/log P", "ratio"], rows)


def _section_slowdown() -> str:
    rows = []
    rng = np.random.default_rng(0)
    for r in (1, 2, 3):
        ccc = CCC(r)
        st = make_state(ccc.dims, M=rng.uniform(0, 1, ccc.n))
        stats = ccc.run(st, min_reduce_program(0, ccc.dims), schedule="pipelined")
        rows.append([r, ccc.n, stats.ideal_dimops, stats.route_steps, f"{stats.slowdown:.2f}"])
    return _md_table(["r", "n PEs", "cube steps", "CCC steps", "slowdown"], rows)


def _section_links() -> str:
    rows = []
    for r in (2, 3):
        dims = r + (1 << r)
        rows.append([r, 1 << dims, f"{ccc_links(r):,}", f"{hypercube_links(dims):,}"])
    return _md_table(["r", "n PEs", "CCC links (3n/2)", "hypercube links"], rows)


def _section_sizing() -> str:
    rows = []
    for row in machine_sizing_table():
        rows.append(
            [f"2^{row['pe_budget'].bit_length() - 1}",
             row["max_k_exponential_actions"], row["max_k_quadratic_actions"]]
        )
    return _md_table(["PE budget", "max k (N=2^k)", "max k (N=k^2)"], rows)


def _section_class() -> str:
    ccc = CCC(2)
    rng = np.random.default_rng(1)
    vals = rng.uniform(0, 1, ccc.n)
    st = make_state(ccc.dims, X=vals)
    sort_stats = ccc.run(st, bitonic_sort_program(ccc.dims))
    sorted_ok = bool((st["X"] == np.sort(vals)).all())
    dest = rng.permutation(ccc.n)
    st = make_state(ccc.dims, X=vals)
    perm_stats = ccc.run(st, permutation_program(dest))
    want = np.empty(ccc.n)
    want[dest] = vals
    routed_ok = bool((st["X"] == want).all())
    rows = [
        ["bitonic sort", 21, sort_stats.route_steps, f"{sort_stats.slowdown:.2f}",
         "yes" if sorted_ok else "NO"],
        ["Benes permutation", benes_stage_count(ccc.dims), perm_stats.route_steps,
         f"{perm_stats.slowdown:.2f}", "yes" if routed_ok else "NO"],
    ]
    return _md_table(
        ["workload", "ideal stages", "CCC steps", "slowdown", "correct"], rows
    )


def _section_heuristics() -> str:
    rows = []
    for name, make in sorted(WORKLOADS.items()):
        problem = make(6, seed=0)
        opt = solve(problem).optimal_cost
        cells = [name]
        for hname in sorted(HEURISTICS):
            cells.append(f"{HEURISTICS[hname](problem).expected_cost() / opt:.3f}")
        rows.append(cells)
    return _md_table(["workload"] + sorted(HEURISTICS), rows)


def generate_report() -> str:
    """Re-measure everything; return a Markdown report."""
    bvm_demo = solve_tt_bvm(
        random_instance(3, 2, 2, seed=4), width=16
    )
    sections = [
        ("Reproduction report", f"`repro` v{__version__} — Duval, Wagner, Han & "
         "Loveland, *Finding Test-and-Treatment Procedures Using Parallel "
         "Computation* (1986).  All numbers measured on this machine now."),
        ("Solver agreement (one instance, four machines)", _section_agreement()),
        ("Speedup vs P/log P (N = 2^k regime)", _section_speedup()),
        ("CCC slowdown (pipelined full-cube ASCEND)", _section_slowdown()),
        ("Wiring (3n/2 vs n log n / 2)", _section_links()),
        ("Machine sizing", _section_sizing()),
        ("ASCEND/DESCEND class on the CCC", _section_class()),
        ("Heuristic gap vs DP optimum (k=6)", _section_heuristics()),
        ("Bit-level footprint",
         f"A k=3 instance runs end-to-end on CCC({bvm_demo.r}) in "
         f"**{bvm_demo.cycles}** single-bit machine cycles at W={bvm_demo.width}."),
    ]
    out = []
    for title, body in sections:
        out.append(f"## {title}\n\n{body}\n")
    return "\n".join(out)
