"""Deterministic fault injection for the supervised parallel engine.

Every recovery path in :mod:`repro.core.supervisor` — shard retry, pool
respawn, timeout, in-process fallback — is exercised by *injected*
faults, not by waiting for production to produce them.  A fault spec is a
string (usually from the ``REPRO_FAULT_SPEC`` environment variable, so it
reaches pool workers under both ``fork`` and ``spawn``)::

    kill:layer=12:shard=1        # os._exit inside that shard (SIGKILL-alike)
    hang:layer=9                 # sleep far past any sane deadline
    slow:ms=200                  # sleep 200 ms in every matching shard
    exc:layer=3:shard=0          # raise inside the shard (picklable error)
    kill:layer=2;slow:ms=50      # multiple faults, ';'- or ','-separated

Selectors ``layer=``/``shard=`` restrict where a fault fires (omitted =
matches everywhere) and ``times=N`` caps *which dispatch attempts* fire
(default 1: only the first attempt).  Because a fault is a pure function
of ``(layer, shard, attempt)`` — no randomness, no cross-process state —
an injected failure is bit-reproducible, and a retried shard (attempt
bumped by the supervisor) deterministically escapes a ``times=1`` fault.

Workers call :func:`inject` at the top of every shard; it is a no-op
unless a spec is active, so the production path pays one dict lookup.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import lru_cache

from .errors import InvalidProblem

__all__ = ["Fault", "parse_fault_spec", "inject", "env_fault_spec", "FAULT_SPEC_ENV"]

FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"

_KINDS = ("kill", "hang", "slow", "exc")

# `hang` must outlive any plausible per-shard deadline but still end, so a
# supervisor run *without* a timeout policy is not wedged forever by a test.
_HANG_SECONDS = 600.0


@dataclass(frozen=True)
class Fault:
    """One injected fault: what happens, where, and on which attempts."""

    kind: str  # "kill" | "hang" | "slow" | "exc"
    layer: int | None = None  # popcount layer selector (None = any)
    shard: int | None = None  # shard-index selector (None = any)
    ms: float = 0.0  # sleep duration for "slow"
    times: int = 1  # attempts [0, times) fire

    def matches(self, layer: int, shard: int, attempt: int) -> bool:
        if self.layer is not None and layer != self.layer:
            return False
        if self.shard is not None and shard != self.shard:
            return False
        return attempt < self.times


def _parse_one(token: str) -> Fault:
    parts = token.split(":")
    kind = parts[0].strip().lower()
    if kind not in _KINDS:
        raise InvalidProblem(
            f"invalid fault spec {token!r}: unknown kind {kind!r} "
            f"(expected one of {', '.join(_KINDS)})"
        )
    fields: dict = {"kind": kind}
    for part in parts[1:]:
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in ("layer", "shard", "ms", "times"):
            raise InvalidProblem(
                f"invalid fault spec {token!r}: bad field {part!r} "
                "(expected layer=, shard=, ms= or times=)"
            )
        try:
            fields[key] = float(value) if key == "ms" else int(value)
        except ValueError:
            raise InvalidProblem(
                f"invalid fault spec {token!r}: {key}={value!r} is not a number"
            ) from None
    if fields.get("times", 1) < 1:
        raise InvalidProblem(f"invalid fault spec {token!r}: times must be >= 1")
    if fields.get("ms", 0.0) < 0:
        raise InvalidProblem(f"invalid fault spec {token!r}: ms must be >= 0")
    return Fault(**fields)


@lru_cache(maxsize=32)
def parse_fault_spec(spec: str) -> tuple[Fault, ...]:
    """Parse a fault-spec string into :class:`Fault` tuples.

    Raises :class:`InvalidProblem` with a one-line message on any
    malformed token — the supervisor parses the environment spec in the
    *parent* before dispatching, so a typo fails the solve loudly up
    front instead of silently never firing in a worker.
    """
    faults = []
    for token in spec.replace(";", ",").split(","):
        token = token.strip()
        if token:
            faults.append(_parse_one(token))
    return tuple(faults)


def env_fault_spec() -> tuple[Fault, ...]:
    """Parse (and validate) ``REPRO_FAULT_SPEC``; empty/unset = no faults."""
    spec = os.environ.get(FAULT_SPEC_ENV, "").strip()
    return parse_fault_spec(spec) if spec else ()


def inject(layer: int, shard: int, attempt: int = 0, *, spec: str | None = None) -> None:
    """Fire any matching injected fault for this ``(layer, shard, attempt)``.

    Called by pool workers at the top of every shard.  ``spec`` overrides
    the environment for direct testing; normally the worker reads
    ``REPRO_FAULT_SPEC`` (inherited under both fork and spawn).
    """
    faults = parse_fault_spec(spec) if spec is not None else env_fault_spec()
    for fault in faults:
        if not fault.matches(layer, shard, attempt):
            continue
        if fault.kind == "kill":
            # Bypass all cleanup, exactly like SIGKILL/OOM: the parent must
            # recover from a worker that never got to say goodbye.
            os._exit(13)
        elif fault.kind == "hang":
            time.sleep((fault.ms / 1000.0) if fault.ms else _HANG_SECONDS)
        elif fault.kind == "slow":
            time.sleep(fault.ms / 1000.0)
        elif fault.kind == "exc":
            raise RuntimeError(
                f"injected worker exception (layer={layer}, shard={shard}, "
                f"attempt={attempt})"
            )
