"""Deterministic fault injection for the supervised parallel engine.

Every recovery path in :mod:`repro.core.supervisor` — shard retry, pool
respawn, timeout, in-process fallback — is exercised by *injected*
faults, not by waiting for production to produce them.  A fault spec is a
string (usually from the ``REPRO_FAULT_SPEC`` environment variable, so it
reaches pool workers under both ``fork`` and ``spawn``)::

    kill:layer=12:shard=1        # os._exit inside that shard (SIGKILL-alike)
    hang:layer=9                 # sleep far past any sane deadline
    slow:ms=200                  # sleep 200 ms in every matching shard
    exc:layer=3:shard=0          # raise inside the shard (picklable error)
    kill:layer=2;slow:ms=50      # multiple faults, ';'- or ','-separated

Selectors ``layer=``/``shard=`` restrict where a fault fires (omitted =
matches everywhere) and ``times=N`` caps *which dispatch attempts* fire
(default 1: only the first attempt).  Because a fault is a pure function
of ``(layer, shard, attempt)`` — no randomness, no cross-process state —
an injected failure is bit-reproducible, and a retried shard (attempt
bumped by the supervisor) deterministically escapes a ``times=1`` fault.

Workers call :func:`inject` at the top of every shard; it is a no-op
unless a spec is active, so the production path pays one dict lookup.

The same spec grammar also carries *storage* faults, fired by the layer
store at slab-commit time instead of inside a shard (so ``shard=`` is
rejected for them)::

    torn-write:layer=5           # slab file truncated mid-write
    bitflip:layer=5              # one bit of the slab payload flipped
    enospc:layer=5               # commit raises OSError(ENOSPC)
    slow-io:ms=200               # commit sleeps 200 ms

``torn-write`` and ``bitflip`` corrupt the *bytes on disk* while the
manifest records the checksum of the true payload — exactly the shape of
real torn writes and bit rot — so the next open must detect the mismatch
and re-derive the layer.  The store calls :func:`storage_faults_for`
(attempt 0 on first commit of a layer; a re-derived layer re-commits with
a bumped attempt and deterministically escapes a ``times=1`` fault).

Separately, ``REPRO_STORE_CRASH`` names a *crash point* in the commit
protocol where the process SIGKILLs itself (via :func:`maybe_crash`),
e.g. ``pre-rename:layer=3`` — the crash-drill harness uses this to prove
resume-after-SIGKILL is bit-identical to a cold solve.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import lru_cache

from ..obs import trace as _trace
from .errors import InvalidProblem

__all__ = [
    "Fault",
    "parse_fault_spec",
    "inject",
    "env_fault_spec",
    "FAULT_SPEC_ENV",
    "STORAGE_KINDS",
    "storage_faults_for",
    "CRASH_POINT_ENV",
    "CRASH_POINTS",
    "parse_crash_spec",
    "env_crash_spec",
    "maybe_crash",
]

FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"
CRASH_POINT_ENV = "REPRO_STORE_CRASH"

_KINDS = ("kill", "hang", "slow", "exc")

# Storage faults fire in the *parent* at slab-commit time, not in a shard.
STORAGE_KINDS = ("torn-write", "bitflip", "enospc", "slow-io")

# Where in the slab commit protocol a REPRO_STORE_CRASH SIGKILL lands.
CRASH_POINTS = ("mid-write", "pre-rename", "post-rename", "post-commit")

# `hang` must outlive any plausible per-shard deadline but still end, so a
# supervisor run *without* a timeout policy is not wedged forever by a test.
_HANG_SECONDS = 600.0


@dataclass(frozen=True)
class Fault:
    """One injected fault: what happens, where, and on which attempts."""

    kind: str  # worker: "kill"|"hang"|"slow"|"exc"; storage: STORAGE_KINDS
    layer: int | None = None  # popcount layer selector (None = any)
    shard: int | None = None  # shard-index selector (None = any)
    ms: float = 0.0  # sleep duration for "slow" / "slow-io"
    times: int = 1  # attempts [0, times) fire

    @property
    def is_storage(self) -> bool:
        return self.kind in STORAGE_KINDS

    def matches(self, layer: int, shard: int, attempt: int) -> bool:
        if self.layer is not None and layer != self.layer:
            return False
        if self.shard is not None and shard != self.shard:
            return False
        return attempt < self.times


def _parse_one(token: str) -> Fault:
    parts = token.split(":")
    kind = parts[0].strip().lower()
    if kind not in _KINDS and kind not in STORAGE_KINDS:
        raise InvalidProblem(
            f"invalid fault spec {token!r}: unknown kind {kind!r} "
            f"(expected one of {', '.join(_KINDS + STORAGE_KINDS)})"
        )
    fields: dict = {"kind": kind}
    for part in parts[1:]:
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in ("layer", "shard", "ms", "times"):
            raise InvalidProblem(
                f"invalid fault spec {token!r}: bad field {part!r} "
                "(expected layer=, shard=, ms= or times=)"
            )
        try:
            fields[key] = float(value) if key == "ms" else int(value)
        except ValueError:
            raise InvalidProblem(
                f"invalid fault spec {token!r}: {key}={value!r} is not a number"
            ) from None
    if kind in STORAGE_KINDS and "shard" in fields:
        raise InvalidProblem(
            f"invalid fault spec {token!r}: storage faults fire at layer "
            "commit, not inside a shard — shard= is meaningless here"
        )
    if fields.get("times", 1) < 1:
        raise InvalidProblem(f"invalid fault spec {token!r}: times must be >= 1")
    if fields.get("ms", 0.0) < 0:
        raise InvalidProblem(f"invalid fault spec {token!r}: ms must be >= 0")
    return Fault(**fields)


@lru_cache(maxsize=32)
def parse_fault_spec(spec: str) -> tuple[Fault, ...]:
    """Parse a fault-spec string into :class:`Fault` tuples.

    Raises :class:`InvalidProblem` with a one-line message on any
    malformed token — the supervisor parses the environment spec in the
    *parent* before dispatching, so a typo fails the solve loudly up
    front instead of silently never firing in a worker.
    """
    faults = []
    for token in spec.replace(";", ",").split(","):
        token = token.strip()
        if token:
            faults.append(_parse_one(token))
    return tuple(faults)


def env_fault_spec() -> tuple[Fault, ...]:
    """Parse (and validate) ``REPRO_FAULT_SPEC``; empty/unset = no faults."""
    spec = os.environ.get(FAULT_SPEC_ENV, "").strip()
    return parse_fault_spec(spec) if spec else ()


def inject(layer: int, shard: int, attempt: int = 0, *, spec: str | None = None) -> None:
    """Fire any matching injected fault for this ``(layer, shard, attempt)``.

    Called by pool workers at the top of every shard.  ``spec`` overrides
    the environment for direct testing; normally the worker reads
    ``REPRO_FAULT_SPEC`` (inherited under both fork and spawn).
    """
    faults = parse_fault_spec(spec) if spec is not None else env_fault_spec()
    for fault in faults:
        if fault.is_storage or not fault.matches(layer, shard, attempt):
            continue
        # Tag the timeline *before* firing: a traced worker's ring buffer
        # carries the instant back through the result channel (except for
        # "kill", whose buffer dies with the process — the supervisor's
        # crash/retry events then tell the recovery side of the story).
        _trace.current().instant(
            f"fault.{fault.kind}", cat="fault",
            layer=layer, shard=shard, attempt=attempt, ms=fault.ms,
        )
        if fault.kind == "kill":
            # Bypass all cleanup, exactly like SIGKILL/OOM: the parent must
            # recover from a worker that never got to say goodbye.
            os._exit(13)
        elif fault.kind == "hang":
            time.sleep((fault.ms / 1000.0) if fault.ms else _HANG_SECONDS)
        elif fault.kind == "slow":
            time.sleep(fault.ms / 1000.0)
        elif fault.kind == "exc":
            raise RuntimeError(
                f"injected worker exception (layer={layer}, shard={shard}, "
                f"attempt={attempt})"
            )


def storage_faults_for(
    layer: int, attempt: int = 0, *, spec: str | None = None
) -> tuple[Fault, ...]:
    """Storage faults matching this layer commit, in spec order.

    The layer store applies them itself — a storage fault mutates the
    bytes being written (``torn-write``/``bitflip``), raises
    (``enospc``), or sleeps (``slow-io``), all of which only the writer
    can do — so unlike :func:`inject` this returns the matching faults
    rather than firing them.  ``attempt`` counts commits of the same
    layer within one process (a re-derived layer re-commits with attempt
    1), mirroring the shard-retry escape semantics of ``times=``.
    """
    faults = parse_fault_spec(spec) if spec is not None else env_fault_spec()
    matched = tuple(
        f for f in faults if f.is_storage and f.matches(layer, 0, attempt)
    )
    for f in matched:
        # Parent-side: the solve loop keeps its tracer ambient, so these
        # land directly on the main timeline next to the commit span.
        _trace.current().instant(
            f"fault.{f.kind}", cat="fault", layer=layer, attempt=attempt, ms=f.ms
        )
    return matched


# ----------------------------------------------------------------------
# SIGKILL crash points (crash-drill harness)
# ----------------------------------------------------------------------


def parse_crash_spec(spec: str) -> tuple[str, int | None]:
    """Parse ``REPRO_STORE_CRASH``: ``<point>[:layer=J]``.

    Points name positions in the slab commit protocol (see
    :data:`CRASH_POINTS`); ``layer=`` restricts the kill to one layer's
    commit (omitted = the first commit executed).
    """
    parts = spec.split(":")
    point = parts[0].strip().lower()
    if point not in CRASH_POINTS:
        raise InvalidProblem(
            f"invalid {CRASH_POINT_ENV} {spec!r}: unknown crash point "
            f"{point!r} (expected one of {', '.join(CRASH_POINTS)})"
        )
    layer: int | None = None
    for part in parts[1:]:
        key, sep, value = part.partition("=")
        if not sep or key.strip() != "layer":
            raise InvalidProblem(
                f"invalid {CRASH_POINT_ENV} {spec!r}: bad field {part!r} "
                "(expected layer=J)"
            )
        try:
            layer = int(value)
        except ValueError:
            raise InvalidProblem(
                f"invalid {CRASH_POINT_ENV} {spec!r}: layer={value!r} is not "
                "an integer"
            ) from None
    return point, layer


def env_crash_spec() -> tuple[str, int | None] | None:
    """Parse (and validate) ``REPRO_STORE_CRASH``; unset/empty = no crash."""
    spec = os.environ.get(CRASH_POINT_ENV, "").strip()
    return parse_crash_spec(spec) if spec else None


def maybe_crash(point: str, layer: int) -> None:
    """SIGKILL this process if ``REPRO_STORE_CRASH`` names this point.

    ``SIGKILL`` (not ``os._exit``) so absolutely nothing — no atexit
    hooks, no finally blocks, no buffered flushes — runs: the store's
    durability claims are only honest against the harshest death the OS
    can deliver.
    """
    import signal

    spec = env_crash_spec()
    if spec is None:
        return
    want_point, want_layer = spec
    if point != want_point:
        return
    if want_layer is not None and layer != want_layer:
        return
    os.kill(os.getpid(), signal.SIGKILL)
