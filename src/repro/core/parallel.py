"""Multi-core layer-parallel DP engine over shared memory.

This is the host-side realization of the paper's parallel structure: the
backward-induction recurrence has *no* dependencies inside a popcount
layer — ``C(S)`` for ``#S = j`` reads only ``C(S ∩ T_i)`` and
``C(S - T_i)``, both of strictly smaller popcount whenever the candidate
is valid.  The paper maps every ``(S, i)`` pair onto its own PE and runs
the layers as ASCEND phases (§6); here the same dataflow is mapped onto a
handful of OS processes:

* the ``C`` table (plus ``best_action``, the subset weights ``p`` and the
  layer-sorted mask order) lives in ``multiprocessing.shared_memory``,
  owned by a leak-proof :class:`~repro.core.supervisor.SharedTables`;
* each layer is sharded into contiguous runs of masks, one task per
  worker; workers gather ``C`` from completed layers read-only and
  scatter their shard's results back into the shared table;
* the only synchronization is the per-layer barrier, exactly where the
  paper's ASCEND phases place theirs — but the barrier is *supervised*
  (:class:`~repro.core.supervisor.Supervisor`): shards are dispatched
  via ``apply_async`` with per-shard deadlines, dead workers are
  detected and their shards re-dispatched with bounded retries, a
  wedged pool is respawned, and past the retry budget the layer is
  finished on the in-process kernel instead of hanging or raising.

Determinism: each subset's argmin is computed *entirely inside one
worker* by scanning actions in index order through
:func:`repro.core.sequential.solve_layer_kernel` — sharding is over
subsets, never over actions — so the tie-break rule (lowest action index
wins) and the float evaluation order are bit-for-bit those of
:func:`solve_dp` and :func:`solve_dp_reference`, regardless of worker
count, scheduling order, retries, pool respawns or fallbacks.  A shard
is a pure function of the completed layers writing a slice nothing else
touches, which is what makes replaying one (even a half-written or
duplicated one) provably safe — see the failure model in DESIGN.md.

Same-layer reads cannot race across shards: a gather index in the
*current* layer is only ever the subset's own mask ``S`` (``inter == 0``
implies ``rest == S`` and vice versa), which lives in the gathering
shard's own slice — never in another shard's.  Those self-reads are
resolved by the *strict* fused kernel (the default discipline): explicit
validity masks computed from the candidate structure make the shard's
output independent of whatever the table holds inside the layer being
computed, so a *replayed* shard — even one whose predecessor died
mid-scatter, even racing a stale duplicate — writes the exact same
bytes with zero table copying.  The legacy ``snapshot`` discipline
(``REPRO_SHARD_DISCIPLINE=snapshot``, kept one release) reaches the same
bytes the old way: snapshot the shared table into a private arena
buffer, re-``INF`` the shard's own slice, and rely on the non-strict
kernel's table-state invariant — at the cost of ``workers × 8 × 2^k``
bytes of copy traffic per layer.

Where the tables live is delegated to a :class:`~repro.store.LayerStore`
(``store=``): shared memory by default, or memory-mapped spill files
(``StoreSpec(kind="mmap", spill_dir=...)``) for out-of-core solves with
durable, checksummed per-layer commits.  The loop itself is store
agnostic — ``open()`` reports which layers already hold trusted values
(checkpoint prefix, validated slabs), the loop computes every other
layer in ascending order and ``commit_layer``'s each, and that single
*skip-valid, compute-the-rest* mechanism covers cold solves, resume
after SIGKILL, and re-derivation of corrupted layers alike.  Spill
shards are always strict regardless of the discipline knob: the
file-backed table may hold arbitrary resume garbage in the layer being
computed, which only strict mode tolerates.  A spill store that fails
mid-solve (``ENOSPC``) degrades to an in-RAM store when the tables fit
under ``REPRO_RAM_BUDGET_BYTES``, else the solve fails loudly.

Persistence is pipelined by default (``commit="async"`` /
``REPRO_COMMIT_MODE``): layer ``j``'s durable commit runs on a
background :class:`~repro.store.pipeline.AsyncCommitter` thread while
the pool computes layer ``j + 1`` — sound because a layer's table
entries never change after its barrier and commits replay the store's
own protocol unchanged, in order, with errors surfacing at the next
barrier and a full drain before the manifest is marked complete.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
from multiprocessing import shared_memory

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from . import faults
from .errors import InvalidProblem, SolverError
from .kernels import LayerArena, shard_discipline, solve_layer_kernel_fused
from .problem import TTProblem
from .sequential import INF, DPResult
from .supervisor import RecoveryLog, ResiliencePolicy, Supervisor

__all__ = [
    "solve_dp_parallel",
    "default_workers",
    "PARALLEL_MIN_K",
    "MIN_SHARD",
    "START_METHOD_ENV",
]

# Below this universe size the fork/IPC overhead dwarfs the layer work;
# the "auto" backend in repro.core.dispatch keeps such instances on the
# single-process solver.
PARALLEL_MIN_K = 16

# A layer slice must contain at least this many subsets to be worth
# shipping to a worker; smaller layers are solved in the parent process
# (same kernel, same shared table, zero IPC).
MIN_SHARD = 2048

# Override the multiprocessing start method ("fork" / "spawn" /
# "forkserver"); unset picks fork where available.
START_METHOD_ENV = "REPRO_START_METHOD"


def default_workers() -> int:
    """Worker count used when none is requested: one per core, capped.

    ``REPRO_WORKERS`` overrides; it must be a positive integer — a typo'd
    or negative value fails loudly (:class:`InvalidProblem`) instead of
    surfacing as a bare ``ValueError`` from ``int()`` or being silently
    clamped.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is None or not env.strip():
        return max(1, min(os.cpu_count() or 1, 8))
    try:
        value = int(env)
    except ValueError:
        raise InvalidProblem(
            f"REPRO_WORKERS must be a positive integer, got {env!r}"
        ) from None
    if value < 1:
        raise InvalidProblem(f"REPRO_WORKERS must be >= 1, got {value}")
    return value


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

_WORKER: dict | None = None


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block (the parent owns creation and unlink).

    Pool workers share the parent's resource-tracker process (both fork
    and spawn inherit it), so the attach-side ``register`` call that
    CPython issues is a set-level no-op and the parent's single ``unlink``
    leaves the tracker clean — no extra bookkeeping needed here.
    """
    return shared_memory.SharedMemory(name=name)


def _init_worker(access, subsets, costs, is_test):
    """Pool initializer: attach the store's tables, stash static arrays.

    ``access`` is the picklable dict from ``LayerStore.worker_spec()``:
    ``mode="shm"`` names shared-memory blocks to map, ``mode="mmap"``
    names a spill directory whose ``.dat`` files the worker memmaps
    (``MAP_SHARED``, so parent and worker writes are coherent; spill
    shards additionally run the kernel in strict mode — see
    ``_shard_compute``).

    ``subsets``/``costs``/``is_test`` may be ``None`` — the engine's warm
    pools outlive any one problem, so they ship the per-problem statics
    with each task instead (see :mod:`repro.core.engine`).

    ``access["discipline"]`` (resolved by the parent — workers never
    consult the environment, so a warm pool cannot change discipline
    mid-life) selects strict vs snapshot for shared-memory shards;
    memmapped shards are strict unconditionally.
    """
    global _WORKER
    n_sub = access["n_sub"]
    if access["mode"] == "shm":
        blocks = {key: _attach(name) for key, name in access["names"].items()}
        tables = {
            "blocks": blocks,
            "cost": np.ndarray(n_sub, dtype=np.float64, buffer=blocks["cost"].buf),
            "best": np.ndarray(n_sub, dtype=np.int64, buffer=blocks["best"].buf),
            "p": np.ndarray(n_sub, dtype=np.float64, buffer=blocks["p"].buf),
            "order": np.ndarray(n_sub, dtype=np.int64, buffer=blocks["order"].buf),
            "strict": access.get("discipline", "strict") != "snapshot",
        }
    else:
        spill = access["dir"]
        tables = {
            "blocks": {},
            "cost": np.memmap(os.path.join(spill, "cost.dat"),
                              dtype=np.float64, mode="r+", shape=(n_sub,)),
            "best": np.memmap(os.path.join(spill, "best.dat"),
                              dtype=np.int64, mode="r+", shape=(n_sub,)),
            "p": np.memmap(os.path.join(spill, "p.dat"),
                           dtype=np.float64, mode="r", shape=(n_sub,)),
            "order": np.memmap(os.path.join(spill, "order.dat"),
                               dtype=np.int64, mode="r", shape=(n_sub,)),
            "strict": True,
        }
    _WORKER = {
        **tables,
        "subsets": None if subsets is None else np.asarray(subsets, dtype=np.int64),
        "costs": None if costs is None else np.asarray(costs, dtype=np.float64),
        "is_test": None if is_test is None else np.asarray(is_test, dtype=bool),
        "arena": LayerArena(),
    }


def _shard_compute(w, lo, hi, subsets, costs, is_test):
    """Fused-kernel shard body over the worker's mapped tables.

    Strict shards (the default, and all spill shards) run the kernel
    with explicit validity masks and gather straight from the shared
    table: the result is independent of whatever the table holds in the
    layer being computed, so replayed shards and stale duplicates write
    bit-identical bytes with no table copy.  Legacy ``snapshot`` shards
    copy the ``C`` table into the worker's private arena and re-``INF``
    their own slice first, restoring the non-strict kernel's table-state
    invariant instead — same bytes, ``8 × 2^k`` extra copy traffic per
    shard (see the module docstring).
    """
    arena = w["arena"]
    layer = np.asarray(w["order"][lo:hi])
    if w["strict"]:
        table = w["cost"]
    else:
        table = arena.table(w["cost"].size)
        np.copyto(table, w["cost"])
        table[layer] = INF
    layer_best, layer_arg = solve_layer_kernel_fused(
        layer, w["p"][layer], table, subsets, costs, is_test,
        arena=arena, strict=w["strict"],
    )
    w["cost"][layer] = layer_best
    w["best"][layer] = layer_arg
    return hi - lo


def _solve_shard(task: tuple) -> tuple:
    """Solve masks ``order[lo:hi]`` (a contiguous slice of one layer).

    ``task`` is ``(lo, hi, layer_index, shard_index, attempt)`` plus an
    optional sixth ``trace`` flag; the extra coordinates drive
    deterministic fault injection and let the supervisor attribute
    completions.  Returns ``(shard_index, count)`` — or, when tracing,
    ``(shard_index, count, raw_events)``: the worker records its shard
    span (and any fault instants) into a small private ring buffer and
    flushes it back through the result channel, which is what makes the
    cross-process trace one mergeable timeline with no extra IPC.

    Termination signals are blocked for the duration of the compute.
    This serves two supervision needs at once: the shard's table writes
    are atomic with respect to SIGTERM/SIGINT, and — more subtly — any
    helper threads numpy's BLAS spawns during the compute inherit the
    blocked mask *permanently*.  Without that, the kernel is free to hand
    a process-directed SIGTERM to a BLAS thread, where CPython's C
    trampoline merely sets a flag that an idle main thread parked in the
    task-queue ``sem_wait`` never wakes to service — the worker silently
    outlives ``Pool.terminate()`` and the join wedges until the
    supervisor's SIGKILL escalation.  With every helper thread masked,
    the main thread is the only eligible recipient, its ``sem_wait`` is
    interrupted, and the handler runs promptly.
    """
    lo, hi, layer_idx, shard_idx, attempt = task[:5]
    traced = len(task) > 5 and bool(task[5])
    tracer = obs_trace.Tracer(max_events=obs_trace.WORKER_EVENT_CAP) if traced else None
    t_start = time.monotonic()
    # The worker tracer is made ambient around the whole shard body so
    # deep sites (fault injection, kernels) land in it without plumbing.
    with obs_trace.tracing(tracer):
        # Injected faults run unmasked: a simulated hang is a Python-level
        # sleep and should stay SIGTERM-interruptible (a real hang inside
        # the C kernel below would not run Python handlers either way).
        faults.inject(layer_idx, shard_idx, attempt)
        blockable = {signal.SIGTERM, signal.SIGINT}
        old_mask = signal.pthread_sigmask(signal.SIG_BLOCK, blockable)
        try:
            w = _WORKER
            done = _shard_compute(w, lo, hi, w["subsets"], w["costs"], w["is_test"])
        finally:
            signal.pthread_sigmask(signal.SIG_SETMASK, old_mask)
    if tracer is None:
        return shard_idx, done
    tracer.complete(
        "shard", "shard", t_start, time.monotonic(),
        layer=layer_idx, shard=shard_idx, attempt=attempt, masks=hi - lo,
    )
    return shard_idx, done, tracer.raw_events()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def _shard_bounds(lo: int, hi: int, workers: int, min_shard: int) -> list[tuple[int, int]]:
    """Split ``[lo, hi)`` into at most ``workers`` contiguous near-equal runs."""
    size = hi - lo
    n = max(1, min(workers, size // min_shard))
    if n == 1:
        return [(lo, hi)]
    cuts = np.linspace(lo, hi, n + 1).astype(int)
    return [(int(cuts[t]), int(cuts[t + 1])) for t in range(n) if cuts[t] < cuts[t + 1]]


def _mp_context():
    """Pick the start method: env override, else fork (cheap, Linux).

    ``REPRO_START_METHOD`` forces a specific method (the spawn fallback
    path is exercised in CI this way); an unknown name fails loudly.
    """
    methods = mp.get_all_start_methods()
    env = os.environ.get(START_METHOD_ENV, "").strip()
    if env:
        if env not in methods:
            raise InvalidProblem(
                f"{START_METHOD_ENV} must be one of {methods}, got {env!r}"
            )
        return mp.get_context(env)
    return mp.get_context("fork" if "fork" in methods else "spawn")


def solve_dp_parallel(
    problem: TTProblem,
    workers: int | None = None,
    *,
    p: np.ndarray | None = None,
    min_shard: int = MIN_SHARD,
    policy: ResiliencePolicy | None = None,
    store=None,
    discipline: str | None = None,
    commit: str | None = None,
    tracer=None,
    metrics=None,
    progress=None,
) -> DPResult:
    """Supervised layer-parallel backward induction across ``workers`` processes.

    Produces bit-for-bit the same ``cost`` / ``best_action`` tables as
    :func:`solve_dp` and :func:`solve_dp_reference` (see the module
    docstring for why), with wall-clock scaling over the large middle
    layers of the subset lattice.  ``p`` may carry precomputed
    :func:`subset_weights`.

    ``policy`` configures fault handling (per-shard timeout, bounded
    retries, in-process fallback) and layer-granular checkpointing; the
    default :class:`ResiliencePolicy` retries crashed shards and falls
    back to the in-process kernel rather than failing the solve.  The
    recovery log lands on ``DPResult.recovery``.

    ``store`` selects where the tables live: ``None`` for the in-RAM
    default, a :class:`repro.store.StoreSpec` (e.g. ``kind="mmap"`` +
    ``spill_dir`` for a durable out-of-core solve), or an unopened
    :class:`repro.store.LayerStore` instance.

    ``discipline`` selects how shards treat the layer being computed:
    ``"strict"`` (default; explicit validity masks, no per-shard table
    snapshot) or ``"snapshot"`` (the legacy copy + re-``INF`` pass, kept
    one release behind ``REPRO_SHARD_DISCIPLINE``).  ``commit`` selects
    ``"async"`` (default; layer ``j`` commits on a background thread
    while layer ``j + 1`` computes, ``REPRO_COMMIT_MODE`` overrides) or
    ``"sync"`` (commit inline at the barrier).  All four combinations
    produce bit-identical tables.

    Telemetry is observational only — a traced solve writes bit-identical
    tables.  ``tracer`` is a :class:`repro.obs.Tracer` (``None`` inherits
    the ambient tracer, disabled by default); ``metrics`` an optional
    :class:`repro.obs.MetricsRegistry` to fill (one is created per solve
    otherwise — the snapshot lands on ``DPResult.metrics`` either way);
    ``progress`` an optional :class:`repro.obs.ProgressReporter` pinged
    at each layer barrier.
    """
    from .. import store as store_mod  # runtime import: store builds on core

    k, n_act = problem.k, problem.n_actions
    n_sub = 1 << k
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise InvalidProblem("workers must be >= 1")
    if policy is None:
        policy = ResiliencePolicy()

    # Validate any fault spec in the *parent*, before work is dispatched:
    # a typo'd REPRO_FAULT_SPEC must fail the solve, not silently never
    # fire inside a worker.  Discipline and commit mode resolve here for
    # the same reason — and so workers and stores receive the decision
    # explicitly instead of re-reading the environment at attach time.
    faults.env_fault_spec()
    faults.env_crash_spec()
    discipline = shard_discipline(discipline)
    commit = store_mod.commit_mode(commit)

    tr = tracer if tracer is not None else obs_trace.current()
    reg = metrics if metrics is not None else obs_metrics.MetricsRegistry()
    log = RecoveryLog()
    log.tracer = tr  # recovery events double as trace instants
    log.checkpoint = os.fspath(policy.checkpoint) if policy.checkpoint else None

    if k == 0:  # degenerate empty universe: nothing to diagnose
        cost = np.array([0.0])
        return DPResult(problem=problem, cost=cost,
                        best_action=np.array([-1], dtype=np.int64), op_count=0,
                        recovery=log.as_dict())

    if store is None:
        store = store_mod.StoreSpec()
    if isinstance(store, store_mod.StoreSpec):
        store = store_mod.open_store(store, problem, policy=policy, p=p)
    store.bind_telemetry(tr, reg)
    store.set_discipline(discipline)
    log.store = store.kind

    subsets = problem.subset_array
    costs = problem.cost_array
    is_test = problem.test_mask_array
    arena = LayerArena()

    def degrade_to_ram(current, exc) -> "store_mod.RamStore":
        """Swap a dying spill store for in-RAM tables (budget allowing).

        The tables' current contents — including every layer computed so
        far — carry over, so nothing is recomputed; the remaining layers
        finish single-process on the adopted store.  When the tables do
        not fit the RAM budget the original failure is what surfaces.
        """
        try:
            adopted = store_mod.RamStore.adopt(
                problem, current.cost, current.best, current.p,
                current.order, current.starts,
            )
        except SolverError as budget_exc:
            raise SolverError(
                f"spill store failed ({exc}) and falling back to RAM is not "
                f"possible: {budget_exc}"
            ) from exc
        adopted.bind_telemetry(tr, reg)
        adopted.set_discipline(discipline)
        current.close()
        log.degraded = True
        log.event("store-degraded", reason=str(exc), fallback="ram")
        return adopted

    # Open the store.  A spill store that cannot even allocate its files
    # (ENOSPC up front) degrades to a fresh in-RAM solve when the tables
    # fit the budget; otherwise the original failure surfaces.
    try:
        with tr.span("store.open", cat="store", kind=store.kind):
            report = store.open()
    except store_mod.StoreWriteError as exc:
        if store.kind != "mmap":
            raise
        fallback = store_mod.RamStore(problem, policy=policy, p=p)
        fallback.bind_telemetry(tr, reg)
        fallback.set_discipline(discipline)
        try:
            with tr.span("store.open", cat="store", kind=fallback.kind):
                report = fallback.open()
        except SolverError as budget_exc:
            raise SolverError(
                f"spill store failed to open ({exc}) and falling back to "
                f"RAM is not possible: {budget_exc}"
            ) from exc
        store.close()
        store = fallback
        log.store = store.kind
        log.degraded = True
        log.event("store-degraded", reason=str(exc), fallback="ram")

    state = {"store": store, "layer": 0}
    supervisor = None
    # Pipelined persistence: layer j's commit_layer runs on this thread
    # while the pool computes layer j+1.  Only worth spinning up when
    # commits do real I/O (slab writes, checkpoint saves).
    committer = None
    if commit == "async" and store.persists:
        committer = store_mod.AsyncCommitter(store, tracer=tr, metrics=reg)
    t_solve0 = time.monotonic()
    reg.inc("layers.total", k)
    # The solve's tracer is ambient for the whole loop so parent-side
    # deep sites (storage fault injection, kernels) reach it without
    # parameter threading; workers activate their own (see _solve_shard).
    with obs_trace.tracing(tr):
        try:
            valid = report.valid_layers
            if report.resumed:
                log.resumed_from_layer = report.completed_prefix
                log.event("resume", completed_layer=report.completed_prefix)
            if report.rederive_layers:
                log.rederived += len(report.rederive_layers)
                reg.inc("store.rederived", len(report.rederive_layers))
                log.event("rederive", layers=list(report.rederive_layers))
            log.events.extend(report.events)

            def solve_in_parent(lo: int, hi: int) -> int:
                """The small-layer/degraded/fallback path: same kernel,
                same bytes, running over whichever store currently holds
                the tables (the store picks snapshot vs strict
                discipline)."""
                ts = time.monotonic()
                n = state["store"].run_parent_slice(
                    lo, hi, subsets, costs, is_test, arena
                )
                dt = time.monotonic() - ts
                reg.inc("time.kernel_s", dt)
                reg.observe("shard.seconds", dt)
                tr.complete("parent-slice", "shard", ts, ts + dt,
                            layer=state["layer"], masks=n)
                return n

            access = store.worker_spec()
            if access is not None:
                # The parent resolved the discipline once; ship it in the
                # attach spec so workers never consult the environment.
                access = {**access, "discipline": discipline}
            if access is not None and workers > 1:
                def pool_factory():
                    return _mp_context().Pool(
                        workers,
                        initializer=_init_worker,
                        initargs=(access, subsets, costs, is_test),
                    )

                supervisor = Supervisor(
                    policy, pool_factory, _solve_shard, log,
                    tracer=tr, metrics=reg,
                )

            if progress is not None:
                progress.begin(k, n_sub)
            for j in range(1, k + 1):
                state["layer"] = j
                if j in valid:
                    reg.inc("layers.skipped")
                    if progress is not None:
                        stats = state["store"].commit_stats()
                        progress.layer_done(
                            j, state["store"].bounds(j)[1],
                            stats["committed_bytes"], stats["queued_bytes"],
                        )
                    continue
                st = state["store"]
                t0 = time.monotonic()
                lo, hi = st.bounds(j)
                shards = _shard_bounds(lo, hi, workers, min_shard)
                if len(shards) == 1 or supervisor is None or supervisor.degraded:
                    # Layer too small to amortize IPC (or the pool is gone,
                    # or this store cannot share tables with workers): solve
                    # in-process on the same tables — identical kernel,
                    # still a barrier.
                    done = solve_in_parent(lo, hi)
                    mode = "degraded" if log.degraded or (
                        supervisor is not None and supervisor.degraded
                    ) else "parent"
                else:
                    done = supervisor.run_layer(j, shards, solve_in_parent)
                    mode = "pool"
                if done != hi - lo:
                    # Must survive `python -O`: a lost shard is silent
                    # corruption, the one failure that may never be quiet.
                    raise SolverError(
                        f"layer {j} incomplete: {done} of {hi - lo} masks solved"
                    )
                dt = time.monotonic() - t0
                log.layer(j, dt, len(shards), mode)
                reg.inc("layers.computed")
                reg.observe("layer.seconds", dt)
                tr.complete("layer", "layer", t0, t0 + dt,
                            layer=j, masks=hi - lo, shards=len(shards), mode=mode)
                if discipline == "strict" and state["store"].kind == "ram":
                    # Copy traffic the snapshot discipline would have paid
                    # for this layer: one full C-table copy per shard.
                    reg.inc("snapshot.bytes_saved", len(shards) * n_sub * 8)
                try:
                    if committer is not None:
                        committer.submit(j)
                    else:
                        st.commit_layer(j)
                except store_mod.StoreWriteError as exc:
                    # Mid-solve disk failure: the layer's *values* are fine
                    # (they live in the tables; only persistence failed), so
                    # carry everything into RAM and finish single-process.
                    # An async failure surfaces here one barrier late —
                    # same handling, one extra computed layer carried over.
                    if committer is not None:
                        committer.close()
                        committer = None
                    if supervisor is not None:
                        supervisor.shutdown()
                        supervisor = None
                    state["store"] = degrade_to_ram(st, exc)
                if progress is not None:
                    stats = state["store"].commit_stats()
                    progress.layer_done(
                        j, hi, stats["committed_bytes"], stats["queued_bytes"]
                    )
            if committer is not None:
                # Every layer is computed; retire the commit pipeline
                # before declaring completion — "finish(True)" must imply
                # "all layers durably committed".
                try:
                    committer.drain()
                except store_mod.StoreWriteError as exc:
                    st = state["store"]
                    committer.close()
                    committer = None
                    if supervisor is not None:
                        supervisor.shutdown()
                        supervisor = None
                    state["store"] = degrade_to_ram(st, exc)
                else:
                    committer.close()
                    committer = None
            final = state["store"]
            final.finish(True)
            out_cost, out_best = final.result_tables()
        finally:
            # Terminate the pool *before* the store tears down its tables,
            # so a worker being repopulated can never attach vanished
            # blocks — and the committer before close(), because an
            # in-flight commit reads the store's live tables.  On a fault
            # path queued commits are dropped (the slabs land on resume).
            if supervisor is not None:
                supervisor.shutdown()
            if committer is not None:
                committer.close()
            state["store"].close()
            if progress is not None:
                progress.finish()

    reg.set_gauge("time.solve_s", round(time.monotonic() - t_solve0, 6))
    reg.inc("arena.grows", arena.grows)
    op_count = (n_sub - 1) * n_act
    return DPResult(
        problem=problem,
        cost=out_cost,
        best_action=out_best,
        op_count=op_count,
        recovery=log.as_dict(),
        metrics=reg.as_dict(),
    )
