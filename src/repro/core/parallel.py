"""Multi-core layer-parallel DP engine over shared memory.

This is the host-side realization of the paper's parallel structure: the
backward-induction recurrence has *no* dependencies inside a popcount
layer — ``C(S)`` for ``#S = j`` reads only ``C(S ∩ T_i)`` and
``C(S - T_i)``, both of strictly smaller popcount whenever the candidate
is valid.  The paper maps every ``(S, i)`` pair onto its own PE and runs
the layers as ASCEND phases (§6); here the same dataflow is mapped onto a
handful of OS processes:

* the ``C`` table (plus ``best_action``, the subset weights ``p`` and the
  layer-sorted mask order) lives in ``multiprocessing.shared_memory``;
* each layer is sharded into contiguous runs of masks, one task per
  worker; workers gather ``C`` from completed layers read-only and
  scatter their shard's results back into the shared table;
* the only synchronization is the per-layer barrier (the ``map`` return),
  exactly where the paper's ASCEND phases place theirs.

Determinism: each subset's argmin is computed *entirely inside one
worker* by scanning actions in index order through
:func:`repro.core.sequential.solve_layer_kernel` — sharding is over
subsets, never over actions — so the tie-break rule (lowest action index
wins) and the float evaluation order are bit-for-bit those of
:func:`solve_dp` and :func:`solve_dp_reference`, regardless of worker
count or scheduling order.

Same-layer reads cannot race: a gather index in the *current* layer only
occurs for candidates the kernel marks invalid (``inter == 0`` implies
``rest == S`` and vice versa), and those lanes are overwritten with
``INF`` before the argmin — whatever bytes were read never influence the
result.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from multiprocessing import shared_memory

import numpy as np

from ..util.bitops import popcount_array
from .problem import TTProblem
from .sequential import INF, DPResult, solve_layer_kernel, subset_weights

__all__ = [
    "solve_dp_parallel",
    "default_workers",
    "PARALLEL_MIN_K",
    "MIN_SHARD",
]

# Below this universe size the fork/IPC overhead dwarfs the layer work;
# the "auto" backend in repro.core.dispatch keeps such instances on the
# single-process solver.
PARALLEL_MIN_K = 16

# A layer slice must contain at least this many subsets to be worth
# shipping to a worker; smaller layers are solved in the parent process
# (same kernel, same shared table, zero IPC).
MIN_SHARD = 2048


def default_workers() -> int:
    """Worker count used when none is requested: one per core, capped."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, min(os.cpu_count() or 1, 8))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

_WORKER: dict | None = None


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block (the parent owns creation and unlink).

    Pool workers share the parent's resource-tracker process (both fork
    and spawn inherit it), so the attach-side ``register`` call that
    CPython issues is a set-level no-op and the parent's single ``unlink``
    leaves the tracker clean — no extra bookkeeping needed here.
    """
    return shared_memory.SharedMemory(name=name)


def _init_worker(shm_names, n_sub, subsets, costs, is_test):
    """Pool initializer: map the shared tables and stash static arrays."""
    global _WORKER
    blocks = {key: _attach(name) for key, name in shm_names.items()}
    _WORKER = {
        "blocks": blocks,
        "cost": np.ndarray(n_sub, dtype=np.float64, buffer=blocks["cost"].buf),
        "best": np.ndarray(n_sub, dtype=np.int64, buffer=blocks["best"].buf),
        "p": np.ndarray(n_sub, dtype=np.float64, buffer=blocks["p"].buf),
        "order": np.ndarray(n_sub, dtype=np.int64, buffer=blocks["order"].buf),
        "subsets": np.asarray(subsets, dtype=np.int64),
        "costs": np.asarray(costs, dtype=np.float64),
        "is_test": np.asarray(is_test, dtype=bool),
    }


def _solve_shard(bounds: tuple[int, int]) -> int:
    """Solve masks ``order[lo:hi]`` (a contiguous slice of one layer)."""
    lo, hi = bounds
    w = _WORKER
    layer = w["order"][lo:hi]
    layer_best, layer_arg = solve_layer_kernel(
        layer, w["p"][layer], w["cost"], w["subsets"], w["costs"], w["is_test"]
    )
    w["cost"][layer] = layer_best
    w["best"][layer] = layer_arg
    return hi - lo


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def _shard_bounds(lo: int, hi: int, workers: int, min_shard: int) -> list[tuple[int, int]]:
    """Split ``[lo, hi)`` into at most ``workers`` contiguous near-equal runs."""
    size = hi - lo
    n = max(1, min(workers, size // min_shard))
    if n == 1:
        return [(lo, hi)]
    cuts = np.linspace(lo, hi, n + 1).astype(int)
    return [(int(cuts[t]), int(cuts[t + 1])) for t in range(n) if cuts[t] < cuts[t + 1]]


def _mp_context():
    """Prefer fork (cheap, Linux); fall back to spawn elsewhere."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def solve_dp_parallel(
    problem: TTProblem,
    workers: int | None = None,
    *,
    p: np.ndarray | None = None,
    min_shard: int = MIN_SHARD,
) -> DPResult:
    """Layer-parallel backward induction across ``workers`` processes.

    Produces bit-for-bit the same ``cost`` / ``best_action`` tables as
    :func:`solve_dp` and :func:`solve_dp_reference` (see the module
    docstring for why), with wall-clock scaling over the large middle
    layers of the subset lattice.  ``p`` may carry precomputed
    :func:`subset_weights`.
    """
    k, n_act = problem.k, problem.n_actions
    n_sub = 1 << k
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError("workers must be >= 1")

    if p is None:
        p = subset_weights(problem)

    if k == 0:  # degenerate empty universe: nothing to diagnose
        cost = np.array([0.0])
        return DPResult(problem=problem, cost=cost,
                        best_action=np.array([-1], dtype=np.int64), op_count=0)

    masks = np.arange(n_sub, dtype=np.int64)
    layer_of = popcount_array(masks, k)
    # Stable sort => masks ascending inside each layer, layer 0 first.
    order = np.argsort(layer_of, kind="stable").astype(np.int64)
    layer_starts = np.searchsorted(layer_of[order], np.arange(k + 2))

    subsets = problem.subset_array
    costs = problem.cost_array
    is_test = problem.test_mask_array

    blocks: dict[str, shared_memory.SharedMemory] = {}
    pool = None
    cost = best = None
    try:
        for key, nbytes in (
            ("cost", n_sub * 8),
            ("best", n_sub * 8),
            ("p", n_sub * 8),
            ("order", n_sub * 8),
        ):
            blocks[key] = shared_memory.SharedMemory(create=True, size=nbytes)
        cost = np.ndarray(n_sub, dtype=np.float64, buffer=blocks["cost"].buf)
        best = np.ndarray(n_sub, dtype=np.int64, buffer=blocks["best"].buf)
        cost[:] = INF
        cost[0] = 0.0
        best[:] = -1
        np.ndarray(n_sub, dtype=np.float64, buffer=blocks["p"].buf)[:] = p
        np.ndarray(n_sub, dtype=np.int64, buffer=blocks["order"].buf)[:] = order

        shm_names = {key: blk.name for key, blk in blocks.items()}

        def get_pool():
            # Lazy: fork only once a layer is actually big enough to
            # shard, so small instances never pay process start-up.
            nonlocal pool
            if pool is None:
                pool = _mp_context().Pool(
                    workers,
                    initializer=_init_worker,
                    initargs=(shm_names, n_sub, subsets, costs, is_test),
                )
            return pool

        for j in range(1, k + 1):
            lo, hi = int(layer_starts[j]), int(layer_starts[j + 1])
            shards = _shard_bounds(lo, hi, workers, min_shard)
            if workers == 1 or len(shards) == 1:
                # Layer too small to amortize IPC: solve in-process on the
                # same shared table (identical kernel, still a barrier).
                layer = order[lo:hi]
                layer_best, layer_arg = solve_layer_kernel(
                    layer, p[layer], cost, subsets, costs, is_test
                )
                cost[layer] = layer_best
                best[layer] = layer_arg
            else:
                done = sum(get_pool().map(_solve_shard, shards, chunksize=1))
                assert done == hi - lo  # every mask of the layer solved
        out_cost = cost.copy()
        out_best = best.copy()
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
        cost = best = None  # drop the buffer views before close()
        for blk in blocks.values():
            blk.close()
            blk.unlink()

    op_count = (n_sub - 1) * n_act
    return DPResult(problem=problem, cost=out_cost, best_action=out_best, op_count=op_count)
