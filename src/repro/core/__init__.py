"""The test-and-treatment problem: model, sequential solvers, baselines."""

from .binary_testing import (
    BinaryTestingProblem,
    complete_test_instance,
    entropy_lower_bound,
    huffman_cost,
    solve_binary_testing,
    to_tt_problem,
)
from .bounds import (
    ActionCriticality,
    action_criticality,
    entropy_actions_floor,
    lower_bound,
    treatment_floor,
)
from .bruteforce import best_tree_exhaustive, enumerate_trees, min_cost_exhaustive
from .generators import (
    WORKLOADS,
    fault_location_instance,
    lab_analysis_instance,
    medical_instance,
    random_instance,
    taxonomy_instance,
)
from .heuristics import (
    HEURISTICS,
    cost_per_resolution,
    greedy_tree,
    information_gain,
    treatment_only,
)
from .dispatch import (
    BACKENDS,
    cached_subset_weights,
    resolve_backend,
    solve,
    weights_cache_nbytes,
)
from .engine import SolverEngine
from .kernels import (
    LayerArena,
    LayerPlan,
    layer_plan,
    solve_layer_kernel_fused,
)
from .errors import (
    CheckpointMismatch,
    InvalidProblem,
    ShardTimeout,
    SolverError,
    WorkerCrash,
)
from .faults import Fault, parse_fault_spec
from .parallel import PARALLEL_MIN_K, default_workers, solve_dp_parallel
from .supervisor import (
    RecoveryLog,
    ResiliencePolicy,
    SharedTables,
    load_checkpoint,
    problem_content_hash,
    save_checkpoint,
)
from .problem import Action, ActionKind, TTProblem
from .transforms import (
    CanonicalizationReport,
    canonicalize,
    merge_equivalent_objects,
    remove_dominated_treatments,
    remove_duplicate_actions,
)
from .session import DiagnosisSession, SessionStep
from .sequential import (
    DPResult,
    layer_sizes,
    optimal_cost,
    solve_dp,
    solve_dp_reference,
    solve_layer_kernel,
    subset_weights,
)
from .topdown import TopDownResult, solve_dp_topdown, solve_minimax
from .tree import SimulationStep, TTNode, TTTree
from .treeops import (
    ObjectOutcome,
    action_usage,
    expected_action_count,
    per_object_outcomes,
    to_dot,
    trees_equal,
    worst_case_cost,
)

__all__ = [
    "Action",
    "ActionKind",
    "TTProblem",
    "TTNode",
    "TTTree",
    "SimulationStep",
    "DPResult",
    "solve",
    "resolve_backend",
    "BACKENDS",
    "SolverError",
    "WorkerCrash",
    "ShardTimeout",
    "CheckpointMismatch",
    "InvalidProblem",
    "ResiliencePolicy",
    "RecoveryLog",
    "SharedTables",
    "Fault",
    "parse_fault_spec",
    "problem_content_hash",
    "save_checkpoint",
    "load_checkpoint",
    "solve_dp",
    "solve_dp_reference",
    "solve_dp_parallel",
    "solve_layer_kernel",
    "solve_layer_kernel_fused",
    "LayerArena",
    "LayerPlan",
    "layer_plan",
    "SolverEngine",
    "default_workers",
    "PARALLEL_MIN_K",
    "cached_subset_weights",
    "weights_cache_nbytes",
    "solve_dp_topdown",
    "solve_minimax",
    "TopDownResult",
    "subset_weights",
    "optimal_cost",
    "layer_sizes",
    "enumerate_trees",
    "min_cost_exhaustive",
    "best_tree_exhaustive",
    "greedy_tree",
    "cost_per_resolution",
    "information_gain",
    "treatment_only",
    "HEURISTICS",
    "BinaryTestingProblem",
    "to_tt_problem",
    "solve_binary_testing",
    "huffman_cost",
    "entropy_lower_bound",
    "complete_test_instance",
    "random_instance",
    "medical_instance",
    "fault_location_instance",
    "taxonomy_instance",
    "lab_analysis_instance",
    "WORKLOADS",
    "canonicalize",
    "CanonicalizationReport",
    "ObjectOutcome",
    "per_object_outcomes",
    "expected_action_count",
    "worst_case_cost",
    "action_usage",
    "trees_equal",
    "to_dot",
    "merge_equivalent_objects",
    "remove_dominated_treatments",
    "remove_duplicate_actions",
    "treatment_floor",
    "entropy_actions_floor",
    "lower_bound",
    "action_criticality",
    "ActionCriticality",
    "DiagnosisSession",
    "SessionStep",
]
