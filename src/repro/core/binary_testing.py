"""The binary testing problem as a TT special case.

The paper positions TT as a generalization of *binary testing* (Garey;
Loveland): identify the faulty object exactly, using tests only, at minimum
expected cost.  The reduction: give every object a singleton treatment.

A subtlety the naive reduction misses: a *cheap* treatment doubles as a
probe ("treat j; if the branch continues, j was not faulty"), so zero-cost
singleton treatments would make every instance free.  We therefore price
the singleton treatments high enough that treating before full isolation is
provably suboptimal — wasting a treatment on a non-singleton live set costs
at least ``c_treat * w_min`` extra, which we make exceed the total test
budget ``sum_i c_i * p(U)`` any identification tree can spend.  The TT
optimum then decomposes exactly as

    OPT_TT = OPT_identification + c_treat * p(U)

and we recover the identification cost by subtraction.

Two independent cross-checks make this module a validation anchor:

* :func:`huffman_cost` — when *every* non-trivial subset is available as a
  unit-cost test, optimal identification trees are exactly Huffman trees
  (a test tree is a prefix code and vice versa), so the DP optimum must
  match the Huffman cost.
* :func:`entropy_lower_bound` — Shannon's bound: no unit-cost test tree can
  beat ``p(U) * H(P / p(U))`` expected tests.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from .problem import Action, TTProblem
from .dispatch import solve
from .tree import TTTree

__all__ = [
    "BinaryTestingProblem",
    "to_tt_problem",
    "safe_treatment_cost",
    "solve_binary_testing",
    "huffman_cost",
    "entropy_lower_bound",
    "complete_test_instance",
]


@dataclass(frozen=True)
class BinaryTestingProblem:
    """Identification-only instance: tests with costs, no treatments."""

    k: int
    weights: tuple[float, ...]
    tests: tuple[tuple[int, float], ...]  # (subset mask, cost) pairs

    def __post_init__(self) -> None:
        if len(self.weights) != self.k:
            raise ValueError("weight count must equal k")
        if any(not (w > 0) for w in self.weights):
            raise ValueError("weights must be strictly positive")
        full = (1 << self.k) - 1
        for mask, cost in self.tests:
            if mask & ~full:
                raise ValueError("test references objects outside the universe")
            if cost < 0:
                raise ValueError("test costs must be non-negative")

    @property
    def total_weight(self) -> float:
        return float(sum(self.weights))


def safe_treatment_cost(btp: BinaryTestingProblem) -> float:
    """A singleton-treatment cost that forbids probe-style treating.

    Wasting a treatment on a non-singleton live set ``S`` (treating ``j``
    with ``p(S) > P_j``) incurs extra expected cost at least
    ``c_treat * w_min`` while saving at most the entire test budget
    ``sum_i c_i * p(U)`` — so any ``c_treat`` strictly above the ratio
    makes isolate-then-treat optimal.
    """
    w_min = min(btp.weights)
    test_budget = sum(cost for _, cost in btp.tests) * btp.total_weight
    return test_budget / w_min + 1.0


def to_tt_problem(
    btp: BinaryTestingProblem, treatment_cost: float | None = None
) -> TTProblem:
    """Reduce binary testing to TT with priced singleton treatments."""
    c_treat = safe_treatment_cost(btp) if treatment_cost is None else treatment_cost
    actions = [
        Action.test(mask, cost, name=f"t{idx}")
        for idx, (mask, cost) in enumerate(btp.tests)
    ]
    actions += [
        Action.treatment(1 << j, c_treat, name=f"id{j}") for j in range(btp.k)
    ]
    return TTProblem.build(btp.weights, actions, name="binary-testing-reduction")


def solve_binary_testing(btp: BinaryTestingProblem) -> tuple[float, TTTree]:
    """Optimal identification cost and TT procedure, via the reduction.

    The returned cost has the treatment surcharge ``c_treat * p(U)``
    removed, i.e. it is the pure expected testing cost; the returned tree
    still contains the terminal singleton treatments.
    """
    c_treat = safe_treatment_cost(btp)
    tt = to_tt_problem(btp, treatment_cost=c_treat)
    result = solve(tt)
    if not result.feasible:
        raise ValueError("instance admits no identification procedure")
    ident_cost = result.optimal_cost - c_treat * btp.total_weight
    # Guard against float dust from the subtraction of a large surcharge.
    if ident_cost < 0 and ident_cost > -1e-6 * max(1.0, c_treat):
        ident_cost = 0.0
    return ident_cost, result.tree()


def huffman_cost(weights) -> float:
    """Expected cost of a Huffman tree over ``weights`` (unnormalized).

    Equals the sum of all internal-node weights, i.e. the optimal expected
    number of unit-cost binary splits needed to isolate one item.
    """
    ws = [float(w) for w in weights]
    if len(ws) == 1:
        return 0.0
    # Heap entries carry an insertion counter to break float ties stably.
    heap = [(w, i) for i, w in enumerate(ws)]
    heapq.heapify(heap)
    counter = len(ws)
    total = 0.0
    while len(heap) > 1:
        a, _ = heapq.heappop(heap)
        b, _ = heapq.heappop(heap)
        total += a + b
        heapq.heappush(heap, (a + b, counter))
        counter += 1
    return total


def entropy_lower_bound(weights) -> float:
    """Shannon bound on expected unit-cost tests: ``p(U) * H(P/p(U))``."""
    ws = [float(w) for w in weights]
    total = sum(ws)
    if total <= 0:
        raise ValueError("total weight must be positive")
    h = 0.0
    for w in ws:
        q = w / total
        if q > 0:
            h -= q * math.log2(q)
    return total * h


def complete_test_instance(weights) -> BinaryTestingProblem:
    """All ``2^k - 2`` non-trivial subsets as unit-cost tests.

    On this instance the identification optimum must equal
    :func:`huffman_cost` — the strongest independent validation of the TT
    recurrence available.
    """
    ws = tuple(float(w) for w in weights)
    k = len(ws)
    full = (1 << k) - 1
    tests = tuple((mask, 1.0) for mask in range(1, full))
    return BinaryTestingProblem(k=k, weights=ws, tests=tests)
