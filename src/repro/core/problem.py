"""The test-and-treatment (TT) problem model.

A TT problem (Loveland's generalization of binary testing) consists of

* a universe ``U = {0, .., k-1}`` of objects, exactly one of which is
  faulty, with a-priori weights ``P_j >= 0`` summing to a strictly
  positive total (not necessarily normalized — the paper explicitly works
  with unnormalized weights so that subproblems are themselves
  well-formed; individual zero weights model objects ruled out a priori
  but still structurally present, as arises when conditioning on test
  outcomes);
* ``N`` *actions* ``T_1 .. T_N``, each a subset of ``U`` with execution
  cost ``c_i >= 0``.  The first ``m`` actions are **tests**, the rest are
  **treatments**.

Applying a test ``T`` to a live set ``S`` splits it into ``S & T``
(positive response) and ``S - T`` (negative).  Applying a treatment ``T``
cures the faulty object if it lies in ``T`` (terminating that branch) and
otherwise continues on ``S - T``.  A TT *procedure* is a binary decision
tree built from these actions; it is *successful* if every object's branch
terminates in a treatment covering it.  A problem specification is
*adequate* if a successful procedure exists.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..util.bitops import bits_of, mask_of, subset_str

__all__ = ["ActionKind", "Action", "TTProblem"]


class ActionKind(str, Enum):
    """Whether an action is a test (splits) or a treatment (cures)."""

    TEST = "test"
    TREATMENT = "treatment"


@dataclass(frozen=True)
class Action:
    """A single test or treatment.

    Attributes
    ----------
    kind:
        :class:`ActionKind.TEST` or :class:`ActionKind.TREATMENT`.
    subset:
        Bitmask over the universe: the set the test responds positively to,
        or the set of objects the treatment cures.
    cost:
        Non-negative execution cost ``c_i``.
    name:
        Optional human-readable label (used when printing procedures).
    """

    kind: ActionKind
    subset: int
    cost: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.subset < 0:
            raise ValueError("action subset bitmask must be non-negative")
        if not (self.cost >= 0):
            raise ValueError("action cost must be non-negative")

    @property
    def is_test(self) -> bool:
        return self.kind is ActionKind.TEST

    @property
    def is_treatment(self) -> bool:
        return self.kind is ActionKind.TREATMENT

    def label(self, index: int | None = None) -> str:
        """Display label: explicit name, else ``test#i``/``treat#i``."""
        if self.name:
            return self.name
        stem = "test" if self.is_test else "treat"
        return f"{stem}#{index}" if index is not None else stem

    @staticmethod
    def test(subset, cost: float, name: str = "") -> "Action":
        """Convenience constructor; ``subset`` may be a mask or an iterable."""
        return Action(ActionKind.TEST, _as_mask(subset), cost, name)

    @staticmethod
    def treatment(subset, cost: float, name: str = "") -> "Action":
        """Convenience constructor; ``subset`` may be a mask or an iterable."""
        return Action(ActionKind.TREATMENT, _as_mask(subset), cost, name)


def _as_mask(subset) -> int:
    if isinstance(subset, (int, np.integer)):
        return int(subset)
    return mask_of(subset)


@dataclass(frozen=True)
class TTProblem:
    """A complete test-and-treatment problem specification.

    Attributes
    ----------
    k:
        Number of objects in the universe ``U = {0..k-1}``.
    weights:
        Tuple of ``k`` positive a-priori weights ``P_j``.
    actions:
        Tuple of :class:`Action`; order defines the action index ``i``.
    """

    k: int
    weights: tuple[float, ...]
    actions: tuple[Action, ...]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("universe must contain at least one object")
        if len(self.weights) != self.k:
            raise ValueError(f"expected {self.k} weights, got {len(self.weights)}")
        if any(not (w >= 0) for w in self.weights):
            raise ValueError("object weights must be non-negative")
        if not (sum(self.weights) > 0):
            raise ValueError("total object weight must be strictly positive")
        if not self.actions:
            raise ValueError("a TT problem needs at least one action")
        full = self.universe
        for idx, a in enumerate(self.actions):
            if a.subset & ~full:
                raise ValueError(
                    f"action {idx} ({a.label(idx)}) references objects outside U"
                )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def universe(self) -> int:
        """Bitmask of the full universe ``U``."""
        return (1 << self.k) - 1

    @property
    def n_actions(self) -> int:
        """``N``: total number of actions."""
        return len(self.actions)

    @property
    def n_tests(self) -> int:
        """``m``: number of test actions."""
        return sum(1 for a in self.actions if a.is_test)

    @property
    def n_treatments(self) -> int:
        return self.n_actions - self.n_tests

    @property
    def weight_array(self) -> np.ndarray:
        return np.asarray(self.weights, dtype=np.float64)

    @property
    def cost_array(self) -> np.ndarray:
        return np.asarray([a.cost for a in self.actions], dtype=np.float64)

    @property
    def subset_array(self) -> np.ndarray:
        return np.asarray([a.subset for a in self.actions], dtype=np.int64)

    @property
    def test_mask_array(self) -> np.ndarray:
        """Boolean vector: ``True`` where action ``i`` is a test."""
        return np.asarray([a.is_test for a in self.actions], dtype=bool)

    def weight_of(self, mask: int) -> float:
        """``p(S)``: total weight of the objects in set ``mask``."""
        return float(sum(self.weights[j] for j in bits_of(mask)))

    # ------------------------------------------------------------------
    # Adequacy
    # ------------------------------------------------------------------

    def treatable_mask(self) -> int:
        """Objects covered by at least one treatment (cheap necessary check)."""
        out = 0
        for a in self.actions:
            if a.is_treatment:
                out |= a.subset
        return out

    def is_adequate(self) -> bool:
        """True iff a successful TT procedure exists for the full universe.

        Coverage by treatments is exactly adequacy: if every object lies in
        some treatment, the straight-line procedure that applies every
        treatment in sequence treats each object eventually; conversely an
        untreatable object can never terminate its branch.
        """
        return self.treatable_mask() == self.universe

    def require_adequate(self) -> None:
        if not self.is_adequate():
            missing = self.universe & ~self.treatable_mask()
            raise ValueError(
                "inadequate TT specification: no treatment covers objects "
                + subset_str(missing)
            )

    # ------------------------------------------------------------------
    # Construction helpers / serialization
    # ------------------------------------------------------------------

    @staticmethod
    def build(weights, actions, name: str = "") -> "TTProblem":
        """Build from any weight iterable and action iterable."""
        weights = tuple(float(w) for w in weights)
        return TTProblem(
            k=len(weights), weights=weights, actions=tuple(actions), name=name
        )

    def with_actions(self, actions) -> "TTProblem":
        """Copy of this problem with a different action list."""
        return TTProblem(
            k=self.k, weights=self.weights, actions=tuple(actions), name=self.name
        )

    def paper_order(self) -> "TTProblem":
        """Reorder actions so tests precede treatments (paper's convention)."""
        tests = [a for a in self.actions if a.is_test]
        treats = [a for a in self.actions if a.is_treatment]
        return self.with_actions(tests + treats)

    def to_json(self) -> str:
        """Serialize to a JSON string (round-trips via :meth:`from_json`)."""
        return json.dumps(
            {
                "name": self.name,
                "k": self.k,
                "weights": list(self.weights),
                "actions": [
                    {
                        "kind": a.kind.value,
                        "subset": a.subset,
                        "cost": a.cost,
                        "name": a.name,
                    }
                    for a in self.actions
                ],
            }
        )

    @staticmethod
    def from_json(text: str) -> "TTProblem":
        data = json.loads(text)
        actions = tuple(
            Action(ActionKind(d["kind"]), int(d["subset"]), float(d["cost"]), d.get("name", ""))
            for d in data["actions"]
        )
        return TTProblem(
            k=int(data["k"]),
            weights=tuple(float(w) for w in data["weights"]),
            actions=actions,
            name=data.get("name", ""),
        )

    # ------------------------------------------------------------------
    # Pretty printing
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable summary of the specification."""
        lines = [
            f"TT problem{' ' + repr(self.name) if self.name else ''}: "
            f"k={self.k} objects, {self.n_tests} tests, {self.n_treatments} treatments"
        ]
        lines.append(
            "weights: " + ", ".join(f"P_{j}={w:g}" for j, w in enumerate(self.weights))
        )
        for i, a in enumerate(self.actions):
            lines.append(
                f"  [{i}] {a.kind.value:9s} {a.label(i):12s} "
                f"set={subset_str(a.subset)} cost={a.cost:g}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    def stats(self) -> dict:
        """Size statistics used by the complexity analysis and benches."""
        return {
            "k": self.k,
            "n_actions": self.n_actions,
            "n_tests": self.n_tests,
            "n_treatments": self.n_treatments,
            "n_subsets": 1 << self.k,
            "pe_demand": self.n_actions << self.k,  # O(N * 2^k) PEs
            "total_weight": float(self.weight_array.sum()),
            "total_cost": float(self.cost_array.sum()),
            "adequate": self.is_adequate(),
        }
