"""Unified ``solve()`` entry point over the host-side DP backends.

``repro.core.solve(problem)`` is the one call sites should use: it picks
the right engine for the instance size, reuses the per-problem
``subset_weights`` vector across repeated solves, and always returns the
same :class:`~repro.core.sequential.DPResult` regardless of backend.

Backends
--------

``"numpy"``
    :func:`~repro.core.sequential.solve_dp` — single-process, vectorized
    per popcount layer.  The right choice for small/medium ``k``.
``"parallel"``
    :func:`~repro.core.parallel.solve_dp_parallel` — multi-core
    shared-memory layer-parallel engine.  Worth the fork/IPC overhead
    once the middle layers hold tens of thousands of subsets.
``"reference"``
    :func:`~repro.core.sequential.solve_dp_reference` — the plain-Python
    oracle; exposed here so differential tests and debugging sessions go
    through the same front door.
``"auto"``
    ``"parallel"`` iff the instance is large enough
    (``k >= PARALLEL_MIN_K``) *and* more than one worker is actually
    available; otherwise ``"numpy"``.

All backends honour the same determinism contract (see
:mod:`repro.core.sequential`), so switching backends never changes
``cost`` or ``best_action`` — not even in the last bit.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache

import numpy as np

from .errors import InvalidProblem
from .parallel import PARALLEL_MIN_K, default_workers, solve_dp_parallel
from .problem import TTProblem
from .sequential import DPResult, solve_dp, solve_dp_reference, subset_weights
from .supervisor import ResiliencePolicy

__all__ = ["solve", "resolve_backend", "cached_subset_weights", "BACKENDS"]

BACKENDS = ("auto", "numpy", "parallel", "reference")


@lru_cache(maxsize=8)
def _subset_weights_cached(problem: TTProblem) -> np.ndarray:
    # Cache bounded: at k=20 one entry is an 8 MiB vector.  The array is
    # shared between callers, so freeze it against accidental mutation.
    p = subset_weights(problem)
    p.setflags(write=False)
    return p


def cached_subset_weights(problem: TTProblem) -> np.ndarray:
    """Memoized :func:`subset_weights` (read-only view, keyed by problem).

    ``TTProblem`` is a frozen, hashable dataclass, so structurally equal
    instances share one cached vector across repeated solves.
    """
    return _subset_weights_cached(problem)


def resolve_backend(
    problem: TTProblem, backend: str = "auto", workers: int | None = None
) -> tuple[str, int]:
    """Resolve ``(backend, workers)`` the way :func:`solve` will run them.

    Exposed so callers (CLI, benchmarks) can report what actually
    executed when they asked for ``"auto"``.
    """
    if backend not in BACKENDS:
        raise InvalidProblem(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    eff_workers = workers if workers is not None else default_workers()
    if backend == "auto":
        big = problem.k >= PARALLEL_MIN_K
        backend = "parallel" if (big and eff_workers > 1) else "numpy"
    if backend != "parallel":
        eff_workers = 1
    return backend, max(1, eff_workers)


def solve(
    problem: TTProblem,
    backend: str = "auto",
    workers: int | None = None,
    *,
    policy: ResiliencePolicy | None = None,
    checkpoint: str | None = None,
) -> DPResult:
    """Solve a TT instance with the selected (or auto-selected) backend.

    ``policy`` (a :class:`~repro.core.supervisor.ResiliencePolicy`)
    configures the parallel backend's fault handling — per-shard timeout,
    bounded retries, in-process fallback — and ``checkpoint`` is a
    shorthand for ``policy.checkpoint``: the path of a ``.ckpt`` file
    written after every layer barrier and resumed from (after a content-
    hash check) when the file already exists.  Both are ignored by the
    single-process backends, which have no failure domain: there is
    nothing to retry and nothing to leak.
    """
    backend, eff_workers = resolve_backend(problem, backend, workers)
    if checkpoint is not None:
        policy = dataclasses.replace(
            policy or ResiliencePolicy(), checkpoint=checkpoint
        )
    if backend == "reference":
        return solve_dp_reference(problem)
    p = cached_subset_weights(problem)
    if backend == "parallel":
        return solve_dp_parallel(problem, workers=eff_workers, p=p, policy=policy)
    return solve_dp(problem, p=p)
