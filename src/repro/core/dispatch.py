"""Unified ``solve()`` entry point over the host-side DP backends.

``repro.core.solve(problem)`` is the one call sites should use: it picks
the right engine for the instance size, reuses the per-problem
``subset_weights`` vector across repeated solves, and always returns the
same :class:`~repro.core.sequential.DPResult` regardless of backend.

Backends
--------

``"numpy"``
    :func:`~repro.core.sequential.solve_dp` — single-process, vectorized
    per popcount layer.  The right choice for small/medium ``k``.
``"parallel"``
    :func:`~repro.core.parallel.solve_dp_parallel` — multi-core
    shared-memory layer-parallel engine.  Worth the fork/IPC overhead
    once the middle layers hold tens of thousands of subsets.
``"native"``
    :func:`~repro.core.sequential.solve_dp` driven by the numba-jitted
    layer kernel (:mod:`repro.core.native`).  numba is an optional
    dependency; when it is absent the request degrades loudly (one
    ``RuntimeWarning``) to ``"numpy"`` — never silently.
``"reference"``
    :func:`~repro.core.sequential.solve_dp_reference` — the plain-Python
    oracle; exposed here so differential tests and debugging sessions go
    through the same front door.
``"auto"``
    ``"parallel"`` iff the instance is large enough
    (``k >= PARALLEL_MIN_K``) *and* more than one worker is actually
    available; otherwise ``"numpy"``.  ``"native"`` is opt-in only: the
    auto ladder never selects it, so default behaviour is independent of
    which optional extras happen to be installed.

All backends honour the same determinism contract (see
:mod:`repro.core.sequential`), so switching backends never changes
``cost`` or ``best_action`` — not even in the last bit.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
from collections import OrderedDict

import numpy as np

from ..obs import trace as obs_trace
from .errors import InvalidProblem
from .kernels import plan_cache_stats
from .native import native_available, warn_native_fallback
from .parallel import PARALLEL_MIN_K, default_workers, solve_dp_parallel
from .problem import TTProblem
from .sequential import DPResult, solve_dp, solve_dp_reference, subset_weights
from .supervisor import ResiliencePolicy

__all__ = [
    "solve",
    "resolve_backend",
    "cached_subset_weights",
    "weights_cache_nbytes",
    "weights_cache_stats",
    "BACKENDS",
    "WEIGHTS_CACHE_ENV",
    "DEFAULT_WEIGHTS_CACHE_BYTES",
]

BACKENDS = ("auto", "numpy", "parallel", "native", "reference")

# Byte budget for the subset-weights cache; override via the env var.
# At k = 20 one vector is 8 MiB, so the default keeps roughly eight of
# the largest instances (or hundreds of small ones).
DEFAULT_WEIGHTS_CACHE_BYTES = 64 * 2**20
WEIGHTS_CACHE_ENV = "REPRO_WEIGHTS_CACHE_BYTES"

_WEIGHTS_LOCK = threading.Lock()
_WEIGHTS_CACHE: OrderedDict[tuple, np.ndarray] = OrderedDict()
_WEIGHTS_STATS = {"hits": 0, "misses": 0}


def _weights_budget() -> int:
    """Cache budget in bytes, validated loudly (read per call: testable)."""
    env = os.environ.get(WEIGHTS_CACHE_ENV, "").strip()
    if not env:
        return DEFAULT_WEIGHTS_CACHE_BYTES
    try:
        value = int(env)
    except ValueError:
        raise InvalidProblem(
            f"{WEIGHTS_CACHE_ENV} must be a non-negative integer, got {env!r}"
        ) from None
    if value < 0:
        raise InvalidProblem(f"{WEIGHTS_CACHE_ENV} must be >= 0, got {value}")
    return value


def weights_cache_nbytes() -> int:
    """Bytes currently pinned by the subset-weights cache."""
    with _WEIGHTS_LOCK:
        return sum(arr.nbytes for arr in _WEIGHTS_CACHE.values())


def weights_cache_stats() -> dict:
    """Lifetime hit/miss counts of the subset-weights cache (a copy)."""
    with _WEIGHTS_LOCK:
        return dict(_WEIGHTS_STATS)


def _clear_weights_cache() -> None:
    """Test hook: drop every cached weights vector (and its stats)."""
    with _WEIGHTS_LOCK:
        _WEIGHTS_CACHE.clear()
        _WEIGHTS_STATS["hits"] = 0
        _WEIGHTS_STATS["misses"] = 0


def cached_subset_weights(problem: TTProblem) -> np.ndarray:
    """Memoized :func:`subset_weights` (read-only, keyed by the weights).

    The key is ``problem.weights`` alone — the vector depends on nothing
    else — so near-identical instances (e.g. the action-removal loop in
    :mod:`repro.core.bounds`, which re-solves the same universe with one
    action deleted) share a single cached vector.

    The cache is LRU with a *byte* budget (``REPRO_WEIGHTS_CACHE_BYTES``,
    default 64 MiB): entries are evicted oldest-first once the resident
    vectors exceed the budget, and a vector larger than the whole budget
    is returned uncached, so the cache can never pin more than the
    budget plus nothing.
    """
    key = problem.weights
    with _WEIGHTS_LOCK:
        cached = _WEIGHTS_CACHE.get(key)
        if cached is not None:
            _WEIGHTS_CACHE.move_to_end(key)
            _WEIGHTS_STATS["hits"] += 1
            return cached
        _WEIGHTS_STATS["misses"] += 1
    p = subset_weights(problem)
    p.setflags(write=False)
    budget = _weights_budget()
    if p.nbytes > budget:
        return p
    with _WEIGHTS_LOCK:
        existing = _WEIGHTS_CACHE.get(key)
        if existing is not None:  # raced another thread: keep one copy
            _WEIGHTS_CACHE.move_to_end(key)
            return existing
        _WEIGHTS_CACHE[key] = p
        total = sum(arr.nbytes for arr in _WEIGHTS_CACHE.values())
        while total > budget and _WEIGHTS_CACHE:
            _, evicted = _WEIGHTS_CACHE.popitem(last=False)
            total -= evicted.nbytes
    return p


def resolve_backend(
    problem: TTProblem, backend: str = "auto", workers: int | None = None
) -> tuple[str, int]:
    """Resolve ``(backend, workers)`` the way :func:`solve` will run them.

    Exposed so callers (CLI, benchmarks) can report what actually
    executed when they asked for ``"auto"``.
    """
    if backend not in BACKENDS:
        raise InvalidProblem(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    eff_workers = workers if workers is not None else default_workers()
    if backend == "auto":
        big = problem.k >= PARALLEL_MIN_K
        backend = "parallel" if (big and eff_workers > 1) else "numpy"
    elif backend == "native" and not native_available():
        warn_native_fallback()
        backend = "numpy"
    if backend != "parallel":
        eff_workers = 1
    return backend, max(1, eff_workers)


def solve(
    problem: TTProblem,
    backend: str = "auto",
    workers: int | None = None,
    *,
    policy: ResiliencePolicy | None = None,
    checkpoint: str | None = None,
    store: str | None = None,
    spill_dir: str | None = None,
    discipline: str | None = None,
    commit: str | None = None,
    engine=None,
    tracer=None,
    progress=None,
) -> DPResult:
    """Solve a TT instance with the selected (or auto-selected) backend.

    ``policy`` (a :class:`~repro.core.supervisor.ResiliencePolicy`)
    configures the parallel backend's fault handling — per-shard timeout,
    bounded retries, in-process fallback — and ``checkpoint`` is a
    shorthand for ``policy.checkpoint``: the path of a ``.ckpt`` file
    written after every layer barrier and resumed from (after a content-
    hash check) when the file already exists.  Checkpointing is a
    parallel-supervisor feature: requesting it under ``"auto"`` forces
    the parallel backend (even below the auto size threshold, so the
    checkpoint is actually written and resumed), and requesting it with
    an explicit single-process backend raises :class:`InvalidProblem`
    rather than silently running without checkpoint support — a resume
    that silently never happens is indistinguishable from divergence.

    ``store`` / ``spill_dir`` select where the DP tables live (see
    :mod:`repro.store`): ``store`` is one of ``"auto"`` / ``"ram"`` /
    ``"mmap"`` (or a prebuilt :class:`repro.store.StoreSpec`), and
    ``spill_dir`` names the durable spill directory the mmap store
    commits its layers into.  The mmap store rides the parallel solve
    loop, so — like checkpointing — it forces the parallel backend under
    ``"auto"`` and refuses an explicit single-process backend.  It also
    *replaces* checkpointing (the manifest already persists every layer
    durably), so combining the two is rejected.  Resume is implicit:
    reopening the same ``spill_dir`` skips every layer whose checksum
    verifies.

    ``engine`` — a warm :class:`~repro.core.engine.SolverEngine` — routes
    the solve through the engine's amortized pool and tables (its own
    backend/worker configuration wins over the arguments here).  The
    engine path is bit-for-bit identical to a cold solve.  Checkpointed,
    custom-policy or spilled solves carry per-solve failure-domain state
    the warm engine cannot share, so they fall through to the cold path.

    ``discipline`` / ``commit`` tune the parallel solve loop (see
    :func:`~repro.core.parallel.solve_dp_parallel`): shard discipline
    ``"strict"`` (default) vs the legacy ``"snapshot"``, and layer-commit
    mode ``"async"`` (default) vs ``"sync"``.  Both default from
    ``REPRO_SHARD_DISCIPLINE`` / ``REPRO_COMMIT_MODE`` and are shard/
    persistence mechanics only — single-process backends ignore them and
    every combination yields bit-identical tables.

    ``tracer`` / ``progress`` attach observability (see :mod:`repro.obs`):
    a :class:`~repro.obs.trace.Tracer` is made ambient around whichever
    backend runs (so even single-process solves record layer spans), and
    a :class:`~repro.obs.progress.ProgressReporter` gets live per-layer
    callbacks on the parallel path.  Both are observational only —
    ``cost``/``best_action`` are bit-identical with them on or off.
    """
    spec = None
    store_kind = "ram"
    if store is not None or spill_dir is not None:
        from .. import store as store_mod  # runtime import: store builds on core

        if isinstance(store, store_mod.StoreSpec):
            if spill_dir is not None:
                raise InvalidProblem(
                    "pass spill_dir inside the StoreSpec, not alongside it"
                )
            spec = store
        else:
            spec = store_mod.StoreSpec(
                kind="auto" if store is None else store, spill_dir=spill_dir
            )
        store_kind = spec.resolve()

    # Cache traffic is process-global; snapshot before dispatch so the
    # result's metrics carry the hits/misses *this* solve caused.
    w0, pl0 = weights_cache_stats(), plan_cache_stats()

    def _finish(result: DPResult) -> DPResult:
        w1, pl1 = weights_cache_stats(), plan_cache_stats()
        m = result.metrics
        m["cache.weights_hits"] += w1["hits"] - w0["hits"]
        m["cache.weights_misses"] += w1["misses"] - w0["misses"]
        m["cache.plan_hits"] += pl1["hits"] - pl0["hits"]
        m["cache.plan_misses"] += pl1["misses"] - pl0["misses"]
        return result

    # An explicit tracer becomes ambient for the backend call; without
    # one, any tracer a caller already activated stays in effect.
    ambient = (
        obs_trace.tracing(tracer) if tracer is not None else contextlib.nullcontext()
    )

    if (
        engine is not None
        and policy is None
        and checkpoint is None
        and store_kind != "mmap"
    ):
        with ambient:
            return _finish(engine.solve(problem))
    if checkpoint is not None:
        policy = dataclasses.replace(
            policy or ResiliencePolicy(), checkpoint=checkpoint
        )
    if store_kind == "mmap":
        if policy is not None and policy.checkpoint is not None:
            raise InvalidProblem(
                "checkpoint= cannot be combined with the mmap store: the "
                "spill directory's manifest already persists every layer "
                "durably (resume simply reopens the same spill_dir)"
            )
        if backend in ("numpy", "native", "reference"):
            raise InvalidProblem(
                f"the mmap store requires the parallel backend, got {backend!r}; "
                "single-process backends have no layer store to spill from"
            )
        backend = "parallel"
    if policy is not None and policy.checkpoint is not None:
        if backend in ("numpy", "native", "reference"):
            raise InvalidProblem(
                f"checkpointing requires the parallel backend, got {backend!r}; "
                "single-process backends would silently skip the checkpoint"
            )
        backend = "parallel"
    backend, eff_workers = resolve_backend(problem, backend, workers)
    if backend == "reference":
        with ambient:
            return _finish(solve_dp_reference(problem))
    # The mmap store derives the weights into its own p.dat (out-of-core,
    # chunked); precomputing a 2^k RAM vector here would defeat the budget.
    p = None if store_kind == "mmap" else cached_subset_weights(problem)
    if backend == "parallel":
        return _finish(
            solve_dp_parallel(
                problem,
                workers=eff_workers,
                p=p,
                policy=policy,
                store=spec,
                discipline=discipline,
                commit=commit,
                tracer=tracer,
                progress=progress,
            )
        )
    if backend == "native":
        from .native import solve_layer_kernel_native

        with ambient:
            return _finish(solve_dp(problem, p=p, kernel=solve_layer_kernel_native))
    with ambient:
        return _finish(solve_dp(problem, p=p))
