"""Lower bounds and sensitivity analysis for TT instances.

Since the exact DP is exponential, certified lower bounds let a user
judge heuristic procedures on instances too large to solve:

* :func:`treatment_floor` — every object's branch terminates in a
  treatment covering it, and that node's charge includes at least the
  object's own weight, so
  ``C(U) >= sum_j P_j * min{c_i : treatment i covers j}``.
* :func:`entropy_actions_floor` — when **all treatments are singletons**
  every procedure is a binary splitting tree with one success-exit per
  object, so Shannon's bound applies: the expected number of actions is
  at least ``H(P / p(U))``, hence
  ``C(U) >= p(U) * H(P/p(U)) * min_i c_i``.
  (With group treatments a success can end the branch before objects
  are distinguished, so the bound is only emitted when it is valid.)
* :func:`lower_bound` — the best applicable combination.

:func:`action_criticality` quantifies each action's value: the optimal
cost increase if it were removed (``inf`` when the instance becomes
inadequate) — the report a lab manager reads before retiring an assay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .problem import TTProblem
from .dispatch import solve

__all__ = [
    "treatment_floor",
    "entropy_actions_floor",
    "lower_bound",
    "ActionCriticality",
    "action_criticality",
]


def treatment_floor(problem: TTProblem) -> float:
    """``sum_j P_j * (cheapest treatment covering j)``."""
    total = 0.0
    for j in range(problem.k):
        cheapest = math.inf
        for act in problem.actions:
            if act.is_treatment and (act.subset >> j) & 1:
                cheapest = min(cheapest, act.cost)
        total += problem.weights[j] * cheapest
    return total


def entropy_actions_floor(problem: TTProblem) -> float | None:
    """``p(U) * H(P/p(U)) * min_i c_i`` — only when every treatment is a
    singleton (see module docstring); ``None`` otherwise."""
    if any(
        act.is_treatment and (act.subset & (act.subset - 1))
        for act in problem.actions
    ):
        return None
    c_min = min(act.cost for act in problem.actions)
    total_w = sum(problem.weights)
    h = 0.0
    for w in problem.weights:
        q = w / total_w
        if q > 0:
            h -= q * math.log2(q)
    return total_w * h * c_min


def lower_bound(problem: TTProblem) -> float:
    """Best certified lower bound on ``C(U)`` available for the instance."""
    best = treatment_floor(problem)
    ent = entropy_actions_floor(problem)
    if ent is not None:
        best = max(best, ent)
    return best


@dataclass(frozen=True)
class ActionCriticality:
    """How much an action is worth to the optimal procedure."""

    action_index: int
    base_cost: float
    cost_without: float  # inf when removal makes the spec inadequate

    @property
    def regret(self) -> float:
        """Optimal-cost increase if this action disappeared."""
        return self.cost_without - self.base_cost

    @property
    def is_essential(self) -> bool:
        return math.isinf(self.cost_without)


def action_criticality(problem: TTProblem) -> list[ActionCriticality]:
    """Solve the instance ``N + 1`` times: once whole, once per removal.

    Exponential in ``k`` like the DP itself; intended for the same
    instance sizes.  Removing an action can never help (tested), so
    every regret is non-negative.
    """
    base = solve(problem).optimal_cost
    out = []
    for i in range(problem.n_actions):
        remaining = [a for j, a in enumerate(problem.actions) if j != i]
        if not remaining:
            without = math.inf
        else:
            reduced = problem.with_actions(remaining)
            if not reduced.is_adequate():
                without = math.inf
            else:
                without = solve(reduced).optimal_cost
        out.append(
            ActionCriticality(action_index=i, base_cost=base, cost_without=without)
        )
    return out
