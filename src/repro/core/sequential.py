"""Sequential DP solver for the TT problem (the paper's comparator).

The paper's speedup claims are made against "the known sequential algorithm
which could be obtained by modifying the backward induction algorithm given
by Garey": process the ``2^k`` subsets in order of increasing size and, for
each subset ``S`` and action ``i``, evaluate

* test ``i``:       ``M[S,i] = c_i * p(S) + C(S ∩ T_i) + C(S - T_i)``
* treatment ``i``:  ``M[S,i] = c_i * p(S) + C(S - T_i)``

taking ``C(S) = min_i M[S,i]``.  Non-splitting tests and non-progressing
treatments are excluded via ``INF`` sentinels exactly as in the paper.

Two implementations are provided:

* :func:`solve_dp` — the production solver, vectorized with NumPy over whole
  popcount layers (gathers into the ``C`` table); this is the throughput
  baseline used by the speedup benchmarks.
* :func:`solve_dp_reference` — a deliberately plain, loop-based rendition of
  the same recurrence used as an internal cross-check in the test suite.

Determinism contract (relied upon by every backend, including the
multiprocess engine in :mod:`repro.core.parallel`):

* **Tie-break rule.**  ``best_action[S]`` is the *lowest* action index
  attaining ``C(S)``: candidates are scanned in index order and only a
  strictly smaller value (``<``) replaces the incumbent.  Backends shard
  over *subsets*, never over actions, so sharding order can never flip a
  tie.
* **Float evaluation order.**  Every backend evaluates
  ``((c_i * p(S)) + C(S ∩ T_i)) + C(S - T_i)`` for tests and
  ``(c_i * p(S)) + C(S - T_i)`` for treatments, in exactly that
  association; float addition is not associative, so a fixed order is what
  makes ``cost`` and ``best_action`` match bit-for-bit across backends.
* **op_count semantics.**  ``op_count`` counts every ``M[S,i]``
  candidate evaluation, *including* the ones rejected by the
  non-splitting / non-progressing sentinels — i.e. exactly
  ``(2^k - 1) * N`` — matching the paper's sequential work measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..obs import trace as _trace
from ..obs.metrics import zeroed_metrics, zeroed_recovery
from ..util.bitops import subsets_of_size
from .kernels import LayerArena, layer_plan, solve_layer_kernel_fused
from .problem import TTProblem
from .tree import TTNode, TTTree

__all__ = [
    "DPResult",
    "solve_dp",
    "solve_dp_reference",
    "solve_layer_kernel",
    "subset_weights",
    "optimal_cost",
    "layer_sizes",
]

INF = np.inf


def subset_weights(problem: TTProblem) -> np.ndarray:
    """Vector ``p`` with ``p[S]`` = total weight of subset ``S`` (all ``2^k``).

    Uses the in-place butterfly accumulation: viewing ``p`` as blocks of
    ``2^(j+1)``, the upper half of each block is exactly the masks with bit
    ``j`` set, so one strided ``+= w_j`` per object suffices — no ``2^k``
    temporaries.  Per entry the additions happen in ascending object order
    over the *set* bits only, which is bit-for-bit the order of
    :meth:`TTProblem.weight_of` (skipped zero-additions are exact no-ops).
    """
    k = problem.k
    p = np.zeros(1 << k, dtype=np.float64)
    for j, w in enumerate(problem.weights):
        half = 1 << j
        p.reshape(-1, 2 * half)[:, half:] += w
    return p


@dataclass
class DPResult:
    """Output of a DP solve: full cost table plus argmin policy.

    Attributes
    ----------
    problem:
        The instance solved.
    cost:
        ``C(S)`` for every subset mask ``S`` (``np.inf`` where no successful
        sub-procedure exists).
    best_action:
        Index of a minimizing action per subset (``-1`` for the empty set
        and for infeasible subsets).
    op_count:
        Number of ``M[S,i]`` evaluations performed — the sequential work
        measure ``(2^k - 1) * N`` used by the speedup analysis.
    recovery:
        Machine-readable recovery log from the supervised parallel engine
        (retries, respawns, fallbacks, per-layer wall clock; see
        :class:`repro.core.supervisor.RecoveryLog`).  Single-process
        backends report the same keys with everything zeroed — consumers
        never have to guard against absent fields.
    metrics:
        Flat metrics snapshot from the solve's
        :class:`repro.obs.metrics.MetricsRegistry` (shard/layer timings,
        store commit latency, cache hit rates).  Same uniformity rule:
        single-process backends carry the full key set, zeroed.
    """

    problem: TTProblem
    cost: np.ndarray
    best_action: np.ndarray
    op_count: int
    recovery: dict | None = None
    metrics: dict | None = None

    def __post_init__(self) -> None:
        # Uniform observability contract: every backend's result exposes
        # the full recovery/metrics key set, so `result.recovery["retries"]`
        # is always valid — no `is not None` guards, no missing keys.
        if self.recovery is None:
            self.recovery = zeroed_recovery()
        if self.metrics is None:
            self.metrics = zeroed_metrics()

    @property
    def optimal_cost(self) -> float:
        """``C(U)``: minimum expected cost of a successful TT procedure."""
        return float(self.cost[self.problem.universe])

    @property
    def feasible(self) -> bool:
        return np.isfinite(self.optimal_cost)

    def tree(self) -> TTTree:
        """Extract an optimal procedure by following the argmin policy."""
        if not self.feasible:
            raise ValueError("no successful procedure exists (inadequate spec)")
        return TTTree(self.problem, self._build(self.problem.universe))

    def _build(self, live: int) -> TTNode | None:
        if live == 0:
            return None
        i = int(self.best_action[live])
        if i < 0:
            raise ValueError(f"no feasible action recorded for subset {live:#x}")
        act = self.problem.actions[i]
        node = TTNode(action_index=i, live_set=live)
        inter = live & act.subset
        rest = live & ~act.subset
        if act.is_test:
            node.pos = self._build(inter)
            node.neg = self._build(rest)
        else:
            node.cont = self._build(rest)
        return node


def solve_layer_kernel(
    layer: np.ndarray,
    p_layer: np.ndarray,
    cost: np.ndarray,
    subsets: np.ndarray,
    costs: np.ndarray,
    is_test: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate one (slice of a) popcount layer of the recurrence.

    ``layer`` holds the subset masks to solve, ``p_layer`` their weights,
    ``cost`` the (partially filled) global ``C`` table — every gather index
    with a *valid* candidate lands in an already-completed smaller layer.
    Returns ``(layer_cost, layer_arg)`` for exactly those masks.

    This is the *reference* kernel: a straight-line rendition of the
    per-subset argmin whose tie-break rule (lowest action index wins)
    and float evaluation order ``((c_i * p) + C(inter)) + C(rest)``
    define the determinism contract.  The production backends run
    :func:`repro.core.kernels.solve_layer_kernel_fused`, which is held
    bit-for-bit to this kernel by the differential test suite; this one
    is kept as the oracle and as the baseline the kernel benchmarks
    compare against.
    """
    layer_best = np.full(layer.size, INF, dtype=np.float64)
    layer_arg = np.full(layer.size, -1, dtype=np.int64)
    for i in range(len(costs)):
        t = int(subsets[i])
        inter = layer & t
        rest = layer & ~t
        value = costs[i] * p_layer
        if is_test[i]:
            value = value + cost[inter] + cost[rest]
            invalid = (inter == 0) | (rest == 0)
        else:
            value = value + cost[rest]
            invalid = inter == 0
        value = np.where(invalid, INF, value)
        better = value < layer_best
        layer_best = np.where(better, value, layer_best)
        layer_arg = np.where(better, i, layer_arg)
    return layer_best, layer_arg


def solve_dp(
    problem: TTProblem,
    *,
    p: np.ndarray | None = None,
    arena: LayerArena | None = None,
    kernel=None,
) -> DPResult:
    """Vectorized backward-induction solve of the TT recurrence.

    Processes subsets one popcount layer at a time through the fused
    zero-allocation kernel (:mod:`repro.core.kernels`); the popcount
    partition comes from the per-``k`` :func:`~repro.core.kernels.layer_plan`
    cache, so the Python-level loop count is only ``k * N`` and the only
    per-call allocations are the output tables.  Pass a precomputed ``p``
    (from :func:`subset_weights`) to skip recomputing it, and/or a warm
    :class:`~repro.core.kernels.LayerArena` (e.g. from a
    :class:`~repro.core.engine.SolverEngine`) to reuse kernel scratch
    across solves.

    ``kernel`` swaps the layer kernel for a drop-in alternative (the
    ``backend="native"`` tier passes
    :func:`~repro.core.native.solve_layer_kernel_native`); any substitute
    must honour the determinism contract above — the layer spans report
    which kernel ran via their ``mode`` attribute.
    """
    k, n_act = problem.k, problem.n_actions
    n_sub = 1 << k
    if p is None:
        p = subset_weights(problem)
    subsets = problem.subset_array
    costs = problem.cost_array
    is_test = problem.test_mask_array

    cost = np.full(n_sub, INF, dtype=np.float64)
    cost[0] = 0.0
    best = np.full(n_sub, -1, dtype=np.int64)

    if k == 0:  # degenerate empty universe: nothing to diagnose
        return DPResult(problem=problem, cost=cost, best_action=best, op_count=0)

    plan = layer_plan(k)
    if arena is None:
        arena = LayerArena()
    if kernel is None:
        kernel = solve_layer_kernel_fused
    mode = getattr(kernel, "kernel_mode", "numpy")

    tr = _trace.current()
    for j in range(1, k + 1):
        layer = plan.layer(j)
        t0 = time.monotonic() if tr.collecting else 0.0
        # The kernel's table-state invariant holds by construction here:
        # layer j's entries are still INF until the scatter below.
        layer_best, layer_arg = kernel(
            layer, p[layer], cost, subsets, costs, is_test, arena=arena
        )
        cost[layer] = layer_best
        best[layer] = layer_arg
        if tr.collecting:
            tr.complete(
                "layer", "layer", t0, time.monotonic(),
                layer=j, masks=int(layer.size), shards=1, mode=mode,
            )

    op_count = (n_sub - 1) * n_act
    return DPResult(problem=problem, cost=cost, best_action=best, op_count=op_count)


def solve_dp_reference(problem: TTProblem) -> DPResult:
    """Plain-Python rendition of the recurrence (test oracle for
    :func:`solve_dp`; identical semantics, no vectorization).

    Follows the same determinism contract as the vectorized/parallel
    backends — candidates scanned in action-index order, strict ``<``
    replacement (lowest index wins ties), and the float evaluation order
    ``((c_i * p(S)) + C(inter)) + C(rest)`` — so ``cost`` and
    ``best_action`` agree with the other backends bit-for-bit, not just
    within tolerance.
    """
    k, n_act = problem.k, problem.n_actions
    n_sub = 1 << k
    cost = np.full(n_sub, INF, dtype=np.float64)
    cost[0] = 0.0
    best = np.full(n_sub, -1, dtype=np.int64)
    ops = 0

    for j in range(1, k + 1):
        for s in subsets_of_size(k, j):
            ps = problem.weight_of(s)
            best_val, best_i = INF, -1
            for i, act in enumerate(problem.actions):
                ops += 1
                inter = s & act.subset
                rest = s & ~act.subset
                if act.is_test:
                    if inter == 0 or rest == 0:
                        continue
                    val = act.cost * ps + cost[inter] + cost[rest]
                else:
                    if inter == 0:
                        continue
                    val = act.cost * ps + cost[rest]
                if val < best_val:
                    best_val, best_i = val, i
            cost[s] = best_val
            best[s] = best_i

    return DPResult(problem=problem, cost=cost, best_action=best, op_count=ops)


def optimal_cost(problem: TTProblem) -> float:
    """Convenience: just the minimum expected cost ``C(U)``."""
    return solve_dp(problem).optimal_cost


def layer_sizes(k: int) -> list[int]:
    """Number of subsets per popcount layer (binomials) — used by analysis."""
    out = [1]
    for j in range(1, k + 1):
        out.append(out[-1] * (k - j + 1) // j)
    return out
