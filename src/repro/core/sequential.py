"""Sequential DP solver for the TT problem (the paper's comparator).

The paper's speedup claims are made against "the known sequential algorithm
which could be obtained by modifying the backward induction algorithm given
by Garey": process the ``2^k`` subsets in order of increasing size and, for
each subset ``S`` and action ``i``, evaluate

* test ``i``:       ``M[S,i] = c_i * p(S) + C(S ∩ T_i) + C(S - T_i)``
* treatment ``i``:  ``M[S,i] = c_i * p(S) + C(S - T_i)``

taking ``C(S) = min_i M[S,i]``.  Non-splitting tests and non-progressing
treatments are excluded via ``INF`` sentinels exactly as in the paper.

Two implementations are provided:

* :func:`solve_dp` — the production solver, vectorized with NumPy over whole
  popcount layers (gathers into the ``C`` table); this is the throughput
  baseline used by the speedup benchmarks.
* :func:`solve_dp_reference` — a deliberately plain, loop-based rendition of
  the same recurrence used as an internal cross-check in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.bitops import popcount_array, subsets_of_size
from .problem import TTProblem
from .tree import TTNode, TTTree

__all__ = [
    "DPResult",
    "solve_dp",
    "solve_dp_reference",
    "subset_weights",
    "optimal_cost",
    "layer_sizes",
]

INF = np.inf


def subset_weights(problem: TTProblem) -> np.ndarray:
    """Vector ``p`` with ``p[S]`` = total weight of subset ``S`` (all ``2^k``)."""
    k = problem.k
    n_sub = 1 << k
    p = np.zeros(n_sub, dtype=np.float64)
    masks = np.arange(n_sub, dtype=np.int64)
    for j, w in enumerate(problem.weights):
        p += w * ((masks >> j) & 1)
    return p


@dataclass
class DPResult:
    """Output of a DP solve: full cost table plus argmin policy.

    Attributes
    ----------
    problem:
        The instance solved.
    cost:
        ``C(S)`` for every subset mask ``S`` (``np.inf`` where no successful
        sub-procedure exists).
    best_action:
        Index of a minimizing action per subset (``-1`` for the empty set
        and for infeasible subsets).
    op_count:
        Number of ``M[S,i]`` evaluations performed — the sequential work
        measure ``(2^k - 1) * N`` used by the speedup analysis.
    """

    problem: TTProblem
    cost: np.ndarray
    best_action: np.ndarray
    op_count: int

    @property
    def optimal_cost(self) -> float:
        """``C(U)``: minimum expected cost of a successful TT procedure."""
        return float(self.cost[self.problem.universe])

    @property
    def feasible(self) -> bool:
        return np.isfinite(self.optimal_cost)

    def tree(self) -> TTTree:
        """Extract an optimal procedure by following the argmin policy."""
        if not self.feasible:
            raise ValueError("no successful procedure exists (inadequate spec)")
        return TTTree(self.problem, self._build(self.problem.universe))

    def _build(self, live: int) -> TTNode | None:
        if live == 0:
            return None
        i = int(self.best_action[live])
        if i < 0:
            raise ValueError(f"no feasible action recorded for subset {live:#x}")
        act = self.problem.actions[i]
        node = TTNode(action_index=i, live_set=live)
        inter = live & act.subset
        rest = live & ~act.subset
        if act.is_test:
            node.pos = self._build(inter)
            node.neg = self._build(rest)
        else:
            node.cont = self._build(rest)
        return node


def solve_dp(problem: TTProblem) -> DPResult:
    """Vectorized backward-induction solve of the TT recurrence.

    Processes subsets one popcount layer at a time; inside a layer every
    ``(S, i)`` pair is evaluated with array gathers, so the Python-level
    loop count is only ``k * N``.
    """
    k, n_act = problem.k, problem.n_actions
    n_sub = 1 << k
    p = subset_weights(problem)
    subsets = problem.subset_array
    costs = problem.cost_array
    is_test = problem.test_mask_array

    cost = np.full(n_sub, INF, dtype=np.float64)
    cost[0] = 0.0
    best = np.full(n_sub, -1, dtype=np.int64)

    masks = np.arange(n_sub, dtype=np.int64)
    layer_of = popcount_array(masks, k)

    for j in range(1, k + 1):
        layer = masks[layer_of == j]
        if layer.size == 0:
            continue
        layer_best = np.full(layer.size, INF, dtype=np.float64)
        layer_arg = np.full(layer.size, -1, dtype=np.int64)
        base = p[layer]
        for i in range(n_act):
            t = int(subsets[i])
            inter = layer & t
            rest = layer & ~t
            value = costs[i] * base + cost[rest]
            if is_test[i]:
                value = value + cost[inter]
                invalid = (inter == 0) | (rest == 0)
            else:
                invalid = inter == 0
            value = np.where(invalid, INF, value)
            better = value < layer_best
            layer_best = np.where(better, value, layer_best)
            layer_arg = np.where(better, i, layer_arg)
        cost[layer] = layer_best
        best[layer] = layer_arg

    op_count = (n_sub - 1) * n_act
    return DPResult(problem=problem, cost=cost, best_action=best, op_count=op_count)


def solve_dp_reference(problem: TTProblem) -> DPResult:
    """Plain-Python rendition of the recurrence (test oracle for
    :func:`solve_dp`; identical semantics, no vectorization)."""
    k, n_act = problem.k, problem.n_actions
    n_sub = 1 << k
    cost = np.full(n_sub, INF, dtype=np.float64)
    cost[0] = 0.0
    best = np.full(n_sub, -1, dtype=np.int64)
    ops = 0

    for j in range(1, k + 1):
        for s in subsets_of_size(k, j):
            ps = problem.weight_of(s)
            best_val, best_i = INF, -1
            for i, act in enumerate(problem.actions):
                ops += 1
                inter = s & act.subset
                rest = s & ~act.subset
                if act.is_test:
                    if inter == 0 or rest == 0:
                        continue
                    val = act.cost * ps + cost[inter] + cost[rest]
                else:
                    if inter == 0:
                        continue
                    val = act.cost * ps + cost[rest]
                if val < best_val:
                    best_val, best_i = val, i
            cost[s] = best_val
            best[s] = best_i

    return DPResult(problem=problem, cost=cost, best_action=best, op_count=ops)


def optimal_cost(problem: TTProblem) -> float:
    """Convenience: just the minimum expected cost ``C(U)``."""
    return solve_dp(problem).optimal_cost


def layer_sizes(k: int) -> list[int]:
    """Number of subsets per popcount layer (binomials) — used by analysis."""
    out = [1]
    for j in range(1, k + 1):
        out.append(out[-1] * (k - j + 1) // j)
    return out
