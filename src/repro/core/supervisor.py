"""Supervised execution layer for the multi-core parallel DP engine.

PR 1's engine ran each popcount layer as a bare ``pool.map`` barrier —
correct, but brittle: a worker killed mid-layer (OOM, SIGKILL) hangs the
``map`` forever, a hard parent crash leaks the ``/dev/shm`` segments, and
a multi-hour solve that dies at layer 18 restarts from layer 1.  This
module supplies the machinery that makes those failures survivable:

* :class:`ResiliencePolicy` — the knobs (per-shard timeout, bounded
  retries with exponential backoff, in-process fallback, checkpoint
  path) threaded through :func:`repro.core.solve` and the CLI;
* :class:`Supervisor` — dispatches shards via ``apply_async``, blocks on
  completion (event-driven, with a bounded wake-up for deadline checks),
  detects dead workers (PID-set changes and pool breakage)
  and deadline overruns, re-dispatches failed shards with backoff,
  respawns the pool when its slots are wedged, and past ``max_retries``
  degrades to the in-process numpy kernel instead of raising (unless the
  policy says otherwise);
* :class:`SharedTables` — a leak-proof owner of the shared-memory
  blocks: ``atexit`` + SIGTERM/SIGINT guards unlink the segments even
  when the parent is torn down mid-solve;
* layer-granular checkpointing — after each barrier the completed-layer
  prefix of ``C``/``best`` is written atomically next to a content hash
  of the problem; a resumed solve validates the hash and restarts at the
  first incomplete layer;
* :class:`RecoveryLog` — the machine-readable account (retries,
  respawns, timeouts, fallbacks, per-layer wall clock) attached to
  ``DPResult.recovery``.

Everything here is *provably safe* to replay because of the determinism
contract locked down in :mod:`repro.core.sequential`: a shard is a pure,
bit-reproducible function of the completed layers and writes a slice no
other shard touches, so re-running a shard — even one that half-wrote
before dying, even concurrently with a stale duplicate — can only write
the exact same bytes.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..obs.metrics import NULL_METRICS
from ..obs.trace import NULL
from .durable import atomic_write_file
from .errors import CheckpointMismatch, ShardTimeout, SolverError, WorkerCrash
from .problem import TTProblem

__all__ = [
    "ResiliencePolicy",
    "RecoveryLog",
    "SharedTables",
    "Supervisor",
    "problem_content_hash",
    "checkpoint_payload_sha",
    "save_checkpoint",
    "load_checkpoint",
    "CHECKPOINT_VERSION",
]

# Upper bound on how long the supervisor blocks before re-checking
# deadlines and worker liveness.  Shard *completion* wakes it immediately
# (it blocks in ``AsyncResult.wait``, not a sleep), so this only bounds
# the latency of timeout and crash detection.
_POLL_SECONDS = 0.02

# Version 2 added the payload checksum (sha256 over the table bytes +
# completed layer) so on-disk bit corruption raises CheckpointMismatch
# instead of silently resuming from garbage tables.  Version-1 files are
# rejected loudly (re-solve; checkpoints are disposable by design).
CHECKPOINT_VERSION = 2


# ----------------------------------------------------------------------
# Policy + recovery log
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ResiliencePolicy:
    """Fault-handling knobs for one supervised solve.

    Attributes
    ----------
    timeout:
        Per-shard deadline in seconds (``None`` disables; dead-worker
        detection still works without it — only genuine hangs need a
        deadline to be caught).
    max_retries:
        Re-dispatches allowed per shard per layer before the shard is
        declared failed.
    backoff / backoff_max:
        Exponential re-dispatch delay: attempt ``a`` waits
        ``min(backoff * 2**(a-1), backoff_max)`` seconds.
    fallback:
        When a shard exhausts its retries (or the pool cannot be
        respawned), finish it on the in-process numpy kernel — same
        kernel, same bytes — instead of raising.
    checkpoint:
        Path of the ``.ckpt`` file; ``None`` disables checkpointing.
    checkpoint_every:
        Write the checkpoint after every Nth completed layer (the final
        layer is always written).
    keep_checkpoint:
        A finished solve removes its checkpoint file by default — the
        checkpoint exists to survive a *crash*, and a completed solve
        leaving ``.ckpt`` litter behind silently grows into gigabytes of
        stale tables.  Set ``True`` to keep the completed checkpoint
        (instant re-resume of the same problem).
    """

    timeout: float | None = None
    max_retries: int = 2
    backoff: float = 0.05
    backoff_max: float = 2.0
    fallback: bool = True
    checkpoint: str | os.PathLike | None = None
    checkpoint_every: int = 1
    keep_checkpoint: bool = False

    def __post_init__(self) -> None:
        if self.timeout is not None and not (self.timeout > 0):
            raise SolverError("policy timeout must be positive (or None)")
        if self.max_retries < 0:
            raise SolverError("policy max_retries must be >= 0")
        if self.backoff < 0 or self.backoff_max < 0:
            raise SolverError("policy backoff values must be >= 0")
        if self.checkpoint_every < 1:
            raise SolverError("policy checkpoint_every must be >= 1")


@dataclass
class RecoveryLog:
    """Machine-readable account of everything the supervisor had to do."""

    # Optional mirror target (class attribute, not a dataclass field, so
    # it stays out of as_dict): when the solve loop attaches its tracer
    # here, every recovery event doubles as a trace instant — retries,
    # respawns, degradations, slab re-derivations all land on the
    # timeline without a second call site.
    tracer = None

    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    respawns: int = 0
    fallback_shards: int = 0
    rederived: int = 0
    degraded: bool = False
    resumed_from_layer: int | None = None
    checkpoint: str | None = None
    store: str | None = None
    layers: list = field(default_factory=list)
    events: list = field(default_factory=list)

    def event(self, kind: str, **detail) -> None:
        self.events.append({"kind": kind, **detail})
        if self.tracer is not None:
            self.tracer.instant(kind, cat="recovery", **detail)

    def layer(self, index: int, seconds: float, shards: int, mode: str) -> None:
        self.layers.append(
            {"layer": index, "seconds": round(seconds, 6), "shards": shards, "mode": mode}
        )

    def as_dict(self) -> dict:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "respawns": self.respawns,
            "fallback_shards": self.fallback_shards,
            "rederived": self.rederived,
            "degraded": self.degraded,
            "resumed_from_layer": self.resumed_from_layer,
            "checkpoint": self.checkpoint,
            "store": self.store,
            "layers": list(self.layers),
            "events": list(self.events),
        }


# ----------------------------------------------------------------------
# Leak-proof shared-memory ownership
# ----------------------------------------------------------------------

_LIVE_TABLES: set = set()
_GUARDED_SIGNALS = (signal.SIGTERM, signal.SIGINT)
_prev_handlers: dict = {}
_guard_installed = False
_guard_lock = threading.Lock()


def _close_live_tables() -> None:
    for tables in list(_LIVE_TABLES):
        tables.close()


def _signal_guard(signum, frame):
    """Unlink every live segment, then defer to the previous handler."""
    _close_live_tables()
    prev = _prev_handlers.get(signum)
    if callable(prev):
        prev(signum, frame)
    else:
        # Re-raise with default disposition so exit status stays honest.
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


def _install_guard() -> None:
    global _guard_installed
    with _guard_lock:
        if _guard_installed:
            return
        atexit.register(_close_live_tables)
        try:
            for signum in _GUARDED_SIGNALS:
                prev = signal.signal(signum, _signal_guard)
                if prev is not _signal_guard:
                    _prev_handlers[signum] = prev
        except ValueError:
            # Not the main thread: atexit still covers normal teardown.
            pass
        _guard_installed = True


class SharedTables:
    """Owner of the shared-memory blocks backing one parallel solve.

    Creates the ``cost`` / ``best`` / ``p`` / ``order`` segments, exposes
    them as numpy views, and guarantees they are closed **and unlinked**
    exactly once — on normal exit, on any raised exception (context
    manager), at interpreter shutdown (``atexit``), and on SIGTERM/SIGINT
    (signal guard) — so no failure mode strands ``/dev/shm`` segments.
    """

    def __init__(self, n_sub: int):
        self._blocks: dict[str, shared_memory.SharedMemory] = {}
        self._closed = False
        # Forked workers inherit _LIVE_TABLES *and* the signal guard; a
        # SIGTERM'd worker must never unlink the parent's segments, so
        # ownership is by PID and close() is a no-op elsewhere.
        self._owner_pid = os.getpid()
        for key, nbytes in (
            ("cost", n_sub * 8),
            ("best", n_sub * 8),
            ("p", n_sub * 8),
            ("order", n_sub * 8),
        ):
            self._blocks[key] = shared_memory.SharedMemory(create=True, size=nbytes)
        self.cost = np.ndarray(n_sub, dtype=np.float64, buffer=self._blocks["cost"].buf)
        self.best = np.ndarray(n_sub, dtype=np.int64, buffer=self._blocks["best"].buf)
        self.p = np.ndarray(n_sub, dtype=np.float64, buffer=self._blocks["p"].buf)
        self.order = np.ndarray(n_sub, dtype=np.int64, buffer=self._blocks["order"].buf)
        self.names = {key: blk.name for key, blk in self._blocks.items()}
        _install_guard()
        _LIVE_TABLES.add(self)

    def __enter__(self) -> "SharedTables":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Idempotent: drop the views, close and unlink every block.

        Only the creating process unlinks — in a forked child (pool
        worker running the inherited guard) this is a reference-drop
        no-op, otherwise a worker's SIGTERM would strand the parent
        mid-solve with vanished segments.
        """
        if self._closed:
            return
        if os.getpid() != self._owner_pid:
            return
        self._closed = True
        _LIVE_TABLES.discard(self)
        # Views must be released before close(), else BufferError.
        self.cost = self.best = self.p = self.order = None
        for blk in self._blocks.values():
            try:
                blk.close()
                blk.unlink()
            except FileNotFoundError:  # already gone (double teardown race)
                pass
        self._blocks = {}


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------


def problem_content_hash(problem: TTProblem) -> str:
    """Stable content hash of a problem (names excluded — cosmetic only)."""
    payload = {
        "k": problem.k,
        "weights": list(problem.weights),
        "actions": [[a.kind.value, a.subset, a.cost] for a in problem.actions],
    }
    text = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


def checkpoint_payload_sha(cost: np.ndarray, best: np.ndarray, completed_layer: int) -> str:
    """Checksum binding the table bytes to the completed-layer claim."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(cost, dtype=np.float64).data)
    h.update(np.ascontiguousarray(best, dtype=np.int64).data)
    h.update(int(completed_layer).to_bytes(8, "little", signed=True))
    return h.hexdigest()


def save_checkpoint(
    path: str | os.PathLike,
    problem: TTProblem,
    cost: np.ndarray,
    best: np.ndarray,
    completed_layer: int,
) -> None:
    """Atomically *and durably* persist the completed-layer table prefix.

    Written to ``path + ".tmp"``, flushed, fsynced, then ``os.replace``d
    with a directory fsync — atomic rename alone survives a process
    crash, but only the fsync pair makes the checkpoint survive power
    loss (without it the renamed file's data, or the rename itself, may
    still live only in the page cache).  The previous checkpoint stays
    intact until the new one is fully on disk either way.

    The payload checksum stored alongside lets :func:`load_checkpoint`
    reject bit corruption of the table bytes.

    The tables are snapshotted *once*, and the checksum is computed over
    that snapshot — not over the live arrays a second time.  This matters
    under the async commit pipeline: ``save_checkpoint`` runs on the
    committer thread while pool workers are already scattering layer
    ``completed_layer + 1`` into the shared tables, so hashing the live
    arrays and then letting ``np.savez`` re-read them could bind the
    checksum to different bytes than the file holds — a false
    :class:`CheckpointMismatch` on resume.  (Torn values *above* the
    completed layer inside one consistent snapshot are harmless: resume
    recomputes every layer past the prefix from the layers below.)
    """
    cost_snap = np.array(cost, dtype=np.float64)
    best_snap = np.array(best, dtype=np.int64)

    def write(fh) -> None:
        np.savez(
            fh,
            version=np.int64(CHECKPOINT_VERSION),
            problem_sha=np.array(problem_content_hash(problem)),
            payload_sha=np.array(
                checkpoint_payload_sha(cost_snap, best_snap, completed_layer)
            ),
            completed_layer=np.int64(completed_layer),
            cost=cost_snap,
            best=best_snap,
        )

    atomic_write_file(path, write)


def load_checkpoint(
    path: str | os.PathLike, problem: TTProblem
) -> tuple[np.ndarray, np.ndarray, int] | None:
    """Load and validate a checkpoint; ``None`` when the file is absent.

    Raises :class:`CheckpointMismatch` when the file exists but is
    unreadable, from a different checkpoint version, or — the important
    case — written for a *different problem* (content hash differs):
    resuming tables from the wrong instance would silently corrupt the
    solve, so it must be loud.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            version = int(data["version"])
            sha = str(data["problem_sha"])
            completed_layer = int(data["completed_layer"])
            cost = np.array(data["cost"], dtype=np.float64)
            best = np.array(data["best"], dtype=np.int64)
            payload_sha = str(data["payload_sha"]) if "payload_sha" in data else None
    except Exception as exc:
        raise CheckpointMismatch(f"unreadable checkpoint {path!r}: {exc}") from exc
    if version != CHECKPOINT_VERSION:
        raise CheckpointMismatch(
            f"checkpoint {path!r} has version {version}, expected {CHECKPOINT_VERSION}"
        )
    if sha != problem_content_hash(problem):
        raise CheckpointMismatch(
            f"checkpoint {path!r} was written for a different problem "
            "(content hash mismatch)"
        )
    if payload_sha != checkpoint_payload_sha(cost, best, completed_layer):
        raise CheckpointMismatch(
            f"checkpoint {path!r} payload checksum mismatch — the table "
            "bytes were corrupted on disk; refusing to resume from garbage"
        )
    n_sub = 1 << problem.k
    if cost.shape != (n_sub,) or best.shape != (n_sub,):
        raise CheckpointMismatch(
            f"checkpoint {path!r} table shapes {cost.shape}/{best.shape} "
            f"do not match 2^k = {n_sub}"
        )
    if not (0 <= completed_layer <= problem.k):
        raise CheckpointMismatch(
            f"checkpoint {path!r} records completed_layer={completed_layer}, "
            f"outside [0, {problem.k}]"
        )
    return cost, best, completed_layer


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------

# Seconds a pool teardown may take before the supervisor escalates to
# SIGKILL, and how many kill rounds to attempt before giving up.  A round
# per repopulation race is plenty.  A healthy teardown finishes in
# milliseconds, so a short grace only taxes the wedged case — and
# SIGKILLing a worker mid-shard is harmless here, since shards are pure
# replayable functions of the completed layers.
_SHUTDOWN_GRACE = 1.0
_SHUTDOWN_KILL_ROUNDS = 3


def _drain_pool(pool) -> None:
    """Blocking teardown of a pool, exception-proofed.

    Uses ``close() + join()`` rather than ``terminate()``: terminate's
    ``_help_stuff_finish`` drains the task queue while racing the idle
    workers for the queue's read lock, and when it wins it swallows the
    very sentinels those workers need to exit — stranding a worker that
    the subsequent unconditional join then waits on forever.  The polite
    path hands every worker its sentinel through the normal task-handler
    flow, so nothing is stolen; leftover duplicate shard tasks simply
    finish first (harmless — shards are replayable and idempotent).
    Workers that are genuinely stuck are the escalation's job.
    """
    try:
        if getattr(pool, "_cache", None):
            # A crashed worker leaves its in-flight ApplyResult in the
            # cache forever; close() would then never converge (the
            # worker handler keeps the pool staffed while results are
            # outstanding), so the hard path is the only correct one.
            pool.terminate()
        else:
            pool.close()
        pool.join()
    except Exception:
        try:
            pool.terminate()
            pool.join()
        except Exception:
            pass


class _Pending:
    __slots__ = ("result", "bounds", "attempt", "deadline", "last_failure")

    def __init__(self, result, bounds, attempt, deadline):
        self.result = result
        self.bounds = bounds
        self.attempt = attempt
        self.deadline = deadline
        self.last_failure = "crash"


class Supervisor:
    """Supervised per-layer shard dispatch over a worker pool.

    ``pool_factory`` creates a fresh initialized pool (used lazily and on
    every respawn); ``task`` is the picklable worker function receiving
    ``(lo, hi, layer_index, shard_index, attempt, trace)`` and returning
    ``(shard_index, n_masks_solved)`` — or, when the ``trace`` flag was
    set, ``(shard_index, n_masks_solved, raw_events)`` with the worker's
    telemetry flushed back through the same result channel.
    """

    def __init__(
        self,
        policy: ResiliencePolicy,
        pool_factory,
        task,
        log: RecoveryLog,
        tracer=None,
        metrics=None,
    ):
        self.policy = policy
        self._pool_factory = pool_factory
        self._task = task
        self.log = log
        self._tracer = tracer if tracer is not None else NULL
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._max_shard_s = 0.0
        self._pool = None
        self._pids: set[int] = set()
        self.degraded = False  # pool unusable: rest of the solve runs in-process

    def rebind(self, task, log: RecoveryLog, tracer=None, metrics=None) -> None:
        """Point a warm supervisor at the next solve's task and log.

        The :class:`~repro.core.engine.SolverEngine` keeps one supervisor
        (and its pool) alive across many solves; each solve carries its
        own per-problem task closure, recovery log, and telemetry sinks
        (reset to disabled when omitted, so a traced solve never leaks
        its tracer into the next), while the pool, worker PIDs and
        degraded state persist.
        """
        self._task = task
        self.log = log
        self._tracer = tracer if tracer is not None else NULL
        self._metrics = metrics if metrics is not None else NULL_METRICS

    # -- pool lifecycle ------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._pool_factory()
            self._pids = self._worker_pids()
        return self._pool

    def _worker_pids(self) -> set[int]:
        procs = getattr(self._pool, "_pool", None) or ()
        return {proc.pid for proc in procs}

    def _respawn_pool(self, reason: str) -> bool:
        """Terminate and recreate the pool; False = degrade to in-process."""
        self.shutdown()
        try:
            self._ensure_pool()
        except OSError as exc:
            self.log.event("degrade", reason=f"pool respawn failed: {exc}")
            self.degraded = True
            return False
        self.log.respawns += 1
        self._metrics.inc("pool.respawns")
        self.log.event("respawn", reason=reason)
        return True

    def shutdown(self) -> None:
        """Tear the pool down without trusting it to die politely.

        The polite path (see ``_drain_pool``) avoids the known teardown
        races, but a pool with crashed workers must go through
        ``Pool.terminate()``, whose unconditional final join trusts every
        worker to honor SIGTERM — and a SIGTERM can be silently lost
        (e.g. landing on a freshly forked replacement worker before
        CPython's ``PyOS_AfterFork_Child`` resets inherited signal
        state).  So the blocking teardown runs on a reaper thread, and if
        it overstays its grace period we escalate to SIGKILL, which the
        kernel delivers regardless of the interpreter's signal
        bookkeeping.
        """
        pool, self._pool = self._pool, None
        self._pids = set()
        if pool is None:
            return
        reaper = threading.Thread(
            target=_drain_pool, args=(pool,), name="pool-reaper", daemon=True
        )
        reaper.start()
        reaper.join(_SHUTDOWN_GRACE)
        attempts = 0
        while reaper.is_alive() and attempts < _SHUTDOWN_KILL_ROUNDS:
            attempts += 1
            live = [p for p in list(getattr(pool, "_pool", []) or []) if p.is_alive()]
            if not live:
                break
            self.log.event(
                "shutdown_escalation",
                attempt=attempts,
                pids=[p.pid for p in live],
            )
            for proc in live:
                proc.kill()
            reaper.join(_SHUTDOWN_GRACE)
        if reaper.is_alive():
            # Terminate is wedged on something SIGKILL cannot release
            # (e.g. a queue lock poisoned by a killed holder).  Abandon
            # the daemon thread rather than hang the solve.
            self.log.event("shutdown_abandoned")

    # -- dispatch ------------------------------------------------------

    def _deadline(self) -> float | None:
        if self.policy.timeout is None:
            return None
        return time.monotonic() + self.policy.timeout

    def _backoff(self, attempt: int) -> None:
        if attempt >= 1 and self.policy.backoff > 0:
            time.sleep(min(self.policy.backoff * (2 ** (attempt - 1)), self.policy.backoff_max))

    def _dispatch(self, layer_idx: int, sid: int, bounds, attempt: int) -> _Pending | None:
        """apply_async one shard; None means the pool is gone (degraded)."""
        self._backoff(attempt)
        for _ in range(2):  # one respawn attempt if the pool is broken
            try:
                result = self._ensure_pool().apply_async(
                    self._task,
                    (
                        (
                            bounds[0],
                            bounds[1],
                            layer_idx,
                            sid,
                            attempt,
                            self._tracer.collecting,
                        ),
                    ),
                )
                self._metrics.inc("shard.dispatched")
                return _Pending(result, bounds, attempt, self._deadline())
            except (OSError, ValueError, AssertionError) as exc:
                # ValueError("Pool not running") / AssertionError from a
                # terminated pool, OSError from a dead queue: breakage.
                if not self._respawn_pool(f"dispatch failed: {exc}"):
                    return None
        self.degraded = True
        return None

    def _shard_failed(
        self, layer_idx: int, sid: int, pd: _Pending, kind: str, pending: dict, fallback
    ) -> int:
        """Retry a failed shard, or fall back / raise past the budget.

        Returns masks solved in-process (0 unless the fallback ran).
        """
        detail = {"layer": layer_idx, "shard": sid, "attempt": pd.attempt}
        self.log.event(kind, **detail)
        if kind == "timeout":
            self.log.timeouts += 1
            self._metrics.inc("shard.timeouts")
        else:
            self.log.crashes += 1
            self._metrics.inc("shard.crashes")
        pd.last_failure = kind
        if pd.attempt < self.policy.max_retries and not self.degraded:
            self.log.retries += 1
            self._metrics.inc("shard.retries")
            replacement = self._dispatch(layer_idx, sid, pd.bounds, pd.attempt + 1)
            if replacement is not None:
                replacement.last_failure = kind
                pending[sid] = replacement
                return 0
        pending.pop(sid, None)
        if self.policy.fallback:
            self.log.fallback_shards += 1
            self._metrics.inc("shard.fallbacks")
            self.log.event("fallback", **detail)
            return fallback(*pd.bounds)
        exc_cls = ShardTimeout if kind == "timeout" else WorkerCrash
        raise exc_cls(
            f"shard {sid} of layer {layer_idx} failed ({kind}) after "
            f"{pd.attempt + 1} attempt(s) with retries exhausted and fallback disabled",
            layer=layer_idx,
            shard=sid,
        )

    def run_layer(self, layer_idx: int, shards, fallback) -> int:
        """Run one layer's shards to completion; returns masks solved.

        ``fallback(lo, hi)`` solves a shard on the in-process kernel and
        returns its size — used for degraded mode and post-retry rescue.
        """
        if self.degraded:
            self.log.fallback_shards += len(shards)
            self._metrics.inc("shard.fallbacks", len(shards))
            return sum(fallback(lo, hi) for lo, hi in shards)

        layer_t0 = time.monotonic()
        self._max_shard_s = 0.0
        done = 0
        pending: dict[int, _Pending] = {}
        for sid, bounds in enumerate(shards):
            pd = self._dispatch(layer_idx, sid, bounds, attempt=0)
            if pd is None:  # pool died before the layer even started
                self.log.fallback_shards += 1
                self._metrics.inc("shard.fallbacks")
                done += fallback(*bounds)
            else:
                pending[sid] = pd

        while pending:
            progressed = False
            for sid in list(pending):
                pd = pending.get(sid)
                if pd is None or not pd.result.ready():
                    continue
                progressed = True
                try:
                    res = pd.result.get()
                except Exception:
                    done += self._shard_failed(layer_idx, sid, pd, "crash", pending, fallback)
                else:
                    done += res[1]
                    pending.pop(sid)
                    # Traced workers flush their telemetry as a third
                    # tuple element through this same result channel.
                    if len(res) > 2 and res[2]:
                        self._ingest_events(res[2])
            if not pending:
                break

            now = time.monotonic()
            timed_out = [
                sid for sid, pd in pending.items() if pd.deadline is not None and now >= pd.deadline
            ]
            if timed_out:
                # Hung workers keep their slots until the pool dies; respawn
                # it, then re-dispatch everything still outstanding.  Only
                # the overrunning shards are charged an attempt — the rest
                # were victims of the respawn, not failures.
                alive = self._respawn_pool(f"{len(timed_out)} shard(s) timed out")
                survivors = list(pending.items())
                pending.clear()
                for sid, pd in survivors:
                    if sid in timed_out:
                        done += self._shard_failed(
                            layer_idx, sid, pd, "timeout", pending, fallback
                        )
                    elif alive and not self.degraded:
                        replacement = self._dispatch(layer_idx, sid, pd.bounds, pd.attempt)
                        if replacement is not None:
                            pending[sid] = replacement
                        else:
                            self.log.fallback_shards += 1
                            done += fallback(*pd.bounds)
                    else:
                        self.log.fallback_shards += 1
                        done += fallback(*pd.bounds)
                continue

            if self._pool is not None:
                pids = self._worker_pids()
                if pids != self._pids:
                    # One or more workers died; mp.Pool repopulates the
                    # slots, but any task that was on a dead worker is lost
                    # forever.  We cannot tell which, so conservatively
                    # re-dispatch every outstanding shard: duplicates of a
                    # still-running shard write identical bytes (pure
                    # function of completed layers) and only the tracked
                    # result is counted, so correctness is unaffected.
                    self._pids = pids
                    self.log.event(
                        "worker-death", layer=layer_idx, outstanding=sorted(pending)
                    )
                    for sid, pd in list(pending.items()):
                        done += self._shard_failed(layer_idx, sid, pd, "crash", pending, fallback)
                    continue

            if not progressed:
                # Block on one outstanding shard instead of sleeping: its
                # completion wakes us immediately (a 20 ms sleep-poll here
                # used to cost ~8 ms of dead time per layer on a busy
                # host), while the timeout cap keeps deadline and
                # worker-death checks running.  If the waited-on shard is
                # not the last to finish, the next iteration collects it
                # and blocks on a still-pending one — at most one bounded
                # wait per completed shard is wasted.
                next(iter(pending.values())).result.wait(_POLL_SECONDS)

        if self._max_shard_s > 0.0:
            # Barrier time: parent wall clock past the longest shard — the
            # cost of waiting for the layer's straggler.  Only computable
            # when tracing (worker spans carry the shard durations).
            wall = time.monotonic() - layer_t0
            self._metrics.inc("time.barrier_s", max(0.0, wall - self._max_shard_s))
        return done

    def _ingest_events(self, events) -> None:
        """Merge a worker's flushed events into the parent telemetry."""
        self._tracer.ingest(events)
        for ev in events:
            if ev.get("ph") == "X" and ev.get("cat") == "shard":
                dur = ev["t1"] - ev["t0"]
                self._metrics.observe("shard.seconds", dur)
                self._metrics.inc("time.kernel_s", dur)
                if dur > self._max_shard_s:
                    self._max_shard_s = dur
