"""Fused, allocation-free layer kernels and the cached layer partition.

The hot loop of every host backend is ``solve_layer_kernel`` in
:mod:`repro.core.sequential`: for each action it materializes ~8
full-layer temporaries (two bitwise intersections, a scaled weight
vector, two table gathers, a validity mask and two ``np.where`` copies),
so a ``k = 18, N = 32`` solve allocates and immediately discards several
hundred MiB — most of it going through ``mmap``/``munmap`` because the
middle layers are far past glibc's malloc threshold.  The kernel here,
:func:`solve_layer_kernel_fused`, removes every per-action allocation:

* all scratch lives in a :class:`LayerArena` of preallocated buffers
  that are reused across actions, tiles, layers and solves;
* every elementwise op writes ``out=`` into the arena
  (``np.bitwise_and``, ``np.multiply``, in-place ``np.add`` for the
  gathered table values, ``cost.take(..., out=)`` for the gathers);
* mask scratch is ``int32`` (masks fit for every supported ``k``),
  which halves the bitwise traffic and costs nothing on the gathers;
* the running argmin is updated *branch-free*: ``np.minimum`` for the
  value, and for the action index an ``int32`` max-blend
  (``arg = max(arg, (i + 1) * better)``, decoded by a single ``- 1``
  pass at the end) — valid because the winning action is the *last*
  improving one and ``i`` only ascends, so the running max of
  improving ``i + 1`` is exactly the argmin.  Masked copies
  (``np.copyto(..., where=)``) cost up to 7x more when the
  improvement mask is dense, which it always is for the first few
  actions of a layer scan; the blend is memory-bound so the narrow
  dtype halves its cost (the scatter into the ``int64`` result table
  casts for free);
* the explicit validity masks of the legacy kernel are *dropped
  entirely* — see "table-state invariant" below;
* the subset axis is optionally *tiled* so one tile's working set
  stays L2-resident across the whole action scan instead of streaming
  each full layer N times.

Table-state invariant
---------------------

The fused kernel requires what every in-tree caller already guarantees:
when a layer is evaluated, ``cost[S] == INF`` for every mask ``S`` *in*
that layer (the layer's results are scattered into the table only after
the kernel returns — true in ``solve_dp``, in every multiprocess shard,
and in checkpoint resume).  That makes the legacy validity masks
redundant: an invalid candidate has ``inter == 0`` or ``rest == 0``,
and since ``inter | rest == S`` (disjointly), the *other* operand is
then ``S`` itself — so the gather reads ``cost[S] == INF`` and the
candidate's value is already ``INF``, exactly what the legacy kernel's
``np.where(invalid, INF, value)`` produced.  (``cost[0] == 0`` never
leaks in: whenever a zero index is gathered, the companion gather hits
``cost[S] == INF`` and the sum is ``INF``.)  Dropping the masks removes
two to three full array passes per action.

Out-of-core callers cannot honor the invariant: a file-backed table
slice resuming after a crash (or scattered from a corrupt slab) may hold
*arbitrary bytes* — garbage finite floats, or NaNs that would poison
``np.minimum`` — and snapshotting the whole table to restore the
invariant is exactly the RAM spike a spilled solve exists to avoid.  For
them the kernel takes ``strict=True``: the legacy validity masks come
back (``inter == 0`` or ``rest == 0`` ⇒ candidate value overwritten with
``INF`` *after* evaluation), which makes the result independent of the
table's own-layer contents while remaining bit-for-bit identical to the
non-strict kernel on a clean table — the differential suite pins both
properties.  Strict mode costs one to two extra compare passes and a
masked copy per action; the in-RAM paths keep the invariant and skip it.

Bit-for-bit contract
--------------------

The fused kernel is a drop-in replacement for ``solve_layer_kernel``
inside :func:`~repro.core.sequential.solve_dp`, the multiprocess shards
and the supervised fallback paths, so it must preserve the determinism
contract of :mod:`repro.core.sequential` *exactly*:

* candidates are scanned in action-index order and only a strictly
  smaller value (``<``) replaces the incumbent — the masked
  ``np.copyto`` writes exactly the lanes where ``value < best`` held
  *before* the update, which is the same lowest-index tie-break;
* the float evaluation order is ``((c_i * p) + C(inter)) + C(rest)``:
  the in-place adds run left to right, which is the same association;
* invalid candidates evaluate to exactly ``INF`` (table-state
  invariant above), and ``INF < best`` is always false — the same
  reject set as the legacy kernel's explicit masks.

The gathers use ``cost.take(idx, mode="wrap")``: the table has exactly
``2^k`` entries and every index is a mask below ``2^k``, so wrap is an
identity that merely skips per-element bounds checks (the cheap
``layer.max()`` guard at entry keeps a short table from silently
wrapping).  Tiling partitions the subset axis only; each subset's
argmin is computed independently, so the tile size can never change a
result.

:class:`LayerPlan` is the other half of the fix: ``solve_dp`` and
``solve_dp_parallel`` used to recompute the popcount layer partition
(``popcount_array`` plus a stable argsort over all ``2^k`` masks) on
every call.  The plan — popcount-sorted mask order plus layer start
offsets — is computed once per ``k`` and cached, shared by the
sequential path, the parallel engine, checkpoint resume and the
:class:`~repro.core.engine.SolverEngine`.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from ..util.bitops import popcount_array
from .errors import InvalidProblem

__all__ = [
    "LayerPlan",
    "layer_plan",
    "plan_cache_stats",
    "LayerArena",
    "solve_layer_kernel_fused",
    "DEFAULT_TILE",
    "TILE_ENV",
    "SHARD_DISCIPLINES",
    "SHARD_DISCIPLINE_ENV",
    "shard_discipline",
]

INF = np.inf

# Subsets per tile.  A tile touches seven scratch rows (2 x float64,
# 4 x int32, 1 x bool) plus the best/arg output slices;
# 16384 keeps the
# streamed working set around half a MiB — L2-resident — which measured
# fastest on the k = 18 reference sweep (the gathers into the 2 MiB cost
# table are latency-bound either way, so larger tiles only dilute the
# fixed per-tile ufunc dispatch cost).
DEFAULT_TILE = 16384

# Override the tile size; "0" disables tiling (whole layer per pass).
TILE_ENV = "REPRO_KERNEL_TILE"

# How shards (and in-parent layer slices) make themselves independent of
# whatever the cost table holds in the layer being computed:
#
# "strict"    run the kernel with explicit validity masks — no snapshot,
#             no re-INF pass, bit-identical to the snapshot discipline on
#             every table state a solve can produce.  The default.
# "snapshot"  the pre-strict discipline: copy the whole table into a
#             private arena buffer and re-INF the slice's own masks
#             before evaluating.  Kept for one release as a bisection
#             aid (REPRO_SHARD_DISCIPLINE=snapshot); the exhaustive
#             sweep pins both disciplines bit-for-bit to the reference.
#
# File-backed (mmap) shards are always strict regardless of this knob —
# snapshotting a table that exists to stay out of RAM would defeat it.
SHARD_DISCIPLINES = ("strict", "snapshot")
SHARD_DISCIPLINE_ENV = "REPRO_SHARD_DISCIPLINE"


def shard_discipline(requested: str | None = None) -> str:
    """Resolve the shard discipline: explicit request, else env, else strict.

    Both the argument and the environment value are validated loudly —
    a typo'd discipline silently falling back to the default would be
    indistinguishable from the knob not working.
    """
    value = requested
    source = "shard discipline"
    if value is None:
        value = os.environ.get(SHARD_DISCIPLINE_ENV, "").strip().lower()
        source = SHARD_DISCIPLINE_ENV
        if not value:
            return "strict"
    if value not in SHARD_DISCIPLINES:
        raise InvalidProblem(
            f"{source} must be one of {', '.join(SHARD_DISCIPLINES)}, "
            f"got {value!r}"
        )
    return value


def _env_tile() -> int:
    """Tile size from the environment, validated loudly."""
    env = os.environ.get(TILE_ENV, "").strip()
    if not env:
        return DEFAULT_TILE
    try:
        value = int(env)
    except ValueError:
        raise InvalidProblem(
            f"{TILE_ENV} must be a non-negative integer, got {env!r}"
        ) from None
    if value < 0:
        raise InvalidProblem(f"{TILE_ENV} must be >= 0, got {value}")
    return value


# ----------------------------------------------------------------------
# Cached layer partition
# ----------------------------------------------------------------------


class LayerPlan:
    """Popcount partition of all ``2^k`` masks, computed once per ``k``.

    ``order`` holds every mask sorted stably by popcount (so masks are
    ascending inside each layer — the same order the legacy boolean-mask
    selection produced), and ``starts[j] : starts[j+1]`` brackets layer
    ``j``.  Both arrays are frozen: they are shared by every solve of
    the same ``k``, including the multiprocess engine (which copies
    ``order`` into shared memory once) and checkpoint resume (which
    restarts at ``starts[completed + 1]``).
    """

    __slots__ = ("k", "order", "starts")

    def __init__(self, k: int):
        if k < 0:
            raise InvalidProblem(f"layer plan needs k >= 0, got {k}")
        n_sub = 1 << k
        masks = np.arange(n_sub, dtype=np.int64)
        layer_of = popcount_array(masks, k)
        order = np.argsort(layer_of, kind="stable").astype(np.int64)
        starts = np.searchsorted(layer_of[order], np.arange(k + 2)).astype(np.int64)
        order.setflags(write=False)
        starts.setflags(write=False)
        self.k = k
        self.order = order
        self.starts = starts

    def bounds(self, j: int) -> tuple[int, int]:
        """``(lo, hi)`` such that ``order[lo:hi]`` is layer ``j``."""
        return int(self.starts[j]), int(self.starts[j + 1])

    def layer(self, j: int) -> np.ndarray:
        """The masks of popcount layer ``j`` (read-only view, ascending)."""
        lo, hi = self.bounds(j)
        return self.order[lo:hi]

    @property
    def max_layer_size(self) -> int:
        """Size of the largest layer — what a :class:`LayerArena` must hold."""
        return int(np.max(np.diff(self.starts)))

    @property
    def nbytes(self) -> int:
        return int(self.order.nbytes + self.starts.nbytes)


_PLAN_LOCK = threading.Lock()
_PLAN_CACHE: dict[int, LayerPlan] = {}
_PLAN_STATS = {"hits": 0, "misses": 0}

# A plan is 8 bytes per mask; 8 cached k's at k <= 20 is at most ~64 MiB
# and in practice a handful of small ones.  Plans for distinct k are
# evicted least-recently-inserted beyond this bound.
_PLAN_CACHE_MAX = 8


def layer_plan(k: int) -> LayerPlan:
    """The cached :class:`LayerPlan` for universe size ``k``.

    Thread-safe; every caller of the same ``k`` shares one frozen plan,
    so the ``popcount + argsort`` over ``2^k`` masks is paid once per
    process instead of once per solve.
    """
    with _PLAN_LOCK:
        plan = _PLAN_CACHE.get(k)
        if plan is None:
            _PLAN_STATS["misses"] += 1
            plan = LayerPlan(k)
            _PLAN_CACHE[k] = plan
            while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
                _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
        else:
            _PLAN_STATS["hits"] += 1
        return plan


def plan_cache_stats() -> dict:
    """Process-lifetime hit/miss counts of the layer-plan cache."""
    with _PLAN_LOCK:
        return dict(_PLAN_STATS)


def _clear_plan_cache() -> None:
    """Test hook: drop every cached plan (and its hit/miss stats)."""
    with _PLAN_LOCK:
        _PLAN_CACHE.clear()
        _PLAN_STATS["hits"] = _PLAN_STATS["misses"] = 0


# ----------------------------------------------------------------------
# Scratch arena
# ----------------------------------------------------------------------


class LayerArena:
    """Preallocated scratch buffers for :func:`solve_layer_kernel_fused`.

    One arena per thread of execution (the kernel mutates every buffer):
    the sequential solver keeps one per solve-or-engine, each pool worker
    keeps a process-global one.  Buffers grow monotonically to the
    largest request and are reused forever after, so a warm arena makes
    the kernel allocation-free.

    Two pools are kept: *output* buffers sized to the full layer (the
    running ``best``/``arg``), and *scratch* rows sized to one tile.
    """

    __slots__ = (
        "_out_cap",
        "_scratch_cap",
        "_strict_cap",
        "_table_cap",
        "grows",
        "best",
        "arg",
        "masks32",
        "inter",
        "rest",
        "value",
        "gather",
        "better",
        "argdelta",
        "invalid",
        "invalid2",
        "_table",
    )

    def __init__(self) -> None:
        self._out_cap = 0
        self._scratch_cap = 0
        self._strict_cap = 0
        self._table_cap = 0
        # Pool-growth count: a warm arena should stop growing after its
        # first layer; a nonzero steady-state rate means churn (surfaced
        # as the "arena.grows" metric).
        self.grows = 0
        # Zero-capacity buffers so zero-length requests (empty layers,
        # k = 0 tables) return valid empty views without special-casing.
        self.best = np.empty(0, dtype=np.float64)
        self.arg = np.empty(0, dtype=np.int32)
        self.masks32 = np.empty(0, dtype=np.int32)
        self.inter = np.empty(0, dtype=np.int32)
        self.rest = np.empty(0, dtype=np.int32)
        self.value = np.empty(0, dtype=np.float64)
        self.gather = np.empty(0, dtype=np.float64)
        self.better = np.empty(0, dtype=bool)
        self.argdelta = np.empty(0, dtype=np.int32)
        self.invalid = np.empty(0, dtype=bool)
        self.invalid2 = np.empty(0, dtype=bool)
        self._table = np.empty(0, dtype=np.float64)

    def out(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of the ``best`` (float64) / ``arg`` (int32) output
        buffers, length ``n``.  ``arg`` is int32 on purpose: action
        indices are tiny, the branch-free blend that updates it is
        memory-bound, and scattering into the int64 result table
        upcasts for free."""
        if n > self._out_cap:
            self.grows += 1
            self.best = np.empty(n, dtype=np.float64)
            self.arg = np.empty(n, dtype=np.int32)
            self._out_cap = n
        return self.best[:n], self.arg[:n]

    def scratch(self, n: int) -> tuple[np.ndarray, ...]:
        """Views of the seven per-tile scratch rows, length ``n``."""
        if n > self._scratch_cap:
            self.grows += 1
            self.masks32 = np.empty(n, dtype=np.int32)
            self.inter = np.empty(n, dtype=np.int32)
            self.rest = np.empty(n, dtype=np.int32)
            self.value = np.empty(n, dtype=np.float64)
            self.gather = np.empty(n, dtype=np.float64)
            self.better = np.empty(n, dtype=bool)
            self.argdelta = np.empty(n, dtype=np.int32)
            self._scratch_cap = n
        return (
            self.masks32[:n],
            self.inter[:n],
            self.rest[:n],
            self.value[:n],
            self.gather[:n],
            self.better[:n],
            self.argdelta[:n],
        )

    def strict_scratch(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of the two bool validity-mask rows used by strict mode."""
        if n > self._strict_cap:
            self.grows += 1
            self.invalid = np.empty(n, dtype=bool)
            self.invalid2 = np.empty(n, dtype=bool)
            self._strict_cap = n
        return self.invalid[:n], self.invalid2[:n]

    def table(self, n: int) -> np.ndarray:
        """A full-size private cost-table buffer, length ``n``.

        Used by the multiprocess shards to snapshot the shared ``C``
        table before computing: a *replayed* shard (or one racing a
        stale duplicate) can observe its own slice half-scattered by a
        previous attempt, which would violate the table-state invariant
        the fused kernel relies on.  Copying into this buffer and
        re-``INF``-ing the shard's own slice restores the invariant
        deterministically, whatever a concurrent duplicate writes.
        """
        if n > self._table_cap:
            self.grows += 1
            self._table = np.empty(n, dtype=np.float64)
            self._table_cap = n
        return self._table[:n]

    @property
    def nbytes(self) -> int:
        """Bytes currently held (capacity, not live use)."""
        return (
            self._out_cap * (8 + 4)
            + self._scratch_cap * (4 + 4 + 4 + 8 + 8 + 1 + 4)
            + self._strict_cap * 2
            + self._table_cap * 8
        )


# ----------------------------------------------------------------------
# The fused kernel
# ----------------------------------------------------------------------


def solve_layer_kernel_fused(
    layer: np.ndarray,
    p_layer: np.ndarray,
    cost: np.ndarray,
    subsets: np.ndarray,
    costs: np.ndarray,
    is_test: np.ndarray,
    *,
    arena: LayerArena | None = None,
    tile: int | None = None,
    strict: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Allocation-free, tiled evaluation of one popcount layer.

    Drop-in replacement for
    :func:`repro.core.sequential.solve_layer_kernel` — same arguments,
    same ``(layer_cost, layer_arg)`` result, bit-for-bit — *provided*
    the table-state invariant holds: ``cost[S] == INF`` for every ``S``
    in ``layer`` (see the module docstring; true for every caller that
    scatters a layer's results only after evaluating it).

    ``strict=True`` drops that precondition: invalid candidates are
    masked to ``INF`` explicitly, so ``cost``'s entries *inside* the
    layer being evaluated may hold anything (garbage, NaN) without
    affecting the result.  Out-of-core callers computing directly over
    file-backed tables use this; the output is bit-identical to
    non-strict mode on a clean table.

    ``arena`` supplies the scratch buffers; omit it for a private
    throwaway arena (correct, but the allocation savings then only apply
    within this one call).  ``tile`` bounds how many subsets one pass
    over the actions touches (``0`` disables tiling; default
    :data:`DEFAULT_TILE`, overridable via ``REPRO_KERNEL_TILE``).

    The returned arrays are *views into the arena*: valid until the next
    kernel call on the same arena, so scatter them into the cost table
    (or copy) before reusing it.  Every caller in this package scatters
    immediately.
    """
    n = layer.size
    if arena is None:
        arena = LayerArena()
    if tile is None:
        tile = _env_tile()
    best, arg = arena.out(n)
    best.fill(INF)
    n_act = len(costs)
    if n == 0 or n_act == 0:
        arg.fill(-1)
        return best, arg
    if int(layer.max()) >= cost.size:
        raise InvalidProblem(
            f"cost table has {cost.size} entries but the layer holds mask "
            f"{int(layer.max())} — the table must cover all 2^k subsets"
        )
    # arg runs in the +1 encoding (0 = no action) so the per-action
    # update can be a running max; decoded by the single -1 pass below.
    arg.fill(0)

    step = n if tile <= 0 else min(tile, n)
    masks32, inter, rest, value, gather, better, argdelta = arena.scratch(step)
    if strict:
        invalid, invalid2 = arena.strict_scratch(step)
    take = cost.take

    for lo in range(0, n, step):
        hi = min(lo + step, n)
        m = hi - lo
        lay = masks32[:m]
        np.copyto(lay, layer[lo:hi])
        p_t = p_layer[lo:hi]
        b_t = best[lo:hi]
        a_t = arg[lo:hi]
        it = inter[:m]
        rs = rest[:m]
        val = value[:m]
        gat = gather[:m]
        bet = better[:m]
        adel = argdelta[:m]
        if strict:
            inv = invalid[:m]
            inv2 = invalid2[:m]
        for i in range(n_act):
            t = int(subsets[i])
            np.bitwise_and(lay, ~t, out=rs)
            # ((c_i * p) + C(inter)) + C(rest): in-place adds keep the
            # association of the determinism contract.
            np.multiply(p_t, costs[i], out=val)
            if is_test[i]:
                np.bitwise_and(lay, t, out=it)
                np.add(val, take(it, out=gat, mode="wrap"), out=val)
            np.add(val, take(rs, out=gat, mode="wrap"), out=val)
            if strict:
                # Explicit validity masking: a test is invalid when it
                # does not split S (inter == 0 or rest == 0); a
                # treatment when it covers nothing of S (inter == 0,
                # i.e. rest == S — computed via inter to share the
                # buffer).  Masking *after* evaluation overwrites
                # whatever garbage the own-layer gathers pulled in,
                # NaNs included.
                if is_test[i]:
                    np.equal(it, 0, out=inv)
                    np.equal(rs, 0, out=inv2)
                    np.logical_or(inv, inv2, out=inv)
                else:
                    np.bitwise_and(lay, t, out=it)
                    np.equal(it, 0, out=inv)
                np.copyto(val, INF, where=inv)
            # Strict <: invalid candidates hold exactly INF (table-state
            # invariant) and can never be strictly below the incumbent,
            # so this is the same accept set — and the same lowest-index
            # tie-break — as the legacy masked update.  The update itself
            # is branch-free and density-independent: np.minimum keeps
            # the incumbent's bits on a tie (all values are >= +0.0, so
            # the -0.0 != +0.0 corner cannot arise), and the arg
            # max-blend is exact in int32 — the winner is the last
            # improving action, and i only ascends, so the running max
            # of improving i + 1 is the argmin in the +1 encoding.
            np.less(val, b_t, out=bet)
            np.minimum(b_t, val, out=b_t)
            np.multiply(bet, np.int32(i + 1), out=adel)
            np.maximum(a_t, adel, out=a_t)
    np.subtract(arg, 1, out=arg)
    return best, arg
