"""Interactive execution of a TT procedure.

A solved procedure is used *one action at a time* against the real
world: run the prescribed test, observe the outcome, move on.  A
:class:`DiagnosisSession` walks a :class:`~repro.core.tree.TTTree` that
way — the API a clinical/maintenance front-end would drive::

    session = DiagnosisSession(tree)
    while not session.done:
        action = session.current_action
        # ... perform the test/treatment out in the world, then feed the
        # observed outcome ("positive"/"negative"/"cured"/...) back in:
        session.record(observed_outcome)
    treated, spent = session.treated_set, session.total_cost

Outcomes are validated against the action kind; the session tracks the
live candidate set, accumulated cost and the transcript, and enforces
the procedure's invariants (e.g. a cured session accepts no more
outcomes).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.bitops import subset_str
from .problem import Action
from .tree import TTNode, TTTree

__all__ = ["DiagnosisSession", "SessionStep"]

_TEST_OUTCOMES = ("positive", "negative")
_TREATMENT_OUTCOMES = ("cured", "failed")


@dataclass(frozen=True)
class SessionStep:
    """One recorded action + outcome."""

    action_index: int
    live_set: int
    cost: float
    outcome: str


class DiagnosisSession:
    """Stateful walk through a validated TT procedure."""

    def __init__(self, tree: TTTree):
        tree.validate()
        self.tree = tree
        self.problem = tree.problem
        self._node: TTNode | None = tree.root
        self.transcript: list[SessionStep] = []
        self._treated: int = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once a treatment cured the fault."""
        return self._treated != 0

    @property
    def live_set(self) -> int:
        """Current candidate set (0 once cured)."""
        if self.done or self._node is None:
            return 0
        return self._node.live_set

    @property
    def current_action(self) -> Action:
        if self.done:
            raise RuntimeError("session finished: the fault was treated")
        assert self._node is not None
        return self.problem.actions[self._node.action_index]

    @property
    def current_action_index(self) -> int:
        if self.done:
            raise RuntimeError("session finished: the fault was treated")
        assert self._node is not None
        return self._node.action_index

    @property
    def total_cost(self) -> float:
        return sum(s.cost for s in self.transcript)

    @property
    def treated_set(self) -> int:
        """The set the curing treatment covered (0 while running)."""
        return self._treated

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------

    def valid_outcomes(self) -> tuple[str, ...]:
        return _TEST_OUTCOMES if self.current_action.is_test else _TREATMENT_OUTCOMES

    def record(self, outcome: str) -> None:
        """Record the observed outcome of the current action and advance."""
        node = self._node
        if self.done or node is None:
            raise RuntimeError("session finished: the fault was treated")
        act = self.problem.actions[node.action_index]
        allowed = self.valid_outcomes()
        if outcome not in allowed:
            raise ValueError(
                f"{act.label(node.action_index)} is a {act.kind.value}; "
                f"outcome must be one of {allowed}, got {outcome!r}"
            )
        self.transcript.append(
            SessionStep(node.action_index, node.live_set, act.cost, outcome)
        )
        if act.is_test:
            self._node = node.pos if outcome == "positive" else node.neg
        elif outcome == "cured":
            self._treated = node.live_set & act.subset
            self._node = None
        else:
            self._node = node.cont
        if self._node is None and not self.done:
            # A failed terminal treatment is impossible in a validated
            # procedure (terminal treatments cover the whole live set).
            raise RuntimeError(
                "procedure exhausted without a cure — outcomes inconsistent "
                "with the single-fault assumption"
            )

    def run_against(self, faulty: int) -> list[SessionStep]:
        """Drive the session with ground truth (for testing/simulation)."""
        while not self.done:
            act = self.current_action
            in_set = bool((act.subset >> faulty) & 1)
            if act.is_test:
                self.record("positive" if in_set else "negative")
            else:
                self.record("cured" if in_set else "failed")
        return self.transcript

    def describe(self) -> str:
        if self.done:
            return (
                f"cured (treated {subset_str(self._treated)}), "
                f"total cost {self.total_cost:g}"
            )
        act = self.current_action
        return (
            f"candidates {subset_str(self.live_set)}; next: "
            f"{act.label(self.current_action_index)} ({act.kind.value}, "
            f"cost {act.cost:g})"
        )
