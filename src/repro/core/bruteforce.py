"""Exhaustive tree-space search: the independent correctness oracle.

The DP solver's correctness rests on the principle that optimal trees are
composed of optimal subtrees.  To *check* that (rather than assume it), this
module enumerates complete TT procedures directly and evaluates each one
with the paper's first-principles cost definition (summed path costs,
weighted by the faulty-object prior).  On tiny instances the minimum over
all enumerated trees must equal the DP optimum exactly.

Only progress-making actions are expanded (a test must genuinely split the
live set, a treatment must cure something), which both matches the
definition of a successful procedure and makes the recursion finite.
Everything here is exponential-in-exponential and intended for ``k <= 4``.
"""

from __future__ import annotations

from collections.abc import Iterator

from .problem import TTProblem
from .tree import TTNode, TTTree

__all__ = ["enumerate_trees", "min_cost_exhaustive", "best_tree_exhaustive"]


def _expand(problem: TTProblem, live: int) -> Iterator[TTNode]:
    """Yield every successful sub-procedure rooted at live set ``live``."""
    for i, act in enumerate(problem.actions):
        inter = live & act.subset
        rest = live & ~act.subset
        if act.is_test:
            if inter == 0 or rest == 0:
                continue
            for pos in _expand(problem, inter):
                for neg in _expand(problem, rest):
                    yield TTNode(i, live, pos=pos, neg=neg)
        else:
            if inter == 0:
                continue
            if rest == 0:
                yield TTNode(i, live)
            else:
                for cont in _expand(problem, rest):
                    yield TTNode(i, live, cont=cont)


def enumerate_trees(problem: TTProblem, limit: int | None = 200_000) -> Iterator[TTTree]:
    """Enumerate every successful TT procedure for ``problem``.

    ``limit`` guards against combinatorial blowups; pass ``None`` to
    disable the guard (tests on tiny instances do).
    """
    count = 0
    for root in _expand(problem, problem.universe):
        yield TTTree(problem, root)
        count += 1
        if limit is not None and count >= limit:
            raise RuntimeError(
                f"enumerate_trees exceeded {limit} procedures; "
                "instance too large for brute force"
            )


def min_cost_exhaustive(problem: TTProblem, live: int | None = None) -> float:
    """Minimum expected cost by unmemoized first-principles recursion.

    Structurally independent of the DP table ordering: no popcount layers,
    no shared subproblem storage — just the definition of a procedure's
    cost, minimized over each possible next action.
    """
    if live is None:
        live = problem.universe
    if live == 0:
        return 0.0
    ps = problem.weight_of(live)
    best = float("inf")
    for act in problem.actions:
        inter = live & act.subset
        rest = live & ~act.subset
        if act.is_test:
            if inter == 0 or rest == 0:
                continue
            val = (
                act.cost * ps
                + min_cost_exhaustive(problem, inter)
                + min_cost_exhaustive(problem, rest)
            )
        else:
            if inter == 0:
                continue
            val = act.cost * ps + min_cost_exhaustive(problem, rest)
        best = min(best, val)
    return best


def best_tree_exhaustive(problem: TTProblem, limit: int | None = 200_000) -> TTTree:
    """The cheapest procedure found by full enumeration (path-cost metric)."""
    best_tree: TTTree | None = None
    best_cost = float("inf")
    for tree in enumerate_trees(problem, limit=limit):
        c = tree.expected_cost_by_paths()
        if c < best_cost:
            best_cost, best_tree = c, tree
    if best_tree is None:
        raise ValueError("no successful procedure exists (inadequate spec)")
    return best_tree
