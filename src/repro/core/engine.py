"""Reusable solver engine: warm pools, shared tables, batched solves.

``solve()`` (PR 1) and ``solve_dp_parallel`` (PR 2) are *one-shot*: every
call forks a fresh worker pool, allocates fresh ``/dev/shm`` segments,
and tears both down again — fine for a single solve, ruinous for the
throughput regime the ROADMAP targets (streams of instances arriving
faster than the pool spin-up cost).  :class:`SolverEngine` amortizes all
of that per-``k`` state across solves:

* the :class:`~repro.core.supervisor.SharedTables` segments and the
  initialized worker pool (with its per-worker
  :class:`~repro.core.kernels.LayerArena`) are created once and reused
  for every solve of the same ``k``;
* the per-problem statics (action subsets, costs, test mask — a few
  hundred bytes) ride along with each shard task instead of the pool
  initializer, so the pool never needs rebuilding between problems;
* the supervisor survives across solves too
  (:meth:`~repro.core.supervisor.Supervisor.rebind`), keeping its
  fault-handling state machine warm while each solve gets its own
  recovery log;
* :meth:`SolverEngine.solve_many` pipelines the ``subset_weights``
  precompute of the *next* instance against the in-flight solve on a
  background thread (the butterfly accumulation is numpy work that
  releases the GIL).

Small instances (below the parallel threshold, or a one-worker engine)
skip the pool entirely and run the fused single-process path with the
engine's persistent scratch arena — still allocation-free and still
bit-for-bit identical to a cold :func:`repro.core.solve`.

The engine is a context manager; use it as one (or call :meth:`close`)
so the shared segments and the pool are released deterministically.
Checkpointed or custom-policy solves have per-solve failure-domain
state that a warm engine cannot share — route those through the cold
:func:`repro.core.solve` path (``solve(engine=...)`` does this
automatically).
"""

from __future__ import annotations

import functools
import signal
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from . import faults
from . import parallel as _par
from .dispatch import cached_subset_weights, resolve_backend
from .errors import InvalidProblem, SolverError
from .kernels import (
    LayerArena,
    LayerPlan,
    layer_plan,
    shard_discipline,
    solve_layer_kernel_fused,
)
from .parallel import MIN_SHARD, _init_worker, _mp_context, _shard_bounds
from .problem import TTProblem
from .sequential import INF, DPResult, solve_dp
from .supervisor import RecoveryLog, ResiliencePolicy, SharedTables, Supervisor

__all__ = ["SolverEngine"]


def _engine_shard(subsets, costs, is_test, task):
    """Worker-side shard entry for engine pools.

    Identical to :func:`repro.core.parallel._solve_shard` except the
    per-problem statics arrive *with the task* (bound via
    ``functools.partial`` in the parent) rather than from the pool
    initializer — the pool outlives any one problem.  Signal masking,
    fault injection and the optional trace flag (sixth task element,
    flushed back as a third result element) follow the one-shot path
    exactly.
    """
    lo, hi, layer_idx, shard_idx, attempt = task[:5]
    traced = len(task) > 5 and bool(task[5])
    tracer = obs_trace.Tracer(max_events=obs_trace.WORKER_EVENT_CAP) if traced else None
    t_start = time.monotonic()
    with obs_trace.tracing(tracer):
        faults.inject(layer_idx, shard_idx, attempt)
        blockable = {signal.SIGTERM, signal.SIGINT}
        old_mask = signal.pthread_sigmask(signal.SIG_BLOCK, blockable)
        try:
            done = _par._shard_compute(
                _par._WORKER,
                lo,
                hi,
                np.asarray(subsets, dtype=np.int64),
                np.asarray(costs, dtype=np.float64),
                np.asarray(is_test, dtype=bool),
            )
        finally:
            signal.pthread_sigmask(signal.SIG_SETMASK, old_mask)
    if tracer is None:
        return shard_idx, done
    tracer.complete(
        "shard", "shard", t_start, time.monotonic(),
        layer=layer_idx, shard=shard_idx, attempt=attempt, masks=hi - lo,
    )
    return shard_idx, done, tracer.raw_events()


class SolverEngine:
    """Warm, reusable DP solver for streams of TT instances.

    Parameters
    ----------
    workers:
        Worker processes for the parallel path (default:
        :func:`~repro.core.parallel.default_workers`).  ``1`` keeps every
        solve single-process (arena reuse only).
    backend:
        ``"auto"`` (default), ``"numpy"``, ``"native"`` or ``"parallel"``
        — resolved per instance exactly like :func:`repro.core.solve`
        (including the loud numpy fallback when ``"native"`` is requested
        without numba installed).
    policy:
        :class:`~repro.core.supervisor.ResiliencePolicy` for the warm
        pool's fault handling.  Checkpointing is not supported on the
        warm path (``policy.checkpoint`` must be ``None``).
    min_shard:
        Minimum masks per worker shard (see :mod:`repro.core.parallel`).
    discipline:
        Shard discipline for every solve on this engine: ``"strict"``
        (default; validity-masked kernel, no per-shard table snapshot)
        or ``"snapshot"`` (legacy copy + re-``INF``).  Resolved once at
        construction — a warm pool's workers are initialized with it and
        never re-read the environment — so ``REPRO_SHARD_DISCIPLINE``
        applies to engines created after it is set, deliberately.

    Results are bit-for-bit identical to the cold paths: the engine runs
    the same fused kernel, the same sharding and the same supervisor
    machinery — only the *lifetime* of the pool and tables differs.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        backend: str = "auto",
        policy: ResiliencePolicy | None = None,
        min_shard: int = MIN_SHARD,
        discipline: str | None = None,
    ):
        if policy is not None and policy.checkpoint is not None:
            raise SolverError(
                "SolverEngine does not support checkpointing; use "
                "repro.core.solve(checkpoint=...) for resumable solves"
            )
        self.workers = workers if workers is not None else _par.default_workers()
        self.backend = backend
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.min_shard = min_shard
        self.discipline = shard_discipline(discipline)
        self.solves = 0
        # Warm-state effectiveness counters, exposed on result.metrics:
        # a healthy stream shows pool_reuses == solves - table_rebuilds.
        self.stats = {"pool_reuses": 0, "table_rebuilds": 0}
        self._closed = False
        self._arena = LayerArena()
        self._k: int | None = None
        self._plan: LayerPlan | None = None
        self._tables: SharedTables | None = None
        self._supervisor: Supervisor | None = None
        self._pool_factory = None

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "SolverEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Release the pool and the shared segments (idempotent)."""
        self._closed = True
        self._teardown()

    def _teardown(self) -> None:
        supervisor, self._supervisor = self._supervisor, None
        if supervisor is not None:
            supervisor.shutdown()
        tables, self._tables = self._tables, None
        if tables is not None:
            tables.close()
        self._k = None
        self._plan = None
        self._pool_factory = None

    def _ensure_tables(self, k: int) -> bool:
        """(Re)build the per-``k`` shared state; a ``k`` switch tears down.

        Returns ``True`` when the warm state was reused as-is.
        """
        if self._k == k:
            return True
        self._teardown()
        n_sub = 1 << k
        self._plan = layer_plan(k)
        tables = SharedTables(n_sub)
        tables.order[:] = self._plan.order
        shm_names = dict(tables.names)
        workers = self.workers

        access = {
            "mode": "shm",
            "names": shm_names,
            "n_sub": n_sub,
            "discipline": self.discipline,
        }

        def pool_factory():
            # Statics ship with each task (see _engine_shard), so the
            # initializer only maps the shared tables.
            return _mp_context().Pool(
                workers,
                initializer=_init_worker,
                initargs=(access, None, None, None),
            )

        self._tables = tables
        self._pool_factory = pool_factory
        self._k = k
        return False

    # -- solving -------------------------------------------------------

    def solve(self, problem: TTProblem, *, p: np.ndarray | None = None) -> DPResult:
        """Solve one instance on the warm engine.

        ``p`` may carry precomputed :func:`~repro.core.sequential.subset_weights`
        (this is how :meth:`solve_many` hands over the pipelined vector).
        """
        if self._closed:
            raise SolverError("SolverEngine is closed")
        backend, eff_workers = resolve_backend(problem, self.backend, self.workers)
        if p is None:
            p = cached_subset_weights(problem)
        if backend == "reference":
            raise SolverError("SolverEngine has no reference backend")
        if backend != "parallel":
            kernel = None
            if backend == "native":
                from .native import solve_layer_kernel_native

                kernel = solve_layer_kernel_native
            result = solve_dp(problem, p=p, arena=self._arena, kernel=kernel)
        else:
            result = self._solve_parallel(problem, p, eff_workers)
        self.solves += 1
        return result

    def _solve_parallel(self, problem: TTProblem, p: np.ndarray, workers: int) -> DPResult:
        k, n_act = problem.k, problem.n_actions
        n_sub = 1 << k
        # Validate any fault spec in the parent, like the one-shot path.
        faults.env_fault_spec()
        # Telemetry rides the ambient tracer (the CLI / caller activates
        # one around the solve); each solve gets its own registry so the
        # result's metrics block describes this instance only.
        tr = obs_trace.current()
        reg = obs_metrics.MetricsRegistry()
        t_solve0 = time.monotonic()
        grows0 = self._arena.grows
        reused = self._ensure_tables(k)
        which = "pool_reuses" if reused else "table_rebuilds"
        self.stats[which] += 1
        reg.inc(f"engine.{which}")
        tables, plan, arena = self._tables, self._plan, self._arena

        log = RecoveryLog()
        log.tracer = tr
        cost, best = tables.cost, tables.best
        cost[:] = INF
        cost[0] = 0.0
        best[:] = -1
        tables.p[:] = p

        subsets = problem.subset_array
        costs = problem.cost_array
        is_test = problem.test_mask_array
        task = functools.partial(_engine_shard, subsets, costs, is_test)

        if self._supervisor is not None and self._supervisor.degraded:
            # A previous solve lost its pool; give the next one a fresh
            # chance instead of pinning the whole engine in-process.
            self._supervisor.shutdown()
            self._supervisor = None
            log.event("revive")
        if self._supervisor is None:
            self._supervisor = Supervisor(
                self.policy, self._pool_factory, task, log, tracer=tr, metrics=reg
            )
        supervisor = self._supervisor
        supervisor.rebind(task, log, tracer=tr, metrics=reg)

        order, starts = plan.order, plan.starts
        state = {"layer": 0}
        reg.inc("layers.total", k)

        strict = self.discipline != "snapshot"

        def solve_in_parent(lo: int, hi: int) -> int:
            layer = order[lo:hi]
            ts = time.monotonic()
            if strict:
                table = cost
            else:
                table = arena.table(n_sub)
                np.copyto(table, cost)
                table[layer] = INF
            layer_best, layer_arg = solve_layer_kernel_fused(
                layer, p[layer], table, subsets, costs, is_test,
                arena=arena, strict=strict,
            )
            cost[layer] = layer_best
            best[layer] = layer_arg
            dt = time.monotonic() - ts
            reg.inc("time.kernel_s", dt)
            reg.observe("shard.seconds", dt)
            if tr.collecting:
                tr.complete(
                    "parent-slice", "shard", ts, ts + dt,
                    layer=state["layer"], masks=hi - lo,
                )
            return hi - lo

        for j in range(1, k + 1):
            state["layer"] = j
            t0 = time.monotonic()
            lo, hi = int(starts[j]), int(starts[j + 1])
            shards = _shard_bounds(lo, hi, workers, self.min_shard)
            if workers == 1 or len(shards) == 1 or supervisor.degraded:
                done = solve_in_parent(lo, hi)
                mode = "degraded" if supervisor.degraded else "parent"
            else:
                done = supervisor.run_layer(j, shards, solve_in_parent)
                mode = "pool"
            if done != hi - lo:
                raise SolverError(
                    f"layer {j} incomplete: {done} of {hi - lo} masks solved"
                )
            dt = time.monotonic() - t0
            log.layer(j, dt, len(shards), mode)
            reg.inc("layers.computed")
            reg.observe("layer.seconds", dt)
            if strict:
                # Copy traffic the snapshot discipline would have paid:
                # one full C-table copy per shard of this layer.
                reg.inc("snapshot.bytes_saved", len(shards) * n_sub * 8)
            if tr.collecting:
                tr.complete(
                    "layer", "layer", t0, t0 + dt,
                    layer=j, masks=hi - lo, shards=len(shards), mode=mode,
                )

        reg.set_gauge("time.solve_s", round(time.monotonic() - t_solve0, 6))
        reg.inc("arena.grows", arena.grows - grows0)
        return DPResult(
            problem=problem,
            cost=cost.copy(),
            best_action=best.copy(),
            op_count=(n_sub - 1) * n_act,
            recovery=log.as_dict(),
            metrics=reg.as_dict(),
        )

    def solve_many(
        self,
        problems,
        *,
        solver: str = "dp",
        width: int = 16,
        bvm_backend: str = "packed",
    ) -> list:
        """Solve a stream of instances, pipelining the weight precompute.

        While instance ``i`` runs (mostly C-level kernel and pool work),
        a single background thread computes ``subset_weights`` for
        instance ``i + 1`` — the butterfly accumulation is pure numpy
        and overlaps cleanly.  Results are returned in input order and
        are bit-for-bit what per-instance :meth:`solve` calls produce.

        ``solver="bvm"`` routes the whole stream through the
        instance-batched packed BVM instead
        (:func:`~repro.ttpar.bvm_tt.solve_tt_bvm_batch`): instances are
        grouped by machine shape and each group replays one compiled
        program over all its lanes in lockstep, returning
        :class:`~repro.ttpar.bvm_tt.BVMTTResult` rows (still in input
        order).  ``width`` / ``bvm_backend`` configure the fixed-point
        cost lattice and the simulation backend for that path and are
        ignored for ``solver="dp"``.
        """
        if solver == "bvm":
            from ..ttpar.bvm_tt import solve_tt_bvm_batch

            return solve_tt_bvm_batch(
                list(problems), width=width, backend=bvm_backend
            )
        if solver != "dp":
            raise InvalidProblem(
                f"unknown solver {solver!r}; expected 'dp' or 'bvm'"
            )
        problems = list(problems)
        results: list[DPResult] = []
        if not problems:
            return results
        tr = obs_trace.current()
        with ThreadPoolExecutor(max_workers=1) as pool:
            pending = None
            for idx, problem in enumerate(problems):
                if pending is not None:
                    # A traced stall here means the precompute did *not*
                    # overlap the previous solve — the span is the
                    # pipeline's bubble, ideally ~0.
                    tw = time.monotonic()
                    p = pending.result()
                    if tr.collecting:
                        tr.complete(
                            "pipeline.wait", "engine", tw, time.monotonic(),
                            instance=idx,
                        )
                else:
                    p = cached_subset_weights(problem)
                if idx + 1 < len(problems):
                    pending = pool.submit(cached_subset_weights, problems[idx + 1])
                results.append(self.solve(problem, p=p))
        return results
