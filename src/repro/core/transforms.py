"""Optimum-preserving problem preprocessing.

The DP's cost is ``Θ(2^k · N)``, so shrinking ``k`` or ``N`` before
solving pays exponentially.  Each transform here provably preserves the
optimal expected cost (arguments in the docstrings; the property tests
check the invariance on randomized instances):

* :func:`remove_duplicate_actions` — keep only the cheapest action per
  (kind, subset) pair.
* :func:`remove_dominated_treatments` — drop a treatment when a superset
  treatment is no more expensive: substituting the superset into any
  procedure cures at least as much for at most the same charge, and
  ``C`` is monotone under set inclusion.  (No analogous rule holds for
  tests — a differently-shaped split can be arbitrarily better.)
* :func:`merge_equivalent_objects` — objects with identical membership
  across *every* action are never separated by any procedure, so they
  can be merged into one pseudo-object carrying the summed weight.
* :func:`canonicalize` — all of the above to a fixed point, with a
  report of what was removed/merged and a map back to original objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .problem import Action, TTProblem

__all__ = [
    "remove_duplicate_actions",
    "remove_dominated_treatments",
    "merge_equivalent_objects",
    "canonicalize",
    "CanonicalizationReport",
]


def remove_duplicate_actions(problem: TTProblem) -> TTProblem:
    """Keep the cheapest action of each (kind, subset); order preserved
    otherwise.  Identical actions are interchangeable in any procedure,
    so only the cheapest can appear in an optimum."""
    best: dict[tuple, int] = {}
    for idx, act in enumerate(problem.actions):
        key = (act.kind, act.subset)
        if key not in best or act.cost < problem.actions[best[key]].cost:
            best[key] = idx
    keep = sorted(best.values())
    if len(keep) == len(problem.actions):
        return problem
    return problem.with_actions([problem.actions[i] for i in keep])


def remove_dominated_treatments(problem: TTProblem) -> TTProblem:
    """Drop treatment ``(T, c)`` when some treatment ``(T', c')`` has
    ``T ⊆ T'`` and ``c' <= c`` (strictly better on at least one of the
    two coordinates, or a distinct earlier action when exactly equal).

    Validity: replace every use of ``(T, c)`` in a procedure by
    ``(T', c')``: the charge ``c'·p(S) <= c·p(S)`` and the continuation
    set shrinks (``S - T' ⊆ S - T``), whose optimal cost is no larger by
    monotonicity of ``C`` under inclusion.
    """
    acts = problem.actions
    keep = []
    for i, a in enumerate(acts):
        if a.is_test:
            keep.append(i)
            continue
        dominated = False
        for j, b in enumerate(acts):
            if i == j or b.is_test:
                continue
            covers = (a.subset & ~b.subset) == 0  # a.subset ⊆ b.subset
            if covers and b.cost <= a.cost:
                strictly = (b.subset != a.subset) or (b.cost < a.cost) or j < i
                if strictly:
                    dominated = True
                    break
        if not dominated:
            keep.append(i)
    if len(keep) == len(acts):
        return problem
    return problem.with_actions([acts[i] for i in keep])


def merge_equivalent_objects(problem: TTProblem) -> tuple[TTProblem, list[list[int]]]:
    """Merge objects indistinguishable by every action.

    Returns the reduced problem and ``groups``: ``groups[new_j]`` lists
    the original objects folded into new object ``new_j`` (singletons for
    untouched objects).  The reduced optimum equals the original optimum
    because no procedure can ever separate members of a group: every
    test/treatment contains all of a group or none of it.
    """
    k = problem.k
    signature: dict[tuple, list[int]] = {}
    order: list[tuple] = []
    for j in range(k):
        sig = tuple((a.subset >> j) & 1 for a in problem.actions)
        if sig not in signature:
            signature[sig] = []
            order.append(sig)
        signature[sig].append(j)
    groups = [signature[sig] for sig in order]
    if len(groups) == k:
        return problem, [[j] for j in range(k)]

    new_k = len(groups)
    new_weights = [sum(problem.weights[j] for j in grp) for grp in groups]
    # Rebuild each action's subset over the merged universe.
    new_actions = []
    for a in problem.actions:
        mask = 0
        for new_j, grp in enumerate(groups):
            if (a.subset >> grp[0]) & 1:
                mask |= 1 << new_j
        new_actions.append(Action(a.kind, mask, a.cost, a.name))
    reduced = TTProblem.build(new_weights, new_actions, name=problem.name)
    return reduced, groups


@dataclass
class CanonicalizationReport:
    """What :func:`canonicalize` changed."""

    original_k: int
    original_n_actions: int
    problem: TTProblem
    groups: list[list[int]] = field(default_factory=list)

    @property
    def k_saved(self) -> int:
        return self.original_k - self.problem.k

    @property
    def actions_saved(self) -> int:
        return self.original_n_actions - self.problem.n_actions

    @property
    def pe_demand_ratio(self) -> float:
        """How much smaller the parallel machine demand became."""
        before = self.original_n_actions << self.original_k
        after = self.problem.n_actions << self.problem.k
        return after / before


def canonicalize(problem: TTProblem) -> CanonicalizationReport:
    """Apply all optimum-preserving reductions to a fixed point."""
    original_k, original_n = problem.k, problem.n_actions
    groups = [[j] for j in range(problem.k)]
    while True:
        before = (problem.k, problem.n_actions)
        problem = remove_duplicate_actions(problem)
        problem = remove_dominated_treatments(problem)
        problem, step_groups = merge_equivalent_objects(problem)
        # Compose object-group maps across iterations.
        groups = [
            [orig for member in grp for orig in groups[member]]
            for grp in step_groups
        ]
        if (problem.k, problem.n_actions) == before:
            break
    return CanonicalizationReport(
        original_k=original_k,
        original_n_actions=original_n,
        problem=problem,
        groups=groups,
    )
