"""Structured exception taxonomy for the host-side solvers.

Every failure the supervised parallel engine can surface is a
:class:`SolverError`, so callers (and the CLI) need exactly one
``except`` clause to distinguish "the solve failed" from a bug:

* :class:`WorkerCrash` — a pool worker died (OOM-killed, segfaulted,
  ``os._exit``) and the shard exhausted its retries;
* :class:`ShardTimeout` — a shard exceeded the per-shard deadline of the
  active :class:`~repro.core.supervisor.ResiliencePolicy` too many times;
* :class:`CheckpointMismatch` — a ``.ckpt`` file exists but was written
  for a different problem (content hash differs) or is unreadable;
* :class:`InvalidProblem` — the request itself is malformed: a bad spec
  file, an unknown backend, or an invalid environment knob
  (``REPRO_WORKERS``, ``REPRO_FAULT_SPEC``, ``REPRO_START_METHOD``).

:class:`InvalidProblem` also subclasses :class:`ValueError` so
pre-taxonomy call sites written against ``ValueError`` keep working.
"""

from __future__ import annotations

__all__ = [
    "SolverError",
    "WorkerCrash",
    "ShardTimeout",
    "CheckpointMismatch",
    "InvalidProblem",
]


class SolverError(RuntimeError):
    """Base class for every failure raised by the solve pipeline."""


class WorkerCrash(SolverError):
    """A worker process died and the shard exhausted its retry budget."""

    def __init__(self, message: str, *, layer: int | None = None, shard: int | None = None):
        super().__init__(message)
        self.layer = layer
        self.shard = shard


class ShardTimeout(SolverError):
    """A shard repeatedly exceeded the per-shard deadline."""

    def __init__(self, message: str, *, layer: int | None = None, shard: int | None = None):
        super().__init__(message)
        self.layer = layer
        self.shard = shard


class CheckpointMismatch(SolverError):
    """A checkpoint file does not belong to the problem being solved."""


class InvalidProblem(SolverError, ValueError):
    """A malformed problem spec, backend name, or environment knob."""
