"""Structured exception taxonomy for the host-side solvers.

Every failure the supervised parallel engine can surface is a
:class:`SolverError`, so callers (and the CLI) need exactly one
``except`` clause to distinguish "the solve failed" from a bug:

* :class:`WorkerCrash` — a pool worker died (OOM-killed, segfaulted,
  ``os._exit``) and the shard exhausted its retries;
* :class:`ShardTimeout` — a shard exceeded the per-shard deadline of the
  active :class:`~repro.core.supervisor.ResiliencePolicy` too many times;
* :class:`CheckpointMismatch` — a ``.ckpt`` file (or a spill-store
  manifest) exists but was written for a different problem (content
  hash differs) or is unreadable;
* :class:`StoreCorruption` — a layer store's *control* state (the
  manifest) is unreadable or internally inconsistent, so nothing in the
  spill directory can be trusted; layer *payload* corruption is
  recoverable (re-derived) and does not raise;
* :class:`StoreWriteError` — a durable layer-store write failed
  (``ENOSPC``, I/O error); the solver may degrade gracefully to RAM
  when the tables fit, otherwise this surfaces as the solve's failure;
* :class:`InvalidProblem` — the request itself is malformed: a bad spec
  file, an unknown backend, or an invalid environment knob
  (``REPRO_WORKERS``, ``REPRO_FAULT_SPEC``, ``REPRO_START_METHOD``,
  ``REPRO_RAM_BUDGET_BYTES``).

:class:`InvalidProblem` also subclasses :class:`ValueError` so
pre-taxonomy call sites written against ``ValueError`` keep working.
"""

from __future__ import annotations

__all__ = [
    "SolverError",
    "WorkerCrash",
    "ShardTimeout",
    "CheckpointMismatch",
    "StoreCorruption",
    "StoreWriteError",
    "InvalidProblem",
]


class SolverError(RuntimeError):
    """Base class for every failure raised by the solve pipeline."""


class WorkerCrash(SolverError):
    """A worker process died and the shard exhausted its retry budget."""

    def __init__(self, message: str, *, layer: int | None = None, shard: int | None = None):
        super().__init__(message)
        self.layer = layer
        self.shard = shard


class ShardTimeout(SolverError):
    """A shard repeatedly exceeded the per-shard deadline."""

    def __init__(self, message: str, *, layer: int | None = None, shard: int | None = None):
        super().__init__(message)
        self.layer = layer
        self.shard = shard


class CheckpointMismatch(SolverError):
    """A checkpoint file does not belong to the problem being solved."""


class StoreCorruption(SolverError):
    """A layer store's control state (manifest) cannot be trusted.

    Raised only when the *manifest itself* is unreadable or internally
    inconsistent.  Corrupt or missing layer payloads are recoverable —
    the store re-derives them from the layers below — and therefore
    never raise; they are reported through the store's open report and
    the :class:`~repro.core.supervisor.RecoveryLog` instead.
    """


class StoreWriteError(SolverError):
    """A durable write to the layer store failed (``ENOSPC``, I/O error)."""

    def __init__(self, message: str, *, layer: int | None = None, errno: int | None = None):
        super().__init__(message)
        self.layer = layer
        self.errno = errno


class InvalidProblem(SolverError, ValueError):
    """A malformed problem spec, backend name, or environment knob."""
