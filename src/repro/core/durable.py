"""Durable-write primitives shared by checkpoints and the layer store.

The atomic-rename idiom alone (``write tmp -> os.replace``) survives a
*process* crash but not a *power* loss: without an ``fsync`` the renamed
file's data may still live only in the page cache, and without an fsync
of the containing directory the rename itself may not be durable — a
reboot can surface a zero-length file or the pre-rename state.  Every
on-disk artifact the solver may later resume from goes through the full
protocol here:

    write tmp -> flush -> fsync(tmp) -> rename -> fsync(directory)

``fsync`` can be disabled per call (the verify harness hammers the store
with thousands of tiny solves where durability is irrelevant), but the
write-tmp/rename atomicity is always kept.

Temp files use the ``.tmp`` suffix; :func:`sweep_tmp_files` removes
stragglers left by a crash mid-write so they can never accumulate or be
mistaken for committed state.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable

__all__ = [
    "TMP_SUFFIX",
    "fsync_dir",
    "atomic_write_bytes",
    "atomic_write_file",
    "sweep_tmp_files",
]

TMP_SUFFIX = ".tmp"


def fsync_dir(path: str | os.PathLike) -> None:
    """Fsync a directory so a rename inside it survives power loss.

    Best-effort: some filesystems refuse ``O_RDONLY`` opens or fsync on
    directories; those cannot be made more durable from userspace, so
    errors are swallowed rather than failing an otherwise-good commit.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_file(
    path: str | os.PathLike,
    writer: Callable,
    *,
    fsync: bool = True,
) -> None:
    """Atomically (and durably) create ``path`` via a writer callback.

    ``writer(fh)`` receives the open binary temp-file handle and writes
    the payload; this function then flushes, fsyncs, renames over
    ``path``, and fsyncs the directory.  On any failure the temp file is
    removed and ``path`` is untouched.
    """
    path = os.fspath(path)
    tmp = path + TMP_SUFFIX
    try:
        with open(tmp, "wb") as fh:
            writer(fh)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(os.path.dirname(path) or ".")


def atomic_write_bytes(
    path: str | os.PathLike, payload: bytes, *, fsync: bool = True
) -> None:
    """Atomically (and durably) replace ``path`` with ``payload``."""
    atomic_write_file(path, lambda fh: fh.write(payload), fsync=fsync)


def sweep_tmp_files(paths: Iterable[str | os.PathLike]) -> list:
    """Remove orphaned ``.tmp`` files; returns the paths actually removed.

    ``paths`` may mix directories (swept non-recursively) and candidate
    file paths (removed when they carry the temp suffix and exist).
    Missing entries are ignored — the sweep runs on every startup.
    """
    removed: list = []
    for entry in paths:
        entry = os.fspath(entry)
        if os.path.isdir(entry):
            try:
                children = os.listdir(entry)
            except OSError:
                continue
            for name in children:
                if name.endswith(TMP_SUFFIX):
                    victim = os.path.join(entry, name)
                    try:
                        os.unlink(victim)
                        removed.append(victim)
                    except OSError:
                        pass
        elif entry.endswith(TMP_SUFFIX):
            try:
                os.unlink(entry)
                removed.append(entry)
            except FileNotFoundError:
                pass
            except OSError:
                pass
    return removed
