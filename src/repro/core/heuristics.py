"""Greedy baseline strategies for the TT problem.

The TT problem is NP-hard, so practical sequential alternatives to the
exponential DP are one-step greedy tree builders.  These serve two roles in
the reproduction: (a) baselines whose cost gap against the DP optimum the
benchmark harness measures, and (b) fixtures for the property tests
("DP optimum <= every heuristic tree's cost").

Every heuristic builds a *successful* procedure on adequate instances: it
only ever applies progress-making actions (tests that split, treatments
that cure something), so every branch's live set strictly shrinks.

Scoring rules implemented:

``cost_per_resolution``
    Charge ``c_i * p(S)`` and divide by the weight the action "resolves":
    a treatment retires ``p(S ∩ T_i)``; a test resolves (separates) the
    smaller side ``min(p(S∩T_i), p(S-T_i))``.  Pick the lowest ratio.

``information_gain``
    Entropy-style: a test earns the binary split entropy (scaled by
    ``p(S)``); a treatment earns the retired mass.  Pick the highest
    earnings per unit cost.

``treatment_only``
    Ignore tests entirely; repeatedly apply the treatment with the best
    cured-weight/cost ratio.  This is the straight-line strategy whose
    inefficiency motivates tests in the paper's applications.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from .problem import TTProblem
from .tree import TTNode, TTTree

__all__ = [
    "greedy_tree",
    "cost_per_resolution",
    "information_gain",
    "treatment_only",
    "HEURISTICS",
]

# A scorer maps (problem, live_set, action_index, p_live, p_inter, p_rest)
# to a score; lower is better; None means "do not consider".
Scorer = Callable[[TTProblem, int, int, float, float, float], float | None]

_EPS = 1e-12


def _score_cost_per_resolution(
    problem: TTProblem, live: int, i: int, p_live: float, p_inter: float, p_rest: float
) -> float | None:
    act = problem.actions[i]
    charged = act.cost * p_live
    if act.is_test:
        resolved = min(p_inter, p_rest)
    else:
        resolved = p_inter
    if resolved <= 0:
        return None
    return charged / resolved


def _score_information_gain(
    problem: TTProblem, live: int, i: int, p_live: float, p_inter: float, p_rest: float
) -> float | None:
    act = problem.actions[i]
    if act.is_test:
        if p_live <= 0:  # zero-weight live set: no entropy to earn
            return None
        q = p_inter / p_live
        if q <= 0 or q >= 1:
            return None
        gain = p_live * (-(q * math.log2(q) + (1 - q) * math.log2(1 - q)))
    else:
        gain = p_inter
        if gain <= 0:
            return None
    # Higher gain per cost is better; negate so "lower is better" uniformly.
    return -(gain / max(act.cost, _EPS))


def _score_treatment_only(
    problem: TTProblem, live: int, i: int, p_live: float, p_inter: float, p_rest: float
) -> float | None:
    act = problem.actions[i]
    if act.is_test or p_inter <= 0:
        return None
    return max(act.cost, _EPS) / p_inter


def _pick(problem: TTProblem, live: int, scorer: Scorer) -> int:
    p_live = problem.weight_of(live)
    best_i, best_score = -1, math.inf
    fallback_i = -1
    for i, act in enumerate(problem.actions):
        inter = live & act.subset
        rest = live & ~act.subset
        if act.is_test and (inter == 0 or rest == 0):
            continue
        if act.is_treatment and inter == 0:
            continue
        if fallback_i < 0:
            fallback_i = i
        score = scorer(
            problem, live, i, p_live, problem.weight_of(inter), problem.weight_of(rest)
        )
        if score is None:
            continue
        if score < best_score:
            best_score, best_i = score, i
    if best_i < 0 and fallback_i >= 0:
        # Every scorer declined (e.g. the whole live set carries zero
        # weight, so there is no mass to resolve) but progress-making
        # actions exist; any of them terminates the branch eventually,
        # so take the lowest-indexed one deterministically.
        return fallback_i
    if best_i < 0:
        raise ValueError(
            "heuristic found no applicable action; specification is inadequate "
            "or the scorer rejected every progress-making action"
        )
    return best_i


def greedy_tree(problem: TTProblem, scorer: Scorer) -> TTTree:
    """Build a TT procedure by repeatedly applying the scorer's best action."""
    problem.require_adequate()

    def build(live: int) -> TTNode | None:
        if live == 0:
            return None
        i = _pick(problem, live, scorer)
        act = problem.actions[i]
        node = TTNode(action_index=i, live_set=live)
        if act.is_test:
            node.pos = build(live & act.subset)
            node.neg = build(live & ~act.subset)
        else:
            node.cont = build(live & ~act.subset)
        return node

    return TTTree(problem, build(problem.universe))


def cost_per_resolution(problem: TTProblem) -> TTTree:
    """Greedy by cost per unit of resolved weight (see module docstring)."""
    return greedy_tree(problem, _score_cost_per_resolution)


def information_gain(problem: TTProblem) -> TTTree:
    """Greedy by entropy gain (tests) / retired mass (treatments) per cost."""
    return greedy_tree(problem, _score_information_gain)


def treatment_only(problem: TTProblem) -> TTTree:
    """Straight-line treatments, best cured-weight/cost first; no tests."""
    return greedy_tree(problem, _score_treatment_only)


HEURISTICS: dict[str, Callable[[TTProblem], TTTree]] = {
    "cost_per_resolution": cost_per_resolution,
    "information_gain": information_gain,
    "treatment_only": treatment_only,
}
