"""Optional numba-jitted layer kernel (the ``backend="native"`` tier).

The fused numpy kernel (:func:`repro.core.kernels.solve_layer_kernel_fused`)
removed the allocation traffic, but each of its ~10 ufunc passes per
action still streams the whole tile through memory and pays interpreter
dispatch.  A compiled scalar loop nest does the entire per-subset argmin
in one pass with everything in registers — the classic next tier after
vectorization.

numba is an *optional* dependency (``pip install repro[native]``): this
module degrades loudly-but-gracefully when it is absent.
:func:`native_available` reports the auto-detection result;
:func:`warn_native_fallback` emits the single loud ``RuntimeWarning``
the dispatch layer uses before falling back to the fused numpy kernel.
Nothing in the default install path imports numba at module load.

Bit-for-bit contract
--------------------

:func:`solve_layer_kernel_native` is a drop-in for
``solve_layer_kernel_fused`` — same signature (``arena``, ``tile``,
``strict``), same ``(layer_cost, layer_arg)`` arena views — and must
preserve the determinism contract of :mod:`repro.core.sequential`
exactly:

* candidates scanned in action-index order, strict ``<`` replacement
  (lowest index wins ties);
* float association ``((c_i * p) + C(inter)) + C(rest)`` for tests,
  ``(c_i * p) + C(rest)`` for treatments — the scalar expressions below
  are written in exactly that order, and the JIT is compiled with
  ``fastmath=False`` so IEEE semantics (ordering, NaN behaviour) are
  untouched;
* non-strict mode relies on the same table-state invariant as the fused
  kernel (own-layer entries hold ``INF``), so invalid candidates
  evaluate to exactly ``INF`` and never win; ``strict=True`` rejects
  them explicitly, making the result independent of own-layer garbage
  (NaNs included: a skipped candidate is never compared);
* ``tile`` partitions the subset axis only — each subset's argmin is
  independent, so the tile size can never change a result (the loop
  honours it to mirror the fused kernel's working-set shape).

The exhaustive verify sweep (``--backends native``) and the 50+ instance
kernel differential hold this kernel to the reference oracle bit for
bit; both skip loudly when numba is missing.
"""

from __future__ import annotations

import warnings
from functools import lru_cache

import numpy as np

from .errors import InvalidProblem
from .kernels import LayerArena, _env_tile

__all__ = [
    "native_available",
    "solve_layer_kernel_native",
    "warn_native_fallback",
    "NATIVE_FALLBACK_MSG",
]

INF = np.inf

NATIVE_FALLBACK_MSG = (
    "backend='native' requested but numba is not installed; falling back "
    "to the fused numpy kernel (results are bit-identical, only slower). "
    "Install the optional extra: pip install 'repro[native]'"
)


@lru_cache(maxsize=1)
def native_available() -> bool:
    """True iff numba imports cleanly (checked once per process)."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def warn_native_fallback(stacklevel: int = 3) -> None:
    """The loud part of loud-but-graceful degradation."""
    warnings.warn(NATIVE_FALLBACK_MSG, RuntimeWarning, stacklevel=stacklevel)


def _layer_kernel_py(layer, p_layer, cost, subsets, costs, is_test,
                     best, arg, tile, strict):
    # Compiled by numba; also runnable as plain Python (the unit tests
    # cross-check the uncompiled body so the logic is covered even where
    # numba is absent).
    n = layer.shape[0]
    n_act = costs.shape[0]
    step = n if tile <= 0 else min(tile, n)
    for lo in range(0, n, step):
        hi = min(lo + step, n)
        for s in range(lo, hi):
            mask = layer[s]
            ps = p_layer[s]
            b = np.inf
            a = -1
            for i in range(n_act):
                t = subsets[i]
                inter = mask & t
                rest = mask & ~t
                if is_test[i]:
                    if strict and (inter == 0 or rest == 0):
                        continue
                    val = (costs[i] * ps + cost[inter]) + cost[rest]
                else:
                    if strict and inter == 0:
                        continue
                    val = costs[i] * ps + cost[rest]
                if val < b:
                    b = val
                    a = i
            best[s] = b
            arg[s] = a


@lru_cache(maxsize=1)
def _compiled_kernel():
    """The jitted loop nest, compiled lazily on first native solve."""
    import numba

    return numba.njit(cache=False, fastmath=False, nogil=True)(_layer_kernel_py)


def solve_layer_kernel_native(
    layer: np.ndarray,
    p_layer: np.ndarray,
    cost: np.ndarray,
    subsets: np.ndarray,
    costs: np.ndarray,
    is_test: np.ndarray,
    *,
    arena: LayerArena | None = None,
    tile: int | None = None,
    strict: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Compiled evaluation of one popcount layer (numba required).

    Drop-in for :func:`repro.core.kernels.solve_layer_kernel_fused`;
    raises :class:`InvalidProblem` on the same bad-table guard and
    ``RuntimeError`` if numba is missing (callers are expected to have
    routed through the dispatch fallback first).  The returned arrays
    are arena views, valid until the next kernel call on the arena.
    """
    if not native_available():
        raise RuntimeError(NATIVE_FALLBACK_MSG)
    n = layer.size
    if arena is None:
        arena = LayerArena()
    if tile is None:
        tile = _env_tile()
    best, arg = arena.out(n)
    n_act = len(costs)
    if n == 0 or n_act == 0:
        best.fill(INF)
        arg.fill(-1)
        return best, arg
    if int(layer.max()) >= cost.size:
        raise InvalidProblem(
            f"cost table has {cost.size} entries but the layer holds mask "
            f"{int(layer.max())} — the table must cover all 2^k subsets"
        )
    _compiled_kernel()(
        np.ascontiguousarray(layer),
        np.ascontiguousarray(p_layer),
        cost,
        np.ascontiguousarray(subsets),
        np.ascontiguousarray(costs),
        np.ascontiguousarray(is_test),
        best, arg, tile, strict,
    )
    return best, arg


solve_layer_kernel_native.kernel_mode = "native"
