"""TT procedures as explicit binary decision trees (paper Fig. 1).

A procedure is a tree of :class:`TTNode`.  A *test* node has two children:
``pos`` for the objects the test responds to (``S & T_i``) and ``neg`` for
the rest (``S - T_i``).  A *treatment* node has a single continuation child
``cont`` for ``S - T_i`` (the double-line arc of the paper — success simply
terminates the branch); when the whole live set is covered the node is a
leaf.  Every node records the live set it was reached with, which makes
structural validation and rendering straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..util.bitops import bits_of, subset_str
from .problem import TTProblem

__all__ = ["TTNode", "TTTree", "SimulationStep"]


@dataclass
class TTNode:
    """One applied action in a TT procedure.

    Attributes
    ----------
    action_index:
        Index into ``problem.actions`` of the test/treatment applied here.
    live_set:
        Bitmask of objects still under consideration when this node runs.
    pos / neg:
        Children of a test node (positive / negative response).
    cont:
        Continuation child of a treatment node (``None`` when the treatment
        covers the whole live set and the branch terminates).
    """

    action_index: int
    live_set: int
    pos: Optional["TTNode"] = None
    neg: Optional["TTNode"] = None
    cont: Optional["TTNode"] = None

    def children(self) -> list["TTNode"]:
        return [c for c in (self.pos, self.neg, self.cont) if c is not None]


@dataclass(frozen=True)
class SimulationStep:
    """One action executed while diagnosing a particular faulty object."""

    action_index: int
    live_set: int
    cost: float
    outcome: str  # "positive" | "negative" | "cured" | "failed"


class TTTree:
    """A complete TT procedure bound to its problem.

    Provides expected-cost evaluation (two independent ways), per-object
    simulation, structural validation, statistics, and Fig-1-style ASCII
    rendering.
    """

    def __init__(self, problem: TTProblem, root: Optional[TTNode]):
        self.problem = problem
        self.root = root

    # ------------------------------------------------------------------
    # Structural validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` unless this is a well-formed, successful
        TT procedure for the problem's full universe.

        Checks, per node: the action exists; test nodes genuinely split the
        live set; treatment nodes make progress; children's live sets are
        exactly the induced subsets; and every branch terminates with an
        empty live set (all objects treated).
        """
        if self.root is None:
            raise ValueError("procedure has no root but the universe is non-empty")
        self._validate_node(self.root, self.problem.universe)

    def _validate_node(self, node: TTNode, live: int) -> None:
        prob = self.problem
        if live == 0:
            raise ValueError("node reached with an empty live set")
        if node.live_set != live:
            raise ValueError(
                f"node records live set {subset_str(node.live_set)} "
                f"but is reached with {subset_str(live)}"
            )
        if not (0 <= node.action_index < prob.n_actions):
            raise ValueError(f"action index {node.action_index} out of range")
        act = prob.actions[node.action_index]
        inter = live & act.subset
        rest = live & ~act.subset
        if act.is_test:
            if node.cont is not None:
                raise ValueError("test node carries a treatment continuation")
            if inter == 0 or rest == 0:
                raise ValueError(
                    f"test {act.label(node.action_index)} does not split "
                    + subset_str(live)
                )
            if node.pos is None or node.neg is None:
                raise ValueError("test node missing a child")
            self._validate_node(node.pos, inter)
            self._validate_node(node.neg, rest)
        else:
            if node.pos is not None or node.neg is not None:
                raise ValueError("treatment node carries test children")
            if inter == 0:
                raise ValueError(
                    f"treatment {act.label(node.action_index)} cures nothing in "
                    + subset_str(live)
                )
            if rest == 0:
                if node.cont is not None:
                    raise ValueError("terminal treatment has a continuation child")
            else:
                if node.cont is None:
                    raise ValueError(
                        f"branch abandons untreated objects {subset_str(rest)}"
                    )
                self._validate_node(node.cont, rest)

    def is_successful(self) -> bool:
        """True iff :meth:`validate` passes (every object gets treated)."""
        try:
            self.validate()
        except ValueError:
            return False
        return True

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------

    def expected_cost(self) -> float:
        """Expected cost via the recursive charge ``c_i * p(S)`` per node.

        This is the quantity the DP recurrence computes: each node charges
        its cost to the total weight of its live set.
        """
        return self._node_cost(self.root)

    def _node_cost(self, node: Optional[TTNode]) -> float:
        if node is None:
            return 0.0
        prob = self.problem
        act = prob.actions[node.action_index]
        total = act.cost * prob.weight_of(node.live_set)
        for child in node.children():
            total += self._node_cost(child)
        return total

    def expected_cost_by_paths(self) -> float:
        """Expected cost via the paper's definition: for each object,
        the summed cost of all actions encountered on its branch, weighted
        by ``P_j``.  Must agree with :meth:`expected_cost` (tested)."""
        total = 0.0
        for j in bits_of(self.problem.universe):
            steps = self.simulate(j)
            total += self.problem.weights[j] * sum(s.cost for s in steps)
        return total

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def simulate(self, faulty: int) -> list[SimulationStep]:
        """Run the procedure assuming object ``faulty`` is the faulty one.

        Returns the executed steps; the last step has outcome ``"cured"``
        for a successful procedure.
        """
        if not (0 <= faulty < self.problem.k):
            raise ValueError(f"object {faulty} outside the universe")
        steps: list[SimulationStep] = []
        node = self.root
        while node is not None:
            act = self.problem.actions[node.action_index]
            in_set = bool((act.subset >> faulty) & 1)
            if act.is_test:
                outcome = "positive" if in_set else "negative"
                nxt = node.pos if in_set else node.neg
            elif in_set:
                outcome = "cured"
                nxt = None
            else:
                outcome = "failed"
                nxt = node.cont
            steps.append(
                SimulationStep(node.action_index, node.live_set, act.cost, outcome)
            )
            node = nxt
        return steps

    # ------------------------------------------------------------------
    # Statistics and rendering
    # ------------------------------------------------------------------

    def node_count(self) -> int:
        return self._count(self.root)

    def _count(self, node: Optional[TTNode]) -> int:
        if node is None:
            return 0
        return 1 + sum(self._count(c) for c in node.children())

    def depth(self) -> int:
        """Longest root-to-leaf action count."""
        return self._depth(self.root)

    def _depth(self, node: Optional[TTNode]) -> int:
        if node is None:
            return 0
        return 1 + max((self._depth(c) for c in node.children()), default=0)

    def actions_used(self) -> set[int]:
        out: set[int] = set()
        stack = [self.root] if self.root else []
        while stack:
            node = stack.pop()
            out.add(node.action_index)
            stack.extend(node.children())
        return out

    def stats(self) -> dict:
        return {
            "nodes": self.node_count(),
            "depth": self.depth(),
            "distinct_actions": len(self.actions_used()),
            "expected_cost": self.expected_cost(),
        }

    def render(self) -> str:
        """ASCII rendering in the spirit of the paper's Fig. 1.

        Test children are tagged ``+``/``-``; treatment continuations are
        tagged ``fail`` (success terminates the branch, the double arc of
        the figure is implicit in ``=>treated``).
        """
        lines: list[str] = []
        self._render(self.root, "", "", lines)
        return "\n".join(lines) if lines else "(empty procedure)"

    def _render(self, node: Optional[TTNode], prefix: str, tag: str, lines: list[str]) -> None:
        if node is None:
            return
        act = self.problem.actions[node.action_index]
        treated = node.live_set & act.subset if act.is_treatment else 0
        head = f"{prefix}{tag}{act.label(node.action_index)} "
        head += f"[{act.kind.value}] on {subset_str(node.live_set)} cost={act.cost:g}"
        if act.is_treatment:
            head += f" =>treated {subset_str(treated)}"
        lines.append(head)
        child_prefix = prefix + "    "
        if act.is_test:
            self._render(node.pos, child_prefix, "+ ", lines)
            self._render(node.neg, child_prefix, "- ", lines)
        else:
            self._render(node.cont, child_prefix, "fail ", lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
