"""Workload generators shaped after the paper's application domains.

The paper motivates TT with medical diagnosis, systematic biology, machine
fault location and laboratory analysis, but (as a 1986 theory paper) gives
no datasets.  These generators synthesize instances whose *combinatorial
structure* mirrors each domain — subset shapes, weight skew, and cost
spread are what the algorithms actually see — so the benchmark harness can
exercise the same code paths the paper's applications would.

Every generator returns an adequate instance (treatments cover the
universe) with tests ordered before treatments, matching the paper's
indexing convention.
"""

from __future__ import annotations

import numpy as np

from ..util.bitops import mask_of
from .problem import Action, TTProblem

__all__ = [
    "random_instance",
    "medical_instance",
    "fault_location_instance",
    "taxonomy_instance",
    "lab_analysis_instance",
    "WORKLOADS",
]


def _rng(seed) -> np.random.Generator:
    return np.random.default_rng(seed)


def _nontrivial_subset(rng: np.random.Generator, k: int, lo: int = 1, hi: int | None = None) -> int:
    """A uniformly random subset with size in ``[lo, hi]`` (proper, non-empty)."""
    hi = hi if hi is not None else max(lo, k - 1)
    hi = min(hi, k)
    size = int(rng.integers(lo, hi + 1))
    members = rng.choice(k, size=size, replace=False)
    return mask_of(int(j) for j in members)


def _ensure_coverage(actions: list[Action], k: int, rng: np.random.Generator, cost_scale: float) -> None:
    """Append singleton treatments for any object no treatment covers."""
    covered = 0
    for a in actions:
        if a.is_treatment:
            covered |= a.subset
    full = (1 << k) - 1
    missing = full & ~covered
    j = 0
    while missing:
        if (missing >> j) & 1:
            actions.append(
                Action.treatment(
                    1 << j,
                    float(rng.uniform(0.5, 1.5)) * cost_scale,
                    name=f"fallback{j}",
                )
            )
            missing &= ~(1 << j)
        j += 1


def random_instance(
    k: int,
    n_tests: int,
    n_treatments: int,
    seed=0,
    cost_range: tuple[float, float] = (1.0, 10.0),
    weight_range: tuple[float, float] = (1.0, 5.0),
) -> TTProblem:
    """Unstructured random instance: uniform subsets, costs and weights."""
    rng = _rng(seed)
    weights = rng.uniform(*weight_range, size=k)
    actions: list[Action] = []
    for i in range(n_tests):
        actions.append(
            Action.test(
                _nontrivial_subset(rng, k),
                float(rng.uniform(*cost_range)),
                name=f"test{i}",
            )
        )
    for i in range(n_treatments):
        actions.append(
            Action.treatment(
                _nontrivial_subset(rng, k, lo=1, hi=max(1, k // 2)),
                float(rng.uniform(*cost_range)),
                name=f"treat{i}",
            )
        )
    _ensure_coverage(actions, k, rng, cost_scale=float(np.mean(cost_range)))
    return TTProblem.build(weights, actions, name=f"random(k={k},seed={seed})")


def medical_instance(k: int = 8, seed=0) -> TTProblem:
    """Medical diagnosis & treatment.

    Structure: disease prevalences follow a Zipf-like skew (common colds vs
    rare conditions); *tests* are lab panels responding to clusters of
    related diseases (moderately sized subsets, cheap); *treatments* are
    drugs effective against small disease families (narrow subsets,
    expensive), plus a costly broad-spectrum option.
    """
    rng = _rng(seed)
    ranks = np.arange(1, k + 1, dtype=np.float64)
    weights = 1.0 / ranks
    rng.shuffle(weights)

    actions: list[Action] = []
    n_panels = max(3, k)
    for i in range(n_panels):
        panel = _nontrivial_subset(rng, k, lo=max(1, k // 4), hi=max(2, k // 2 + 1))
        actions.append(Action.test(panel, float(rng.uniform(0.5, 3.0)), name=f"panel{i}"))

    n_drugs = max(2, k // 2)
    for i in range(n_drugs):
        family = _nontrivial_subset(rng, k, lo=1, hi=max(1, k // 3))
        actions.append(
            Action.treatment(family, float(rng.uniform(4.0, 12.0)), name=f"drug{i}")
        )
    # Broad-spectrum treatment: covers a wide slice at a premium price.
    broad = _nontrivial_subset(rng, k, lo=max(1, (2 * k) // 3), hi=k)
    actions.append(Action.treatment(broad, float(rng.uniform(15.0, 25.0)), name="broad"))
    _ensure_coverage(actions, k, rng, cost_scale=10.0)
    return TTProblem.build(weights, actions, name=f"medical(k={k},seed={seed})")


def fault_location_instance(k: int = 8, seed=0) -> TTProblem:
    """Computer-system fault location and correction.

    Structure: module failure rates vary over two orders of magnitude;
    *tests* are bisection probes (contiguous halves/quarters of the module
    chain — the classic divide-and-conquer probe pattern) plus a few random
    point probes; *treatments* are "replace module" (singletons, cost ~
    part price) and "swap board" (contiguous groups, costly).
    """
    rng = _rng(seed)
    weights = 10.0 ** rng.uniform(-1.0, 1.0, size=k)

    actions: list[Action] = []
    # Bisection probes over contiguous address ranges at every granularity.
    span = k
    t = 0
    width = max(1, k // 2)
    while width >= 1:
        for start in range(0, span, width):
            members = range(start, min(start + width, span))
            mask = mask_of(members)
            if mask and mask != (1 << k) - 1:
                actions.append(
                    Action.test(mask, float(rng.uniform(0.5, 2.0)), name=f"probe{t}")
                )
                t += 1
        if width == 1:
            break
        width //= 2
    # Replace-module treatments for every module.
    for j in range(k):
        actions.append(
            Action.treatment(1 << j, float(rng.uniform(3.0, 20.0)), name=f"replace{j}")
        )
    # Board-level swaps covering contiguous halves.
    half = mask_of(range(0, (k + 1) // 2))
    other = ((1 << k) - 1) & ~half
    for idx, board in enumerate((half, other)):
        if board:
            actions.append(
                Action.treatment(board, float(rng.uniform(25.0, 40.0)), name=f"board{idx}")
            )
    return TTProblem.build(weights, actions, name=f"fault(k={k},seed={seed})")


def taxonomy_instance(k: int = 8, seed=0) -> TTProblem:
    """Systematic biology: identification keys over a binary taxonomy.

    Structure: species weights from abundance sampling; *tests* are
    dichotomous key couplets — the subsets induced by the internal nodes of
    a random binary taxonomy over the species (cheap morphological checks
    near the root, pricier ones deeper); *treatments* are per-species
    determinations (singleton, uniform cost).
    """
    rng = _rng(seed)
    weights = rng.gamma(shape=0.7, scale=2.0, size=k) + 0.05

    # Build a random binary taxonomy; each internal node's leaf set is a test.
    groups: list[list[int]] = [[j] for j in range(k)]
    internal_sets: list[tuple[int, int]] = []  # (mask, depth proxy)
    depth = 0
    while len(groups) > 1:
        rng.shuffle(groups)
        merged = []
        for a, b in zip(groups[::2], groups[1::2]):
            merged.append(a + b)
            internal_sets.append((mask_of(a + b), depth))
        if len(groups) % 2:
            merged.append(groups[-1])
        groups = merged
        depth += 1

    actions: list[Action] = []
    full = (1 << k) - 1
    t = 0
    for mask, d in internal_sets:
        if mask == full:
            continue
        cost = 0.5 + 0.5 * (depth - d)  # deeper couplets are finer/cheaper
        actions.append(Action.test(mask, float(cost), name=f"couplet{t}"))
        t += 1
    for j in range(k):
        actions.append(Action.treatment(1 << j, 2.0, name=f"determine{j}"))
    return TTProblem.build(weights, actions, name=f"taxonomy(k={k},seed={seed})")


def lab_analysis_instance(k: int = 8, seed=0) -> TTProblem:
    """Laboratory analysis: assays with shared reagents.

    Structure: candidate substances with skewed priors; *tests* are assays
    reacting to chemical families (overlapping mid-size subsets; cost
    reflects reagent price); *treatments* are neutralization protocols for
    families plus per-substance disposal.
    """
    rng = _rng(seed)
    weights = rng.lognormal(mean=0.0, sigma=0.8, size=k)

    actions: list[Action] = []
    n_assays = max(4, (3 * k) // 2)
    for i in range(n_assays):
        fam = _nontrivial_subset(rng, k, lo=2, hi=max(2, k // 2 + 1))
        actions.append(Action.test(fam, float(rng.uniform(1.0, 6.0)), name=f"assay{i}"))
    n_protocols = max(2, k // 3)
    for i in range(n_protocols):
        fam = _nontrivial_subset(rng, k, lo=1, hi=max(1, k // 3 + 1))
        actions.append(
            Action.treatment(fam, float(rng.uniform(5.0, 15.0)), name=f"protocol{i}")
        )
    for j in range(k):
        actions.append(
            Action.treatment(1 << j, float(rng.uniform(2.0, 8.0)), name=f"dispose{j}")
        )
    return TTProblem.build(weights, actions, name=f"lab(k={k},seed={seed})")


def _random_uniform_signature(k: int = 8, seed=0) -> TTProblem:
    """`random_instance` with a (k, seed) signature for the workload table."""
    return random_instance(k, n_tests=max(2, k), n_treatments=max(2, k // 2), seed=seed)


#: Uniform ``(k, seed) -> TTProblem`` constructors, one per application
#: domain the paper names (plus unstructured random).
WORKLOADS = {
    "random": _random_uniform_signature,
    "medical": medical_instance,
    "fault": fault_location_instance,
    "taxonomy": taxonomy_instance,
    "lab": lab_analysis_instance,
}
