"""Top-down solvers: reachable-subset memoization and a minimax variant.

The bottom-up DP of :mod:`repro.core.sequential` touches all ``2^k``
subsets — necessary for the parallel algorithm's PE-per-subset layout,
but wasteful sequentially: only subsets *reachable* from ``U`` by
splitting with the given actions can ever occur in a procedure, and with
structured action sets (bisection probes, taxonomy couplets) that is a
tiny fraction of the lattice.  :func:`solve_dp_topdown` memoizes over
exactly the reachable family and reports its size — the ablation data
for the "how much does structure help sequentially" question.

:func:`solve_minimax` optimizes the *worst-case* path cost instead of
the expected cost (a natural companion criterion for the paper's
applications: guaranteeing a repair-cost ceiling rather than an
average).  Recurrence:

* test ``i``:       ``c_i + max(C(S ∩ T_i), C(S - T_i))``
* treatment ``i``:  ``c_i + C(S - T_i)``  (worst case: the treatment
  fails — unless it covers all of ``S``, in which case it ends the
  branch with cost ``c_i``; that is the ``C(∅) = 0`` base case)

with the same applicability rules as the expected-cost DP.
"""

from __future__ import annotations

from dataclasses import dataclass

from .problem import TTProblem
from .tree import TTNode, TTTree

__all__ = ["TopDownResult", "solve_dp_topdown", "solve_minimax"]

INF = float("inf")


@dataclass
class TopDownResult:
    """Cost, policy over the reachable family, and exploration stats."""

    problem: TTProblem
    optimal_cost: float
    cost: dict[int, float]          # reachable subset -> value
    best_action: dict[int, int]     # reachable subset -> argmin action
    criterion: str                  # "expected" | "minimax"

    @property
    def reachable_subsets(self) -> int:
        return len(self.cost)

    @property
    def lattice_fraction(self) -> float:
        """Share of the full ``2^k`` lattice actually visited."""
        return self.reachable_subsets / (1 << self.problem.k)

    @property
    def feasible(self) -> bool:
        return self.optimal_cost < INF

    def tree(self) -> TTTree:
        if not self.feasible:
            raise ValueError("no successful procedure exists")
        return TTTree(self.problem, self._build(self.problem.universe))

    def _build(self, live: int) -> TTNode | None:
        if live == 0:
            return None
        i = self.best_action[live]
        act = self.problem.actions[i]
        node = TTNode(action_index=i, live_set=live)
        if act.is_test:
            node.pos = self._build(live & act.subset)
            node.neg = self._build(live & ~act.subset)
        else:
            node.cont = self._build(live & ~act.subset)
        return node


def _solve_topdown(problem: TTProblem, minimax: bool) -> TopDownResult:
    cost: dict[int, float] = {0: 0.0}
    best: dict[int, int] = {}
    actions = problem.actions

    def value(s: int) -> float:
        got = cost.get(s)
        if got is not None:
            return got
        ps = 0.0 if minimax else problem.weight_of(s)
        best_val, best_i = INF, -1
        for i, act in enumerate(actions):
            inter = s & act.subset
            rest = s & ~act.subset
            if act.is_test:
                if inter == 0 or rest == 0:
                    continue
                if minimax:
                    val = act.cost + max(value(inter), value(rest))
                else:
                    val = act.cost * ps + value(inter) + value(rest)
            else:
                if inter == 0:
                    continue
                if minimax:
                    val = act.cost + value(rest)
                else:
                    val = act.cost * ps + value(rest)
            if val < best_val:
                best_val, best_i = val, i
        cost[s] = best_val
        if best_i >= 0:
            best[s] = best_i
        return best_val

    total = value(problem.universe)
    return TopDownResult(
        problem=problem,
        optimal_cost=total,
        cost=cost,
        best_action=best,
        criterion="minimax" if minimax else "expected",
    )


def solve_dp_topdown(problem: TTProblem) -> TopDownResult:
    """Expected-cost optimum via top-down memoization.

    Same optimum as :func:`repro.core.sequential.solve_dp` (tested), but
    visits only the subsets reachable from ``U`` — the memo size is the
    interesting output.
    """
    return _solve_topdown(problem, minimax=False)


def solve_minimax(problem: TTProblem) -> TopDownResult:
    """Worst-case-cost optimum (see module docstring for the recurrence)."""
    return _solve_topdown(problem, minimax=True)
