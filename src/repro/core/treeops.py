"""Analysis and export utilities over TT procedures.

Downstream users of a solved procedure want more than its expected cost:
per-object diagnostic effort, action-usage frequencies, worst cases,
structural comparison between procedures, and a Graphviz export for
papers/reports.  Everything operates on the validated
:class:`~repro.core.tree.TTTree` structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.bitops import bits_of, subset_str
from .tree import TTNode, TTTree

__all__ = [
    "ObjectOutcome",
    "per_object_outcomes",
    "expected_action_count",
    "worst_case_cost",
    "action_usage",
    "trees_equal",
    "to_dot",
]


@dataclass(frozen=True)
class ObjectOutcome:
    """Diagnostic summary for one possible faulty object."""

    obj: int
    weight: float
    n_actions: int
    cost: float
    treated_by: int  # action index of the curing treatment


def per_object_outcomes(tree: TTTree) -> list[ObjectOutcome]:
    """Simulate every object through the procedure."""
    out = []
    for j in bits_of(tree.problem.universe):
        steps = tree.simulate(j)
        if not steps or steps[-1].outcome != "cured":
            raise ValueError(f"object {j} is never cured — invalid procedure")
        out.append(
            ObjectOutcome(
                obj=j,
                weight=tree.problem.weights[j],
                n_actions=len(steps),
                cost=sum(s.cost for s in steps),
                treated_by=steps[-1].action_index,
            )
        )
    return out


def expected_action_count(tree: TTTree) -> float:
    """Expected number of actions executed (weights normalized)."""
    outcomes = per_object_outcomes(tree)
    total_w = sum(o.weight for o in outcomes)
    return sum(o.weight * o.n_actions for o in outcomes) / total_w


def worst_case_cost(tree: TTTree) -> tuple[int, float]:
    """The most expensive object to diagnose: ``(object, path cost)``."""
    outcomes = per_object_outcomes(tree)
    worst = max(outcomes, key=lambda o: o.cost)
    return worst.obj, worst.cost


def action_usage(tree: TTTree) -> dict[int, float]:
    """Probability (normalized weight) that each used action executes."""
    problem = tree.problem
    total_w = sum(problem.weights)
    usage: dict[int, float] = {}

    def walk(node: TTNode | None) -> None:
        if node is None:
            return
        usage[node.action_index] = usage.get(node.action_index, 0.0) + (
            problem.weight_of(node.live_set) / total_w
        )
        for child in node.children():
            walk(child)

    walk(tree.root)
    return usage


def trees_equal(a: TTTree, b: TTTree) -> bool:
    """Structural equality: same actions applied to the same live sets."""

    def eq(x: TTNode | None, y: TTNode | None) -> bool:
        if x is None or y is None:
            return x is y is None
        return (
            x.action_index == y.action_index
            and x.live_set == y.live_set
            and eq(x.pos, y.pos)
            and eq(x.neg, y.neg)
            and eq(x.cont, y.cont)
        )

    return a.problem == b.problem and eq(a.root, b.root)


def to_dot(tree: TTTree, name: str = "tt_procedure") -> str:
    """Graphviz DOT export: test nodes are boxes, treatments ellipses;
    edge labels follow the paper's Fig. 1 conventions (``+``/``-`` for
    test outcomes, ``fail`` for a treatment continuation)."""
    problem = tree.problem
    lines = [f"digraph {name} {{", "  node [fontname=monospace];"]
    counter = [0]

    def emit(node: TTNode | None) -> str | None:
        if node is None:
            return None
        nid = f"n{counter[0]}"
        counter[0] += 1
        act = problem.actions[node.action_index]
        shape = "box" if act.is_test else "ellipse"
        label = (
            f"{act.label(node.action_index)}\\n"
            f"on {subset_str(node.live_set)}\\ncost {act.cost:g}"
        )
        lines.append(f'  {nid} [shape={shape}, label="{label}"];')
        if act.is_test:
            for child, tag in ((node.pos, "+"), (node.neg, "-")):
                cid = emit(child)
                if cid:
                    lines.append(f'  {nid} -> {cid} [label="{tag}"];')
        else:
            treated = node.live_set & act.subset
            tid = f"n{counter[0]}"
            counter[0] += 1
            lines.append(
                f'  {tid} [shape=doublecircle, label="treated\\n{subset_str(treated)}"];'
            )
            lines.append(f"  {nid} -> {tid} [style=bold];")
            cid = emit(node.cont)
            if cid:
                lines.append(f'  {nid} -> {cid} [label="fail"];')
        return nid

    emit(tree.root)
    lines.append("}")
    return "\n".join(lines)
