"""Enumeration bounds for the bounded-model verification harness.

The harness checks backend equivalence and metamorphic properties over
*every* TT instance inside a small box of the instance space.  A
:class:`Bounds` names that box: the largest universe (``max_k``), the
most actions per instance (``max_actions``), and the index of the
weight/cost assignment catalogues applied to each structural skeleton
(see :mod:`repro.verify.enumeration` for how skeletons and assignments
compose).

Two presets are registered:

``QUICK``
    ``k <= 3, N <= 4`` — a few tens of thousands of instances, suitable
    for every-push CI and local pre-commit runs.
``FULL``
    ``k <= 4, N <= 5`` — the full bounded space from the issue spec,
    sized for nightly runs.

All weight and cost values produced under any bounds are small
non-negative integers.  That is a deliberate exactness contract, not a
simplification: integer-valued tables make every backend comparison and
metamorphic identity *bit-exact* in float64 (sums and doublings of small
integers are exact), and keep the fixed-point BVM encoding lossless so
the bit-serial backends can be held to the same bit-for-bit standard as
the host backends.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Bounds", "QUICK", "FULL", "PRESETS"]


@dataclass(frozen=True)
class Bounds:
    """A box of the TT instance space to cover exhaustively.

    Attributes
    ----------
    name:
        Preset label (shows up in reports and CI logs).
    max_k:
        Largest universe size enumerated (``k = 1 .. max_k``).
    max_actions:
        Largest action count per instance (``N = 1 .. max_actions``).
    bvm_stride:
        Default sampling stride for the (slow, bit-serial) BVM backends:
        they check every ``bvm_stride``-th *adequate* instance rather
        than the full space.  Prime so the stride never aliases the
        weight/cost pattern cycle.
    """

    name: str
    max_k: int
    max_actions: int
    bvm_stride: int

    def __post_init__(self) -> None:
        if self.max_k < 1:
            raise ValueError("bounds need max_k >= 1")
        if self.max_actions < 1:
            raise ValueError("bounds need max_actions >= 1")
        if self.bvm_stride < 1:
            raise ValueError("bounds need bvm_stride >= 1")


QUICK = Bounds(name="quick", max_k=3, max_actions=4, bvm_stride=211)
FULL = Bounds(name="full", max_k=4, max_actions=5, bvm_stride=1999)

PRESETS: dict[str, Bounds] = {b.name: b for b in (QUICK, FULL)}
