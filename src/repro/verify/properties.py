"""Metamorphic property catalogue for the verification harness.

Differential testing catches backends disagreeing with each other; it
cannot catch all backends sharing one wrong answer.  The properties here
close that gap: each states an *invariance of the TT problem itself*
(standard results from the sequential testing-and-diagnosis literature)
and checks it by solving a transformed instance and comparing tables.

Every property receives the instance and its reference
:class:`~repro.core.sequential.DPResult` and returns ``None`` on success
or a one-line failure detail.  Transformed instances are re-solved with
the numpy backend — cross-backend agreement is the differential pass's
job, so properties only need one trusted solver.

Exactness: on the integer weight/cost alphabets the enumeration emits
(see :mod:`repro.verify.bounds`), every identity below holds *bit-for-
bit* in float64 (doubling and permuting integer-valued tables is exact),
so comparisons are exact equality, not tolerance-based — tolerance is
where real off-by-one-ULP regressions go to hide.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..core.problem import Action, TTProblem
from ..core.sequential import DPResult, solve_dp, solve_dp_reference
from ..core.transforms import canonicalize
from ..ttpar.extract import rederive_policy, tree_from_tables
from ..ttpar.verify import verify_cost_table

__all__ = ["PROPERTIES", "run_property", "run_check"]

PropertyFn = Callable[[TTProblem, DPResult], "str | None"]


def _tables_equal(cost_a, cost_b, best_a, best_b) -> str | None:
    if not np.array_equal(cost_a, cost_b):
        bad = int(np.argmax(~(np.asarray(cost_a) == np.asarray(cost_b))))
        return f"cost tables differ first at subset {bad:#x}: {cost_a[bad]} vs {cost_b[bad]}"
    if not np.array_equal(best_a, best_b):
        bad = int(np.argmax(np.asarray(best_a) != np.asarray(best_b)))
        return f"argmin tables differ first at subset {bad:#x}: {best_a[bad]} vs {best_b[bad]}"
    return None


def _prop_bellman(problem: TTProblem, ref: DPResult) -> str | None:
    """The cost table is a fixed point of the Bellman operator."""
    report = verify_cost_table(problem, ref.cost)
    if not report.ok:
        return (
            f"Bellman residual {report.max_residual} at subset "
            f"{report.first_violation:#x} ({report.n_violations} violations)"
        )
    return None


def _prop_cost_scaling(problem: TTProblem, ref: DPResult) -> str | None:
    """Doubling every action cost doubles ``C`` and fixes the argmin."""
    scaled = problem.with_actions(
        Action(a.kind, a.subset, 2.0 * a.cost, a.name) for a in problem.actions
    )
    r = solve_dp(scaled)
    return _tables_equal(r.cost, 2.0 * ref.cost, r.best_action, ref.best_action)


def _prop_weight_scaling(problem: TTProblem, ref: DPResult) -> str | None:
    """Doubling every object weight doubles ``C`` and fixes the argmin."""
    scaled = TTProblem(
        k=problem.k,
        weights=tuple(2.0 * w for w in problem.weights),
        actions=problem.actions,
        name=problem.name,
    )
    r = solve_dp(scaled)
    return _tables_equal(r.cost, 2.0 * ref.cost, r.best_action, ref.best_action)


def _permute_mask(mask: int, perm: list[int]) -> int:
    out = 0
    for j, pj in enumerate(perm):
        if (mask >> j) & 1:
            out |= 1 << pj
    return out


def _prop_relabel(problem: TTProblem, ref: DPResult) -> str | None:
    """Relabeling objects permutes the tables and nothing else.

    Uses the rotation ``j -> (j+1) mod k``, which generates a nontrivial
    orbit for every ``k >= 2``.  This is also the property that covers
    the asymmetric weight/cost assignments the enumeration's structural
    dedup deliberately does not canonicalize over.
    """
    k = problem.k
    if k < 2:
        return None
    perm = [(j + 1) % k for j in range(k)]
    inv = [0] * k
    for j, pj in enumerate(perm):
        inv[pj] = j
    relabeled = TTProblem(
        k=k,
        weights=tuple(problem.weights[inv[j]] for j in range(k)),
        actions=tuple(
            Action(a.kind, _permute_mask(a.subset, perm), a.cost, a.name)
            for a in problem.actions
        ),
        name=problem.name,
    )
    r = solve_dp(relabeled)
    pi = np.array([_permute_mask(s, perm) for s in range(1 << k)], dtype=np.int64)
    return _tables_equal(r.cost[pi], ref.cost, r.best_action[pi], ref.best_action)


def _prop_duplicate_action(problem: TTProblem, ref: DPResult) -> str | None:
    """Appending a copy of action 0 changes nothing.

    The copy sits at the highest index, so under the lowest-index
    tie-break it may never win — both tables must be bit-identical,
    which pins the tie-break rule itself across the contract.
    """
    first = problem.actions[0]
    dup = problem.with_actions(
        list(problem.actions) + [Action(first.kind, first.subset, first.cost)]
    )
    r = solve_dp(dup)
    return _tables_equal(r.cost, ref.cost, r.best_action, ref.best_action)


def _prop_canonicalize(problem: TTProblem, ref: DPResult) -> str | None:
    """Optimum-preserving reductions preserve the whole merged table.

    For every subset ``G`` of the reduced universe,
    ``C_reduced(G) == C_original(union of G's object groups)`` — not
    just the optimum at the full universe.
    """
    report = canonicalize(problem)
    red = report.problem
    r = solve_dp(red)
    union = np.zeros(1 << red.k, dtype=np.int64)
    for new_j, grp in enumerate(report.groups):
        gbit = np.int64(1) << new_j
        member = (np.arange(1 << red.k, dtype=np.int64) & gbit) != 0
        gmask = 0
        for orig in grp:
            gmask |= 1 << orig
        union[member] |= gmask
    lifted = ref.cost[union]
    if not np.array_equal(r.cost, lifted):
        bad = int(np.argmax(~(r.cost == lifted)))
        return (
            f"reduced C({bad:#x})={r.cost[bad]} != original "
            f"C({int(union[bad]):#x})={lifted[bad]}"
        )
    return None


def _prop_rederive_policy(problem: TTProblem, ref: DPResult) -> str | None:
    """Re-deriving the argmin from the cost table matches the DP's."""
    pol = rederive_policy(problem, ref.cost)
    if not np.array_equal(pol, ref.best_action):
        bad = int(np.argmax(pol != np.asarray(ref.best_action)))
        return (
            f"rederived policy differs first at subset {bad:#x}: "
            f"{pol[bad]} vs {ref.best_action[bad]}"
        )
    return None


def _prop_tree_roundtrip(problem: TTProblem, ref: DPResult) -> str | None:
    """The reconstructed procedure's expected cost equals ``C(U)``.

    Checked through both the recorded policy and the rederived one
    (``best_action=None``); infeasible instances must raise, not emit a
    tree.
    """
    if not ref.feasible:
        for best in (ref.best_action, None):
            try:
                tree_from_tables(problem, ref.cost, best)
            except ValueError:
                continue
            return "tree_from_tables did not raise on an infeasible instance"
        return None
    for label, best in (("recorded", ref.best_action), ("rederived", None)):
        tree = tree_from_tables(problem, ref.cost, best)
        got = tree.expected_cost()
        if abs(got - ref.optimal_cost) > 1e-9:
            return (
                f"{label}-policy tree costs {got}, table says {ref.optimal_cost}"
            )
    return None


PROPERTIES: dict[str, PropertyFn] = {
    "bellman": _prop_bellman,
    "cost-scaling": _prop_cost_scaling,
    "weight-scaling": _prop_weight_scaling,
    "relabel": _prop_relabel,
    "duplicate-action": _prop_duplicate_action,
    "canonicalize": _prop_canonicalize,
    "rederive-policy": _prop_rederive_policy,
    "tree-roundtrip": _prop_tree_roundtrip,
}


def run_property(name: str, problem: TTProblem, ref: DPResult | None = None) -> str | None:
    """Run one named property; ``None`` means it holds."""
    fn = PROPERTIES.get(name)
    if fn is None:
        raise ValueError(f"unknown property {name!r}; expected one of {sorted(PROPERTIES)}")
    if ref is None:
        ref = solve_dp_reference(problem)
    return fn(problem, ref)


def run_check(check: str, problem: TTProblem) -> str | None:
    """Re-run a single harness check by its report name.

    ``check`` is either ``"property:<name>"`` or ``"backend:<name>"``
    exactly as recorded in a :class:`~repro.verify.harness.Discrepancy`;
    shrunken regression tests call this so a reproducer stays one line.
    Returns ``None`` when the check passes, else the failure detail.
    """
    kind, _, name = check.partition(":")
    if kind == "property":
        return run_property(name, problem)
    if kind == "backend":
        from .backends import make_backends

        (backend,) = make_backends([name])
        try:
            got = backend.tables(problem)
        finally:
            backend.close()
        if got is None:
            return None  # backend declines this instance
        ref = solve_dp_reference(problem)
        return _tables_equal(got[0], ref.cost, got[1], ref.best_action)
    raise ValueError(f"check must be 'property:<name>' or 'backend:<name>', got {check!r}")
