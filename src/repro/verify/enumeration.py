"""Systematic enumeration of every TT instance inside a :class:`Bounds`.

The space factors into two independent parts:

**Structures.**  The combinatorial skeleton of an instance is a multiset
of *atoms* ``(kind, subset)`` — which subsets are tested and which are
treated, with costs and weights abstracted away.  Multisets (not
sequences) suffice because every solver is invariant under permuting
equal actions, and the determinism contract's index tie-break is
exercised separately by the duplication metamorphic property.  Atoms are
packed into small integers (``kind * 2^k + subset``) and multisets
enumerated by ``combinations_with_replacement``.

**Canonical-form dedup.**  Relabeling objects maps every solver's tables
through the same permutation, so two structures in the same orbit of the
symmetric group ``S_k`` (acting on subset bits) are redundant to check.
Each orbit keeps only its lexicographically-least member: all ``k!``
permutations are applied as vectorized atom-lookup gathers, each
permuted multiset is sorted and encoded as a single base-``(#atoms+1)``
integer key, and a structure survives iff its own key equals the orbit
minimum.  At ``k=4, N<=5`` this cuts ~436k raw multisets to ~22k
canonical ones.  (Dedup is computed on the *structure* only; the
weight/cost assignments below are not orbit-symmetric, so the harness
additionally checks relabeling invariance as a metamorphic property on
every retained instance rather than relying on dedup for it.)

**Assignments.**  Each canonical structure is instantiated under a fixed
catalogue of weight patterns (uniform, skewed, alternating, zero-first —
the last models a-priori-ruled-out objects) and cost patterns (unit,
ascending, zero-first, all-zero — the last a maximal tie stressor).  All
values are small integers; see :mod:`repro.verify.bounds` for why that
is an exactness contract.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import combinations_with_replacement, permutations

import numpy as np

from ..core.problem import Action, ActionKind, TTProblem
from .bounds import Bounds

__all__ = [
    "canonical_structures",
    "weight_patterns",
    "cost_patterns",
    "enumerate_instances",
    "count_instances",
]


def _atom_subset_perms(k: int) -> np.ndarray:
    """Atom-id lookup tables, one row per permutation of the objects.

    Row ``p`` maps atom id ``a`` to the id of the same-kind action whose
    subset has each object ``j`` relabeled to ``perm[j]``.
    """
    n_sub = 1 << k
    perms = list(permutations(range(k)))
    subset_map = np.zeros((len(perms), n_sub), dtype=np.int64)
    for pi, perm in enumerate(perms):
        for s in range(n_sub):
            out = 0
            for j in range(k):
                if (s >> j) & 1:
                    out |= 1 << perm[j]
            subset_map[pi, s] = out
    # Atom id = kind * n_sub + subset; kind is permutation-invariant.
    atom_map = np.concatenate([subset_map, n_sub + subset_map], axis=1)
    return atom_map


def canonical_structures(k: int, max_actions: int) -> list[tuple[int, ...]]:
    """All orbit-canonical action multisets for universe size ``k``.

    Returns sorted atom-id tuples (``atom = kind * 2^k + subset``,
    kind 0 = test, 1 = treatment), one per ``S_k`` orbit, in
    deterministic enumeration order.
    """
    n_sub = 1 << k
    n_atoms = 2 * n_sub
    pad = n_atoms  # sorts after every real atom; fixed by every perm
    raw: list[tuple[int, ...]] = []
    for n in range(1, max_actions + 1):
        raw.extend(combinations_with_replacement(range(n_atoms), n))
    arr = np.full((len(raw), max_actions), pad, dtype=np.int64)
    for row, struct in enumerate(raw):
        arr[row, : len(struct)] = struct

    atom_map = _atom_subset_perms(k)
    lookup = np.concatenate([atom_map, np.full((atom_map.shape[0], 1), pad)], axis=1)

    base = np.int64(n_atoms + 1)
    weights = base ** np.arange(max_actions - 1, -1, -1, dtype=np.int64)

    def encode(rows: np.ndarray) -> np.ndarray:
        return rows @ weights

    own_key = encode(arr)
    min_key = own_key.copy()
    for pi in range(lookup.shape[0]):
        mapped = np.sort(lookup[pi][arr], axis=1)
        np.minimum(min_key, encode(mapped), out=min_key)
    keep = own_key == min_key
    return [raw[i] for i in np.nonzero(keep)[0]]


def weight_patterns(k: int) -> list[tuple[str, tuple[float, ...]]]:
    """The weight-assignment catalogue for universe size ``k``.

    Every pattern is a tuple of small non-negative integers with a
    strictly positive total (patterns violating that are dropped, e.g.
    zero-first at ``k = 1``); duplicates after instantiation are merged.
    """
    candidates = [
        ("w-uniform", tuple(1.0 for _ in range(k))),
        ("w-skew", tuple(float(k - j) for j in range(k))),
        ("w-alt", tuple(float(1 + (j % 2)) for j in range(k))),
        ("w-zero0", tuple(0.0 if j == 0 else 1.0 for j in range(k))),
    ]
    seen: set[tuple[float, ...]] = set()
    out = []
    for name, pattern in candidates:
        if sum(pattern) <= 0 or pattern in seen:
            continue
        seen.add(pattern)
        out.append((name, pattern))
    return out


def cost_patterns(n: int) -> list[tuple[str, tuple[float, ...]]]:
    """The cost-assignment catalogue for ``n`` actions (index-based)."""
    candidates = [
        ("c-unit", tuple(1.0 for _ in range(n))),
        ("c-asc", tuple(float(1 + (i % 3)) for i in range(n))),
        ("c-zero0", tuple(0.0 if i == 0 else 1.0 for i in range(n))),
        ("c-zero", tuple(0.0 for _ in range(n))),
    ]
    seen: set[tuple[float, ...]] = set()
    out = []
    for name, pattern in candidates:
        if pattern in seen:
            continue
        seen.add(pattern)
        out.append((name, pattern))
    return out


def _instantiate(
    k: int, struct: tuple[int, ...], weights, costs, name: str
) -> TTProblem:
    n_sub = 1 << k
    actions = []
    for i, atom in enumerate(struct):
        kind = ActionKind.TEST if atom < n_sub else ActionKind.TREATMENT
        actions.append(Action(kind, atom % n_sub, costs[i]))
    return TTProblem(k=k, weights=tuple(weights), actions=tuple(actions), name=name)


def enumerate_instances(bounds: Bounds) -> Iterator[TTProblem]:
    """Yield every instance inside ``bounds`` in deterministic order.

    Instance names encode their provenance
    (``k<k>/s<structure-index>/<weight-pattern>/<cost-pattern>``) so a
    reported discrepancy is locatable without re-enumerating.
    """
    for k in range(1, bounds.max_k + 1):
        wpats = weight_patterns(k)
        for sidx, struct in enumerate(canonical_structures(k, bounds.max_actions)):
            cpats = cost_patterns(len(struct))
            for wname, weights in wpats:
                for cname, costs in cpats:
                    yield _instantiate(
                        k, struct, weights, costs, f"k{k}/s{sidx}/{wname}/{cname}"
                    )


def count_instances(bounds: Bounds) -> int:
    """Total instances :func:`enumerate_instances` will yield.

    Cheap relative to solving (structures are enumerated but never
    instantiated or solved); used to derive deterministic budget strides.
    """
    total = 0
    for k in range(1, bounds.max_k + 1):
        n_w = len(weight_patterns(k))
        for struct in canonical_structures(k, bounds.max_actions):
            total += n_w * len(cost_patterns(len(struct)))
    return total
