"""Bounded-model verification of the solver stack.

Exhaustively enumerates every TT instance inside small bounds (canonical
under object relabeling), holds every registered backend's tables
bit-for-bit to the plain-Python reference oracle, checks a catalogue of
metamorphic invariances, and shrinks any discrepancy to a minimal
ready-to-paste regression test.

Entry points: :func:`run_verification` (library),
``repro verify-exhaustive`` (CLI), :func:`run_check` (what emitted
regression tests call).
"""

from .backends import BACKEND_FACTORIES, default_backend_names, make_backends
from .bounds import FULL, PRESETS, QUICK, Bounds
from .enumeration import (
    canonical_structures,
    cost_patterns,
    count_instances,
    enumerate_instances,
    weight_patterns,
)
from .harness import Discrepancy, VerifyReport, run_verification
from .properties import PROPERTIES, run_check, run_property
from .shrink import emit_regression_test, shrink

__all__ = [
    "Bounds",
    "QUICK",
    "FULL",
    "PRESETS",
    "canonical_structures",
    "enumerate_instances",
    "count_instances",
    "weight_patterns",
    "cost_patterns",
    "BACKEND_FACTORIES",
    "default_backend_names",
    "make_backends",
    "PROPERTIES",
    "run_property",
    "run_check",
    "shrink",
    "emit_regression_test",
    "Discrepancy",
    "VerifyReport",
    "run_verification",
]
