"""Discrepancy shrinking and regression-test emission.

A failure found deep in a half-million-instance sweep is useless until
it is small enough to read.  :func:`shrink` greedily minimizes a failing
instance under a re-runnable predicate — drop actions, drop objects,
flatten costs and weights to 0/1 — to a local minimum where no single
reduction still reproduces the failure.  Deterministic: same instance +
same predicate -> same reproducer.

:func:`emit_regression_test` renders the shrunken instance as a
self-contained pytest file that re-runs the exact failed check through
:func:`repro.verify.run_check`, ready to paste (or upload from CI as an
artifact) into ``tests/verify/``.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Iterator

from ..core.problem import Action, TTProblem

__all__ = ["shrink", "emit_regression_test"]

Predicate = Callable[[TTProblem], "str | None"]


def _without_action(problem: TTProblem, i: int) -> TTProblem | None:
    if problem.n_actions <= 1:
        return None
    return problem.with_actions(
        [a for j, a in enumerate(problem.actions) if j != i]
    )


def _without_object(problem: TTProblem, j: int) -> TTProblem | None:
    """Drop object ``j``, compressing every subset mask around the hole."""
    if problem.k <= 1:
        return None
    low = (1 << j) - 1

    def squeeze(mask: int) -> int:
        return (mask & low) | ((mask >> (j + 1)) << j)

    weights = tuple(w for jj, w in enumerate(problem.weights) if jj != j)
    actions = tuple(
        Action(a.kind, squeeze(a.subset), a.cost, a.name) for a in problem.actions
    )
    return TTProblem(k=problem.k - 1, weights=weights, actions=actions)


def _with_cost(problem: TTProblem, i: int, cost: float) -> TTProblem | None:
    if problem.actions[i].cost == cost:
        return None
    a = problem.actions[i]
    acts = list(problem.actions)
    acts[i] = Action(a.kind, a.subset, cost, a.name)
    return problem.with_actions(acts)


def _with_weight(problem: TTProblem, j: int, weight: float) -> TTProblem | None:
    if problem.weights[j] == weight:
        return None
    weights = list(problem.weights)
    weights[j] = weight
    return TTProblem(k=problem.k, weights=tuple(weights), actions=problem.actions)


def _valid(make: Callable[[], TTProblem | None]) -> TTProblem | None:
    """Build a candidate; invalid reductions (e.g. the removed object
    carried all the weight) are skipped, not fatal."""
    try:
        return make()
    except ValueError:
        return None


def _candidates(problem: TTProblem) -> Iterator[TTProblem | None]:
    # Structural reductions first (biggest wins), then value flattening.
    # Flattening is monotone toward simpler values (x -> 0, else x -> 1
    # only from outside {0, 1}) so a value-indifferent failure cannot
    # make the greedy loop oscillate between flatten targets.
    for i in range(problem.n_actions):
        yield _valid(lambda i=i: _without_action(problem, i))
    for j in range(problem.k):
        yield _valid(lambda j=j: _without_object(problem, j))
    for i in range(problem.n_actions):
        yield _valid(lambda i=i: _with_cost(problem, i, 0.0))
        if problem.actions[i].cost not in (0.0, 1.0):
            yield _valid(lambda i=i: _with_cost(problem, i, 1.0))
    for j in range(problem.k):
        if problem.weights[j] not in (0.0, 1.0):
            yield _valid(lambda j=j: _with_weight(problem, j, 1.0))


def shrink(problem: TTProblem, failing: Predicate, max_steps: int = 10_000) -> TTProblem:
    """Greedily minimize ``problem`` while ``failing`` still reproduces.

    ``failing`` returns a failure detail (truthy) when the bug still
    fires, ``None`` when the candidate no longer reproduces it.
    Candidates that are not even valid problems (e.g. total weight hits
    zero) are skipped.  Stops at a 1-step-minimal instance or after
    ``max_steps`` accepted reductions.
    """
    steps = 0
    while steps < max_steps:
        for candidate in _candidates(problem):
            if candidate is None:
                continue
            try:
                still_fails = failing(candidate)
            except Exception:
                # A reduction that changes the failure mode into a crash
                # is still the same neighborhood; keep it only if the
                # caller's predicate classifies crashes itself.
                still_fails = None
            if still_fails:
                problem = candidate
                steps += 1
                break
        else:
            return problem
    return problem


_SLUG_RE = re.compile(r"[^a-z0-9]+")


def _slug(text: str) -> str:
    return _SLUG_RE.sub("_", text.lower()).strip("_") or "check"


def emit_regression_test(check: str, problem: TTProblem, detail: str) -> tuple[str, str]:
    """Render a ready-to-paste pytest reproducer.

    Returns ``(suggested_filename, file_contents)``.  The test body is a
    single :func:`repro.verify.run_check` call, so the reproducer stays
    valid even if internal solver APIs move.
    """
    slug = _slug(check)
    body = f'''"""Shrunken reproducer emitted by `repro verify-exhaustive`.

Failed check: {check}
Detail at emission time: {detail}
"""

from repro.core.problem import TTProblem
from repro.verify import run_check

PROBLEM_JSON = r"""{problem.to_json()}"""


def test_{slug}():
    problem = TTProblem.from_json(PROBLEM_JSON)
    failure = run_check({check!r}, problem)
    assert failure is None, failure
'''
    return f"test_repro_{slug}.py", body
