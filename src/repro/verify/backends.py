"""Registry of solver backends under differential verification.

Every entry produces the full ``(cost, best_action)`` tables for an
instance through a *different* execution path — plain-Python oracle,
vectorized fused kernel, legacy unfused kernel, warm engine, batched
engine, sharded multiprocess engine, bit-serial BVM — and the harness
holds them all bit-for-bit identical to the reference oracle.

Two scopes exist: ``"full"`` backends check every enumerated instance;
``"sampled"`` backends (the BVM simulators, ~3 orders of magnitude
slower per instance) check a deterministic prime-strided slice of the
adequate instances.  A backend may also *decline* an instance by
returning ``None`` from :meth:`VerifyBackend.tables` (the BVM requires
adequacy); declines are counted, never silently conflated with passes.
"""

from __future__ import annotations

import os

import numpy as np

from ..core.engine import SolverEngine
from ..core.kernels import layer_plan
from ..core.problem import TTProblem
from ..core.sequential import (
    solve_dp,
    solve_dp_reference,
    solve_layer_kernel,
    subset_weights,
)

__all__ = [
    "VerifyBackend",
    "REFERENCE",
    "BACKEND_FACTORIES",
    "default_backend_names",
    "make_backends",
]

REFERENCE = "reference"

Tables = tuple[np.ndarray, np.ndarray]


class VerifyBackend:
    """One named execution path producing ``(cost, best_action)`` tables.

    Subclasses override :meth:`tables` (and optionally
    :meth:`tables_batch` when the path has a genuine batch API whose
    batching itself needs verification).  ``scope`` is ``"full"`` or
    ``"sampled"``; sampled backends see every ``stride``-th instance
    they do not decline.
    """

    name: str = ""
    scope: str = "full"

    def accepts(self, problem: TTProblem) -> bool:
        """Whether this backend can solve the instance at all.

        Sampled backends stride over the instances they accept, so a
        backend with a narrow domain (the BVM needs adequacy) still
        spends its sample budget on checkable instances.
        """
        return True

    def tables(self, problem: TTProblem) -> Tables | None:
        raise NotImplementedError

    def tables_batch(self, problems: list[TTProblem]) -> list[Tables | None]:
        return [self.tables(p) for p in problems]

    def close(self) -> None:  # noqa: B027 - optional hook
        pass


class _ReferenceBackend(VerifyBackend):
    name = REFERENCE

    def tables(self, problem):
        r = solve_dp_reference(problem)
        return r.cost, r.best_action


class _NumpyBackend(VerifyBackend):
    name = "numpy"

    def tables(self, problem):
        r = solve_dp(problem)
        return r.cost, r.best_action


class _LegacyKernelBackend(VerifyBackend):
    """The unfused per-layer kernel, driven layer by layer.

    ``solve_layer_kernel`` is the straight-line statement of the
    determinism contract; running it as a full backend keeps the fused
    production kernel honest against it over the whole bounded space.
    """

    name = "kernel"

    def tables(self, problem):
        k = problem.k
        plan = layer_plan(k)
        p = subset_weights(problem)
        cost = np.full(1 << k, np.inf, dtype=np.float64)
        best = np.full(1 << k, -1, dtype=np.int64)
        cost[0] = 0.0
        subsets = problem.subset_array
        costs = problem.cost_array
        is_test = problem.test_mask_array
        for j in range(1, k + 1):
            masks = plan.layer(j)
            layer_cost, layer_arg = solve_layer_kernel(
                masks, p[masks], cost, subsets, costs, is_test
            )
            cost[masks] = layer_cost
            best[masks] = layer_arg
        return cost, best


class _EngineBackend(VerifyBackend):
    """A single warm :class:`SolverEngine`, one ``solve()`` per instance."""

    name = "engine"

    def __init__(self):
        self._engine = SolverEngine(backend="numpy")

    def tables(self, problem):
        r = self._engine.solve(problem)
        return r.cost, r.best_action

    def close(self):
        self._engine.close()


class _EngineBatchBackend(VerifyBackend):
    """The ``solve_many`` pipelined path, exercised as actual batches."""

    name = "engine-batch"

    def __init__(self):
        self._engine = SolverEngine(backend="numpy")

    def tables(self, problem):
        (r,) = self._engine.solve_many([problem])
        return r.cost, r.best_action

    def tables_batch(self, problems):
        results = self._engine.solve_many(problems)
        return [(r.cost, r.best_action) for r in results]

    def close(self):
        self._engine.close()


class _ParallelBackend(VerifyBackend):
    """The sharded multiprocess path, forced through real worker shards.

    ``min_shard=1`` matters: at verification sizes every instance is far
    below ``MIN_SHARD``, so without it the "parallel" engine would
    quietly run the in-process kernel and verify nothing.

    Runs the default *strict* shard discipline; ``parallel-snapshot``
    pins the deprecated snapshot discipline to the same bit-for-bit
    contract for as long as ``REPRO_SHARD_DISCIPLINE=snapshot`` remains
    accepted.  The discipline is passed explicitly (never via the env
    var): each warm engine's pool bakes its discipline in at creation,
    and an env flip mid-sweep must not leak between backends.
    """

    name = "parallel"
    discipline = "strict"

    def __init__(self):
        self._engine = SolverEngine(
            workers=2, backend="parallel", min_shard=1,
            discipline=self.discipline,
        )

    def tables(self, problem):
        r = self._engine.solve(problem)
        return r.cost, r.best_action

    def close(self):
        self._engine.close()


class _ParallelSnapshotBackend(_ParallelBackend):
    name = "parallel-snapshot"
    discipline = "snapshot"


class _MmapStoreBackend(VerifyBackend):
    """The out-of-core spill store, a fresh temp spill dir per instance.

    Exercises the durable path end to end — chunked order generation,
    strict-mode kernel over file-backed tables, slab commit, manifest —
    and holds its tables bit-for-bit to the oracle.  ``fsync`` is off:
    the sweep verifies the *bytes*, not the durability barriers (the
    crash drills cover those), and syncing thousands of tiny instances
    would dominate the runtime.
    """

    name = "store-mmap"

    def tables(self, problem):
        import shutil
        import tempfile

        from .. import store as store_mod
        from ..core.dispatch import solve as core_solve

        tmp = tempfile.mkdtemp(prefix="repro-verify-spill-")
        try:
            spec = store_mod.StoreSpec(
                kind="mmap", spill_dir=os.path.join(tmp, "spill"), fsync=False
            )
            r = core_solve(problem, backend="parallel", workers=1, store=spec)
            # Copy out: the result tables are memmaps of files about to
            # be removed.
            return r.cost.copy(), r.best_action.copy()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)


def _bvm_accepts(problem: TTProblem) -> bool:
    """The BVM simulators' bit-exact domain (see :class:`_BVMBackend`)."""
    return (
        problem.is_adequate()
        and all(float(w).is_integer() for w in problem.weights)
        and all(float(a.cost).is_integer() for a in problem.actions)
    )


class _BVMBackend(VerifyBackend):
    """Bit-serial BVM simulator (bool or word-packed execution).

    Declines instances outside its bit-exact domain: the machine program
    requires adequacy, and the fixed-point encoding is lossless only on
    integer weight/cost alphabets (which is everything the enumeration
    emits, but not every ad-hoc instance).  Inside that domain the
    decoded tables are held fully bit-for-bit — cost *and* argmin —
    against the reference oracle.
    """

    scope = "sampled"

    def __init__(self, bvm_backend: str):
        self.name = f"bvm-{bvm_backend}"
        self._bvm_backend = bvm_backend

    def accepts(self, problem):
        return _bvm_accepts(problem)

    def tables(self, problem):
        if not self.accepts(problem):
            return None
        from ..ttpar.bvm_tt import solve_tt_bvm

        r = solve_tt_bvm(problem, backend=self._bvm_backend)
        return r.cost, r.best_action


class _BVMBatchBackend(VerifyBackend):
    """The instance-batched packed BVM, exercised as genuine batches.

    :meth:`tables_batch` hands the whole accepted chunk to
    :func:`~repro.ttpar.bvm_tt.solve_tt_bvm_batch` — instances grouped
    by machine shape, one compiled replay per group with all lanes in
    lockstep (``B > 1`` whenever the chunk allows it) — so the harness
    checks each *lane* of a real batched replay against the oracle, not
    a degenerate stream of one-lane batches.  Same bit-exact domain as
    :class:`_BVMBackend`.
    """

    scope = "sampled"
    name = "bvm-packed-batch"

    def accepts(self, problem):
        return _bvm_accepts(problem)

    def tables(self, problem):
        return self.tables_batch([problem])[0]

    def tables_batch(self, problems):
        from ..ttpar.bvm_tt import solve_tt_bvm_batch

        taken = [i for i, p in enumerate(problems) if self.accepts(p)]
        out: list[Tables | None] = [None] * len(problems)
        if taken:
            results = solve_tt_bvm_batch([problems[i] for i in taken])
            for i, r in zip(taken, results):
                out[i] = (r.cost, r.best_action)
        return out


class _NativeBackend(VerifyBackend):
    """The numba-jitted layer kernel driven through ``solve_dp``.

    numba is optional: without it this backend warns loudly at
    construction and declines every instance (the report counts the
    declines), so a sweep that *claims* to have verified ``native``
    can never have silently run numpy instead.
    :func:`default_backend_names` only includes it when numba is
    importable; requesting it explicitly always works.
    """

    name = "native"

    def __init__(self):
        from ..core.native import NATIVE_FALLBACK_MSG, native_available

        self._available = native_available()
        if not self._available:
            import warnings

            warnings.warn(
                "verify backend 'native' will decline every instance: "
                + NATIVE_FALLBACK_MSG,
                RuntimeWarning,
                stacklevel=2,
            )

    def accepts(self, problem):
        return self._available

    def tables(self, problem):
        if not self._available:
            return None
        from ..core.native import solve_layer_kernel_native

        r = solve_dp(problem, kernel=solve_layer_kernel_native)
        return r.cost, r.best_action


BACKEND_FACTORIES: dict[str, type | object] = {
    REFERENCE: _ReferenceBackend,
    "numpy": _NumpyBackend,
    "kernel": _LegacyKernelBackend,
    "engine": _EngineBackend,
    "engine-batch": _EngineBatchBackend,
    "parallel": _ParallelBackend,
    "parallel-snapshot": _ParallelSnapshotBackend,
    "store-mmap": _MmapStoreBackend,
    "bvm-bool": lambda: _BVMBackend("bool"),
    "bvm-packed": lambda: _BVMBackend("packed"),
    "bvm-packed-batch": _BVMBatchBackend,
    "native": _NativeBackend,
}


def default_backend_names() -> list[str]:
    """Every registered backend except the reference oracle itself.

    ``native`` appears only when its optional numba dependency is
    importable — a default sweep should not warn about extras the
    environment never promised — but an explicit ``--backends native``
    request always constructs it (and is loudly declined without numba).
    """
    from ..core.native import native_available

    names = [n for n in BACKEND_FACTORIES if n != REFERENCE]
    if not native_available():
        names.remove("native")
    return names


def make_backends(names: list[str]) -> list[VerifyBackend]:
    """Instantiate backends by name (unknown names raise ``ValueError``)."""
    out = []
    for n in names:
        factory = BACKEND_FACTORIES.get(n)
        if factory is None:
            raise ValueError(
                f"unknown verify backend {n!r}; expected one of "
                f"{sorted(BACKEND_FACTORIES)}"
            )
        out.append(factory())
    return out
