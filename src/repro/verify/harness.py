"""Orchestration of the bounded-model verification sweep.

:func:`run_verification` drives the whole pipeline: enumerate every
instance inside the bounds (optionally budget-strided), solve each with
the reference oracle, hold every registered backend's tables bit-for-bit
to the oracle's, check the metamorphic property catalogue, and — on any
discrepancy — shrink to a minimal reproducer and emit it as a pytest
file.

Budgeting is a *deterministic stride*, never a prefix: a prefix of the
enumeration order would spend the whole budget on the smallest ``k`` and
shortest action lists, exactly the instances least likely to expose
layer/sharding bugs.  The stride keeps coverage proportional across the
space and makes two runs with the same budget check the same instances.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.problem import TTProblem
from ..core.sequential import solve_dp_reference
from .backends import REFERENCE, VerifyBackend, default_backend_names, make_backends
from .bounds import QUICK, Bounds
from .enumeration import count_instances, enumerate_instances
from .properties import PROPERTIES, run_check
from .shrink import emit_regression_test, shrink

__all__ = ["Discrepancy", "VerifyReport", "run_verification"]

_CHUNK = 256


@dataclass
class Discrepancy:
    """One verification failure, with its shrunken reproducer."""

    check: str  # "backend:<name>" or "property:<name>"
    instance: str  # provenance name of the instance that first failed
    detail: str
    problem_json: str  # the original failing instance
    shrunk_json: str  # 1-step-minimal reproducer (== problem_json if unshrinkable)
    emitted_path: str | None = None

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "instance": self.instance,
            "detail": self.detail,
            "problem": self.problem_json,
            "shrunk": self.shrunk_json,
            "emitted_path": self.emitted_path,
        }


@dataclass
class VerifyReport:
    """Outcome of one :func:`run_verification` sweep."""

    bounds: str
    total_instances: int  # size of the full bounded space
    checked_instances: int  # actually checked (== total unless budgeted)
    backend_checks: dict[str, int] = field(default_factory=dict)
    backend_declines: dict[str, int] = field(default_factory=dict)
    property_checks: dict[str, int] = field(default_factory=dict)
    discrepancies: list[Discrepancy] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def to_dict(self) -> dict:
        return {
            "bounds": self.bounds,
            "ok": self.ok,
            "total_instances": self.total_instances,
            "checked_instances": self.checked_instances,
            "backend_checks": self.backend_checks,
            "backend_declines": self.backend_declines,
            "property_checks": self.property_checks,
            "discrepancies": [d.to_dict() for d in self.discrepancies],
            "elapsed_s": round(self.elapsed_s, 3),
        }

    def summary(self) -> str:
        lines = [
            f"bounds={self.bounds}: checked {self.checked_instances}"
            f"/{self.total_instances} instances"
        ]
        for name in sorted(self.backend_checks):
            extra = ""
            declined = self.backend_declines.get(name, 0)
            if declined:
                extra = f" ({declined} declined)"
            lines.append(f"  backend {name}: {self.backend_checks[name]} checks{extra}")
        for name in sorted(self.property_checks):
            lines.append(f"  property {name}: {self.property_checks[name]} checks")
        if self.ok:
            lines.append("OK: all backends bit-identical, all properties hold")
        else:
            lines.append(f"FAIL: {len(self.discrepancies)} discrepancies")
            for d in self.discrepancies:
                where = f" -> {d.emitted_path}" if d.emitted_path else ""
                lines.append(f"  {d.check} on {d.instance}: {d.detail}{where}")
        return "\n".join(lines)


def _chunks(iterable, size):
    chunk = []
    for item in iterable:
        chunk.append(item)
        if len(chunk) == size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _tables_match(got, ref) -> str | None:
    cost, best = got
    if not np.array_equal(cost, ref.cost):
        bad = int(np.argmax(~(np.asarray(cost) == np.asarray(ref.cost))))
        return f"cost differs first at subset {bad:#x}: {cost[bad]} vs {ref.cost[bad]}"
    if not np.array_equal(best, ref.best_action):
        bad = int(np.argmax(np.asarray(best) != np.asarray(ref.best_action)))
        return (
            f"argmin differs first at subset {bad:#x}: "
            f"{best[bad]} vs {ref.best_action[bad]}"
        )
    return None


def run_verification(
    bounds: Bounds = QUICK,
    backend_names: list[str] | None = None,
    budget: int | None = None,
    emit_dir: str | None = None,
    shrink_failures: bool = True,
    max_failures: int = 25,
    log=None,
) -> VerifyReport:
    """Sweep the bounded space; return a :class:`VerifyReport`.

    Parameters
    ----------
    bounds:
        Which box of the instance space to cover.
    backend_names:
        Backends to hold against the reference oracle (default: all
        registered).  Naming ``"reference"`` is allowed and ignored —
        the oracle is always run.
    budget:
        Upper bound on instances checked; applied as a deterministic
        stride over the enumeration, not a prefix.
    emit_dir:
        Directory for emitted reproducer test files (created on first
        failure; nothing is written on a clean run).
    shrink_failures:
        Shrink each discrepancy to a 1-step-minimal instance (disable
        only when a check is too slow to re-run many times).
    max_failures:
        Stop recording (and shrinking) after this many discrepancies so
        a systemic failure does not turn the sweep into a shrink-athon;
        the report still counts every checked instance.
    log:
        Optional ``callable(str)`` progress sink.
    """
    names = [n for n in (backend_names or default_backend_names()) if n != REFERENCE]
    backends = make_backends(names)
    total = count_instances(bounds)
    stride = 1 if budget is None or budget >= total else max(1, -(-total // budget))

    report = VerifyReport(bounds=bounds.name, total_instances=total, checked_instances=0)
    for b in backends:
        report.backend_checks[b.name] = 0
        report.backend_declines[b.name] = 0
    for p in PROPERTIES:
        report.property_checks[p] = 0

    def emit(check: str, problem: TTProblem, detail: str) -> None:
        if len(report.discrepancies) >= max_failures:
            return
        shrunk = problem
        if shrink_failures:
            shrunk = shrink(problem, lambda cand: run_check(check, cand))
        disc = Discrepancy(
            check=check,
            instance=problem.name or "(unnamed)",
            detail=detail,
            problem_json=problem.to_json(),
            shrunk_json=shrunk.to_json(),
        )
        if emit_dir is not None:
            os.makedirs(emit_dir, exist_ok=True)
            fname, body = emit_regression_test(check, shrunk, detail)
            stem, ext = os.path.splitext(fname)
            path = os.path.join(emit_dir, f"{stem}_{len(report.discrepancies)}{ext}")
            with open(path, "w") as fh:
                fh.write(body)
            disc.emitted_path = path
        report.discrepancies.append(disc)
        if log:
            log(f"DISCREPANCY {check} on {disc.instance}: {detail}")

    start = time.monotonic()
    sampled_seen = {b.name: 0 for b in backends if b.scope == "sampled"}
    instances = (
        p for i, p in enumerate(enumerate_instances(bounds)) if i % stride == 0
    )
    for chunk_idx, chunk in enumerate(_chunks(instances, _CHUNK)):
        refs = [solve_dp_reference(p) for p in chunk]
        for backend in backends:
            _check_backend(backend, chunk, refs, report, sampled_seen, bounds, emit)
        for problem, ref in zip(chunk, refs):
            for pname, prop in PROPERTIES.items():
                detail = prop(problem, ref)
                report.property_checks[pname] += 1
                if detail is not None:
                    emit(f"property:{pname}", problem, detail)
        report.checked_instances += len(chunk)
        if log and (chunk_idx + 1) % 20 == 0:
            done = report.checked_instances
            rate = done / max(time.monotonic() - start, 1e-9)
            log(f"checked {done} instances ({rate:,.0f}/s)")

    for backend in backends:
        backend.close()
    report.elapsed_s = time.monotonic() - start
    return report


def _check_backend(
    backend: VerifyBackend,
    chunk: list[TTProblem],
    refs,
    report: VerifyReport,
    sampled_seen: dict[str, int],
    bounds: Bounds,
    emit,
) -> None:
    if backend.scope == "sampled":
        picked, picked_refs = [], []
        for problem, ref in zip(chunk, refs):
            if not backend.accepts(problem):
                continue  # stride over acceptable instances only
            n = sampled_seen[backend.name]
            sampled_seen[backend.name] = n + 1
            if n % bounds.bvm_stride == 0:
                picked.append(problem)
                picked_refs.append(ref)
        chunk, refs = picked, picked_refs
        if not chunk:
            return
    results = backend.tables_batch(chunk)
    for problem, ref, got in zip(chunk, refs, results):
        if got is None:
            report.backend_declines[backend.name] += 1
            continue
        report.backend_checks[backend.name] += 1
        detail = _tables_match(got, ref)
        if detail is not None:
            emit(f"backend:{backend.name}", problem, detail)
