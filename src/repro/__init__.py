"""repro — test-and-treatment procedures via parallel computation.

A full reproduction of Duval, Wagner, Han & Loveland, *Finding
Test-and-Treatment Procedures Using Parallel Computation* (Duke CS TR,
1985 / ICPP 1986):

* :mod:`repro.core` — the NP-hard TT problem, its dynamic-programming
  solution, tree procedures, baselines and application workloads;
* :mod:`repro.hypercube` — an ideal SIMD hypercube with ASCEND/DESCEND
  scheduling, collectives, and a cube-connected-cycles emulator;
* :mod:`repro.bvm` — a cycle-accurate Boolean Vector Machine simulator
  (bit-serial SIMD on a CCC network) with the paper's §4 primitives;
* :mod:`repro.ttpar` — the paper's parallel TT algorithm, both as fast
  hypercube dataflow and as a bit-level BVM program, plus the complexity
  and speedup analysis.

Quickstart (a runnable doctest):

    >>> from repro import Action, TTProblem, solve
    >>> problem = TTProblem.build(
    ...     weights=[3.0, 1.0, 2.0],
    ...     actions=[
    ...         Action.test({0, 1}, cost=1.0, name="swab"),
    ...         Action.treatment({0}, cost=4.0, name="drugA"),
    ...         Action.treatment({1, 2}, cost=5.0, name="drugB"),
    ...     ],
    ... )
    >>> result = solve(problem)
    >>> result.optimal_cost
    37.0
    >>> print(result.tree().render())
    swab [test] on {0,1,2} cost=1
        + drugA [treatment] on {0,1} cost=4 =>treated {0}
            fail drugB [treatment] on {1} cost=5 =>treated {1}
        - drugB [treatment] on {2} cost=5 =>treated {2}
"""

import logging as _logging

from .core import (
    Action,
    ActionKind,
    DPResult,
    ResiliencePolicy,
    SolverError,
    TTNode,
    TTProblem,
    TTTree,
    optimal_cost,
    solve,
    solve_dp,
    solve_dp_parallel,
)

__version__ = "1.0.0"

# Library etiquette: emit nothing unless the application configures
# logging — handlers belong to the app, never to an imported package.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__all__ = [
    "Action",
    "ActionKind",
    "TTProblem",
    "TTNode",
    "TTTree",
    "DPResult",
    "solve",
    "solve_dp",
    "solve_dp_parallel",
    "optimal_cost",
    "SolverError",
    "ResiliencePolicy",
    "__version__",
]
