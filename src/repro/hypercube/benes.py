"""Beneš permutation routing: any permutation in ``2·log n - 1`` steps.

Paper §2: "Since the BVM communication network resembles the Benes
permutation network, it can accomplish any permutation within O(log n)
time if the control bits are precalculated."  This module makes that
claim executable:

* :func:`benes_schedule` — the classic *looping algorithm*: recursively
  2-color the entry/exit constraint graph so that each half of the
  network receives a genuine sub-permutation, producing a list of
  ``(dim, swap_mask)`` stages with dims ``m-1, .., 1, 0, 1, .., m-1``
  (a DESCEND run followed by an ASCEND run — exactly the paper's §3
  algorithm class, so the CCC executes it at the same constant-factor
  slowdown as everything else);
* :func:`permutation_program` — the schedule as executable
  :class:`~repro.hypercube.machine.DimOp` objects (swap masks are
  symmetric: both ends of an exchanged pair carry the same control bit,
  which is what lets a one-bit-per-PE machine store them);
* :func:`route_permutation` — convenience: run the program on an ideal
  hypercube and return the permuted registers.

``benes_schedule(dest)`` computes stages such that, after applying them,
the item initially at PE ``s`` sits at PE ``dest[s]``.
"""

from __future__ import annotations

import numpy as np

from .machine import DimOp, Hypercube, Program, State

__all__ = [
    "benes_schedule",
    "permutation_program",
    "route_permutation",
    "benes_stage_count",
]


def benes_stage_count(dims: int) -> int:
    """``2m - 1`` exchange stages for a ``2^m``-PE machine (1 for m=1)."""
    return max(1, 2 * dims - 1)


def _check_permutation(dest: np.ndarray) -> np.ndarray:
    dest = np.asarray(dest, dtype=np.int64)
    n = dest.size
    if n == 0 or (n & (n - 1)):
        raise ValueError("permutation length must be a positive power of two")
    if sorted(dest.tolist()) != list(range(n)):
        raise ValueError("dest is not a permutation")
    return dest


def benes_schedule(dest) -> list[tuple[int, np.ndarray]]:
    """Compute the Beneš stages for ``dest`` (item at ``s`` -> ``dest[s]``).

    Returns ``[(dim, swap_mask), ...]``; ``swap_mask`` is a boolean array
    over PE addresses, symmetric under ``addr ^ 2^dim``.  Identity pairs
    route straight (their bit is ``False``).
    """
    dest = _check_permutation(dest)
    n = dest.size
    m = int(n).bit_length() - 1
    if m == 0:
        return []
    full_stages: list[tuple[int, np.ndarray]] = [
        (d, np.zeros(n, dtype=bool)) for d in _stage_dims(m)
    ]
    _solve(dest, list(range(m)), np.arange(n, dtype=np.int64), full_stages, 0)
    return full_stages


def _stage_dims(m: int) -> list[int]:
    """Stage dimension order: m-1 .. 1, 0, 1 .. m-1."""
    if m == 1:
        return [0]
    down = list(range(m - 1, 0, -1))
    up = list(range(1, m))
    return down + [0] + up


def _solve(
    perm: np.ndarray,
    dims: list[int],
    members: np.ndarray,
    stages: list[tuple[int, np.ndarray]],
    depth: int,
) -> None:
    """Route ``perm`` (a permutation of ``0..len(members)-1`` in *local*
    coordinates) through the subnetwork spanned by ``dims``, writing swap
    bits for the global ``members`` into ``stages[depth .. -1-depth]``.

    ``members[i]`` is the global PE address of local position ``i``;
    local bit ``t`` corresponds to global dimension ``dims[t]``.
    """
    t = len(dims)
    size = perm.size
    if t == 1:
        dim, mask = stages[depth]
        if perm[0] == 1:  # the two items cross
            mask[members[0]] = True
            mask[members[1]] = True
        return

    d_local = t - 1
    half = size // 2
    top = 1 << d_local

    # --- looping algorithm: assign each item a subnetwork (color) ------
    # entry pair p = low bits of source; exit pair q = low bits of dest.
    color = np.full(size, -1, dtype=np.int8)  # per source item
    src_of_dest = np.empty(size, dtype=np.int64)
    src_of_dest[perm] = np.arange(size)

    for start in range(size):
        if color[start] != -1:
            continue
        # Walk the constraint loop starting by sending `start` to subnet 0.
        s, c = start, 0
        while color[s] == -1:
            color[s] = c
            # exit constraint: the item sharing our destination pair must
            # take the other subnetwork.
            partner_dest = perm[s] ^ top
            s2 = src_of_dest[partner_dest]
            if color[s2] == -1:
                color[s2] = 1 - c
            # entry constraint: the item sharing our source pair takes
            # the other subnetwork; continue the walk from there.
            s3 = s2 ^ top
            c = 1 - color[s2]
            s = s3

    # --- entry stage: item colored c must sit on side c of its pair ---
    entry_dim, entry_mask = stages[depth]
    exit_dim, exit_mask = stages[len(stages) - 1 - depth]
    assert entry_dim == exit_dim == dims[d_local]

    for p in range(half):
        if color[p] == 1:  # the top-bit-0 source item crosses over
            entry_mask[members[p]] = True
            entry_mask[members[p | top]] = True

    # --- sub-permutations: pair p's color-c item enters subnet c at
    # local position p, heading for local destination perm[item] mod top.
    sub_perm = [np.empty(half, dtype=np.int64) for _ in range(2)]
    for p in range(half):
        for item in (p, p | top):
            sub_perm[int(color[item])][p] = perm[item] & (top - 1)

    # --- exit stage: the item destined for q | top leaves through the
    # top side; swap its pair iff it arrives from subnet 0.
    for q in range(half):
        if int(color[src_of_dest[q | top]]) == 0:
            exit_mask[members[q]] = True
            exit_mask[members[q | top]] = True

    # --- recurse into the two half-size subnetworks --------------------
    sub_dims = dims[:d_local]
    members_lo = members[np.arange(half)]
    members_hi = members[np.arange(half) | top]
    _solve(sub_perm[0], sub_dims, members_lo, stages, depth + 1)
    _solve(sub_perm[1], sub_dims, members_hi, stages, depth + 1)


def permutation_program(dest, value_regs=("X",)) -> Program:
    """Executable Beneš program: after running, register contents move
    from PE ``s`` to PE ``dest[s]`` for every listed register."""
    schedule = benes_schedule(dest)
    program: Program = []
    for dim, mask in schedule:
        mask = mask.copy()

        def fn(own, partner, addr, _mask=mask, _regs=tuple(value_regs)):
            take = _mask[addr]
            return {r: np.where(take, partner[r], own[r]) for r in _regs}

        program.append(DimOp(dim=dim, fn=fn, label=f"benes dim {dim}"))
    return program


def route_permutation(dest, values) -> np.ndarray:
    """Route ``values`` through a Beneš network on an ideal hypercube;
    returns the array with ``out[dest[s]] = values[s]``."""
    dest = _check_permutation(dest)
    n = dest.size
    dims = int(n).bit_length() - 1
    st = State(dims)
    st["X"] = np.asarray(values)
    Hypercube(dims).run(st, permutation_program(dest))
    return st["X"]
