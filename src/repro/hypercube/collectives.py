"""The paper's §4 dataflow algorithms as ASCEND hypercube programs.

* :func:`broadcast_program` — Broadcasting(): flood one PE's value to all
  PEs, SENDER flags travelling with the data (paper Fig. 6 schedule).
* :func:`propagation1_program` — Propagation1(): move data from the
  ``N``-PE group (addresses with exactly ``N`` one-bits) to the
  ``(N+1)``-PE group; senders stay fixed for the whole pass.
* :func:`propagation2_program` — Propagation2(): flood data from the
  ``N``-PE group upward to all supersets, receivers becoming senders
  immediately (used for the ``N``-group to ``M``-group propagation).
* :func:`min_reduce_program` / :func:`reduce_program` — the ASCEND
  minimization of §6 (paper Fig. 7): after the pass every PE in a reduce
  group holds the group minimum.

All are ASCEND programs (dims strictly increasing), so they run verbatim
on the CCC emulator.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .machine import DimOp, Program

__all__ = [
    "broadcast_program",
    "propagation1_program",
    "propagation2_program",
    "min_reduce_program",
    "reduce_program",
    "broadcast_schedule",
    "prefix_sum_program",
]


def _bit(addr: np.ndarray, i: int) -> np.ndarray:
    return ((addr >> i) & 1).astype(bool)


def broadcast_program(dims: int, value: str = "V", sender: str = "SENDER") -> Program:
    """Broadcasting(): PE with ``sender`` set floods ``value`` to everyone.

    Per the paper: at step ``i``, a PE at the 1-end of dimension ``i``
    whose partner is a sender copies the partner's value *and* its sender
    flag.  After ``dims`` steps every PE holds PE 0's value (when PE 0 was
    the initial sender).
    """

    def step(i: int) -> DimOp:
        def fn(own, partner, addr):
            take = _bit(addr, i) & partner[sender].astype(bool)
            return {
                value: np.where(take, partner[value], own[value]),
                sender: own[sender].astype(bool) | take,
            }

        return DimOp(dim=i, fn=fn, label=f"broadcast dim {i}")

    return [step(i) for i in range(dims)]


def broadcast_schedule(dims: int, origin: int = 0) -> list[list[tuple[int, int]]]:
    """The transmission list per round, as printed in the paper's Fig. 6.

    Round ``i`` contains every ``(sender, receiver)`` pair in which the
    receiver is the sender with bit ``i`` raised; with ``origin`` PE 0 this
    reproduces the figure's ``0000 -> 0001, ...`` rows exactly.
    """
    senders = {origin}
    rounds: list[list[tuple[int, int]]] = []
    for i in range(dims):
        this_round = []
        for s in sorted(senders):
            r = s | (1 << i)
            if r != s:
                this_round.append((s, r))
        senders |= {s | (1 << i) for s in senders}
        rounds.append(this_round)
    return rounds


def propagation1_program(
    dims: int,
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray],
    value: str = "V",
    sender: str = "SENDER",
) -> Program:
    """Propagation1(): ``N``-group to ``(N+1)``-group, fixed senders.

    PE ``j`` combines in the partner's value when the partner is a sender
    and ``j`` is at the 1-end of the link — so after the pass, PE ``j`` in
    the ``(N+1)``-group has combined the values of *all* ``N``-group PEs
    ``k`` with ``k ⊂ j``.  Sender flags are not changed.
    """

    def step(i: int) -> DimOp:
        def fn(own, partner, addr):
            take = _bit(addr, i) & partner[sender].astype(bool)
            return {value: np.where(take, combine(own[value], partner[value]), own[value])}

        return DimOp(dim=i, fn=fn, label=f"prop1 dim {i}")

    return [step(i) for i in range(dims)]


def propagation2_program(
    dims: int,
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray],
    value: str = "V",
    sender: str = "SENDER",
) -> Program:
    """Propagation2(): flood from the ``N``-group to all higher groups.

    Identical dataflow to propagation1 except that a receiver acquires the
    sender flag immediately, so data hops through intermediate groups
    within the single pass (the paper's 1-PE-group to 4-PE-group example).
    """

    def step(i: int) -> DimOp:
        def fn(own, partner, addr):
            take = _bit(addr, i) & partner[sender].astype(bool)
            return {
                value: np.where(take, combine(own[value], partner[value]), own[value]),
                sender: own[sender].astype(bool) | take,
            }

        return DimOp(dim=i, fn=fn, label=f"prop2 dim {i}")

    return [step(i) for i in range(dims)]


def reduce_program(
    lo: int,
    hi: int,
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray],
    value: str = "M",
    gate: str | None = None,
) -> Program:
    """ASCEND all-reduce over dimensions ``lo..hi-1``.

    After the pass every PE in each ``2^(hi-lo)``-aligned group holds the
    combine of the whole group (§6's induction).  ``gate`` optionally
    names a boolean register restricting which PEs update (the paper's
    predicate ``P(S,i)`` uses this to touch only the current layer).
    """

    def step(t: int) -> DimOp:
        def fn(own, partner, addr):
            new = combine(own[value], partner[value])
            if gate is not None:
                new = np.where(own[gate].astype(bool), new, own[value])
            return {value: new}

        return DimOp(dim=t, fn=fn, label=f"reduce dim {t}")

    return [step(t) for t in range(lo, hi)]


def min_reduce_program(
    lo: int, hi: int, value: str = "M", gate: str | None = None
) -> Program:
    """§6 minimization: ``M[S,i] = min(M[S,i], M[S,i#t])`` for each ``t``."""
    return reduce_program(lo, hi, np.minimum, value=value, gate=gate)


def prefix_sum_program(dims: int, prefix: str = "PRE", total: str = "TOT") -> Program:
    """Inclusive prefix sum by PE address — another ASCEND classic.

    Initialize both registers to each PE's value.  Per dimension ``i``:
    every PE folds the partner's block total into its own block total,
    and PEs at the 1-end additionally fold it into their prefix (their
    partner's block lies entirely before them in address order).  After
    ``dims`` steps ``prefix[j] = sum(x[0..j])`` and ``total`` holds the
    grand total everywhere.
    """

    def step(i: int) -> DimOp:
        def fn(own, partner, addr):
            upper = _bit(addr, i)
            return {
                prefix: own[prefix] + np.where(upper, partner[total], 0),
                total: own[total] + partner[total],
            }

        return DimOp(dim=i, fn=fn, label=f"prefix dim {i}")

    return [step(i) for i in range(dims)]
