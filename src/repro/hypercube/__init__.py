"""Ideal hypercube SIMD model, ASCEND/DESCEND programs, CCC emulation."""

from .benes import (
    benes_schedule,
    benes_stage_count,
    permutation_program,
    route_permutation,
)
from .ccc import CCC, CCCStats, ccc_links, hypercube_links
from .collectives import (
    broadcast_program,
    broadcast_schedule,
    min_reduce_program,
    prefix_sum_program,
    propagation1_program,
    propagation2_program,
    reduce_program,
)
from .sorting import bitonic_sort_program, bitonic_stage_count, compare_exchange_op
from .machine import (
    DimOp,
    Hypercube,
    LocalOp,
    Program,
    RunStats,
    ScheduleError,
    State,
    dims_for,
    make_state,
)

__all__ = [
    "State",
    "DimOp",
    "LocalOp",
    "Program",
    "Hypercube",
    "RunStats",
    "ScheduleError",
    "make_state",
    "dims_for",
    "CCC",
    "CCCStats",
    "ccc_links",
    "hypercube_links",
    "broadcast_program",
    "broadcast_schedule",
    "propagation1_program",
    "propagation2_program",
    "reduce_program",
    "min_reduce_program",
    "prefix_sum_program",
    "bitonic_sort_program",
    "bitonic_stage_count",
    "compare_exchange_op",
    "benes_schedule",
    "benes_stage_count",
    "permutation_program",
    "route_permutation",
]
