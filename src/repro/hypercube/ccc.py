"""Cube-connected-cycles execution of ASCEND/DESCEND programs.

The paper leans on Preparata & Vuillemin's theorem that ASCEND/DESCEND
hypercube algorithms run on a CCC with only a constant-factor (4-6x)
slowdown.  This module makes that executable: the same
:class:`~repro.hypercube.machine.Program` objects that run on the ideal
:class:`~repro.hypercube.machine.Hypercube` run here on a CCC, with
communication charged only along genuine CCC links.

Machine geometry (matching the paper's BVM): ``Q = 2^r`` PEs per cycle,
``2^Q`` cycles, ``n = Q * 2^Q = 2^(r+Q)`` PEs.  PE ``(c, j)`` simulates
hypercube PE with address ``(c << r) | j``:

* hypercube dims ``0..r-1`` (*lowsheaves*) flip bits of the in-cycle
  position ``j`` — realized by shuffling data around the cycle,
* hypercube dims ``r..r+Q-1`` (*highsheaves*) flip bits of the cycle
  number ``c`` — but the lateral link for cycle-bit ``d`` exists **only at
  position ``d``**, so data must rotate past that position to use it.

Two schedules are provided:

``naive``
    Each high-dim op performs one full cycle rotation, exchanging each
    item laterally as it passes the op's position: ``2Q`` route steps per
    op.  Simple, but the slowdown grows with ``Q``.

``pipelined``
    The Preparata–Vuillemin idea: a maximal run of high-dim ops with
    strictly increasing dims executes as *one* sweep.  Items rotate
    forward; an item starts its op sequence upon reaching position 0 and
    then performs (at most) one op per step at consecutive positions, so
    every item meets its dims in ascending order and all cycles stay in
    lockstep.  A sweep costs ``~4Q`` route steps **regardless of how many
    dims it covers**, which is what makes the slowdown a constant.

The emulator *enacts* the schedule: a lateral exchange is only evaluated
for the items physically resident at the linked position at that time
step, so a scheduling bug would produce wrong values, not just wrong
counts (the test suite exploits this by checking CCC results against the
ideal hypercube bit-for-bit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machine import DimOp, LocalOp, Program, ScheduleError, State

__all__ = ["CCC", "CCCStats", "ccc_links", "hypercube_links"]


@dataclass
class CCCStats:
    """Route/compute step counters for a CCC run.

    ``route_steps`` is the headline number compared against the ideal
    hypercube's DimOp count to measure the slowdown factor.
    """

    rotation_steps: int = 0
    lateral_steps: int = 0
    lowsheaf_steps: int = 0
    compute_steps: int = 0
    sweeps: int = 0
    ideal_dimops: int = 0

    @property
    def route_steps(self) -> int:
        return self.rotation_steps + self.lateral_steps + self.lowsheaf_steps

    @property
    def slowdown(self) -> float:
        """Measured route-step ratio vs. the ideal hypercube."""
        if self.ideal_dimops == 0:
            return 0.0
        return self.route_steps / self.ideal_dimops


class CCC:
    """A CCC machine executing hypercube programs on virtual-address state.

    ``state`` arrays stay indexed by *virtual* hypercube address; the
    physical location of item ``(c, j)`` during a sweep is tracked by the
    rotation offset, and lateral exchanges are evaluated only for the
    items actually sitting at the linked position.
    """

    def __init__(self, r: int):
        if r < 1:
            raise ValueError("need r >= 1 (at least 2-PE cycles)")
        self.r = r
        self.Q = 1 << r
        self.n_cycles = 1 << self.Q
        self.n = self.Q * self.n_cycles
        self.dims = self.r + self.Q

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def vaddr(self, cycle: np.ndarray | int, pos: np.ndarray | int) -> np.ndarray | int:
        """Virtual hypercube address of PE ``(cycle, pos)``."""
        return (cycle << self.r) | pos

    def position_items(self, pos: int, offset: int) -> np.ndarray:
        """Virtual addresses of the items at physical position ``pos`` when
        the cycles have been rotated forward ``offset`` times."""
        j = (pos - offset) % self.Q
        cycles = np.arange(self.n_cycles, dtype=np.int64)
        return self.vaddr(cycles, j)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, state: State, program: Program, schedule: str = "pipelined") -> CCCStats:
        """Execute ``program`` in place; returns CCC step counters.

        ``schedule`` is ``"pipelined"`` or ``"naive"`` (high-dim handling;
        low dims and LocalOps are identical under both).
        """
        if state.dims != self.dims:
            raise ValueError(
                f"state has {state.dims} dims but CCC(r={self.r}) simulates {self.dims}"
            )
        if schedule not in ("pipelined", "naive"):
            raise ValueError(f"unknown schedule {schedule!r}")
        stats = CCCStats()
        batch: list[DimOp] = []  # pending high-dim ops forming one sweep

        def flush() -> None:
            if not batch:
                return
            if schedule != "pipelined" or len(batch) == 1:
                # A lone high-dim op is cheaper as a plain rotation (2Q)
                # than as a full sweep (~4Q).
                for op in batch:
                    self._run_naive_highdim(state, op, stats)
            elif batch[0].dim < batch[1].dim:
                self._run_sweep(state, batch, stats)
            else:
                self._run_sweep_descend(state, batch, stats)
            batch.clear()

        def extends_batch(dim: int) -> bool:
            if not batch:
                return True
            if len(batch) == 1:
                return dim != batch[0].dim  # direction not chosen yet
            ascending = batch[0].dim < batch[1].dim
            return dim > batch[-1].dim if ascending else dim < batch[-1].dim

        for op in program:
            if isinstance(op, LocalOp):
                flush()
                updates = op.fn(state.view(), state.addresses)
                for name, val in updates.items():
                    state[name] = val
                stats.compute_steps += 1
            elif isinstance(op, DimOp):
                stats.ideal_dimops += 1
                if op.dim < self.r:
                    flush()
                    self._run_lowdim(state, op, stats)
                else:
                    if not extends_batch(op.dim):
                        flush()
                    batch.append(op)
            else:
                raise TypeError(f"unknown op {op!r}")
        flush()
        return stats

    # ------------------------------------------------------------------
    # Low dims: in-cycle shuffles
    # ------------------------------------------------------------------

    def _run_lowdim(self, state: State, op: DimOp, stats: CCCStats) -> None:
        """Dim ``d < r``: partner sits ``2^d`` positions away in the cycle.

        Two copies of the registers circulate in opposite ring directions
        simultaneously (each PE has both a predecessor and a successor
        link), so the exchange completes in ``2^d`` unit-shift steps.
        """
        perm = state.addresses ^ (1 << op.dim)
        own = state.view()
        partner = state.view(perm=perm)
        updates = op.fn(own, partner, state.addresses)
        for name, val in updates.items():
            state[name] = val
        stats.lowsheaf_steps += 1 << op.dim

    # ------------------------------------------------------------------
    # High dims
    # ------------------------------------------------------------------

    def _apply_lateral(self, state: State, op: DimOp, offset: int) -> None:
        """Exchange at position ``pos = op.dim - r`` under rotation ``offset``.

        Only the ``2^Q`` items physically at that position participate;
        their lateral partners are the same position in cycles differing
        in bit ``pos`` — exactly the links the hardware has.
        """
        pos = op.dim - self.r
        sel = self.position_items(pos, offset)
        partners = sel ^ (1 << op.dim)
        own = {k: v[sel] for k, v in state.view().items()}
        other = {k: v[partners] for k, v in state.view().items()}
        updates = op.fn(own, other, sel)
        for name, val in updates.items():
            arr = state[name].copy()
            arr[sel] = val
            state[name] = arr

    def _run_naive_highdim(self, state: State, op: DimOp, stats: CCCStats) -> None:
        """One full rotation; each item is exchanged when passing the
        op's lateral position.  Items end where they started."""
        for t in range(self.Q):
            self._apply_lateral(state, op, offset=t)
            stats.lateral_steps += 1
            stats.rotation_steps += 1  # rotate forward by one
        # offset returns to 0 after Q rotations: nothing to unwind.

    def _run_sweep_descend(self, state: State, ops: list[DimOp], stats: CCCStats) -> None:
        """Pipelined DESCEND sweep: strictly-decreasing run of high dims.

        Mirror image of the ASCEND sweep: items rotate *backward*, enter
        their active window upon reaching position ``Q-1``, and then meet
        positions (hence dims) in decreasing order.  Item at position
        ``d`` is active at time ``t`` iff ``Q-1-d <= t <= 2Q-2-d``.
        """
        dims_present = {op.dim: op for op in ops}
        if sorted(dims_present, reverse=True) != [op.dim for op in ops]:
            raise ScheduleError("descend sweep requires strictly decreasing dims")
        Q = self.Q
        offset = 0
        for t in range(2 * Q - 1):
            fired = False
            for d in range(Q - 1, -1, -1):
                if not (Q - 1 - d <= t <= 2 * Q - 2 - d):
                    continue
                op = dims_present.get(self.r + d)
                if op is not None:
                    self._apply_lateral(state, op, offset=offset)
                    fired = True
            if fired:
                stats.lateral_steps += 1
            if t != 2 * Q - 2:
                offset -= 1  # rotate backward
                stats.rotation_steps += 1
        residual = offset % Q
        stats.rotation_steps += residual
        stats.sweeps += 1

    def _run_sweep(self, state: State, ops: list[DimOp], stats: CCCStats) -> None:
        """Pipelined sweep over a strictly-increasing run of high dims.

        Time ``t`` runs ``0 .. 2Q-2``; the item at position ``d`` is in its
        active window iff ``d <= t <= d + Q - 1``, in which case it performs
        the sweep's op on dim ``r + d`` (if present).  One lateral step per
        time slot that fires any exchange, one rotation step per slot, plus
        the unwinding rotations that return items to their home positions.
        """
        dims_present = {op.dim: op for op in ops}
        if sorted(dims_present) != [op.dim for op in ops]:
            raise ScheduleError("sweep requires strictly increasing high dims")
        Q = self.Q
        offset = 0
        for t in range(2 * Q - 1):
            fired = False
            for d in range(max(0, t - Q + 1), min(t, Q - 1) + 1):
                op = dims_present.get(self.r + d)
                if op is not None:
                    self._apply_lateral(state, op, offset=offset)
                    fired = True
            if fired:
                stats.lateral_steps += 1
            if t != 2 * Q - 2:
                offset += 1
                stats.rotation_steps += 1
        # Unwind the residual rotation so items sit at home positions again.
        residual = (-offset) % Q
        stats.rotation_steps += residual
        stats.sweeps += 1


# ----------------------------------------------------------------------
# Link census (the paper's 3n/2 vs n*log(n)/2 comparison)
# ----------------------------------------------------------------------


def ccc_links(r: int) -> int:
    """Number of links in CCC(r): each PE has cycle pred+succ and one
    lateral, i.e. degree 3, so ``3n/2`` links (Q=2 cycles collapse the
    pred/succ pair into one edge, giving ``2n/2 + n/2 = 3n/2`` still via
    the lateral; we count distinct undirected edges)."""
    Q = 1 << r
    n_cycles = 1 << Q
    n = Q * n_cycles
    if Q == 2:
        cycle_edges = n_cycles  # a 2-cycle has a single edge
    else:
        cycle_edges = n_cycles * Q
    lateral_edges = n // 2
    return cycle_edges + lateral_edges


def hypercube_links(dims: int) -> int:
    """Number of links in a ``2^dims``-PE hypercube: ``n * log(n) / 2``."""
    n = 1 << dims
    return n * dims // 2
