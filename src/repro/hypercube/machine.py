"""An idealized SIMD hypercube and its program representation.

The paper designs its algorithms for a hypercube of ``2^m`` PEs (PE ``x``
linked to every ``x # i``, i.e. ``x`` with bit ``i`` complemented) and then
transforms them to the CCC.  To make that transformation executable we
represent algorithms as *programs*: sequences of

* :class:`DimOp` — one simultaneous pairwise exchange along a single
  hypercube dimension, combined by an elementwise function, and
* :class:`LocalOp` — pure per-PE computation with no communication.

A program in which the :class:`DimOp` dimensions are non-decreasing
(non-increasing) is an **ASCEND** (**DESCEND**) program in the paper's
sense.  The same program object runs unchanged on the ideal
:class:`Hypercube` here and on the :class:`~repro.hypercube.ccc.CCC`
emulator, which is exactly the property the paper exploits.

Machine state is a :class:`State`: named NumPy arrays indexed by PE
address.  ``DimOp.fn`` receives the PE's own view, the partner's view and
the participating addresses, and returns the registers it updates — all
vectorized, per the HPC guides (no per-PE Python loops).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

import numpy as np

from ..util.bitops import ilog2

__all__ = [
    "State",
    "DimOp",
    "LocalOp",
    "Program",
    "Hypercube",
    "ScheduleError",
    "RunStats",
    "make_state",
    "dims_for",
]


class ScheduleError(ValueError):
    """A program violated the requested ASCEND/DESCEND discipline."""


class State:
    """Named register arrays over ``n = 2^dims`` PEs.

    Registers are created on assignment; every register is an array of
    length ``n`` (any dtype).  ``addresses`` is the PE index vector.
    """

    def __init__(self, dims: int):
        if dims < 0:
            raise ValueError("dims must be non-negative")
        self.dims = dims
        self.n = 1 << dims
        self._regs: dict[str, np.ndarray] = {}

    @property
    def addresses(self) -> np.ndarray:
        return np.arange(self.n, dtype=np.int64)

    def __setitem__(self, name: str, value) -> None:
        arr = np.asarray(value)
        if arr.shape == ():
            arr = np.full(self.n, arr[()])
        if arr.shape != (self.n,):
            raise ValueError(
                f"register {name!r} must have shape ({self.n},), got {arr.shape}"
            )
        self._regs[name] = arr.copy()

    def __getitem__(self, name: str) -> np.ndarray:
        return self._regs[name]

    def __contains__(self, name: str) -> bool:
        return name in self._regs

    def names(self) -> list[str]:
        return sorted(self._regs)

    def copy(self) -> "State":
        out = State(self.dims)
        for k, v in self._regs.items():
            out._regs[k] = v.copy()
        return out

    def view(self, perm: np.ndarray | None = None, sel: np.ndarray | None = None) -> dict[str, np.ndarray]:
        """Read-only snapshot dict, optionally permuted/sliced by index."""
        if perm is None and sel is None:
            return {k: v for k, v in self._regs.items()}
        idx = perm if perm is not None else np.arange(self.n)
        if sel is not None:
            idx = idx[sel]
        return {k: v[idx] for k, v in self._regs.items()}

    def equal(self, other: "State", names=None) -> bool:
        names = names if names is not None else self.names()
        return all(np.array_equal(self[k], other[k]) for k in names)


# fn(own, partner, addr) -> {reg: new values} for the participating PEs.
DimFn = Callable[[Mapping[str, np.ndarray], Mapping[str, np.ndarray], np.ndarray], dict]
# fn(own, addr) -> {reg: new values}
LocalFn = Callable[[Mapping[str, np.ndarray], np.ndarray], dict]


@dataclass(frozen=True)
class DimOp:
    """One pairwise hypercube exchange-and-combine along ``dim``.

    ``fn(own, partner, addr)`` sees every participating PE's registers,
    its partner's registers (same names, partner-ordered), and the PE
    addresses; it returns the registers it rewrites.  It must be
    elementwise (no cross-PE coupling beyond the given partner), which is
    what lets the CCC emulator evaluate it on pipelined slices.
    """

    dim: int
    fn: DimFn
    label: str = ""


@dataclass(frozen=True)
class LocalOp:
    """Per-PE computation, no communication."""

    fn: LocalFn
    label: str = ""


Program = list  # list[DimOp | LocalOp]


@dataclass
class RunStats:
    """Step counters separated by kind, as the paper's accounting does."""

    route_steps: int = 0
    compute_steps: int = 0
    dims_used: list = field(default_factory=list)

    @property
    def total_steps(self) -> int:
        return self.route_steps + self.compute_steps


class Hypercube:
    """Ideal hypercube executor: every :class:`DimOp` costs one route step."""

    def __init__(self, dims: int):
        self.dims = dims
        self.n = 1 << dims

    def partner_index(self, dim: int) -> np.ndarray:
        if not (0 <= dim < self.dims):
            raise ValueError(f"dimension {dim} out of range for {self.dims}-cube")
        return np.arange(self.n, dtype=np.int64) ^ (1 << dim)

    def run(
        self,
        state: State,
        program: Program,
        discipline: str | None = None,
    ) -> RunStats:
        """Execute ``program`` in place on ``state``.

        ``discipline`` may be ``"ascend"`` / ``"descend"`` to enforce the
        paper's dimension ordering (monotone non-decreasing resp.
        non-increasing DimOp dims); violations raise :class:`ScheduleError`.
        """
        if state.dims != self.dims:
            raise ValueError("state size does not match machine size")
        stats = RunStats()
        addrs = state.addresses
        last_dim: int | None = None
        for op in program:
            if isinstance(op, LocalOp):
                updates = op.fn(state.view(), addrs)
                for name, val in updates.items():
                    state[name] = val
                stats.compute_steps += 1
                continue
            if not isinstance(op, DimOp):
                raise TypeError(f"unknown op {op!r}")
            if discipline == "ascend" and last_dim is not None and op.dim < last_dim:
                raise ScheduleError(
                    f"ASCEND violated: dim {op.dim} after dim {last_dim}"
                )
            if discipline == "descend" and last_dim is not None and op.dim > last_dim:
                raise ScheduleError(
                    f"DESCEND violated: dim {op.dim} after dim {last_dim}"
                )
            last_dim = op.dim
            perm = self.partner_index(op.dim)
            own = state.view()
            partner = state.view(perm=perm)
            updates = op.fn(own, partner, addrs)
            for name, val in updates.items():
                state[name] = val
            stats.route_steps += 1
            stats.dims_used.append(op.dim)
        return stats


def make_state(dims: int, **registers) -> State:
    """Convenience constructor: ``make_state(4, M=..., SENDER=...)``."""
    st = State(dims)
    for name, value in registers.items():
        st[name] = value
    return st


def dims_for(n: int) -> int:
    """Hypercube dimension count for an ``n``-PE machine (n a power of 2)."""
    return ilog2(n)
