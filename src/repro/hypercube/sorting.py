"""Bitonic sorting as ASCEND/DESCEND programs.

The paper's §3 frames its whole approach around the ASCEND/DESCEND
algorithm class of Preparata & Vuillemin, whose canonical member is
Batcher's bitonic sorter.  This module provides it both as a library
capability (sorting keys, or key-value pairs, across the PE array) and
as the classic workload for the CCC slowdown ablation: a full bitonic
sort is ``m`` DESCEND phases of lengths ``1..m``, which exercises the
emulator's pipelined descend sweeps far harder than the TT program does.

Construction (textbook): stage ``s = 0..m-1`` merges bitonic blocks of
size ``2^(s+1)``; within a stage, compare-exchange along dims
``s, s-1, .., 0`` (a DESCEND run); the element at the ``dir``-matching
end keeps the minimum, where ``dir`` is bit ``s+1`` of the PE address
(0 = ascending block; the final stage has ``dir = 0`` everywhere).
"""

from __future__ import annotations

import numpy as np

from .machine import DimOp, Program

__all__ = ["bitonic_sort_program", "bitonic_stage_count", "compare_exchange_op"]


def compare_exchange_op(stage: int, dim: int, value: str = "X", tag: str | None = None) -> DimOp:
    """One bitonic compare-exchange along ``dim`` inside stage ``stage``.

    With ``tag`` given, a satellite register moves with its key (stable
    only up to equal-key ties, as usual for bitonic networks).
    """

    def fn(own, partner, addr):
        dir_bit = ((addr >> (stage + 1)) & 1).astype(bool)  # 1 = descending
        here_hi = ((addr >> dim) & 1).astype(bool)
        keep_min = here_hi == dir_bit
        a, b = own[value], partner[value]
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        out = {value: np.where(keep_min, lo, hi)}
        if tag is not None:
            # Equal keys: both ends keep their own tag (still a permutation).
            mine_is_kept = np.where(keep_min, a <= b, a >= b)
            out[tag] = np.where(mine_is_kept, own[tag], partner[tag])
        return out

    return DimOp(dim=dim, fn=fn, label=f"bitonic s{stage} d{dim}")


def bitonic_sort_program(dims: int, value: str = "X", tag: str | None = None) -> Program:
    """Full bitonic sort of ``2^dims`` keys: ascending by PE address.

    The program is a sequence of DESCEND runs (dims ``s..0`` per stage),
    so it executes on the CCC emulator with pipelined descend sweeps.
    """
    program: Program = []
    for s in range(dims):
        for d in range(s, -1, -1):
            program.append(compare_exchange_op(s, d, value=value, tag=tag))
    return program


def bitonic_stage_count(dims: int) -> int:
    """Total compare-exchange steps: ``m(m+1)/2`` (the O(log^2 n) depth)."""
    return dims * (dims + 1) // 2
