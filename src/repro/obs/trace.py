"""Low-overhead event recorder: spans, instants, and counters.

The solve stack is observational-only instrumented: every record call
goes through a :class:`Tracer` whose disabled form (:data:`NULL`) is a
set of no-op methods sharing one reusable context manager, so a solve
with tracing off pays a handful of attribute lookups per *layer* (never
per mask).  Timestamps are raw ``time.monotonic()`` floats; on Linux
``CLOCK_MONOTONIC`` is system-wide, so spans recorded inside forked or
spawned worker processes are directly comparable to the parent's and
merge into one timeline without clock translation.  Export-time code
(:mod:`repro.obs.export`) converts them to microsecond offsets relative
to the owning tracer's epoch.

Cross-process flush path: workers never share the parent tracer.  A
traced shard task carries a ``trace`` flag; the worker builds a small
capped :class:`Tracer` of its own, records its events (the shard span,
any fault instants), and returns the raw event list as a third element
of the shard result tuple.  The supervisor ingests those events into
the parent tracer through the existing result channel — no extra pipes,
no shared buffers, no signal handlers.

Events are plain dicts (JSON-safe by construction)::

    {"ph": "X"|"i"|"C", "name": str, "cat": str,
     "t0": float, "t1": float|None, "pid": int, "tid": int,
     "args": dict|None}

``ph`` follows the Chrome ``trace_event`` phase letters: ``X`` complete
span, ``i`` instant, ``C`` counter sample.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "NullTracer",
    "NULL",
    "current",
    "tracing",
]

#: Bump when the event dict shape or the JSONL export framing changes.
#: Guarded by the golden-schema test in ``tests/obs/``.
TRACE_SCHEMA_VERSION = 1

#: Ring-buffer cap for worker-side tracers: a shard records one span
#: plus at most a few fault instants, so a small cap bounds the bytes
#: pickled back through the result channel even under event storms.
WORKER_EVENT_CAP = 64


class _Span:
    """Context manager recording one complete ("X") event on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict | None):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.complete(
            self._name, self._cat, self._t0, time.monotonic(), args=self._args
        )


class Tracer:
    """Collecting event recorder with a hard cap on retained events.

    Appends are GIL-atomic ``list.append`` calls; the lock only guards
    the cap/drop bookkeeping and bulk :meth:`ingest`, keeping the hot
    record path to one allocation and one append.
    """

    collecting = True

    def __init__(self, max_events: int = 1_000_000):
        self.epoch = time.monotonic()
        self.max_events = int(max_events)
        self.dropped = 0
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._pid = os.getpid()

    # -- recording -----------------------------------------------------
    def span(self, name: str, cat: str = "solve", **args):
        """Context manager timing a block as a complete event."""
        return _Span(self, name, cat, args or None)

    def instant(self, name: str, cat: str = "solve", **args) -> None:
        self._append(
            {
                "ph": "i",
                "name": name,
                "cat": cat,
                "t0": time.monotonic(),
                "t1": None,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": args or None,
            }
        )

    def counter(self, name: str, value: float, cat: str = "counter") -> None:
        self._append(
            {
                "ph": "C",
                "name": name,
                "cat": cat,
                "t0": time.monotonic(),
                "t1": None,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": {"value": value},
            }
        )

    def complete(
        self,
        name: str,
        cat: str,
        t0: float,
        t1: float,
        *,
        args: dict | None = None,
        **extra,
    ) -> None:
        """Record a span from explicit raw-monotonic endpoints."""
        if extra:
            args = {**(args or {}), **extra}
        self._append(
            {
                "ph": "X",
                "name": name,
                "cat": cat,
                "t0": t0,
                "t1": t1,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": args,
            }
        )

    def _append(self, ev: dict) -> None:
        if len(self._events) >= self.max_events:
            with self._lock:
                self.dropped += 1
            return
        self._events.append(ev)

    # -- flush / merge -------------------------------------------------
    def raw_events(self) -> list[dict]:
        """Snapshot of the raw event dicts (for the result channel)."""
        return list(self._events)

    def ingest(self, events) -> int:
        """Merge raw events from another tracer (typically a worker's).

        Returns the number of events accepted (the rest were dropped
        against ``max_events``).
        """
        if not events:
            return 0
        with self._lock:
            room = self.max_events - len(self._events)
            accepted = list(events[:room]) if room > 0 else []
            if accepted:
                self._events.extend(accepted)
            self.dropped += len(events) - len(accepted)
            return len(accepted)

    def __len__(self) -> int:
        return len(self._events)


class _NullSpan:
    """Shared reusable no-op context manager (zero allocation per use)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every method is a no-op, ``collecting`` is False.

    This is what :func:`current` returns when no trace is active, so
    instrumentation sites can call it unconditionally.
    """

    collecting = False
    epoch = 0.0
    dropped = 0
    max_events = 0

    def span(self, name, cat="solve", **args):
        return _NULL_SPAN

    def instant(self, name, cat="solve", **args):
        return None

    def counter(self, name, value, cat="counter"):
        return None

    def complete(self, name, cat, t0, t1, *, args=None, **extra):
        return None

    def raw_events(self):
        return []

    def ingest(self, events):
        return 0

    def __len__(self):
        return 0


NULL = NullTracer()

# Ambient tracer: deep sites (kernels, BVM replay, fault injection)
# where threading a parameter through every signature is impractical
# read the process-wide active tracer instead.  Per-process, not
# per-thread, on purpose: worker processes activate their own tracer
# around the shard body, and the parent activates the solve's tracer
# around the layer loop.
_ACTIVE: Tracer | NullTracer = NULL


def current() -> Tracer | NullTracer:
    """The ambient tracer (the :data:`NULL` singleton when disabled)."""
    return _ACTIVE


@contextmanager
def tracing(tracer: Tracer | NullTracer | None):
    """Make ``tracer`` ambient for the duration of the block."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = prev
