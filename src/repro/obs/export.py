"""Trace exporters and the trace-report summarizer.

Two on-disk formats, chosen by file extension in :func:`write_trace`:

* ``*.jsonl`` — one JSON object per line.  The first line is a meta
  record (``{"type": "meta", "schema": ..., ...}``), every following
  line an event record (``{"type": "event", ...}``).  Greppable and
  streamable; the schema is pinned by a golden-file test.
* anything else (``*.json``, ``*.trace``) — Chrome ``trace_event``
  format (``{"traceEvents": [...]}``), loadable directly in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.

Both formats carry the same information: timestamps are microsecond
offsets from the owning tracer's epoch (raw monotonic floats never
leave the process), durations are microseconds, ``pid``/``tid``
identify the recording process so cross-worker spans lay out on
separate tracks.

:func:`load_trace` reads either format back; :func:`summarize_trace`
folds events into per-layer / per-shard tables for the ``repro
trace-report`` subcommand.
"""

from __future__ import annotations

import json

from .trace import TRACE_SCHEMA_VERSION, Tracer

__all__ = [
    "normalized_events",
    "write_trace",
    "write_jsonl",
    "write_chrome",
    "chrome_trace",
    "load_trace",
    "summarize_trace",
    "render_report",
]


def _us(seconds: float) -> int:
    return int(round(seconds * 1e6))


def normalized_events(tracer: Tracer) -> list[dict]:
    """Raw tracer events → schema records with µs offsets from epoch.

    Events are sorted by start time: workers' events arrive through the
    result channel in completion order, not wall-clock order, and a
    stable timeline is what both exports and the report want.
    """
    epoch = tracer.epoch
    out = []
    for ev in tracer.raw_events():
        t0 = ev["t0"]
        t1 = ev["t1"]
        out.append(
            {
                "type": "event",
                "ph": ev["ph"],
                "name": ev["name"],
                "cat": ev["cat"],
                "ts": _us(t0 - epoch),
                "dur": _us(t1 - t0) if t1 is not None else None,
                "pid": ev["pid"],
                "tid": ev["tid"],
                "args": ev["args"],
            }
        )
    out.sort(key=lambda e: (e["ts"], e["name"]))
    return out


def _meta_record(tracer: Tracer, meta: dict | None) -> dict:
    return {
        "type": "meta",
        "schema": TRACE_SCHEMA_VERSION,
        "clock": "monotonic",
        "unit": "us",
        "events": len(tracer),
        "dropped": tracer.dropped,
        **(meta or {}),
    }


def write_jsonl(path, tracer: Tracer, meta: dict | None = None) -> None:
    records = [_meta_record(tracer, meta)] + normalized_events(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec, separators=(",", ":")) + "\n")


def chrome_trace(tracer: Tracer, meta: dict | None = None) -> dict:
    """Chrome ``trace_event`` document for Perfetto / chrome://tracing."""
    trace_events = []
    for ev in normalized_events(tracer):
        out = {
            "name": ev["name"],
            "cat": ev["cat"],
            "ph": ev["ph"],
            "ts": ev["ts"],
            "pid": ev["pid"],
            "tid": ev["tid"],
        }
        if ev["ph"] == "X":
            out["dur"] = ev["dur"] or 0
        elif ev["ph"] == "i":
            out["s"] = "p"  # process-scoped instant
        if ev["args"]:
            out["args"] = ev["args"]
        trace_events.append(out)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": _meta_record(tracer, meta),
    }


def write_chrome(path, tracer: Tracer, meta: dict | None = None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracer, meta), fh, separators=(",", ":"))
        fh.write("\n")


def write_trace(path, tracer: Tracer, meta: dict | None = None) -> None:
    """Write a trace file; ``.jsonl`` selects JSONL, anything else Chrome."""
    if str(path).endswith(".jsonl"):
        write_jsonl(path, tracer, meta)
    else:
        write_chrome(path, tracer, meta)


def load_trace(path) -> tuple[dict, list[dict]]:
    """Read either trace format back as ``(meta, events)``.

    Events come back in the normalized JSONL record shape regardless of
    which format the file used.
    """
    with open(path, encoding="utf-8") as fh:
        # Both formats start with "{": JSONL iff the *first line* parses
        # on its own as a record carrying the framing "type" field.
        first = fh.readline()
        fh.seek(0)
        try:
            rec = json.loads(first)
            is_jsonl = isinstance(rec, dict) and rec.get("type") in ("meta", "event")
        except json.JSONDecodeError:
            is_jsonl = False  # multi-line document: Chrome
        if not is_jsonl:  # Chrome format: one JSON document
            doc = json.load(fh)
            meta = doc.get("otherData", {})
            events = []
            for ev in doc.get("traceEvents", []):
                events.append(
                    {
                        "type": "event",
                        "ph": ev.get("ph"),
                        "name": ev.get("name"),
                        "cat": ev.get("cat"),
                        "ts": ev.get("ts", 0),
                        "dur": ev.get("dur") if ev.get("ph") == "X" else None,
                        "pid": ev.get("pid"),
                        "tid": ev.get("tid"),
                        "args": ev.get("args"),
                    }
                )
            return meta, events
        meta, events = {}, []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("type") == "meta":
                meta = rec
            elif rec.get("type") == "event":
                events.append(rec)
        return meta, events


def summarize_trace(events: list[dict]) -> dict:
    """Fold normalized events into per-layer and per-category tables."""
    layers: dict[int, dict] = {}

    def row(j: int) -> dict:
        return layers.setdefault(
            int(j),
            {
                "layer": int(j),
                "wall_us": 0,
                "masks": 0,
                "shards": 0,
                "mode": "",
                "shard_spans": 0,
                "shard_us": 0,
                "shard_max_us": 0,
                "workers": set(),
                "commit_us": 0,
                "commit_bytes": 0,
                "faults": 0,
                "recovery": 0,
            },
        )

    wall_lo = None
    wall_hi = None
    by_cat: dict[str, int] = {}
    for ev in events:
        cat = ev.get("cat") or "?"
        by_cat[cat] = by_cat.get(cat, 0) + 1
        ts = ev.get("ts", 0)
        end = ts + (ev.get("dur") or 0)
        wall_lo = ts if wall_lo is None else min(wall_lo, ts)
        wall_hi = end if wall_hi is None else max(wall_hi, end)
        args = ev.get("args") or {}
        j = args.get("layer")
        if j is None:
            continue
        r = row(j)
        if cat == "layer" and ev.get("ph") == "X":
            r["wall_us"] += ev.get("dur") or 0
            r["masks"] = args.get("masks", r["masks"])
            r["shards"] = args.get("shards", r["shards"])
            r["mode"] = args.get("mode", r["mode"])
        elif cat == "shard" and ev.get("ph") == "X":
            dur = ev.get("dur") or 0
            r["shard_spans"] += 1
            r["shard_us"] += dur
            r["shard_max_us"] = max(r["shard_max_us"], dur)
            if ev.get("pid") is not None:
                r["workers"].add(ev["pid"])
        elif cat == "store" and ev.get("ph") == "X":
            r["commit_us"] += ev.get("dur") or 0
            r["commit_bytes"] += args.get("bytes", 0)
        elif cat == "fault":
            r["faults"] += 1
        elif cat == "recovery":
            r["recovery"] += 1

    rows = []
    for j in sorted(layers):
        r = layers[j]
        r["workers"] = len(r.pop("workers"))
        rows.append(r)
    return {
        "events": len(events),
        "wall_us": (wall_hi - wall_lo) if events else 0,
        "by_cat": by_cat,
        "layers": rows,
    }


def _fmt_ms(us: int) -> str:
    return f"{us / 1000:.2f}"


def render_report(summary: dict) -> str:
    """Fixed-width per-layer table plus totals, for terminal output."""
    headers = [
        "layer",
        "masks",
        "shards",
        "mode",
        "wall_ms",
        "shard_ms",
        "max_shard_ms",
        "workers",
        "commit_ms",
        "commit_MB",
        "faults",
        "recovery",
    ]
    rows = []
    for r in summary["layers"]:
        rows.append(
            [
                r["layer"],
                r["masks"],
                r["shards"] or r["shard_spans"],
                r["mode"] or "-",
                _fmt_ms(r["wall_us"]),
                _fmt_ms(r["shard_us"]),
                _fmt_ms(r["shard_max_us"]),
                r["workers"],
                _fmt_ms(r["commit_us"]),
                f"{r['commit_bytes'] / (1 << 20):.2f}",
                r["faults"],
                r["recovery"],
            ]
        )
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(r, widths)))
    cats = ", ".join(f"{c}={n}" for c, n in sorted(summary["by_cat"].items()))
    lines.append(
        f"total: {summary['events']} events, "
        f"{summary['wall_us'] / 1e6:.3f} s span ({cats})"
    )
    return "\n".join(lines)
