"""Live stderr progress reporting for long solves.

A k≥24 out-of-core solve runs for minutes; :class:`ProgressReporter`
turns the layer barrier — the one natural heartbeat of the solve loop —
into a single self-overwriting stderr line::

    layer 17/24  61.8% masks  elapsed 84.3s  eta 52.1s  spilled 96 MB (+8 MB queued)

Masks completed is the honest progress measure (layer sizes follow the
binomial distribution, so "layers done" alone misrepresents the middle
bulge); the ETA extrapolates from the masks-completed fraction.  Output
goes to ``stream`` (default ``sys.stderr``) only when the solve loop
calls in — constructing a reporter costs nothing.

The byte counts arrive as one atomic snapshot from
``LayerStore.commit_stats()`` — the solve loop must *not* read
``spilled_nbytes`` piecemeal while the async committer thread is
mutating it, or the line can show torn values.  ``spilled`` is what the
store durably committed; ``queued`` is what sits behind the in-flight
async commit.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """One-line live progress for the parallel solve loop."""

    def __init__(self, stream=None, min_interval: float = 0.0):
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval
        self._t0 = None
        self._last_emit = 0.0
        self._total_layers = 0
        self._total_masks = 0
        self._wrote = False

    def begin(self, total_layers: int, total_masks: int) -> None:
        self._t0 = time.monotonic()
        self._total_layers = total_layers
        self._total_masks = total_masks

    def layer_done(
        self,
        layer: int,
        masks_done: int,
        spilled_bytes: int = 0,
        queued_bytes: int = 0,
    ) -> None:
        if self._t0 is None:
            self.begin(layer, masks_done)
        now = time.monotonic()
        final = layer >= self._total_layers
        if not final and self._min_interval and now - self._last_emit < self._min_interval:
            return
        self._last_emit = now
        elapsed = now - self._t0
        frac = masks_done / self._total_masks if self._total_masks else 1.0
        eta = elapsed * (1.0 - frac) / frac if frac > 0 else float("inf")
        parts = [
            f"layer {layer}/{self._total_layers}",
            f"{frac * 100:5.1f}% masks",
            f"elapsed {elapsed:.1f}s",
            f"eta {eta:.1f}s" if eta != float("inf") else "eta ?",
        ]
        if spilled_bytes or queued_bytes:
            spilled = f"spilled {spilled_bytes >> 20} MB"
            if queued_bytes:
                spilled += f" (+{queued_bytes >> 20} MB queued)"
            parts.append(spilled)
        self._write("\r" + "  ".join(parts))
        self._wrote = True

    def finish(self) -> None:
        if self._wrote:
            self._write("\n")
            self._wrote = False

    def _write(self, text: str) -> None:
        try:
            self._stream.write(text)
            self._stream.flush()
        except (OSError, ValueError):
            # A closed or broken stderr must never kill the solve.
            pass
