"""Solver telemetry: tracing, metrics, exporters, live progress.

This package is the observation substrate for the solve stack — spans
and counters recorded in the parent and in pool workers, merged into
one timeline, exported as JSONL or Chrome ``trace_event`` JSON, and
summarized by ``repro trace-report``.  Telemetry is **observational
only**: a traced solve produces bit-identical cost/action tables to an
untraced one (enforced by test), and with tracing disabled every
instrumentation site degrades to a no-op on the :data:`~repro.obs.trace.NULL`
singleton.

Import discipline: :mod:`repro.obs` depends only on the standard
library — never on :mod:`repro.core` — so any core module (including
:mod:`repro.core.faults` and the kernels) can emit telemetry without
creating an import cycle.
"""

from __future__ import annotations

from .export import (
    chrome_trace,
    load_trace,
    normalized_events,
    render_report,
    summarize_trace,
    write_trace,
)
from .metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
    zeroed_metrics,
    zeroed_recovery,
)
from .progress import ProgressReporter
from .trace import (
    NULL,
    TRACE_SCHEMA_VERSION,
    WORKER_EVENT_CAP,
    NullTracer,
    Tracer,
    current,
    tracing,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL",
    "current",
    "tracing",
    "TRACE_SCHEMA_VERSION",
    "WORKER_EVENT_CAP",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "zeroed_metrics",
    "zeroed_recovery",
    "ProgressReporter",
    "write_trace",
    "load_trace",
    "chrome_trace",
    "normalized_events",
    "summarize_trace",
    "render_report",
]
