"""Metrics registry: counters, gauges, and histograms for solve runs.

One :class:`MetricsRegistry` per solve.  The registry is flat-keyed
(``"store.commit_s"``, ``"shard.retries"``) and serializes with
:meth:`MetricsRegistry.as_dict` into the ``DPResult.metrics`` block the
CLI exposes under ``--json``.  :func:`zeroed_metrics` defines the
*standard key set*: every backend — including the single-process numpy
and reference paths — returns a metrics dict with at least these keys,
zero-valued when the backend cannot measure them, so downstream
consumers never branch on key presence.

Instruments are deliberately minimal: the solve loop is single-threaded
on the parent side, so counter increments are plain ``+=`` (GIL-atomic)
and only registry-level get-or-create takes a lock.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "zeroed_metrics",
    "zeroed_recovery",
    "METRIC_COUNTERS",
    "METRIC_GAUGES",
    "METRIC_HISTOGRAMS",
]


class Counter:
    """Monotonically increasing count (or accumulated seconds/bytes)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def snapshot(self):
        return self.value


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, v):
        self.value = v

    def snapshot(self):
        return self.value


class Histogram:
    """Streaming summary: count / total / min / max / mean.

    Full quantile sketches are overkill for per-layer latencies (tens of
    observations per solve); the five-number summary round-trips through
    JSON and is enough for the trace-report tables.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, v):
        v = float(v)
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    def snapshot(self):
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": round(self.min, 6) if self.min is not None else 0.0,
            "max": round(self.max, 6) if self.max is not None else 0.0,
            "mean": round(self.total / self.count, 6) if self.count else 0.0,
        }


class MetricsRegistry:
    """Thread-safe get-or-create registry of named instruments."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name, cls):
        inst = self._instruments.get(name)
        if inst is None:
            with self._lock:
                inst = self._instruments.setdefault(name, cls())
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name) -> Histogram:
        return self._get(name, Histogram)

    # Conveniences used at instrumentation sites.
    def inc(self, name, n=1):
        self.counter(name).inc(n)

    def set_gauge(self, name, v):
        self.gauge(name).set(v)

    def observe(self, name, v):
        self.histogram(name).observe(v)

    def as_dict(self) -> dict:
        """Flat JSON-safe snapshot over the standard (zeroed) key set."""
        out = zeroed_metrics()
        for name, inst in sorted(self._instruments.items()):
            out[name] = inst.snapshot()
        return out


class NullMetrics:
    """Disabled registry: accepts every call, records nothing."""

    def counter(self, name):
        return _NULL_COUNTER

    def gauge(self, name):
        return _NULL_GAUGE

    def histogram(self, name):
        return _NULL_HISTOGRAM

    def inc(self, name, n=1):
        return None

    def set_gauge(self, name, v):
        return None

    def observe(self, name, v):
        return None

    def as_dict(self):
        return zeroed_metrics()


class _NullInstrument:
    __slots__ = ()

    def inc(self, n=1):
        return None

    def set(self, v):
        return None

    def observe(self, v):
        return None

    def snapshot(self):
        return 0


_NULL_COUNTER = _NullInstrument()
_NULL_GAUGE = _NullInstrument()
_NULL_HISTOGRAM = _NullInstrument()

NULL_METRICS = NullMetrics()


# The standard key set.  Every DPResult.metrics dict contains at least
# these keys; backends that cannot measure one leave it zeroed.
METRIC_COUNTERS = (
    "layers.total",
    "layers.computed",
    "layers.skipped",
    "shard.dispatched",
    "shard.retries",
    "shard.timeouts",
    "shard.crashes",
    "shard.fallbacks",
    "pool.respawns",
    "time.kernel_s",
    "time.barrier_s",
    "store.commits",
    "store.bytes_written",
    "store.rederived",
    "commit.async",
    "snapshot.bytes_saved",
    "cache.weights_hits",
    "cache.weights_misses",
    "cache.plan_hits",
    "cache.plan_misses",
    "arena.grows",
    "engine.pool_reuses",
    "engine.table_rebuilds",
)

METRIC_GAUGES = ("time.solve_s", "commit.overlap_s", "commit.blocked_s")

METRIC_HISTOGRAMS = (
    "layer.seconds",
    "shard.seconds",
    "store.commit_s",
    "commit.async_s",
    "store.fsync_s",
    "store.rehash_s",
    "store.checkpoint_s",
)


def zeroed_metrics() -> dict:
    """A fresh metrics dict with every standard key zero-valued."""
    out: dict = {name: 0 for name in METRIC_COUNTERS}
    for name in METRIC_GAUGES:
        out[name] = 0
    for name in METRIC_HISTOGRAMS:
        out[name] = {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
    return out


def zeroed_recovery() -> dict:
    """Zeroed recovery counters shaped like ``RecoveryLog.as_dict()``.

    Single-process backends attach this stub so ``DPResult.recovery``
    has uniform keys across backends (the shape is pinned against the
    real :class:`~repro.core.supervisor.RecoveryLog` by a test; it lives
    here because :mod:`repro.obs` must not import :mod:`repro.core`).
    """
    return {
        "retries": 0,
        "timeouts": 0,
        "crashes": 0,
        "respawns": 0,
        "fallback_shards": 0,
        "rederived": 0,
        "degraded": False,
        "resumed_from_layer": None,
        "checkpoint": None,
        "store": None,
        "layers": [],
        "events": [],
    }
