"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``solve``
    Solve a TT instance — from a JSON file (the :meth:`TTProblem.to_json`
    format) or a named synthetic workload — with any of the four solvers
    (``dp``, ``hypercube``, ``ccc``, ``bvm``), optionally printing the
    optimal procedure and machine counters.  For ``--solver dp`` the host
    engine is selectable with
    ``--backend {auto,numpy,parallel,native,reference}`` and
    ``--workers N`` (the multi-core shared-memory engine; ``native`` is
    the optional numba-jitted kernel tier).

``solve-batch``
    Solve a stream of instances (one ``TTProblem`` JSON document per
    line) on a single warm :class:`~repro.core.engine.SolverEngine` —
    shared tables and worker pool amortized across the stream — writing
    one JSON result per line in input order.  ``--solver bvm`` routes
    the stream through the instance-batched packed BVM instead: shapes
    are grouped and each compiled program replays all its instances in
    lockstep.

``verify-exhaustive``
    Bounded-model verification: enumerate every TT instance inside small
    bounds, hold all registered backends bit-for-bit to the reference
    oracle, check metamorphic properties, and shrink any discrepancy to
    a ready-to-paste regression test (exit 1 when any is found).

``crash-drill``
    SIGKILL a ``--store=mmap`` solve at a chosen point of the durable
    slab-commit protocol (in a subprocess), resume from the surviving
    spill directory, and prove the resumed tables bit-identical to an
    undisturbed solve.

``workloads``
    List the available synthetic workload generators.

``figures``
    Regenerate the paper's machine-pattern figures (3, 4, 6) on the BVM
    simulator.

``claims``
    Print the speedup / slowdown / link-count / machine-sizing tables.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json
import math
import os
import sys

import numpy as np

from .core import (
    BACKENDS,
    WORKLOADS,
    InvalidProblem,
    ResiliencePolicy,
    SolverError,
    TTProblem,
    canonicalize,
    resolve_backend,
    solve,
)
from .core.faults import CRASH_POINTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Test-and-treatment procedures via parallel computation "
        "(Duval, Wagner, Han & Loveland, 1986)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve a TT instance")
    src = p_solve.add_mutually_exclusive_group(required=True)
    src.add_argument("--file", help="JSON problem file (TTProblem.to_json format)")
    src.add_argument("--workload", choices=sorted(WORKLOADS), help="synthetic workload")
    p_solve.add_argument("--k", type=int, default=6, help="universe size for workloads")
    p_solve.add_argument("--seed", type=int, default=0, help="workload seed")
    p_solve.add_argument(
        "--solver",
        choices=("dp", "hypercube", "ccc", "bvm"),
        default="dp",
        help="which implementation to run",
    )
    p_solve.add_argument(
        "--backend",
        choices=BACKENDS,
        default="auto",
        help="host DP engine for --solver dp: auto-select, single-process "
        "numpy, multi-core shared-memory parallel, the optional "
        "numba-jitted native kernel (falls back loudly to numpy when "
        "numba is missing), or the plain-Python reference oracle",
    )
    p_solve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the parallel backend "
        "(default: one per core, capped at 8; env REPRO_WORKERS)",
    )
    p_solve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-shard deadline in seconds for the parallel backend "
        "(default: none; hung shards are re-dispatched after this)",
    )
    p_solve.add_argument(
        "--retries",
        type=int,
        default=None,
        help="re-dispatches allowed per failed shard before fallback "
        "(parallel backend; default 2)",
    )
    p_solve.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="layer-granular checkpoint file: written after every layer "
        "barrier, resumed from (after a problem content-hash check) when "
        "it already exists; removed after a successful solve unless "
        "--keep-checkpoint",
    )
    p_solve.add_argument(
        "--keep-checkpoint",
        action="store_true",
        help="keep the checkpoint file after a successful solve instead "
        "of removing it",
    )
    p_solve.add_argument(
        "--store",
        choices=("auto", "ram", "mmap"),
        default="auto",
        help="where the DP tables live: in-RAM shared memory (ram), a "
        "durable memory-mapped spill directory (mmap; requires "
        "--spill-dir), or auto (mmap iff --spill-dir is given)",
    )
    p_solve.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="spill directory for the mmap store: tables and checksummed "
        "per-layer slabs live here; re-running with the same directory "
        "resumes from every layer whose checksum verifies",
    )
    p_solve.add_argument(
        "--shard-discipline",
        choices=("strict", "snapshot"),
        default=None,
        help="how parallel shards treat the layer being computed: strict "
        "(default; validity-masked kernel, no per-shard table snapshot) "
        "or the legacy snapshot copy + re-INF pass (env "
        "REPRO_SHARD_DISCIPLINE; bit-identical tables either way)",
    )
    p_solve.add_argument(
        "--commit-mode",
        choices=("async", "sync"),
        default=None,
        help="layer persistence: async (default; layer j commits on a "
        "background thread while layer j+1 computes) or sync (commit "
        "inline at the barrier; env REPRO_COMMIT_MODE)",
    )
    p_solve.add_argument(
        "--no-fallback",
        action="store_true",
        help="raise instead of finishing failed shards on the in-process "
        "kernel once retries are exhausted",
    )
    p_solve.add_argument("--tree", action="store_true", help="print the optimal procedure")
    p_solve.add_argument("--canonicalize", action="store_true",
                         help="apply optimum-preserving reductions first")
    p_solve.add_argument("--width", type=int, default=16, help="BVM word width")
    p_solve.add_argument(
        "--bvm-backend",
        choices=("bool", "packed"),
        default=None,
        help="BVM execution backend (default: REPRO_BVM_BACKEND or 'bool'; "
        "'packed' runs 64 PEs per machine word with identical cycle counts)",
    )
    p_solve.add_argument("--json", action="store_true", help="machine-readable output")
    p_solve.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record a solve trace here: '.jsonl' writes the line-oriented "
        "event log, anything else a Chrome trace_event JSON loadable in "
        "Perfetto / chrome://tracing (summarize either with trace-report)",
    )
    p_solve.add_argument(
        "--metrics",
        action="store_true",
        help="include the solve's metrics registry snapshot in the output "
        "(shard/layer timings, store commit latency, cache hit rates)",
    )
    p_solve.add_argument(
        "--progress",
        action="store_true",
        help="live per-layer progress line on stderr (layers done, ETA, "
        "MB spilled) for long parallel solves",
    )

    p_batch = sub.add_parser(
        "solve-batch",
        help="solve a JSONL stream of instances on one warm engine",
        description="Read one TTProblem JSON document per line, solve the "
        "stream on a single warm SolverEngine (shared tables, persistent "
        "worker pool, pipelined weight precompute), and write one JSON "
        "result per line in input order.",
    )
    p_batch.add_argument(
        "--in",
        dest="infile",
        default="-",
        metavar="PATH",
        help="input JSONL file ('-' = stdin, the default)",
    )
    p_batch.add_argument(
        "--out",
        dest="outfile",
        default="-",
        metavar="PATH",
        help="output JSONL file ('-' = stdout, the default)",
    )
    p_batch.add_argument(
        "--backend",
        choices=("auto", "numpy", "parallel", "native"),
        default="auto",
        help="engine backend per instance for --solver dp (no reference "
        "oracle in batch mode; 'native' falls back loudly to numpy when "
        "numba is missing)",
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the engine's parallel path",
    )
    p_batch.add_argument(
        "--solver",
        choices=("dp", "bvm"),
        default="dp",
        help="dp: warm host engine per instance; bvm: group the stream "
        "by machine shape and replay one compiled program over all "
        "instances of a shape in lockstep (instance-batched packed BVM)",
    )
    p_batch.add_argument(
        "--width", type=int, default=16, help="BVM word width for --solver bvm"
    )
    p_batch.add_argument(
        "--bvm-backend",
        choices=("packed", "bool"),
        default="packed",
        help="simulation backend for --solver bvm: packed (vectorized "
        "uint64 bit-planes, lanes in lockstep) or bool (per-instance "
        "boolean oracle; slow, for cross-checks)",
    )

    p_verify = sub.add_parser(
        "verify-exhaustive",
        help="bounded-model verification sweep over all backends",
        description="Enumerate every TT instance inside small bounds "
        "(canonical under object relabeling), hold every registered "
        "backend bit-for-bit to the reference oracle, check the "
        "metamorphic property catalogue, and shrink any discrepancy to "
        "a ready-to-paste regression test.  Exit 0 = clean, 1 = "
        "discrepancies found, 2 = usage/solver error.",
    )
    p_verify.add_argument(
        "--bounds",
        choices=("quick", "full"),
        default="quick",
        help="enumeration box: quick (k<=3, N<=4, push CI) or "
        "full (k<=4, N<=5, nightly)",
    )
    p_verify.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="check at most N instances (deterministic stride over the "
        "space, not a prefix; default: the whole space)",
    )
    p_verify.add_argument(
        "--backends",
        default=None,
        metavar="NAMES",
        help="comma-separated backends to verify (default: all registered; "
        "the reference oracle always runs)",
    )
    p_verify.add_argument(
        "--emit-dir",
        default=None,
        metavar="PATH",
        help="write shrunken reproducer test files here on failure",
    )
    p_verify.add_argument(
        "--no-shrink",
        action="store_true",
        help="report discrepancies without shrinking them",
    )
    p_verify.add_argument(
        "--max-failures",
        type=int,
        default=25,
        metavar="N",
        help="stop recording discrepancies after N (the sweep continues)",
    )
    p_verify.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )

    p_drill = sub.add_parser(
        "crash-drill",
        help="SIGKILL a spilled solve mid-commit and prove bit-identical resume",
        description="Run a --store=mmap solve in a subprocess with a "
        "REPRO_STORE_CRASH trap armed at one point of the slab commit "
        "protocol, let the process SIGKILL itself there, resume from the "
        "surviving spill directory in-process, and compare the resumed "
        "tables bit-for-bit against an undisturbed solve.  Exit 0 = the "
        "drill passed (process died by SIGKILL, resume was bit-identical), "
        "1 = it did not.",
    )
    p_drill.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="random",
        help="synthetic workload to drill on (default: random)",
    )
    p_drill.add_argument("--k", type=int, default=10, help="universe size")
    p_drill.add_argument("--seed", type=int, default=0, help="workload seed")
    p_drill.add_argument(
        "--point",
        choices=("all",) + tuple(CRASH_POINTS),
        default="all",
        help="commit-protocol crash point to drill (default: all four)",
    )
    p_drill.add_argument(
        "--layer",
        type=int,
        default=None,
        help="layer whose commit the crash lands in (default: k//2)",
    )
    p_drill.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the drilled solve (crash points are "
        "parent-side, so 1 is enough to exercise them)",
    )
    p_drill.add_argument(
        "--commit-mode",
        choices=("async", "sync"),
        default=None,
        help="commit mode to drill: async (default) SIGKILLs inside the "
        "background committer thread, sync inside the inline protocol "
        "(env REPRO_COMMIT_MODE)",
    )
    p_drill.add_argument(
        "--congest",
        action="store_true",
        help="slow every commit (slow-io fault) so the async kill fires "
        "with a further layer queued behind the in-flight commit "
        "(the mid-queue case)",
    )
    p_drill.add_argument(
        "--dir",
        default=None,
        metavar="PATH",
        help="working directory for the drill (default: a fresh temp dir, "
        "removed afterwards)",
    )
    p_drill.add_argument("--json", action="store_true", help="machine-readable output")

    p_trace = sub.add_parser(
        "trace-report",
        help="summarize a solve trace into per-layer tables",
        description="Read a trace recorded with `solve --trace-out` (either "
        "the JSONL event log or the Chrome trace_event JSON) and print a "
        "per-layer table: wall time, shard spans, worker count, store "
        "commit time/bytes, fault and recovery event counts.",
    )
    p_trace.add_argument("trace", help="trace file written by solve --trace-out")
    p_trace.add_argument("--json", action="store_true", help="machine-readable summary")

    sub.add_parser("workloads", help="list synthetic workload generators")
    sub.add_parser("figures", help="regenerate the paper's Figs. 3/4/6 patterns")
    sub.add_parser("claims", help="print the complexity-claim tables")
    p_report = sub.add_parser(
        "report", help="re-measure all claims; emit a Markdown report"
    )
    p_report.add_argument("--out", help="write to a file instead of stdout")
    return parser


def _load_problem(args) -> TTProblem:
    if args.file:
        try:
            with open(args.file) as fh:
                return TTProblem.from_json(fh.read())
        except InvalidProblem:
            raise
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise InvalidProblem(f"invalid problem file {args.file!r}: {exc}") from exc
    return WORKLOADS[args.workload](args.k, seed=args.seed)


def _policy(args) -> ResiliencePolicy | None:
    """Build the ResiliencePolicy the solve flags ask for (None = defaults)."""
    if (
        args.timeout is None
        and args.retries is None
        and args.checkpoint is None
        and not args.keep_checkpoint
        and not args.no_fallback
    ):
        return None
    policy = ResiliencePolicy()
    overrides: dict = {
        "checkpoint": args.checkpoint,
        "keep_checkpoint": args.keep_checkpoint,
        "fallback": not args.no_fallback,
    }
    if args.timeout is not None:
        overrides["timeout"] = args.timeout
    if args.retries is not None:
        overrides["max_retries"] = args.retries
    return dataclasses.replace(policy, **overrides)


def _solve(args, out) -> int:
    problem = _load_problem(args)
    note = {}
    if args.canonicalize:
        report = canonicalize(problem)
        note = {
            "canonicalized": True,
            "k": f"{report.original_k} -> {report.problem.k}",
            "actions": f"{report.original_n_actions} -> {report.problem.n_actions}",
        }
        problem = report.problem

    from .obs import ProgressReporter, Tracer, tracing, write_trace

    tracer = Tracer() if args.trace_out else None
    progress = ProgressReporter() if args.progress else None

    counters: dict = {}
    # The tracer is made ambient around whichever solver runs, so even
    # the BVM/hypercube paths (which take no tracer argument) land their
    # spans on it; the dp path additionally gets it passed explicitly.
    with tracing(tracer) if tracer is not None else contextlib.nullcontext():
        if args.solver == "dp":
            use_store = args.store != "auto" or args.spill_dir is not None
            backend, workers = resolve_backend(problem, args.backend, args.workers)
            if use_store and (args.store == "mmap" or args.spill_dir is not None):
                backend = "parallel"  # the mmap store rides the parallel loop
            result = solve(
                problem,
                backend=args.backend,
                workers=args.workers,
                policy=_policy(args),
                store=args.store if use_store else None,
                spill_dir=args.spill_dir,
                discipline=args.shard_discipline,
                commit=args.commit_mode,
                tracer=tracer,
                progress=progress,
            )
            counters["sequential_ops"] = result.op_count
            counters["backend"] = backend
            if backend == "parallel":
                counters["workers"] = workers
            # Uniform across backends: single-process solves carry the
            # same recovery keys, zeroed (see DPResult).
            counters["recovery"] = {
                key: result.recovery[key]
                for key in (
                    "retries",
                    "timeouts",
                    "crashes",
                    "respawns",
                    "fallback_shards",
                    "degraded",
                    "resumed_from_layer",
                    "rederived",
                    "store",
                )
            }
            if args.metrics:
                counters["metrics"] = result.metrics
        elif args.solver == "hypercube":
            from .ttpar import solve_tt_hypercube

            result = solve_tt_hypercube(problem)
            counters["route_steps"] = result.stats.route_steps
            counters["compute_steps"] = result.stats.compute_steps
        elif args.solver == "ccc":
            from .ttpar import solve_tt_ccc

            result = solve_tt_ccc(problem)
            counters["ccc_route_steps"] = result.ccc_stats.route_steps
            counters["slowdown_vs_hypercube"] = round(result.ccc_stats.slowdown, 3)
        else:
            from .ttpar import solve_tt_bvm

            result = solve_tt_bvm(problem, width=args.width, backend=args.bvm_backend)
            counters["bvm_cycles"] = result.cycles
            counters["ccc_r"] = result.r
            counters["bvm_backend"] = result.backend

    if tracer is not None:
        write_trace(
            args.trace_out,
            tracer,
            meta={
                "solver": args.solver,
                "problem": problem.name or "(unnamed)",
                "k": problem.k,
            },
        )
        counters["trace"] = args.trace_out

    feasible = math.isfinite(result.optimal_cost)
    payload = {
        "problem": problem.name or "(unnamed)",
        "k": problem.k,
        "n_actions": problem.n_actions,
        "solver": args.solver,
        # inf is not valid JSON; an infeasible instance reports null.
        "optimal_cost": result.optimal_cost if feasible else None,
        "feasible": feasible,
        **counters,
        **note,
    }
    if args.json:
        print(json.dumps(payload, indent=2), file=out)
    else:
        for key, val in payload.items():
            if key == "optimal_cost" and val is None:
                val = "inf (infeasible)"
            print(f"{key:>22}: {val}", file=out)
        if args.tree:
            if not feasible:
                raise InvalidProblem(
                    "no successful procedure exists (C(U) is infinite); "
                    "there is no tree to print"
                )
            print(file=out)
            print(result.tree().render(), file=out)
    return 0


def _solve_batch(args, out) -> int:
    """JSONL in, JSONL out, one warm engine for the whole stream."""
    from .core import SolverEngine

    def parse_line(number: int, line: str) -> TTProblem:
        try:
            return TTProblem.from_json(line)
        except InvalidProblem:
            raise
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise InvalidProblem(f"invalid problem on line {number}: {exc}") from exc

    if args.infile == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            with open(args.infile) as fh:
                lines = fh.read().splitlines()
        except OSError as exc:
            raise InvalidProblem(f"cannot read {args.infile!r}: {exc}") from exc
    problems = [
        parse_line(number, line)
        for number, line in enumerate(lines, start=1)
        if line.strip()
    ]

    with SolverEngine(workers=args.workers, backend=args.backend) as engine:
        results = engine.solve_many(
            problems,
            solver=args.solver,
            width=args.width,
            bvm_backend=args.bvm_backend,
        )

    sink = out if args.outfile == "-" else open(args.outfile, "w")
    try:
        for problem, result in zip(problems, results):
            payload = {
                "problem": problem.name or "(unnamed)",
                "k": problem.k,
                "n_actions": problem.n_actions,
                # inf is not valid JSON; an infeasible instance reports null.
                "optimal_cost": result.optimal_cost if result.feasible else None,
                "feasible": bool(result.feasible),
            }
            if args.solver == "bvm":
                payload["bvm_cycles"] = result.cycles
                payload["ccc_r"] = result.r
                payload["bvm_backend"] = result.backend
            else:
                payload["sequential_ops"] = result.op_count
            print(json.dumps(payload), file=sink)
    finally:
        if sink is not out:
            sink.close()
    return 0


def _crash_drill(args, out) -> int:
    import shutil
    import tempfile

    from .store.drill import run_crash_drill

    problem = WORKLOADS[args.workload](args.k, seed=args.seed)
    points = list(CRASH_POINTS) if args.point == "all" else [args.point]
    workdir = args.dir
    cleanup = workdir is None
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-crash-drill-")
    reports = []
    try:
        for point in points:
            reports.append(
                run_crash_drill(
                    problem,
                    point,
                    workdir=os.path.join(workdir, point),
                    layer=args.layer,
                    workers=args.workers,
                    commit=args.commit_mode,
                    congest=args.congest,
                )
            )
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)
    ok = all(r["killed"] and r["identical"] for r in reports)
    if args.json:
        print(json.dumps({"ok": ok, "drills": reports}, indent=2), file=out)
    else:
        for r in reports:
            status = "PASS" if (r["killed"] and r["identical"]) else "FAIL"
            print(
                f"{status} {r['point']:>12} layer={r['layer']} "
                f"commit={r['commit']}: "
                f"killed={r['killed']} committed_at_kill={r['committed_at_kill']} "
                f"rederived={r['rederived']} identical={r['identical']}",
                file=out,
            )
    return 0 if ok else 1


def _verify_exhaustive(args, out) -> int:
    from .verify import PRESETS, run_verification

    if args.budget is not None and args.budget < 1:
        raise InvalidProblem(f"--budget must be >= 1, got {args.budget}")
    backend_names = None
    if args.backends is not None:
        backend_names = [n.strip() for n in args.backends.split(",") if n.strip()]
        if not backend_names:
            raise InvalidProblem("--backends got an empty list")
    try:
        report = run_verification(
            bounds=PRESETS[args.bounds],
            backend_names=backend_names,
            budget=args.budget,
            emit_dir=args.emit_dir,
            shrink_failures=not args.no_shrink,
            max_failures=args.max_failures,
            log=lambda msg: print(msg, file=sys.stderr),
        )
    except ValueError as exc:  # e.g. unknown backend name
        raise InvalidProblem(str(exc)) from exc
    if args.json:
        print(json.dumps(report.to_dict(), indent=2), file=out)
    else:
        print(report.summary(), file=out)
    return 0 if report.ok else 1


def _trace_report(args, out) -> int:
    from .obs import load_trace, render_report, summarize_trace

    try:
        meta, events = load_trace(args.trace)
    except OSError as exc:
        raise InvalidProblem(f"cannot read trace {args.trace!r}: {exc}") from exc
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise InvalidProblem(f"invalid trace file {args.trace!r}: {exc}") from exc
    summary = summarize_trace(events)
    if args.json:
        print(json.dumps({"meta": meta, **summary}, indent=2), file=out)
    else:
        print(render_report(summary), file=out)
    return 0


def _workloads(out) -> int:
    for name in sorted(WORKLOADS):
        doc = (WORKLOADS[name].__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{name:<12} {summary}", file=out)
    return 0


def _figures(out) -> int:
    from .bvm import ProgramBuilder, render_cycle_grid, render_pid_columns
    from .bvm.hyperops import route_dim
    from .bvm.primitives import (
        broadcast_bit,
        cycle_id,
        cycle_id_input_bits,
        processor_id,
    )

    print("Fig. 3 — cycle-ID, 64-PE CCC:", file=out)
    prog = ProgramBuilder(r=2)
    dst = prog.pool.alloc1()
    cycle_id(prog, dst)
    m = prog.build_machine()
    m.feed_input(cycle_id_input_bits(prog.Q))
    prog.run(m)
    print(render_cycle_grid(m, dst), file=out)

    print("\nFig. 4 — processor-ID, 8 PEs:", file=out)
    prog = ProgramBuilder(r=1)
    pid = prog.pool.alloc(3)
    processor_id(prog, pid)
    m = prog.build_machine()
    m.feed_input(cycle_id_input_bits(prog.Q))
    prog.run(m)
    print(render_pid_columns(m, pid, max_pes=8), file=out)

    print("\nFig. 6 — broadcast, 64 PEs:", file=out)
    prog = ProgramBuilder(r=2)
    value, sender = prog.pool.alloc(2)
    pid = prog.pool.alloc(6)
    processor_id(prog, pid)
    broadcast_bit(prog, value, sender, pid, route_dim)
    m = prog.build_machine()
    m.feed_input(cycle_id_input_bits(prog.Q))
    seed = np.zeros(m.n, bool)
    seed[0] = True
    m.poke(value, seed.copy())
    m.poke(sender, seed.copy())
    prog.run(m)
    print(f"value reached all {m.n} PEs: {bool(m.read(value).all())}", file=out)
    return 0


def _claims(out) -> int:
    from .hypercube import ccc_links, hypercube_links
    from .ttpar import machine_sizing_table, speedup_curve

    print("speedup (N = 2^k regime):", file=out)
    for pt in speedup_curve(range(6, 19, 3), lambda k: 2**k):
        print(
            f"  k={pt.k:<3} P={pt.pe_count:<12,} speedup={pt.speedup:<14,.0f} "
            f"P/logP={pt.p_over_logp:,.0f}",
            file=out,
        )

    print("\nlinks (CCC 3n/2 vs hypercube n*log(n)/2):", file=out)
    for r in (2, 3):
        dims = r + (1 << r)
        print(
            f"  r={r}: CCC {ccc_links(r):,} vs hypercube {hypercube_links(dims):,}",
            file=out,
        )

    print("\nmachine sizing:", file=out)
    for row in machine_sizing_table():
        print(
            f"  2^{row['pe_budget'].bit_length() - 1} PEs: "
            f"k={row['max_k_exponential_actions']} (N=2^k), "
            f"k={row['max_k_quadratic_actions']} (N=k^2)",
            file=out,
        )
    return 0


def main(argv=None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args, out)
    except SolverError as exc:
        # One line, exit code 2 — the taxonomy means no raw tracebacks
        # for user errors (bad spec files, bad env knobs, failed solves).
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args, out) -> int:
    if args.command == "solve":
        return _solve(args, out)
    if args.command == "solve-batch":
        return _solve_batch(args, out)
    if args.command == "crash-drill":
        return _crash_drill(args, out)
    if args.command == "verify-exhaustive":
        return _verify_exhaustive(args, out)
    if args.command == "trace-report":
        return _trace_report(args, out)
    if args.command == "workloads":
        return _workloads(out)
    if args.command == "figures":
        return _figures(out)
    if args.command == "claims":
        return _claims(out)
    if args.command == "report":
        from .reports import generate_report

        text = generate_report()
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            print(f"report written to {args.out}", file=out)
        else:
            print(text, file=out)
        return 0
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover
