"""The BVM instruction set (paper §2).

Every instruction has the form::

    {A | E | R[j]}, B = f, g (F, D, B)  [(IF | NF) <set>]

performing two simultaneous assignments: ``f(F, D, B)`` to the named
destination and ``g(F, D, B)`` to ``B``.  ``f`` and ``g`` are arbitrary
Boolean functions of three arguments, represented here as 8-bit truth
tables (bit ``F*4 + D*2 + B`` holds the output for that input
combination), which the simulator evaluates with one vectorized gather.

``F`` is a register of the executing PE.  ``D`` is a register of the PE
itself or of one of its neighbors (``S``, ``P``, ``L``, ``XS``, ``XP``)
or the global input shift ``I``.  ``(IF | NF) <set>`` activates only the
PEs whose within-cycle position is in (out of) ``<set>``; the enable
register ``E`` additionally gates every write except writes to ``E``
itself, which the paper specifies as always enabled.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = [
    "Reg",
    "A",
    "B",
    "E",
    "R",
    "Operand",
    "TruthTable",
    "tt",
    "FN",
    "Instruction",
    "activation_if",
    "activation_nf",
]


@dataclass(frozen=True, slots=True)
class Reg:
    """A register name: ``A``, ``B``, ``E`` or ``R[j]``."""

    kind: str  # "A" | "B" | "E" | "R"
    index: int = -1

    def __post_init__(self) -> None:
        if self.kind not in ("A", "B", "E", "R"):
            raise ValueError(f"unknown register kind {self.kind!r}")
        if self.kind == "R" and self.index < 0:
            raise ValueError("R registers need a non-negative index")

    def __str__(self) -> str:
        return f"R[{self.index}]" if self.kind == "R" else self.kind


A = Reg("A")
B = Reg("B")
E = Reg("E")


def R(j: int) -> Reg:
    """The general register ``R[j]``."""
    return Reg("R", j)


@dataclass(frozen=True, slots=True)
class Operand:
    """A data source: a register, optionally read at a neighbor PE."""

    reg: Reg
    neighbor: str | None = None  # S | P | L | XS | XP | I | None

    def __str__(self) -> str:
        return f"{self.reg}.{self.neighbor}" if self.neighbor else str(self.reg)


TruthTable = int  # 8-bit: bit (F*4 + D*2 + B) = output


def tt(fn: Callable[[int, int, int], int]) -> TruthTable:
    """Build a truth table from a Python predicate of (F, D, B)."""
    out = 0
    for f in (0, 1):
        for d in (0, 1):
            for b in (0, 1):
                if fn(f, d, b) & 1:
                    out |= 1 << (f * 4 + d * 2 + b)
    return out


class FN:
    """Named Boolean functions used throughout the BVM programs."""

    ZERO = tt(lambda f, d, b: 0)
    ONE = tt(lambda f, d, b: 1)
    F = tt(lambda f, d, b: f)                    # pass own register through
    D = tt(lambda f, d, b: d)                    # take the (neighbor) operand
    B = tt(lambda f, d, b: b)                    # keep the B accumulator
    NOT_F = tt(lambda f, d, b: 1 - f)
    NOT_D = tt(lambda f, d, b: 1 - d)
    NOT_B = tt(lambda f, d, b: 1 - b)
    AND = tt(lambda f, d, b: f & d)
    OR = tt(lambda f, d, b: f | d)
    XOR = tt(lambda f, d, b: f ^ d)
    XNOR = tt(lambda f, d, b: 1 - (f ^ d))
    AND_FB = tt(lambda f, d, b: f & b)
    OR_FB = tt(lambda f, d, b: f | b)
    AND_DB = tt(lambda f, d, b: d & b)
    OR_DB = tt(lambda f, d, b: d | b)
    SUM3 = tt(lambda f, d, b: f ^ d ^ b)         # full-adder sum bit
    MAJ3 = tt(lambda f, d, b: (f & d) | (f & b) | (d & b))  # carry bit
    BORROW = tt(lambda f, d, b: ((1 - f) & d) | (((1 - f) | d) & b))
    # select: B ? F : D  (the conditional move used by min/select)
    SEL_B_FD = tt(lambda f, d, b: f if b else d)
    # select: B ? D : F
    SEL_B_DF = tt(lambda f, d, b: d if b else f)
    # running equality: B & ~(F ^ D)
    EQ_ACC = tt(lambda f, d, b: b & (1 - (f ^ d)))
    # D if D-side gate... (D & B) | (F & ~B) == SEL_B_DF; kept for clarity
    ANDN = tt(lambda f, d, b: f & (1 - d))
    ORN = tt(lambda f, d, b: f | (1 - d))

    @staticmethod
    def apply(table: TruthTable, f: int, d: int, b: int) -> int:
        """Scalar evaluation (used by tests as the reference semantics)."""
        return (table >> (f * 4 + d * 2 + b)) & 1


@dataclass(frozen=True, slots=True)
class Instruction:
    """One BVM instruction: two simultaneous Boolean assignments.

    ``dest`` receives ``f(F, D, B)``; register ``B`` receives
    ``g(F, D, B)``.  ``activation`` is ``None`` (all active) or a pair
    ``(invert, frozenset_of_positions)`` for ``IF``/``NF <set>``.
    """

    dest: Reg
    f: TruthTable
    fsrc: Reg
    dsrc: Operand
    g: TruthTable = FN.B  # default: leave B unchanged
    activation: tuple[bool, frozenset] | None = None
    note: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.dest.kind == "B":
            raise ValueError("B is written by g; use dest A/E/R[j]")
        if not (0 <= self.f <= 255 and 0 <= self.g <= 255):
            raise ValueError("truth tables are 8-bit")

    def __str__(self) -> str:
        act = ""
        if self.activation is not None:
            invert, positions = self.activation
            act = f" {'NF' if invert else 'IF'} {{{','.join(map(str, sorted(positions)))}}}"
        return (
            f"{self.dest}, B = f{self.f:02x}, g{self.g:02x} "
            f"({self.fsrc}, {self.dsrc}, B){act}"
        )


def activation_if(positions) -> tuple[bool, frozenset]:
    """``IF <set>``: activate PEs whose position is in ``positions``."""
    return (False, frozenset(int(p) for p in positions))


def activation_nf(positions) -> tuple[bool, frozenset]:
    """``NF <set>``: activate PEs whose position is *not* in ``positions``."""
    return (True, frozenset(int(p) for p in positions))
