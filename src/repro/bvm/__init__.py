"""The Boolean Vector Machine: bit-serial SIMD on a cube-connected-cycles
network, with the paper's §4 algorithm library."""

from .bitserial import (
    add_const_into,
    add_into,
    copy_word,
    equal_words,
    equals_const,
    less_than,
    load_b,
    min_into,
    min_tagged_into,
    mult_into,
    select_word,
    set_word_const,
)
from .collectives import global_and, global_count, global_or
from .hyperops import dims_of, route_dim, route_dim_cost
from .streams import (
    decode_streamed_row,
    stream_bits_for,
    stream_load,
    stream_load_word,
    stream_read,
    stream_read_word,
)
from .isa import A, B, E, FN, Instruction, Operand, R, Reg, activation_if, activation_nf, tt
from .machine import BVM, resolve_backend
from .packed import PackedBVM
from .primitives import (
    broadcast_bit,
    cycle_id,
    cycle_id_input_bits,
    processor_id,
    propagation1,
    propagation2,
)
from .program import CompiledProgram, ProgramBuilder, RegisterPool
from .render import render_cycle_grid, render_machine, render_pid_columns
from .sortroute import BenesPlan, benes_permute, bitonic_sort
from .topology import CCCTopology

__all__ = [
    "BVM",
    "PackedBVM",
    "resolve_backend",
    "CCCTopology",
    "ProgramBuilder",
    "RegisterPool",
    "CompiledProgram",
    "Instruction",
    "Operand",
    "Reg",
    "A",
    "B",
    "E",
    "R",
    "FN",
    "tt",
    "activation_if",
    "activation_nf",
    "cycle_id",
    "cycle_id_input_bits",
    "processor_id",
    "broadcast_bit",
    "propagation1",
    "propagation2",
    "route_dim",
    "route_dim_cost",
    "dims_of",
    "copy_word",
    "set_word_const",
    "add_into",
    "add_const_into",
    "less_than",
    "equal_words",
    "equals_const",
    "select_word",
    "min_into",
    "min_tagged_into",
    "mult_into",
    "load_b",
    "render_machine",
    "render_cycle_grid",
    "render_pid_columns",
    "global_or",
    "global_and",
    "global_count",
    "stream_load",
    "stream_read",
    "stream_load_word",
    "stream_read_word",
    "stream_bits_for",
    "decode_streamed_row",
    "bitonic_sort",
    "benes_permute",
    "BenesPlan",
]
