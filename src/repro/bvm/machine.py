"""The Boolean Vector Machine simulator (paper §2, Fig. 2).

Logically the BVM is a bit array: each of the ``L`` register rows spans
all ``n`` PEs, each PE is one column (Fig. 2).  The simulator stores the
register file as an ``(L, n)`` boolean matrix plus the dedicated ``A``,
``B`` and ``E`` rows, and executes one instruction as a handful of
vectorized NumPy operations:

1. gather ``F`` (own register row) and ``D`` (own row, or a neighbor's via
   a precomputed gather index; ``I`` shifts the whole row one PE to the
   right, consuming an input bit and emitting an output bit),
2. index the two 8-bit truth tables with ``F*4 + D*2 + B``,
3. write both results back under the activation/enable mask.

Masking semantics follow the paper exactly: ``(IF|NF) <set>`` activates
by within-cycle position; the enable register ``E`` gates every write
except writes to ``E`` itself ("the value of PE's will not be affected
(except that of register E) if it is deactivated or disabled" — which is
also what makes re-enabling possible).

Every executed instruction costs one machine cycle; ``cycles`` is the
counter the complexity benchmarks read.

Two execution backends share this constructor: ``BVM(r, backend="bool")``
is this byte-per-bit machine (the differential oracle — deliberately
close to the paper's prose), ``backend="packed"`` returns the
word-parallel :class:`~repro.bvm.packed.PackedBVM` (64 PEs per machine
word, lowered truth tables, cached route permutations).  The default
comes from ``REPRO_BVM_BACKEND`` (``bool`` if unset); both backends are
bit-for-bit identical in registers, output log and cycle count.
"""

from __future__ import annotations

import os
from collections import deque

import numpy as np

from .isa import Instruction, Operand, Reg
from .topology import CCCTopology

__all__ = ["BVM", "resolve_backend"]

BACKENDS = ("bool", "packed")

# Truth-table decode for the whole ISA: row ``t`` holds the 8 output bits
# of table ``t`` (precomputed once instead of per executed instruction).
_TT_BITS = np.array(
    [[(t >> i) & 1 for i in range(8)] for t in range(256)], dtype=bool
)


def resolve_backend(backend: str | None = None) -> str:
    """Pick the execution backend: explicit arg, else ``REPRO_BVM_BACKEND``.

    Unknown values fail loudly and name their source (argument vs env
    var) instead of falling back: a typo'd ``REPRO_BVM_BACKEND=packd``
    that silently ran the boolean machine would turn a 64x word-packed
    run into a 64x slowdown nobody notices.  The error is
    :class:`~repro.core.errors.InvalidProblem` — the CLI's taxonomy
    reports it as a one-line user error (exit 2), and it still
    ``isinstance`` ``ValueError`` for older callers.  A set-but-blank
    env var means "default", matching the ``REPRO_WORKERS`` precedent.
    """
    from ..core.errors import InvalidProblem

    if backend is not None:
        chosen, source = backend, "backend argument"
    else:
        env = os.environ.get("REPRO_BVM_BACKEND")
        if env is None or not env.strip():
            return "bool"
        chosen, source = env.strip(), "REPRO_BVM_BACKEND"
    if chosen not in BACKENDS:
        raise InvalidProblem(
            f"unknown BVM backend {chosen!r} from {source} "
            f"(choose from {BACKENDS})"
        )
    return chosen


class BVM:
    """A CCC(r) Boolean Vector Machine with ``L`` general registers."""

    backend = "bool"

    def __new__(cls, r: int, L: int = 256, backend: str | None = None):
        if cls is BVM and resolve_backend(backend) == "packed":
            from .packed import PackedBVM

            return PackedBVM(r, L=L)
        return super().__new__(cls)

    def __init__(self, r: int, L: int = 256, backend: str | None = None):
        self.topology = CCCTopology.shared(r)
        self.L = L
        n = self.topology.n
        self.regs = np.zeros((L, n), dtype=bool)
        self.a = np.zeros(n, dtype=bool)
        self.b = np.zeros(n, dtype=bool)
        self.e = np.ones(n, dtype=bool)  # fully enabled at power-on
        self.cycles = 0
        self.input_queue: deque[bool] = deque()
        self.output_log: list[bool] = []
        self._idx_buf = np.empty(n, dtype=np.uint8)  # reused F*4+D*2+B index

    # ------------------------------------------------------------------
    # Introspection / host access
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.topology.n

    @property
    def Q(self) -> int:
        return self.topology.Q

    def read(self, reg: Reg) -> np.ndarray:
        """Host read of a full register row (copy)."""
        return self._row(reg).copy()

    def poke(self, reg: Reg, values) -> None:
        """Host write of a full register row (costs no machine cycles;
        models the host loading data, which the paper assumes for the
        problem inputs ``T_i``)."""
        row = np.asarray(values, dtype=bool)
        if row.shape != (self.n,):
            raise ValueError(f"row must have shape ({self.n},)")
        self._set_row(reg, row)

    def feed_input(self, bits) -> None:
        """Queue bits for the ``I`` input port (consumed FIFO)."""
        for b in bits:
            self.input_queue.append(bool(b))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, instr: Instruction) -> None:
        """Run one instruction (one machine cycle)."""
        f_vec = self._row(instr.fsrc)
        d_vec = self._fetch_operand(instr.dsrc)
        b_vec = self.b

        # F*4 + D*2 + B into the preallocated index buffer; bool rows are
        # one byte per element, so viewing them as uint8 is free.
        idx = self._idx_buf
        np.copyto(idx, f_vec)
        idx <<= 1
        idx |= d_vec.view(np.uint8)
        idx <<= 1
        idx |= b_vec.view(np.uint8)
        out_f = _TT_BITS[instr.f][idx]
        out_b = _TT_BITS[instr.g][idx]

        active = self._activation_mask(instr.activation)
        gated = active & self.e  # old E gates this cycle's ordinary writes
        if instr.dest.kind == "E":
            # E ignores both deactivation and disable (always enabled).
            self.e = out_f.copy()
        else:
            dst = self._row(instr.dest)
            self._set_row(instr.dest, np.where(gated, out_f, dst))
        self.b = np.where(gated, out_b, self.b)
        self.cycles += 1

    def run(self, instructions) -> int:
        """Execute a sequence; returns the cycles it consumed."""
        start = self.cycles
        for instr in instructions:
            self.execute(instr)
        return self.cycles - start

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _truth_lookup(table: int, idx: np.ndarray) -> np.ndarray:
        return _TT_BITS[table][idx]

    def _row(self, reg: Reg) -> np.ndarray:
        if reg.kind == "A":
            return self.a
        if reg.kind == "B":
            return self.b
        if reg.kind == "E":
            return self.e
        if reg.index >= self.L:
            raise IndexError(f"register R[{reg.index}] beyond L={self.L}")
        return self.regs[reg.index]

    def _set_row(self, reg: Reg, row: np.ndarray) -> None:
        if reg.kind == "A":
            self.a = row
        elif reg.kind == "B":
            self.b = row
        elif reg.kind == "E":
            self.e = row
        else:
            if reg.index >= self.L:
                raise IndexError(f"register R[{reg.index}] beyond L={self.L}")
            self.regs[reg.index] = row

    def _fetch_operand(self, op: Operand) -> np.ndarray:
        row = self._row(op.reg)
        if op.neighbor is None:
            return row
        if op.neighbor == "I":
            # Global shift: PE q reads PE q-1; PE 0 reads the input port;
            # the last PE's value leaves through the output port.
            self.output_log.append(bool(row[-1]))
            in_bit = self.input_queue.popleft() if self.input_queue else False
            shifted = np.empty_like(row)
            shifted[1:] = row[:-1]
            shifted[0] = in_bit
            return shifted
        idx = self.topology.neighbor_index(op.neighbor)
        return row[idx]

    def _activation_mask(self, activation) -> np.ndarray:
        # Cached per (activation, r) on the shared topology; the returned
        # mask is read-only and must be combined, not mutated.
        return self.topology.activation_mask(activation)

    # ------------------------------------------------------------------
    # Debug rendering (Fig. 2 style)
    # ------------------------------------------------------------------

    def render(self, rows, max_pes: int = 64) -> str:
        """ASCII dump of selected rows, PEs as columns — the bit-array
        picture of the paper's Fig. 2.  ``rows`` is a list of (label, Reg)."""
        n_show = min(self.n, max_pes)
        header = "PE        " + " ".join(f"{q%10}" for q in range(n_show))
        lines = [header]
        for label, reg in rows:
            bits = self._row(reg)[:n_show]
            lines.append(f"{label:<10}" + " ".join("1" if x else "." for x in bits))
        return "\n".join(lines)
