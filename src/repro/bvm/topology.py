"""Cube-connected-cycles geometry of the BVM (paper §2).

With ``r`` a positive integer and ``Q = 2^r``, the machine has ``2^Q``
cycles of ``Q`` PEs each — ``n = Q * 2^Q`` PEs total.  PE ``Q*i + j`` is
written ``(i, j)``: cycle number ``i``, position ``j`` within the cycle.
Connections (three per PE, hence ``3n/2`` links):

* ``S`` — successor ``(i, (j+1) % Q)``,
* ``P`` — predecessor ``(i, (j+Q-1) % Q)``,
* ``L`` — lateral ``(i ^ 2^j, j)`` (the *highsheaf* for cycle bit ``j``).

Derived addressing modes of the instruction set:

* ``XS`` — even-successor exchange: partner ``S`` if ``j`` even else ``P``
  (pairs positions ``(0,1), (2,3), ..``),
* ``XP`` — even-predecessor exchange: partner ``P`` if ``j`` even else
  ``S`` (pairs ``(1,2), (3,4), .., (Q-1,0)``),
* ``I`` — the global input shift: every PE takes the value of its linear
  predecessor ``addr-1``; PE ``(0,0)`` takes a bit from the input stream
  and PE ``(2^Q - 1, Q - 1)`` emits its value to the output stream.

All neighbor reads are precomputed gather-index arrays so the simulator's
inner loop is pure vectorized NumPy.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

__all__ = ["CCCTopology", "NEIGHBOR_NAMES"]

NEIGHBOR_NAMES = ("S", "P", "L", "XS", "XP", "I")


class CCCTopology:
    """Precomputed neighbor maps for a CCC(r) machine."""

    def __init__(self, r: int):
        if r < 1:
            raise ValueError("r must be >= 1")
        self.r = r
        self.Q = 1 << r
        self.n_cycles = 1 << self.Q
        self.n = self.Q * self.n_cycles

    @cached_property
    def addresses(self) -> np.ndarray:
        return np.arange(self.n, dtype=np.int64)

    @cached_property
    def cycle_of(self) -> np.ndarray:
        """Cycle number ``i`` of every PE."""
        return self.addresses // self.Q

    @cached_property
    def pos_of(self) -> np.ndarray:
        """Within-cycle position ``j`` of every PE."""
        return self.addresses % self.Q

    def address(self, cycle, pos):
        """PE address of ``(cycle, pos)`` (arrays or scalars)."""
        return cycle * self.Q + pos

    # ------------------------------------------------------------------
    # Gather indices: reading ``X.N`` gathers X at ``index_N[pe]``.
    # ------------------------------------------------------------------

    @cached_property
    def succ_index(self) -> np.ndarray:
        return self.address(self.cycle_of, (self.pos_of + 1) % self.Q)

    @cached_property
    def pred_index(self) -> np.ndarray:
        return self.address(self.cycle_of, (self.pos_of + self.Q - 1) % self.Q)

    @cached_property
    def lateral_index(self) -> np.ndarray:
        return self.address(self.cycle_of ^ (1 << self.pos_of), self.pos_of)

    @cached_property
    def xs_index(self) -> np.ndarray:
        even = (self.pos_of % 2) == 0
        return np.where(even, self.succ_index, self.pred_index)

    @cached_property
    def xp_index(self) -> np.ndarray:
        even = (self.pos_of % 2) == 0
        return np.where(even, self.pred_index, self.succ_index)

    @cached_property
    def linear_pred_index(self) -> np.ndarray:
        """For ``I``: PE ``q`` reads PE ``q-1`` (PE 0 handled separately)."""
        return np.maximum(self.addresses - 1, 0)

    def neighbor_index(self, name: str) -> np.ndarray:
        table = {
            "S": self.succ_index,
            "P": self.pred_index,
            "L": self.lateral_index,
            "XS": self.xs_index,
            "XP": self.xp_index,
            "I": self.linear_pred_index,
        }
        try:
            return table[name]
        except KeyError:
            raise ValueError(f"unknown neighbor {name!r}") from None

    # ------------------------------------------------------------------
    # Structural facts (for the link-census benchmark)
    # ------------------------------------------------------------------

    def degree(self) -> int:
        """Links per PE: predecessor, successor, lateral."""
        return 3

    def link_count(self) -> int:
        """Distinct undirected links: ``3n/2`` for ``Q >= 4`` (for ``Q = 2``
        the pred and succ of a 2-cycle coincide)."""
        if self.Q == 2:
            return self.n_cycles + self.n // 2
        return 3 * self.n // 2

    def hypercube_dims(self) -> int:
        """Dimensions of the hypercube this CCC simulates: ``r + Q``."""
        return self.r + self.Q
