"""Cube-connected-cycles geometry of the BVM (paper §2).

With ``r`` a positive integer and ``Q = 2^r``, the machine has ``2^Q``
cycles of ``Q`` PEs each — ``n = Q * 2^Q`` PEs total.  PE ``Q*i + j`` is
written ``(i, j)``: cycle number ``i``, position ``j`` within the cycle.
Connections (three per PE, hence ``3n/2`` links):

* ``S`` — successor ``(i, (j+1) % Q)``,
* ``P`` — predecessor ``(i, (j+Q-1) % Q)``,
* ``L`` — lateral ``(i ^ 2^j, j)`` (the *highsheaf* for cycle bit ``j``).

Derived addressing modes of the instruction set:

* ``XS`` — even-successor exchange: partner ``S`` if ``j`` even else ``P``
  (pairs positions ``(0,1), (2,3), ..``),
* ``XP`` — even-predecessor exchange: partner ``P`` if ``j`` even else
  ``S`` (pairs ``(1,2), (3,4), .., (Q-1,0)``),
* ``I`` — the global input shift: every PE takes the value of its linear
  predecessor ``addr-1``; PE ``(0,0)`` takes a bit from the input stream
  and PE ``(2^Q - 1, Q - 1)`` emits its value to the output stream.

All neighbor reads are precomputed gather-index arrays so the simulator's
inner loop is pure vectorized NumPy.  For the word-packed backend
(:mod:`repro.bvm.packed`) every neighbor gather is additionally lowered
*once* to a :class:`PackedPlan` — an OR of masked shifts over bit-plane
words — so a route sweep is a handful of machine-word operations instead
of a per-PE fancy index.
"""

from __future__ import annotations

from functools import cached_property, lru_cache

import numpy as np

__all__ = [
    "CCCTopology",
    "NEIGHBOR_NAMES",
    "PackedPlan",
    "pack_row",
    "pack_row_words",
    "plane_to_words",
    "shift_words",
    "unpack_plane",
    "unpack_words",
    "words_to_plane",
]

NEIGHBOR_NAMES = ("S", "P", "L", "XS", "XP", "I")


def pack_row(bits) -> int:
    """Pack a boolean PE row into a bit-plane integer (PE ``q`` -> bit ``q``).

    The plane is an arbitrary-precision integer whose machine words hold
    64 PEs each — the host's ALU operates on all of them per operation.
    """
    arr = np.ascontiguousarray(bits, dtype=bool)
    return int.from_bytes(np.packbits(arr, bitorder="little").tobytes(), "little")


def unpack_plane(plane: int, n: int) -> np.ndarray:
    """Inverse of :func:`pack_row`: bit-plane integer -> ``(n,)`` bool row."""
    raw = plane.to_bytes((n + 7) // 8, "little")
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), count=n, bitorder="little")
    return bits.astype(bool)


# ----------------------------------------------------------------------
# uint64 word-array planes (the batched backend's representation)
# ----------------------------------------------------------------------
#
# The big-int plane of :mod:`repro.bvm.packed` and the ``(.., n_words)``
# uint64 arrays below are the *same words* in two containers: bit ``q``
# of the plane is bit ``q % 64`` of word ``q // 64``.  The conversions
# round-trip exactly, which is what the lockstep differential relies on.


def pack_row_words(bits, n_words: int) -> np.ndarray:
    """Pack a boolean PE row into an ``(n_words,)`` uint64 word array."""
    arr = np.ascontiguousarray(bits, dtype=bool)
    packed = np.packbits(arr, bitorder="little")
    buf = np.zeros(n_words * 8, dtype=np.uint8)
    buf[: packed.size] = packed
    return buf.view("<u8")


def unpack_words(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_row_words`: word array -> ``(n,)`` bool row."""
    raw = np.ascontiguousarray(words).view(np.uint8)
    bits = np.unpackbits(raw, count=n, bitorder="little")
    return bits.astype(bool)


def plane_to_words(plane: int, n_words: int) -> np.ndarray:
    """Big-int bit-plane -> read-only ``(n_words,)`` uint64 word array."""
    out = np.frombuffer(plane.to_bytes(n_words * 8, "little"), dtype="<u8")
    return out


def words_to_plane(words: np.ndarray) -> int:
    """Word array -> big-int bit-plane (host-side, for differentials)."""
    return int.from_bytes(np.ascontiguousarray(words).tobytes(), "little")


def shift_words(x: np.ndarray, d: int, out: np.ndarray) -> np.ndarray:
    """Whole-bit-plane shift over the last axis: ``out = x >> d`` for
    ``d >= 0``, ``out = x << -d`` for ``d < 0`` (big-int shift semantics:
    bit ``q`` of the result is bit ``q + d`` of the source, vacated bits
    are zero).

    Cross-word distances become a funnel shift — word offset ``d // 64``
    plus a bit offset with carry from the adjacent word; the ``d % 64 ==
    0`` case is split out because a uint64 shift by 64 is undefined in
    NumPy.  ``out`` must not alias ``x``.
    """
    nw = x.shape[-1]
    out[...] = 0
    if d >= 0:
        wo, bo = divmod(d, 64)
        if wo >= nw:
            return out
        src = x[..., wo:]
        dst = out[..., : nw - wo]
        if bo == 0:
            dst[...] = src
        else:
            np.right_shift(src, bo, out=dst)
            dst[..., : nw - wo - 1] |= x[..., wo + 1 :] << (64 - bo)
    else:
        wo, bo = divmod(-d, 64)
        if wo >= nw:
            return out
        src = x[..., : nw - wo]
        dst = out[..., wo:]
        if bo == 0:
            dst[...] = src
        else:
            np.left_shift(src, bo, out=dst)
            dst[..., 1:] |= x[..., : nw - wo - 1] >> (64 - bo)
    return out


class PackedPlan:
    """A gather ``dst[p] = src[index[p]]`` lowered to masked word shifts.

    Grouping PEs by the signed distance ``d = index[p] - p`` turns the
    permutation into ``OR_d ((src >> d) & mask_d)`` — for the CCC modes
    at most 2 distances (``S``/``P``), 4 (``XS``/``XP``) or ``2Q``
    (lateral), each a constant shift of the whole bit-plane.  Built once
    per topology and cached; applying one costs ``O(terms)`` word ops
    instead of an ``n``-entry index build + gather per call.
    """

    __slots__ = ("name", "terms", "apply", "_word_terms")

    def __init__(self, name: str, index: np.ndarray):
        self.name = name
        self._word_terms: dict = {}
        pes = np.arange(index.size, dtype=np.int64)
        deltas = index.astype(np.int64) - pes
        terms = []
        for d in np.unique(deltas):
            mask = pack_row(deltas == d)
            if mask:
                terms.append((int(d), mask))
        self.terms = tuple(terms)
        # Unroll the OR-of-shifts into one generated expression; the
        # lateral plan has 2Q terms and sits on the route hot path, so
        # per-term Python loop overhead is worth eliminating.
        env = {f"m{i}": m for i, (_, m) in enumerate(self.terms)}
        body = "|".join(
            f"((x>>{d})&m{i})" if d >= 0 else f"((x<<{-d})&m{i})"
            for i, (d, _) in enumerate(self.terms)
        )
        env["__builtins__"] = {}
        self.apply = eval(  # noqa: S307 - generated from integer terms
            f"lambda x: {body or '0'}", env
        )

    def __call__(self, plane: int) -> int:
        return self.apply(plane)

    def word_terms(self, n_words: int):
        """The shift terms with masks lowered to uint64 word arrays,
        cached per geometry (one conversion per plan per process)."""
        terms = self._word_terms.get(n_words)
        if terms is None:
            terms = tuple(
                (d, plane_to_words(m, n_words)) for d, m in self.terms
            )
            self._word_terms[n_words] = terms
        return terms

    def apply_words(self, x: np.ndarray, out: np.ndarray, scratch: np.ndarray) -> np.ndarray:
        """Word-array form of the gather: ``out = OR_d (shift(x, d) & mask_d)``.

        ``x`` may carry leading batch axes; each ``(n_words,)`` mask
        broadcasts across them, so one call routes every instance in
        lockstep.  ``out``/``scratch`` are caller-owned buffers shaped
        like ``x`` (neither may alias ``x``).
        """
        out[...] = 0
        for d, mask in self.word_terms(x.shape[-1]):
            shift_words(x, d, scratch)
            scratch &= mask
            out |= scratch
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PackedPlan({self.name!r}, {len(self.terms)} shift terms)"


class CCCTopology:
    """Precomputed neighbor maps for a CCC(r) machine."""

    def __init__(self, r: int):
        if r < 1:
            raise ValueError("r must be >= 1")
        self.r = r
        self.Q = 1 << r
        self.n_cycles = 1 << self.Q
        self.n = self.Q * self.n_cycles
        self._act_masks: dict = {}
        self._act_planes: dict = {}

    @classmethod
    @lru_cache(maxsize=None)
    def shared(cls, r: int) -> "CCCTopology":
        """Process-wide topology for ``CCC(r)``.

        Topologies are immutable apart from their derived caches (gather
        indices, packed plans, activation masks), so machines and
        compiled programs of the same ``r`` can share one instance and
        every cache is warmed exactly once per process.
        """
        return cls(r)

    @cached_property
    def addresses(self) -> np.ndarray:
        return np.arange(self.n, dtype=np.int64)

    @cached_property
    def cycle_of(self) -> np.ndarray:
        """Cycle number ``i`` of every PE."""
        return self.addresses // self.Q

    @cached_property
    def pos_of(self) -> np.ndarray:
        """Within-cycle position ``j`` of every PE."""
        return self.addresses % self.Q

    def address(self, cycle, pos):
        """PE address of ``(cycle, pos)`` (arrays or scalars)."""
        return cycle * self.Q + pos

    # ------------------------------------------------------------------
    # Gather indices: reading ``X.N`` gathers X at ``index_N[pe]``.
    # ------------------------------------------------------------------

    @cached_property
    def succ_index(self) -> np.ndarray:
        return self.address(self.cycle_of, (self.pos_of + 1) % self.Q)

    @cached_property
    def pred_index(self) -> np.ndarray:
        return self.address(self.cycle_of, (self.pos_of + self.Q - 1) % self.Q)

    @cached_property
    def lateral_index(self) -> np.ndarray:
        return self.address(self.cycle_of ^ (1 << self.pos_of), self.pos_of)

    @cached_property
    def xs_index(self) -> np.ndarray:
        even = (self.pos_of % 2) == 0
        return np.where(even, self.succ_index, self.pred_index)

    @cached_property
    def xp_index(self) -> np.ndarray:
        even = (self.pos_of % 2) == 0
        return np.where(even, self.pred_index, self.succ_index)

    @cached_property
    def linear_pred_index(self) -> np.ndarray:
        """For ``I``: PE ``q`` reads PE ``q-1`` (PE 0 handled separately)."""
        return np.maximum(self.addresses - 1, 0)

    @cached_property
    def _neighbor_table(self) -> dict[str, np.ndarray]:
        return {
            "S": self.succ_index,
            "P": self.pred_index,
            "L": self.lateral_index,
            "XS": self.xs_index,
            "XP": self.xp_index,
            "I": self.linear_pred_index,
        }

    def neighbor_index(self, name: str) -> np.ndarray:
        try:
            return self._neighbor_table[name]
        except KeyError:
            raise ValueError(f"unknown neighbor {name!r}") from None

    # ------------------------------------------------------------------
    # Word-packed plans and masks (the packed backend's working set)
    # ------------------------------------------------------------------

    @cached_property
    def full_mask(self) -> int:
        """Bit-plane with every PE position set (the valid-bit mask)."""
        return (1 << self.n) - 1

    @cached_property
    def packed_plans(self) -> dict[str, PackedPlan]:
        """Shift+mask pipelines for every point-to-point neighbor mode.

        ``I`` is excluded: the input shift is stateful (consumes the
        input queue, emits to the output log) and is realized by the
        machines as a single funnel shift.
        """
        return {
            name: PackedPlan(name, self.neighbor_index(name))
            for name in ("S", "P", "L", "XS", "XP")
        }

    def packed_plan(self, name: str) -> PackedPlan:
        try:
            return self.packed_plans[name]
        except KeyError:
            raise ValueError(f"unknown neighbor {name!r}") from None

    def activation_mask(self, activation) -> np.ndarray:
        """Boolean PE mask of an ``(IF|NF) <set>`` clause, cached per clause.

        The returned array is shared and read-only; callers combine it
        (``mask & e``) rather than mutating it.
        """
        if activation is None:
            activation = (True, frozenset())  # NF {} == all active
        mask = self._act_masks.get(activation)
        if mask is None:
            invert, positions = activation
            mask = np.isin(self.pos_of, list(positions))
            if invert:
                mask = ~mask
            mask.flags.writeable = False
            self._act_masks[activation] = mask
        return mask

    def packed_activation(self, activation) -> int:
        """Bit-plane form of :meth:`activation_mask`, cached per clause."""
        if activation is None:
            return self.full_mask
        plane = self._act_planes.get(activation)
        if plane is None:
            plane = pack_row(self.activation_mask(activation))
            self._act_planes[activation] = plane
        return plane

    # ------------------------------------------------------------------
    # Structural facts (for the link-census benchmark)
    # ------------------------------------------------------------------

    def degree(self) -> int:
        """Links per PE: predecessor, successor, lateral."""
        return 3

    def link_count(self) -> int:
        """Distinct undirected links: ``3n/2`` for ``Q >= 4`` (for ``Q = 2``
        the pred and succ of a 2-cycle coincide)."""
        if self.Q == 2:
            return self.n_cycles + self.n // 2
        return 3 * self.n // 2

    def hypercube_dims(self) -> int:
        """Dimensions of the hypercube this CCC simulates: ``r + Q``."""
        return self.r + self.Q
