"""Instance-batched word-packed BVM: B machines in one uint64 array.

:class:`~repro.bvm.packed.PackedBVM` already runs 64 PEs per machine
word, but one machine still simulates one problem instance at a time.
This backend adds the axis the paper's sizing claim (§5: a 2^20-PE
machine runs ~15 TT candidates *simultaneously*) actually talks about:
the register file becomes an ``(L + 3, B, n_words)`` uint64 array, and
every lowered operation — the Shannon-lowered truth-table expressions,
the E-gated masked merges, the :class:`~repro.bvm.topology.PackedPlan`
OR-of-masked-shift gathers, the funnel-shift ``I`` row — broadcasts over
the ``B`` axis, so one :class:`~repro.bvm.program.CompiledProgram`
replay executes ``B`` independent instances in lockstep.

The batch axis is *free at the semantics level* because the BVM has no
data-dependent control flow: every instance executes the identical
instruction stream, only the register contents differ.  Instances must
therefore share the program (the same shape: ``r``, register layout,
instruction count); per-instance data is host-poked per lane
(:meth:`PackedBatchBVM.poke_lane`), exactly the paper's "``T_i`` should
be input to the BVM" host-load step.

Each lane is bit-for-bit identical to a ``B = 1`` replay and to the
:class:`~repro.bvm.packed.PackedBVM` big-int backend (the differential
suite runs all three in lockstep).  Telemetry: one ``bvm.replay`` span
per replay carrying a ``batch`` attribute — never a span per lane or
per step.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from ..obs import trace as _trace
from .isa import Reg
from .packed import F_CONST0, F_CONST1, F_GENERIC, _slot_of, compile_step
from .topology import (
    CCCTopology,
    pack_row_words,
    plane_to_words,
    shift_words,
    unpack_words,
    words_to_plane,
)

__all__ = ["PackedBatchBVM"]


class PackedBatchBVM:
    """``B`` lockstep CCC(r) BVMs sharing one uint64 register file.

    Consumes the same compiled-step tuples as
    :class:`~repro.bvm.packed.PackedBVM` (via
    :class:`~repro.bvm.program.CompiledProgram` or ``run``), with host
    access per lane: ``poke_lane``/``read_lane``/``plane_lane``/
    ``feed_input_lane``.  ``cycles`` counts machine cycles of the
    lockstep ensemble (all lanes advance together), not cycles x B.
    """

    backend = "packed-batch"

    def __init__(self, r: int, batch: int, L: int = 256):
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.topology = CCCTopology.shared(r)
        self.L = L
        self.batch = batch
        nw = self.n_words
        self.mask_words = plane_to_words(self.topology.full_mask, nw)
        # Row slots: R[0..L-1], then A, B, E (same map as PackedBVM).
        self.planes = np.zeros((L + 3, batch, nw), dtype=np.uint64)
        self.planes[L + 2] = self.mask_words  # fully enabled at power-on
        self.cycles = 0
        self.input_queues: list[deque[bool]] = [deque() for _ in range(batch)]
        self.output_logs: list[list[bool]] = [[] for _ in range(batch)]
        self._d_buf = np.empty((batch, nw), dtype=np.uint64)
        self._s_buf = np.empty((batch, nw), dtype=np.uint64)
        self._act_words: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Introspection / host access
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.topology.n

    @property
    def Q(self) -> int:
        return self.topology.Q

    @property
    def n_words(self) -> int:
        """64-bit words per plane per lane."""
        return (self.n + 63) // 64

    def read_lane(self, reg: Reg, lane: int) -> np.ndarray:
        """Host read of one lane's register row (unpacked bool copy)."""
        return unpack_words(self.planes[_slot_of(reg, self.L), lane], self.n)

    def plane_lane(self, reg: Reg, lane: int) -> int:
        """One lane's register row as a big-int bit-plane (differentials)."""
        return words_to_plane(self.planes[_slot_of(reg, self.L), lane])

    def poke_lane(self, reg: Reg, lane: int, values) -> None:
        """Host write of one lane's register row (costs no machine cycles)."""
        row = np.asarray(values, dtype=bool)
        if row.shape != (self.n,):
            raise ValueError(f"row must have shape ({self.n},)")
        self.planes[_slot_of(reg, self.L), lane] = pack_row_words(row, self.n_words)

    def feed_input_lane(self, lane: int, bits) -> None:
        """Queue bits for one lane's ``I`` input port (consumed FIFO)."""
        for b in bits:
            self.input_queues[lane].append(bool(b))

    def _act(self, plane: int) -> np.ndarray:
        """Activation bit-plane -> cached ``(n_words,)`` word array."""
        words = self._act_words.get(plane)
        if words is None:
            words = plane_to_words(plane, self.n_words)
            self._act_words[plane] = words
        return words

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, instr) -> None:
        """Run one instruction (one lockstep machine cycle)."""
        self._exec_step(compile_step(instr, self.topology, self.L))

    def run(self, instructions) -> int:
        """Execute a sequence; returns the cycles it consumed."""
        topo, L = self.topology, self.L
        return self.run_compiled(
            [compile_step(i, topo, L) for i in instructions]
        )

    def run_compiled(self, steps) -> int:
        """Replay pre-compiled steps; returns the cycles consumed.

        One span per replay with a ``batch`` attribute, never per lane:
        the lanes advance in lockstep inside each vectorized operation,
        so there is no per-lane timeline to report.
        """
        tr = _trace.current()
        t0 = time.monotonic() if tr.collecting else 0.0
        start = self.cycles
        for step in steps:
            self._exec_step(step)
        cycles = self.cycles - start
        if tr.collecting:
            tr.complete(
                "bvm.replay", "bvm", t0, time.monotonic(),
                r=self.topology.r, steps=len(steps), cycles=cycles,
                batch=self.batch,
            )
        return cycles

    def _exec_step(self, step: tuple) -> None:
        (
            dest_slot, is_e, f_mode, f_fn, g_fn, act,
            fsrc_slot, d_slot, d_plan, d_is_input,
        ) = step
        planes = self.planes
        M = self.mask_words
        L = self.L
        # Operand fetch (the I shift's port traffic happens regardless
        # of activation, exactly as on the single-instance machines).
        if d_is_input:
            src = planes[d_slot]
            out_w, out_b = divmod(self.n - 1, 64)
            for lane in range(self.batch):
                self.output_logs[lane].append(
                    bool((int(src[lane, out_w]) >> out_b) & 1)
                )
            d_plane = shift_words(src, -1, self._d_buf)
            for lane, queue in enumerate(self.input_queues):
                if queue and queue.popleft():
                    d_plane[lane, 0] |= np.uint64(1)
            d_plane &= M
        elif d_plan is not None:
            d_plane = d_plan.apply_words(planes[d_slot], self._d_buf, self._s_buf)
        else:
            d_plane = planes[d_slot]
        e = planes[L + 2]
        gate = e if act is None else self._act(act) & e  # old E gates this cycle
        f_plane = planes[fsrc_slot]
        b_plane = planes[L + 1]

        # Evaluate both truth tables against the *pre-instruction* state
        # before committing either write: the dual assignment is
        # simultaneous on the real machine.  The big-int backend gets
        # this for free (ints are immutable snapshots); here f/b/e are
        # live views into ``planes``, so a write-then-read would leak
        # post-state into the g evaluation.
        new_f = new_b = None
        if is_e:
            # E ignores both deactivation and disable (always enabled).
            if f_mode == F_CONST0:
                new_f = np.uint64(0)
            elif f_mode == F_CONST1:
                new_f = M
            else:
                new_f = f_fn(f_plane, d_plane, b_plane, M)
        elif f_mode == F_CONST0:
            new_f = planes[dest_slot] & (M ^ gate)
        elif f_mode == F_CONST1:
            new_f = planes[dest_slot] | gate
        elif f_mode == F_GENERIC:
            out_f = f_fn(f_plane, d_plane, b_plane, M)
            new_f = (planes[dest_slot] & (M ^ gate)) | (out_f & gate)
        # F_SKIP: dst = dst — nothing to compute.

        if g_fn is not None:
            out_b = g_fn(f_plane, d_plane, b_plane, M)
            new_b = (b_plane & (M ^ gate)) | (out_b & gate)

        if new_f is not None:
            planes[L + 2 if is_e else dest_slot] = new_f
        if new_b is not None:
            planes[L + 1] = new_b
        self.cycles += 1
