"""Word-packed execution backend for the BVM: 64 PEs per machine word.

The boolean simulator (:mod:`repro.bvm.machine`) spends one *byte* per
bit and interprets every instruction through an 8-entry fancy-indexed
truth-table lookup — a dozen full-row NumPy kernels per single-bit
machine cycle.  This backend stores each register row as a *bit-plane*:
one arbitrary-precision integer whose machine words carry 64 PEs apiece
(``PE q`` = bit ``q``; the ``(L, ceil(n/64))`` uint64 view is exposed as
:attr:`PackedBVM.planes`).  Execution then becomes straight-line bitwise
arithmetic on whole planes:

* each 8-bit F/G truth table is *lowered once* (`lower_table`) to a
  minimal AND/OR/XOR/NOT expression over the packed ``F``, ``D``, ``B``
  planes via Shannon decomposition on ``B`` — e.g. ``FN.SEL_B_FD``
  becomes ``(B&F)|((B^M)&D)``, ``FN.XOR`` becomes ``F^D`` — evaluated
  as 2–7 word-wide operations with no per-PE work at all;
* neighbor reads use the topology's cached :class:`~repro.bvm.topology.
  PackedPlan` shift+mask pipelines (2 terms for ``S``/``P``, 4 for
  ``XS``/``XP``, ``2Q`` for the lateral), and the ``I`` input shift is a
  single funnel shift through the plane;
* ``(IF|NF)`` activation sets are cached bit-plane masks, and the
  dual-assignment/enable semantics are masked merges
  ``dst = (dst & ~gate) | (out & gate)``.

Negation is always expressed as ``x ^ M`` (``M`` = the valid-PE mask),
which keeps the *tail invariant*: bits above ``n - 1`` of every plane
are zero at all times, so shifts never smear garbage into live PEs.

Cycle accounting is backend-invariant by construction: the packed
machine executes the identical instruction stream one instruction per
cycle, consumes the same input bits and emits the same output bits, so
``cycles``, ``output_log`` and every register row are bit-for-bit equal
to the boolean oracle (enforced by the differential suite).

:func:`compile_step` pre-resolves one instruction — operand plan,
lowered tables, activation plane, register slots — into a flat tuple;
:class:`~repro.bvm.program.CompiledProgram` does this once per program
so replay is a tight loop over integer ops.  Constant truth tables
(``FN.ZERO``/``FN.ONE``) fuse into masked clear/set, the default
``g = FN.B`` skips the ``B`` write entirely, and self-copy destination
writes (``dst = dst``) are dropped.
"""

from __future__ import annotations

import time
from collections import deque
from functools import lru_cache

import numpy as np

from ..obs import trace as _trace
from .isa import FN, Instruction, Operand, Reg
from .topology import CCCTopology, pack_row, unpack_plane

__all__ = ["PackedBVM", "lower_table", "lowered_fn", "compile_step"]


# ----------------------------------------------------------------------
# Truth-table lowering
# ----------------------------------------------------------------------

# Minimal expressions for every 2-input Boolean function of (F, D); the
# 4-bit key holds the output at bit ``f*2 + d``.  ``M`` is the valid-PE
# mask, so ``x ^ M`` is a masked NOT (tail bits stay zero).
_EXPR2 = {
    0b0000: "0",
    0b1111: "M",
    0b1100: "F",
    0b0011: "(F^M)",
    0b1010: "D",
    0b0101: "(D^M)",
    0b1000: "(F&D)",
    0b0111: "((F&D)^M)",
    0b1110: "(F|D)",
    0b0001: "((F|D)^M)",
    0b0110: "(F^D)",
    0b1001: "((F^D)^M)",
    0b0100: "(F&(D^M))",
    0b1011: "((F^M)|D)",
    0b0010: "((F^M)&D)",
    0b1101: "(F|(D^M))",
}


def lower_table(table: int) -> str:
    """Lower an 8-bit (F, D, B) truth table to a bitwise expression.

    Shannon decomposition on ``B``: with ``g0``/``g1`` the 2-input
    cofactors at ``B = 0``/``B = 1``, the common shapes (independent of
    ``B``, ``B``-xor, ``B``-mux with constant arm) each collapse to a
    shorter form than the generic ``(B & g1) | (~B & g0)`` mux.
    """
    if not 0 <= table <= 255:
        raise ValueError("truth tables are 8-bit")
    g0 = g1 = 0
    for f in (0, 1):
        for d in (0, 1):
            if (table >> (f * 4 + d * 2)) & 1:
                g0 |= 1 << (f * 2 + d)
            if (table >> (f * 4 + d * 2 + 1)) & 1:
                g1 |= 1 << (f * 2 + d)
    e0, e1 = _EXPR2[g0], _EXPR2[g1]
    if g0 == g1:
        return e0
    if g0 ^ g1 == 0b1111:  # out = g0 ^ B
        if g0 == 0b0000:
            return "B"
        if g0 == 0b1111:
            return "(B^M)"
        return f"({e0}^B)"
    if g0 == 0b0000:
        return f"(B&{e1})"
    if g1 == 0b0000:
        return f"((B^M)&{e0})"
    if g0 == 0b1111:
        return f"((B^M)|{e1})"
    if g1 == 0b1111:
        return f"(B|{e0})"
    return f"((B&{e1})|((B^M)&{e0}))"


@lru_cache(maxsize=256)
def lowered_fn(table: int):
    """Compiled evaluator ``(F, D, B, M) -> plane`` for a truth table."""
    return eval(  # noqa: S307 - expression is generated, not user input
        f"lambda F, D, B, M: {lower_table(table)}", {"__builtins__": {}}
    )


# ----------------------------------------------------------------------
# Instruction compilation
# ----------------------------------------------------------------------

# f-write modes of a compiled step.
F_GENERIC = 0  # evaluate the lowered f table
F_CONST0 = 1   # fused `dst &= ~gate` (FN.ZERO)
F_CONST1 = 2   # fused `dst |= gate` (FN.ONE)
F_SKIP = 3     # dst = dst (identity self-copy) — no write at all


def _slot_of(reg: Reg, L: int) -> int:
    """Row index in the packed register file: R[0..L-1], then A, B, E."""
    if reg.kind == "R":
        if reg.index >= L:
            raise IndexError(f"register R[{reg.index}] beyond L={L}")
        return reg.index
    return L + ("A", "B", "E").index(reg.kind)


def compile_step(instr: Instruction, topology: CCCTopology, L: int) -> tuple:
    """Pre-resolve one instruction for packed replay.

    Returns a flat tuple consumed by :meth:`PackedBVM._exec_step`:
    ``(dest_slot, is_e, f_mode, f_fn, g_fn, act_plane, fsrc_slot,
    d_slot, d_plan, d_is_input)``.
    """
    dest_slot = _slot_of(instr.dest, L)
    is_e = instr.dest.kind == "E"
    fsrc_slot = _slot_of(instr.fsrc, L)
    op: Operand = instr.dsrc
    d_slot = _slot_of(op.reg, L)
    d_is_input = op.neighbor == "I"
    d_plan = (
        None
        if op.neighbor is None or d_is_input
        else topology.packed_plan(op.neighbor)
    )
    act = None if instr.activation is None else topology.packed_activation(
        instr.activation
    )
    if instr.f == FN.ZERO:
        f_mode, f_fn = F_CONST0, None
    elif instr.f == FN.ONE:
        f_mode, f_fn = F_CONST1, None
    elif instr.f == FN.F and fsrc_slot == dest_slot and not is_e:
        f_mode, f_fn = F_SKIP, None
    else:
        f_mode, f_fn = F_GENERIC, lowered_fn(instr.f)
    g_fn = None if instr.g == FN.B else lowered_fn(instr.g)  # FN.B keeps B
    return (
        dest_slot, is_e, f_mode, f_fn, g_fn, act,
        fsrc_slot, d_slot, d_plan, d_is_input,
    )


# ----------------------------------------------------------------------
# The machine
# ----------------------------------------------------------------------


class PackedBVM:
    """A CCC(r) BVM whose register file lives in bit-plane words.

    Drop-in replacement for :class:`repro.bvm.machine.BVM` (same public
    API: ``read``/``poke``/``feed_input``/``execute``/``run``/``render``,
    ``cycles``, ``output_log``, ``input_queue``); construct directly or
    via ``BVM(r, backend="packed")`` / ``REPRO_BVM_BACKEND=packed``.
    """

    backend = "packed"

    def __init__(self, r: int, L: int = 256, backend: str | None = None):
        if backend not in (None, "packed"):
            raise ValueError(f"PackedBVM cannot provide backend {backend!r}")
        self.topology = CCCTopology.shared(r)
        self.L = L
        self.mask = self.topology.full_mask
        # Row slots: R[0..L-1], then A, B, E (see _slot_of).
        self._rows: list[int] = [0] * (L + 3)
        self._rows[L + 2] = self.mask  # fully enabled at power-on
        self.cycles = 0
        self.input_queue: deque[bool] = deque()
        self.output_log: list[bool] = []

    # ------------------------------------------------------------------
    # Introspection / host access
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.topology.n

    @property
    def Q(self) -> int:
        return self.topology.Q

    @property
    def n_words(self) -> int:
        """64-bit words per plane."""
        return (self.n + 63) // 64

    @property
    def planes(self) -> np.ndarray:
        """The general register file as an ``(L, n_words)`` uint64 array.

        A host-side snapshot of the packed representation (the live
        planes are Python integers, i.e. the same words in CPython limb
        form); mutating the returned array does not write the machine.
        """
        nw = self.n_words
        out = np.empty((self.L, nw), dtype=np.uint64)
        for j in range(self.L):
            raw = self._rows[j].to_bytes(nw * 8, "little")
            out[j] = np.frombuffer(raw, dtype="<u8")
        return out

    def plane(self, reg: Reg) -> int:
        """The raw bit-plane integer of a register row."""
        return self._rows[_slot_of(reg, self.L)]

    def read(self, reg: Reg) -> np.ndarray:
        """Host read of a full register row (unpacked bool copy)."""
        return unpack_plane(self.plane(reg), self.n)

    def poke(self, reg: Reg, values) -> None:
        """Host write of a full register row (costs no machine cycles)."""
        row = np.asarray(values, dtype=bool)
        if row.shape != (self.n,):
            raise ValueError(f"row must have shape ({self.n},)")
        self._rows[_slot_of(reg, self.L)] = pack_row(row)

    def feed_input(self, bits) -> None:
        """Queue bits for the ``I`` input port (consumed FIFO)."""
        for b in bits:
            self.input_queue.append(bool(b))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, instr: Instruction) -> None:
        """Run one instruction (one machine cycle)."""
        self._exec_step(compile_step(instr, self.topology, self.L))

    def run(self, instructions) -> int:
        """Execute a sequence; returns the cycles it consumed."""
        topo, L = self.topology, self.L
        return self.run_compiled(
            [compile_step(i, topo, L) for i in instructions]
        )

    def run_compiled(self, steps) -> int:
        """Replay pre-compiled steps; returns the cycles consumed."""
        # One span per replay, never per step: _exec_step is the hot
        # loop and must stay untouched by telemetry.
        tr = _trace.current()
        t0 = time.monotonic() if tr.collecting else 0.0
        start = self.cycles
        for step in steps:
            self._exec_step(step)
        cycles = self.cycles - start
        if tr.collecting:
            tr.complete(
                "bvm.replay", "bvm", t0, time.monotonic(),
                r=self.topology.r, steps=len(steps), cycles=cycles,
            )
        return cycles

    def _exec_step(self, step: tuple) -> None:
        (
            dest_slot, is_e, f_mode, f_fn, g_fn, act,
            fsrc_slot, d_slot, d_plan, d_is_input,
        ) = step
        rows = self._rows
        M = self.mask
        L = self.L
        # Operand fetch (the I shift's port traffic happens regardless
        # of activation, exactly as on the boolean machine).
        if d_is_input:
            d_plane = rows[d_slot]
            self.output_log.append(bool((d_plane >> (self.n - 1)) & 1))
            in_bit = 1 if (self.input_queue.popleft() if self.input_queue else False) else 0
            d_plane = ((d_plane << 1) | in_bit) & M
        elif d_plan is not None:
            d_plane = d_plan.apply(rows[d_slot])
        else:
            d_plane = rows[d_slot]
        e = rows[L + 2]
        gate = e if act is None else act & e  # old E gates this cycle
        f_plane = rows[fsrc_slot]
        b_plane = rows[L + 1]

        if is_e:
            # E ignores both deactivation and disable (always enabled).
            if f_mode == F_CONST0:
                rows[L + 2] = 0
            elif f_mode == F_CONST1:
                rows[L + 2] = M
            else:
                rows[L + 2] = f_fn(f_plane, d_plane, b_plane, M)
        elif f_mode == F_CONST0:
            rows[dest_slot] &= M ^ gate
        elif f_mode == F_CONST1:
            rows[dest_slot] |= gate
        elif f_mode == F_GENERIC:
            out_f = f_fn(f_plane, d_plane, b_plane, M)
            dst = rows[dest_slot]
            rows[dest_slot] = (dst & (M ^ gate)) | (out_f & gate)
        # F_SKIP: dst = dst — nothing to do.

        if g_fn is not None:
            out_b = g_fn(f_plane, d_plane, b_plane, M)
            rows[L + 1] = (b_plane & (M ^ gate)) | (out_b & gate)
        self.cycles += 1

    # ------------------------------------------------------------------
    # Debug rendering (Fig. 2 style)
    # ------------------------------------------------------------------

    def render(self, rows, max_pes: int = 64) -> str:
        """ASCII dump of selected rows, PEs as columns (cf. ``BVM.render``)."""
        n_show = min(self.n, max_pes)
        header = "PE        " + " ".join(f"{q%10}" for q in range(n_show))
        lines = [header]
        for label, reg in rows:
            bits = self.read(reg)[:n_show]
            lines.append(f"{label:<10}" + " ".join("1" if x else "." for x in bits))
        return "\n".join(lines)
