"""Serial I/O through the BVM's input/output port.

The machine's only connection to the outside world (besides host pokes,
which model pre-loaded memory) is the ``I`` addressing mode: one bit
enters at PE ``(0,0)`` and one leaves at PE ``(2^Q - 1, Q - 1)`` per
shift.  These macros implement the honest, paper-faithful data paths:

* :func:`stream_load` — clock an ``n``-bit pattern into a register row
  (``n`` instructions; the host supplies the bits via the input queue,
  last PE's bit first);
* :func:`stream_read` — clock a register row out through the output
  port (``n`` instructions; bits appear in the output log, last PE
  first);
* :func:`stream_load_word` / :func:`stream_read_word` — the same for
  ``W``-bit vertical numbers, one row at a time.

The TT driver uses host pokes for speed, but the test suite proves the
streamed path produces identical register contents — so nothing in the
reproduction *depends* on the host's magic memory access.
"""

from __future__ import annotations

import numpy as np

from .isa import FN, Operand, Reg
from .machine import BVM
from .program import ProgramBuilder

__all__ = [
    "stream_load",
    "stream_read",
    "stream_bits_for",
    "stream_load_word",
    "stream_read_word",
    "decode_streamed_row",
]


def stream_load(prog: ProgramBuilder, dst: Reg) -> int:
    """Emit ``n`` I-shifts filling ``dst`` from the input queue.

    Queue order: the bit destined for the *last* PE first (it has the
    longest way to travel).  Returns the number of input bits needed
    (use :func:`stream_bits_for` to build the queue from a row).
    """
    n = prog.Q * (1 << prog.Q)
    for _ in range(n):
        prog.emit(dst, FN.D, dst, Operand(dst, "I"), note=f"{dst}<<I")
    return n


def stream_bits_for(values) -> list[int]:
    """Input-queue bits that make :func:`stream_load` deposit ``values``.

    After ``n`` shifts the bit fed at time ``t`` sits at PE ``n - 1 - t``,
    so feed the last PE's value first.
    """
    vals = np.asarray(values, dtype=bool)
    return [int(b) for b in vals[::-1]]


def stream_read(prog: ProgramBuilder, src: Reg, scratch: Reg) -> int:
    """Emit ``n`` I-shifts pushing ``src`` out of the output port.

    ``src`` is first copied to ``scratch`` (which is destroyed), so the
    source row survives.  Bits appear in the machine's output log, last
    PE's value first; decode with :func:`decode_streamed_row`.
    """
    n = prog.Q * (1 << prog.Q)
    prog.copy(scratch, src)
    for _ in range(n):
        prog.emit(scratch, FN.D, scratch, Operand(scratch, "I"), note=f"out<<{src}")
    return n


def decode_streamed_row(machine: BVM, n_bits: int) -> np.ndarray:
    """Rebuild the row from the last ``n_bits`` output-log entries."""
    tail = machine.output_log[-n_bits:]
    return np.array(tail[::-1], dtype=bool)


def stream_load_word(prog: ProgramBuilder, word: list) -> int:
    """Stream-load a vertical ``W``-bit number (row by row, LSB first).

    Feed the input queue with ``stream_bits_for(bit_plane_w)`` for
    ``w = 0..W-1`` in order.  Returns total input bits consumed.
    """
    total = 0
    for row in word:
        total += stream_load(prog, row)
    return total


def stream_read_word(prog: ProgramBuilder, word: list, scratch: Reg) -> int:
    """Stream a vertical number out, LSB plane first."""
    total = 0
    for row in word:
        total += stream_read(prog, row, scratch)
    return total
