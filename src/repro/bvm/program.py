"""Macro-assembler for BVM programs.

BVM algorithms are built as Python functions that *emit* instructions
into a :class:`ProgramBuilder`.  The builder provides

* a tiny fluent emit API over the raw :class:`~repro.bvm.isa.Instruction`,
* a scratch-register allocator over the ``R`` file (the paper's programs
  juggle register indices by hand; the allocator keeps our macros
  composable and overflow-checked against ``L``),
* convenience macros for the ubiquitous moves (copy row, clear row, set
  row, read a neighbor, write a host constant bit pattern).

The builder only *records* instructions; :meth:`ProgramBuilder.run`
executes them on a machine.  This split lets the test suite assert on
instruction counts (the complexity claims) independent of execution.

Allocation discipline: macros allocate and free scratch registers, so a
freed index may be *reused* by a later allocation.  Data rows the host
pokes before :meth:`ProgramBuilder.run` must therefore be allocated
**before** emitting any macro — otherwise an earlier macro's scratch
traffic will overwrite the poked values during execution.
"""

from __future__ import annotations

from .isa import FN, Instruction, Operand, Reg
from .machine import BVM
from .topology import CCCTopology

__all__ = ["ProgramBuilder", "RegisterPool", "CompiledProgram"]


class CompiledProgram:
    """An instruction sequence pre-lowered for the packed backend.

    Compilation resolves everything resolvable ahead of replay: register
    names to row slots, truth tables to their lowered bitwise
    evaluators, neighbor modes to the topology's cached
    :class:`~repro.bvm.topology.PackedPlan` pipelines, activation sets
    to bit-plane masks — and fuses constant-table and no-op assignments
    (see :func:`repro.bvm.packed.compile_step`).  Replay is then a tight
    loop over flat tuples; compiling once and replaying many times is
    the intended pattern for benchmarks and batch solves.

    The slot mapping depends on ``L``, so a compiled program binds to
    machines of exactly the geometry it was compiled for.
    """

    def __init__(self, instructions, r: int, L: int):
        from ..obs import trace as _trace
        from .packed import compile_step

        self.r = r
        self.L = L
        self.instructions = list(instructions)
        topo = CCCTopology.shared(r)
        with _trace.current().span(
            "bvm.compile", cat="bvm", r=r, L=L, instructions=len(self.instructions)
        ):
            self.steps = [compile_step(i, topo, L) for i in self.instructions]

    def __len__(self) -> int:
        return len(self.instructions)

    def run(self, machine) -> int:
        """Replay on a packed (or batched) machine; returns cycles consumed."""
        if getattr(machine, "backend", "bool") not in ("packed", "packed-batch"):
            # The boolean oracle has no compiled form; replay the source.
            return machine.run(self.instructions)
        if machine.topology.r != self.r or machine.L != self.L:
            raise ValueError(
                f"compiled for CCC(r={self.r}), L={self.L}; machine is "
                f"CCC(r={machine.topology.r}), L={machine.L}"
            )
        return machine.run_compiled(self.steps)


class RegisterPool:
    """Allocator over the general register file ``R[lo..hi)``."""

    def __init__(self, lo: int, hi: int):
        if not (0 <= lo <= hi):
            raise ValueError("bad register range")
        self._free = list(range(hi - 1, lo - 1, -1))  # allocate low-first
        self.high_water = lo
        self.lo, self.hi = lo, hi

    def alloc(self, count: int = 1) -> list[Reg]:
        if count > len(self._free):
            raise RuntimeError(
                f"register file exhausted: wanted {count}, "
                f"{len(self._free)} of R[{self.lo}:{self.hi}] free"
            )
        out = [Reg("R", self._free.pop()) for _ in range(count)]
        self.high_water = max(self.high_water, max(r.index for r in out) + 1)
        return out

    def alloc1(self) -> Reg:
        return self.alloc(1)[0]

    def free(self, *regs: Reg) -> None:
        for r in regs:
            if r.kind != "R":
                raise ValueError("only R registers are pooled")
            if r.index in self._free:
                raise ValueError(f"double free of {r}")
            self._free.append(r.index)

    @property
    def in_use(self) -> int:
        return (self.hi - self.lo) - len(self._free)


class ProgramBuilder:
    """Accumulates instructions for a CCC(r) machine of ``L`` registers."""

    def __init__(self, r: int, L: int = 256, reserved: int = 0):
        self.r = r
        self.Q = 1 << r
        self.L = L
        self.instructions: list[Instruction] = []
        self.pool = RegisterPool(reserved, L)
        self._marks: list[tuple[str, int]] = []
        self._compiled: dict[int, tuple[int, CompiledProgram]] = {}

    # ------------------------------------------------------------------
    # Raw emit
    # ------------------------------------------------------------------

    def emit(
        self,
        dest: Reg,
        f: int,
        fsrc: Reg,
        dsrc: Reg | Operand,
        g: int = FN.B,
        activation=None,
        note: str = "",
    ) -> None:
        if isinstance(dsrc, Reg):
            dsrc = Operand(dsrc)
        self.instructions.append(
            Instruction(
                dest=dest, f=f, fsrc=fsrc, dsrc=dsrc, g=g,
                activation=activation, note=note,
            )
        )

    def __len__(self) -> int:
        return len(self.instructions)

    # ------------------------------------------------------------------
    # Common macros
    # ------------------------------------------------------------------

    # The ``note`` field stays empty on these hot macros: the listing
    # decodes every instruction anyway, and f-string notes measurably
    # tax program build (tens of thousands of emits per solve).

    def copy(self, dst: Reg, src: Reg, activation=None) -> None:
        """``dst = src`` (one instruction)."""
        self.emit(dst, FN.F, src, src, activation=activation)

    def copy_neighbor(self, dst: Reg, src: Reg, neighbor: str, activation=None) -> None:
        """``dst = src.<neighbor>`` (one instruction)."""
        self.emit(
            dst, FN.D, src, Operand(src, neighbor), activation=activation,
        )

    def clear(self, dst: Reg, activation=None) -> None:
        self.emit(dst, FN.ZERO, dst, dst, activation=activation)

    def set_ones(self, dst: Reg, activation=None) -> None:
        self.emit(dst, FN.ONE, dst, dst, activation=activation)

    def set_const(self, dst: Reg, bit: int, activation=None) -> None:
        """Write the host-immediate ``bit`` to every (active) PE."""
        self.emit(
            dst, FN.ONE if bit else FN.ZERO, dst, dst, activation=activation,
        )

    def logic(self, dst: Reg, f: int, x: Reg, y: Reg | Operand, activation=None) -> None:
        """``dst = f(x, y, B)`` — general two/three-input gate."""
        self.emit(dst, f, x, y, activation=activation)

    def set_b(self, g: int, x: Reg, y: Reg | Operand, activation=None) -> None:
        """Update only ``B``: ``B = g(x, y, B)`` (dest write is a no-op
        self-copy of ``x``)."""
        self.emit(x, FN.F, x, y, g=g, activation=activation)

    def enable_from(self, src: Reg) -> None:
        """``E = src`` — load the enable register from a mask row."""
        self.emit(Reg("E"), FN.F, src, src)

    def enable_all(self) -> None:
        e = Reg("E")
        self.emit(e, FN.ONE, e, e, note="E=1")

    # ------------------------------------------------------------------
    # Phase accounting
    # ------------------------------------------------------------------

    def mark(self, label: str) -> None:
        """Start a named phase at the current instruction position.

        Phases partition the program; :meth:`phase_breakdown` reports the
        instruction (= machine-cycle) count of each — the ablation data
        behind the complexity benches.
        """
        self._marks.append((label, len(self.instructions)))

    def phase_breakdown(self) -> dict[str, int]:
        """Instruction count per phase (labels repeat -> counts sum)."""
        out: dict[str, int] = {}
        if not self._marks:
            return {"(unmarked)": len(self.instructions)} if self.instructions else {}
        bounds = self._marks + [("<end>", len(self.instructions))]
        if bounds[0][1] > 0:
            out["(prelude)"] = bounds[0][1]
        for (label, start), (_, end) in zip(bounds, bounds[1:]):
            out[label] = out.get(label, 0) + (end - start)
        return out

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, machine: BVM) -> int:
        """Execute the recorded program; returns cycles consumed.

        On a packed machine this goes through the compile/replay path
        (cached per machine geometry, invalidated when new instructions
        are emitted); the boolean machine interprets the source stream.
        """
        if machine.topology.r != self.r:
            raise ValueError("machine geometry does not match program")
        if self.pool.high_water > machine.L:
            raise ValueError("program uses more registers than the machine has")
        if getattr(machine, "backend", "bool") in ("packed", "packed-batch"):
            return self.compiled(machine.L).run(machine)
        return machine.run(self.instructions)

    def compiled(self, L: int | None = None) -> CompiledProgram:
        """The program lowered for packed replay (cached per ``L``)."""
        L = self.L if L is None else L
        cached = self._compiled.get(L)
        if cached is not None and cached[0] == len(self.instructions):
            return cached[1]
        cp = CompiledProgram(self.instructions, self.r, L)
        self._compiled[L] = (len(self.instructions), cp)
        return cp

    def build_machine(
        self, L: int | None = None, backend: str | None = None
    ) -> BVM:
        """A fresh machine sized for this program."""
        return BVM(self.r, L=L if L is not None else self.L, backend=backend)

    def listing(self, limit: int | None = 40) -> str:
        """Human-readable instruction listing (truncated)."""
        rows = [str(i) for i in self.instructions[: limit or None]]
        if limit is not None and len(self.instructions) > limit:
            rows.append(f"... ({len(self.instructions) - limit} more)")
        return "\n".join(rows)
