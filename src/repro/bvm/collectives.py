"""Machine-wide reductions on the BVM.

Built from the hypercube routing macros: a value combined along every
dimension reaches all PEs in ``r + Q`` exchanges — the bit-level
counterparts of the hypercube collectives, used for global predicates
("is any PE's flag set?") and for counting.

* :func:`global_or` / :func:`global_and` — every PE ends with the
  OR/AND of a one-bit row over the whole machine.
* :func:`global_count` — every PE ends with the number of set bits of a
  row across the machine, as a ``width``-bit vertical number (a
  bit-serial fan-in adder tree over the hypercube dimensions).
"""

from __future__ import annotations

from . import bitserial as bs
from .hyperops import dims_of, route_dim
from .isa import FN, Reg
from .program import ProgramBuilder

__all__ = ["global_or", "global_and", "global_count"]


def _global_combine(prog: ProgramBuilder, row: Reg, table: int) -> None:
    partner = prog.pool.alloc1()
    for d in range(dims_of(prog)):
        route_dim(prog, [row], [partner], d)
        prog.logic(row, table, row, partner)
    prog.pool.free(partner)


def global_or(prog: ProgramBuilder, row: Reg) -> None:
    """``row = OR over all PEs of row`` (in place, every PE gets it)."""
    _global_combine(prog, row, FN.OR)


def global_and(prog: ProgramBuilder, row: Reg) -> None:
    """``row = AND over all PEs of row``."""
    _global_combine(prog, row, FN.AND)


def global_count(prog: ProgramBuilder, flag: Reg, count: list) -> None:
    """``count = number of PEs with ``flag`` set`` (same value everywhere).

    ``count`` is a vertical word; it must be wide enough for ``n``
    (``width >= r + Q + 1``).  Classic fan-in: start each PE's count at
    its own flag bit, then along every dimension add the partner's
    running count — ``(r + Q)`` routed adds of ``width``-bit numbers.
    """
    width = len(count)
    if width < dims_of(prog) + 1:
        raise ValueError(
            f"count word needs at least {dims_of(prog) + 1} bits, got {width}"
        )
    for row in count[1:]:
        prog.clear(row)
    prog.copy(count[0], flag)
    partner = prog.pool.alloc(width)
    for d in range(dims_of(prog)):
        route_dim(prog, count, partner, d)
        bs.add_into(prog, count, partner, saturate=False)
    prog.pool.free(*partner)
