"""The paper's §4 BVM algorithms: cycle-ID, processor-ID, broadcasting
and propagation.

These are "the most basic modules which are used in almost all BVM
algorithms".  Each is a macro emitting instructions into a
:class:`~repro.bvm.program.ProgramBuilder`; correctness is pinned by
closed-form golden patterns in the test suite (e.g. cycle-ID bit of PE
``(c, j)`` must equal bit ``j`` of ``c`` — the paper's Fig. 3), and the
packed-vs-boolean differential suite replays each of them to hold both
execution backends to identical registers, output bits and cycle
counts.
"""

from __future__ import annotations

from .isa import FN, A, Operand, Reg, activation_if, activation_nf
from .program import ProgramBuilder

__all__ = [
    "cycle_id",
    "processor_id",
    "broadcast_bit",
    "propagation1",
    "propagation2",
]


def cycle_id(prog: ProgramBuilder, dst: Reg) -> None:
    """§4.1 cycle-ID: PE ``(c, j)`` ends with bit ``j`` of ``c`` in ``dst``.

    The paper's algorithm (its Fig. 3 pattern): zeros injected through the
    input port race the lateral links down the machine; a forward pass
    (``I`` shifts) establishes the pattern up to a rotation, a backward
    pass (``P`` shifts) aligns it.  ``O(Q) = O(log n)`` instructions.
    Consumes ``Q`` zero bits from the input port.
    """
    Q = prog.Q
    # Phase 1: A = 1; A = A.I; (Q-1) x { A &= A.L; A = A.I }
    prog.set_ones(A)
    prog.emit(A, FN.D, A, Operand(A, "I"), note="A=A.I")
    for _ in range(1, Q):
        prog.emit(A, FN.AND, A, Operand(A, "L"), note="A&=A.L")
        prog.emit(A, FN.D, A, Operand(A, "I"), note="A=A.I")
    # Phase 2: A = A.P; (Q-1) x { A &= A.L; A = A.P }
    prog.emit(A, FN.D, A, Operand(A, "P"), note="A=A.P")
    for _ in range(1, Q):
        prog.emit(A, FN.AND, A, Operand(A, "L"), note="A&=A.L")
        prog.emit(A, FN.D, A, Operand(A, "P"), note="A=A.P")
    prog.copy(dst, A)


def cycle_id_input_bits(prog_or_Q) -> list[int]:
    """The input-port bits :func:`cycle_id` consumes (all zeros)."""
    Q = prog_or_Q.Q if hasattr(prog_or_Q, "Q") else int(prog_or_Q)
    return [0] * Q


def processor_id(prog: ProgramBuilder, pid: list[Reg], cid: Reg | None = None) -> None:
    """§4.2 processor-ID: row ``pid[b]`` gets bit ``b`` of each PE's
    address (``r + Q`` rows; low ``r`` rows are the in-cycle position,
    high ``Q`` rows the cycle number — the paper's Fig. 4 pattern).

    The position bits are written directly with ``IF <set>`` activation
    (the hardware can address by position).  The cycle bits start from
    the cycle-ID — PE ``(c, j)`` knows bit ``j`` of ``c`` — and one full
    cycle rotation delivers every bit to every position; the ``IF`` masks
    steer each visiting bit into the right destination row.
    ``O(Q^2) = O(log^2 n)`` instructions.
    """
    r, Q = prog.r, prog.Q
    if len(pid) != r + Q:
        raise ValueError(f"processor-ID needs {r + Q} rows, got {len(pid)}")

    # Low r bits: the within-cycle position, by activation sets.
    for b in range(r):
        ones = [j for j in range(Q) if (j >> b) & 1]
        prog.set_const(pid[b], 0, activation_nf(ones))
        prog.set_const(pid[b], 1, activation_if(ones))

    # High Q bits: rotate the cycle-ID; at step t, position j holds bit
    # (j - t) mod Q of the cycle number.
    if cid is None:
        cid = prog.pool.alloc1()
        cycle_id(prog, cid)
        own_cid = True
    else:
        own_cid = False
    tmp = prog.pool.alloc1()
    prog.copy(tmp, cid)
    for t in range(Q):
        for b in range(Q):
            positions = [j for j in range(Q) if (j - t) % Q == b]
            prog.copy(pid[r + b], tmp, activation_if(positions))
        prog.copy_neighbor(tmp, tmp, "P")  # rotate forward one step
    prog.pool.free(tmp)
    if own_cid:
        prog.pool.free(cid)


def _pid_bit_take(prog, take: Reg, pid_bit: Reg, partner_sender: Reg) -> None:
    """``take = pid_bit & partner_sender`` (the 1-END && SENDER test)."""
    prog.logic(take, FN.AND, pid_bit, partner_sender)


def broadcast_bit(
    prog: ProgramBuilder,
    value: Reg,
    sender: Reg,
    pid: list[Reg],
    route_dim_fn,
) -> None:
    """§4.3 Broadcasting(): flood ``value`` from the sender PE to all PEs.

    ``route_dim_fn(prog, srcs, dsts, dim)`` must deliver hypercube-partner
    copies (provided by :mod:`repro.bvm.hyperops`).  Per dimension ``i``:
    a PE at the 1-end whose partner is a sender copies the partner's value
    and sender flag — exactly the paper's loop.
    """
    dims = prog.r + prog.Q
    pv, ps, take = prog.pool.alloc(3)
    for i in range(dims):
        route_dim_fn(prog, [value, sender], [pv, ps], i)
        _pid_bit_take(prog, take, pid[i], ps)
        # value = take ? partner_value : value  (B carries `take`)
        prog.set_b(FN.F, take, take)  # B = take
        prog.emit(value, FN.SEL_B_DF, value, pv, note="value<=partner if take")
        prog.emit(sender, FN.OR, sender, take, note="sender|=take")
    prog.pool.free(pv, ps, take)


def propagation1(
    prog: ProgramBuilder,
    value: Reg,
    sender: Reg,
    pid: list[Reg],
    route_dim_fn,
    combine_f: int = FN.OR,
) -> None:
    """§4.4 Propagation (first kind): N-PE group to (N+1)-PE group.

    Receivers combine the partner's value when the partner is a sender
    and they sit at the 1-end; sender flags are left untouched for the
    whole pass (the group structure stays fixed).
    ``combine_f`` is the COMBINE truth table on (own, partner, B).
    """
    dims = prog.r + prog.Q
    pv, ps, take = prog.pool.alloc(3)
    for i in range(dims):
        route_dim_fn(prog, [value, sender], [pv, ps], i)
        _pid_bit_take(prog, take, pid[i], ps)
        prog.set_b(FN.F, take, take)  # B = take
        # value = take ? combine(value, partner) : value
        combined = prog.pool.alloc1()
        prog.logic(combined, combine_f, value, pv)
        prog.emit(value, FN.SEL_B_DF, value, combined, note="combine if take")
        prog.pool.free(combined)
    prog.pool.free(pv, ps, take)


def propagation2(
    prog: ProgramBuilder,
    value: Reg,
    sender: Reg,
    pid: list[Reg],
    route_dim_fn,
    combine_f: int = FN.OR,
) -> None:
    """§4.4 Propagation (second kind): flood from the N-PE group upward.

    Identical to the first kind except receivers become senders
    immediately, letting data hop through intermediate groups in one
    pass (the paper's 1-group to 4-group example).
    """
    dims = prog.r + prog.Q
    pv, ps, take = prog.pool.alloc(3)
    for i in range(dims):
        route_dim_fn(prog, [value, sender], [pv, ps], i)
        _pid_bit_take(prog, take, pid[i], ps)
        prog.set_b(FN.F, take, take)
        combined = prog.pool.alloc1()
        prog.logic(combined, combine_f, value, pv)
        prog.emit(value, FN.SEL_B_DF, value, combined, note="combine if take")
        prog.emit(sender, FN.OR, sender, take, note="sender|=take")
        prog.pool.free(combined)
    prog.pool.free(pv, ps, take)
