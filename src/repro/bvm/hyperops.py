"""Hypercube dimension exchanges realized on the BVM's CCC links.

The paper's §3 observation, made executable at the bit level: the CCC's
PE address splits into ``r`` *lowsheaf* bits (position within the cycle)
and ``Q`` *highsheaf* bits (cycle number), and a hypercube dimension-``d``
exchange becomes

* ``d < r`` — an in-cycle shuffle: two copies of each row travel ``2^d``
  hops in opposite ring directions, and each PE keeps the copy coming
  from its partner's side (selected by the ``IF <set>`` of positions with
  bit ``d`` set);
* ``d >= r`` — a lateral sweep: the row rotates once around the cycle,
  and each bit is swapped across the lateral link as it passes position
  ``d - r`` (the only position whose lateral flips that cycle bit).

``route_dim`` delivers partner copies of whole rows; everything higher
(broadcast, propagation, the TT e-loop, the bit-serial min exchange) is
built on it.  Cost: ``2*2^d + 2`` instructions/row for a low dim,
``2Q + 1`` for a high dim — the concrete constants behind the paper's
"constant-factor slowdown" claim, measured by the benchmarks.

The emitted ``S``/``P``/``L`` neighbor reads dominate every route sweep,
which is why the word-packed backend caches them as
:class:`~repro.bvm.topology.PackedPlan` shift+mask pipelines — a lateral
sweep's gather costs ``2Q`` whole-plane word ops there instead of an
``n``-entry fancy index per instruction.  The instruction *count* (and
so every cost constant above) is identical on both backends.
"""

from __future__ import annotations

from .isa import Reg, activation_if, activation_nf
from .program import ProgramBuilder

__all__ = ["route_dim", "route_dim_cost", "dims_of"]


def dims_of(prog: ProgramBuilder) -> int:
    """Hypercube dimensions this machine simulates: ``r + Q``."""
    return prog.r + prog.Q


def route_dim(
    prog: ProgramBuilder, srcs: list[Reg], dsts: list[Reg], dim: int
) -> None:
    """For each (src, dst) pair: ``dst[pe] = src[pe XOR 2^dim]``.

    ``srcs`` and ``dsts`` must be disjoint register lists (the exchange
    needs the unmodified sources while copies travel).
    """
    if len(srcs) != len(dsts):
        raise ValueError("srcs and dsts must pair up")
    if dim < 0 or dim >= dims_of(prog):
        raise ValueError(f"dimension {dim} out of range for CCC(r={prog.r})")
    src_ids = {(s.kind, s.index) for s in srcs}
    if any((d.kind, d.index) in src_ids for d in dsts):
        raise ValueError("route_dim requires dst rows distinct from src rows")
    if dim < prog.r:
        _route_low(prog, srcs, dsts, dim)
    else:
        _route_high(prog, srcs, dsts, dim - prog.r)


def _route_low(prog: ProgramBuilder, srcs, dsts, d: int) -> None:
    """In-cycle exchange along position bit ``d`` (distance ``2^d``)."""
    Q = prog.Q
    steps = 1 << d
    ones = [j for j in range(Q) if (j >> d) & 1]
    fwd = prog.pool.alloc1()
    for src, dst in zip(srcs, dsts):
        # Forward-travelling copy reaches PEs with bit d set ...
        prog.copy(fwd, src)
        for _ in range(steps):
            prog.copy_neighbor(fwd, fwd, "P")
        prog.copy(dst, fwd, activation_if(ones))
        # ... backward-travelling copy reaches PEs with bit d clear.
        prog.copy(fwd, src)
        for _ in range(steps):
            prog.copy_neighbor(fwd, fwd, "S")
        prog.copy(dst, fwd, activation_nf(ones))
    prog.pool.free(fwd)


def _route_high(prog: ProgramBuilder, srcs, dsts, pos: int) -> None:
    """Lateral exchange for cycle bit ``pos``: rotate the row past the
    lateral link at position ``pos``, swapping each visiting bit."""
    Q = prog.Q
    at_pos = activation_if([pos])
    for src, dst in zip(srcs, dsts):
        prog.copy(dst, src)
        for _ in range(Q):
            prog.copy_neighbor(dst, dst, "P")
            prog.copy_neighbor(dst, dst, "L", activation=at_pos)


def route_dim_cost(prog_or_r, dim: int, rows: int = 1) -> int:
    """Instruction count of :func:`route_dim` (for the complexity benches)."""
    if hasattr(prog_or_r, "r"):
        r, Q = prog_or_r.r, prog_or_r.Q
    else:
        r = int(prog_or_r)
        Q = 1 << r
    if dim < r:
        return rows * (2 * (1 << dim) + 4)
    return rows * (2 * Q + 1)
