"""Bit-serial arithmetic on vertical words (the BVM's only arithmetic).

A ``W``-bit unsigned number lives in ``W`` register rows, LSB first; the
machine computes on all ``n`` PEs' numbers simultaneously, one bit plane
per instruction.  The dual-assignment instruction format is what makes
this efficient: a full adder is *one* instruction per bit, computing the
sum bit into the destination (``f = F ^ D ^ B``) and the carry into ``B``
(``g = MAJ(F, D, B)``) at the same time.

All addition saturates at the all-ones word, which doubles as the ``INF``
sentinel of the TT dataflow — saturation makes ``INF`` absorbing, exactly
the property the recurrence's sentinel argument needs.

Word-level semantics of every macro are cross-checked against plain
integer arithmetic by hypothesis property tests.
"""

from __future__ import annotations

from .isa import FN, Reg, tt
from .program import ProgramBuilder

__all__ = [
    "Word",
    "load_b",
    "copy_word",
    "set_word_const",
    "add_into",
    "add_const_into",
    "less_than",
    "equal_words",
    "equals_const",
    "min_into",
    "min_tagged_into",
    "select_word",
    "mult_into",
]

Word = list  # list[Reg], LSB first

# Per-constant-bit adder tables: D input is ignored (immediate folded in).
_F_SUM_C0 = tt(lambda f, d, b: f ^ b)
_G_CARRY_C0 = tt(lambda f, d, b: f & b)
_F_SUM_C1 = tt(lambda f, d, b: 1 - (f ^ b))
_G_CARRY_C1 = tt(lambda f, d, b: f | b)
_G_FROM_F = tt(lambda f, d, b: f)


def load_b(prog: ProgramBuilder, row: Reg) -> None:
    """``B = row`` (one instruction; the dest write is a self-copy)."""
    prog.emit(row, FN.F, row, row, g=_G_FROM_F, note=f"B={row}")


def clear_b(prog: ProgramBuilder) -> None:
    """``B = 0``."""
    e = Reg("A")
    prog.emit(e, FN.F, e, e, g=FN.ZERO, note="B=0")


def copy_word(prog: ProgramBuilder, dst: Word, src: Word, activation=None) -> None:
    """``dst = src``, one instruction per bit."""
    for d, s in zip(dst, src):
        prog.copy(d, s, activation=activation)


def set_word_const(prog: ProgramBuilder, dst: Word, value: int, activation=None) -> None:
    """Host-immediate word write: ``dst = value`` on active PEs."""
    if value < 0 or value >= (1 << len(dst)):
        raise ValueError(f"{value} does not fit in {len(dst)} bits")
    for w, row in enumerate(dst):
        prog.set_const(row, (value >> w) & 1, activation=activation)


def add_into(prog: ProgramBuilder, acc: Word, addend: Word, saturate: bool = True) -> None:
    """``acc += addend`` (saturating by default).

    One instruction per bit for the ripple chain (sum to ``acc[w]``,
    carry to ``B`` simultaneously), plus ``W + 1`` to fold a final carry
    into all-ones saturation.
    """
    if len(acc) != len(addend):
        raise ValueError("word widths differ")
    clear_b(prog)
    for a, x in zip(acc, addend):
        prog.emit(a, FN.SUM3, a, x, g=FN.MAJ3, note="full add")
    if saturate:
        carry = prog.pool.alloc1()
        prog.emit(carry, FN.B, carry, carry, note="carry=B")
        for a in acc:
            prog.logic(a, FN.OR, a, carry)
        prog.pool.free(carry)


def add_const_into(prog: ProgramBuilder, acc: Word, value: int, saturate: bool = True) -> None:
    """``acc += value`` for a host-immediate constant (folded into the
    truth tables bit by bit; no register holds the constant)."""
    if value < 0 or value >= (1 << len(acc)):
        raise ValueError(f"{value} does not fit in {len(acc)} bits")
    clear_b(prog)
    for w, a in enumerate(acc):
        if (value >> w) & 1:
            prog.emit(a, _F_SUM_C1, a, a, g=_G_CARRY_C1, note="add const 1")
        else:
            prog.emit(a, _F_SUM_C0, a, a, g=_G_CARRY_C0, note="add const 0")
    if saturate:
        carry = prog.pool.alloc1()
        prog.emit(carry, FN.B, carry, carry, note="carry=B")
        for a in acc:
            prog.logic(a, FN.OR, a, carry)
        prog.pool.free(carry)


def _borrow_chain(prog: ProgramBuilder, a: Word, b: Word) -> None:
    """Leave ``B = 1`` iff ``a < b`` (unsigned), via the subtract borrow."""
    if len(a) != len(b):
        raise ValueError("word widths differ")
    clear_b(prog)
    for x, y in zip(a, b):
        prog.set_b(FN.BORROW, x, y)


def less_than(prog: ProgramBuilder, a: Word, b: Word, out: Reg) -> None:
    """``out = (a < b)`` as a one-bit row."""
    _borrow_chain(prog, a, b)
    prog.emit(out, FN.B, out, out, note="out=B (a<b)")


def equal_words(prog: ProgramBuilder, a: Word, b: Word, out: Reg) -> None:
    """``out = (a == b)``: running AND of per-bit XNOR carried in ``B``."""
    e = Reg("A")
    prog.emit(e, FN.F, e, e, g=FN.ONE, note="B=1")
    for x, y in zip(a, b):
        prog.set_b(FN.EQ_ACC, x, y)
    prog.emit(out, FN.B, out, out, note="out=B (a==b)")


def equals_const(prog: ProgramBuilder, word: Word, value: int, out: Reg) -> None:
    """``out = (word == value)`` for a host-immediate constant."""
    if value < 0 or value >= (1 << len(word)):
        raise ValueError(f"{value} does not fit in {len(word)} bits")
    prog.set_ones(out)
    for w, row in enumerate(word):
        if (value >> w) & 1:
            prog.logic(out, FN.AND, out, row)
        else:
            prog.logic(out, FN.ANDN, out, row)


def select_word(prog: ProgramBuilder, dst: Word, cond: Reg, x: Word, y: Word) -> None:
    """``dst = cond ? x : y`` — ``B`` carries the condition, one
    conditional-move instruction per bit."""
    load_b(prog, cond)
    for d, xw, yw in zip(dst, x, y):
        prog.emit(d, FN.SEL_B_FD, xw, yw, note="cmov")


def min_into(prog: ProgramBuilder, a: Word, b: Word) -> None:
    """``a = min(a, b)``: borrow chain leaves ``B = (b < a)``, then a
    conditional move per bit reuses ``B`` directly — ``2W + 1``
    instructions, no scratch rows."""
    _borrow_chain(prog, b, a)  # B = (b < a)
    for aw, bw in zip(a, b):
        prog.emit(aw, FN.SEL_B_FD, bw, aw, note="a=min(a,b)")


def min_tagged_into(
    prog: ProgramBuilder,
    val_a: Word,
    tag_a: Word,
    val_b: Word,
    tag_b: Word,
    gate: Reg | None = None,
) -> None:
    """Lexicographic min on ``(value, tag)`` pairs: take ``(val_b, tag_b)``
    when it is strictly smaller or equal-valued with a smaller tag.

    This is the §6 minimization step with the argmin index carried along;
    the smaller-tag tiebreak reproduces the sequential DP's first-wins
    argmin.  ``gate`` optionally restricts the update (the predicate
    ``P(S, i)`` of the paper — only the active DP layer moves).
    """
    ltv, eqv, cond = prog.pool.alloc(3)
    less_than(prog, val_b, val_a, ltv)
    equal_words(prog, val_b, val_a, eqv)
    less_than(prog, tag_b, tag_a, cond)  # reuse cond as (tag_b < tag_a)
    prog.logic(cond, FN.AND, cond, eqv)  # equal values, smaller tag
    prog.logic(cond, FN.OR, cond, ltv)
    if gate is not None:
        prog.logic(cond, FN.AND, cond, gate)
    load_b(prog, cond)
    for aw, bw in zip(val_a, val_b):
        prog.emit(aw, FN.SEL_B_FD, bw, aw, note="val cmov")
    load_b(prog, cond)
    for aw, bw in zip(tag_a, tag_b):
        prog.emit(aw, FN.SEL_B_FD, bw, aw, note="tag cmov")
    prog.pool.free(ltv, eqv, cond)


def mult_into(prog: ProgramBuilder, acc: Word, x: Word, y: Word) -> None:
    """``acc = x * y`` (saturating), shift-and-add, ``O(W^2)``.

    Partial product ``w`` adds ``x << w`` into ``acc`` under the enable
    mask ``E = y[w]``; truncated high bits and the final carry set an
    overflow row that saturates the result to all-ones (keeping ``INF``
    semantics intact even for in-machine products).
    """
    W = len(acc)
    if len(x) != W or len(y) != W:
        raise ValueError("word widths differ")
    ovf = prog.pool.alloc1()
    carry = prog.pool.alloc1()
    prog.clear(ovf)
    for row in acc:
        prog.clear(row)
    for w in range(W):
        prog.enable_from(y[w])
        clear_b(prog)
        for i in range(W - w):
            prog.emit(acc[w + i], FN.SUM3, acc[w + i], x[i], g=FN.MAJ3, note="pp add")
        prog.emit(carry, FN.B, carry, carry, note="carry=B")
        prog.logic(ovf, FN.OR, ovf, carry)
        # Bits x[W-w .. W-1] fall off the top: they overflow the product.
        for i in range(W - w, W):
            prog.logic(ovf, FN.OR, ovf, x[i])
        prog.enable_all()
    for row in acc:
        prog.logic(row, FN.OR, row, ovf)
    prog.pool.free(ovf, carry)
