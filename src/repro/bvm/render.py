"""Figure-style renderings of BVM state (paper Figs. 2-4).

These helpers produce the exact ASCII pictures the paper uses to present
its patterns: the bit-array machine view (Fig. 2), the cycle-by-position
grid of the cycle-ID (Fig. 3), and the per-PE address columns of the
processor-ID (Fig. 4).  The figure benchmarks regenerate and print them.
"""

from __future__ import annotations

import numpy as np

from .isa import Reg
from .machine import BVM

__all__ = ["render_machine", "render_cycle_grid", "render_pid_columns"]


def render_machine(machine: BVM, rows: list[tuple[str, Reg]], max_pes: int = 64) -> str:
    """Fig. 2: registers as rows, PEs as columns."""
    return machine.render(rows, max_pes=max_pes)


def render_cycle_grid(machine: BVM, reg: Reg, max_cycles: int = 16) -> str:
    """Fig. 3: one row per cycle, one column per in-cycle position —
    "the digit at cycle i and PE j represents the bit held by PE j in
    cycle i"."""
    topo = machine.topology
    bits = machine.read(reg).reshape(topo.n_cycles, topo.Q)
    shown = min(topo.n_cycles, max_cycles)
    header = "cycle\\pos " + " ".join(str(j) for j in range(topo.Q))
    lines = [header]
    for c in range(shown):
        row = " ".join("1" if b else "0" for b in bits[c])
        lines.append(f"{c:>9} {row}")
    if shown < topo.n_cycles:
        lines.append(f"... ({topo.n_cycles - shown} more cycles)")
    return "\n".join(lines)


def render_pid_columns(machine: BVM, pid: list[Reg], max_pes: int = 16) -> str:
    """Fig. 4: each PE's address read downward bit by bit (LSB on top)."""
    n_show = min(machine.n, max_pes)
    rows = [machine.read(r)[:n_show] for r in pid]
    lines = ["PE   " + " ".join(f"{q:>2}" for q in range(n_show))]
    for b, bits in enumerate(rows):
        line = f"b{b:<3} " + " ".join(f"{int(x):>2}" for x in bits)
        lines.append(line)
    vals = np.zeros(n_show, dtype=int)
    for b, bits in enumerate(rows):
        vals |= bits.astype(int) << b
    lines.append("addr " + " ".join(f"{v:>2}" for v in vals))
    return "\n".join(lines)
