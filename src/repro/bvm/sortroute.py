"""Sorting and permutation routing at the bit level.

The two classic ASCEND/DESCEND workloads, realized as BVM programs over
``W``-bit vertical numbers:

* :func:`bitonic_sort` — Batcher's bitonic sorter: per compare-exchange,
  route the word to the hypercube partner, compare bit-serially, and
  conditionally swap; the keep-min/keep-max direction comes from the
  processor-ID bits (``dir = bit (s+1)`` of the address, ``here_hi =
  bit d``), i.e. entirely from machine-resident control state.
* :func:`benes_permute` — §2's "any permutation within O(log n) time if
  the control bits are precalculated", taken literally: the host runs
  the looping algorithm (:func:`repro.hypercube.benes.benes_schedule`),
  pokes one control row per stage, and the machine executes
  ``2·log n - 1`` masked exchanges.

Both are ``O(W)`` instructions per exchange — the bit-serial constant
the paper's ``p`` factor accounts for.
"""

from __future__ import annotations

import numpy as np

from ..hypercube.benes import benes_schedule, benes_stage_count
from . import bitserial as bs
from .hyperops import dims_of, route_dim
from .isa import FN
from .machine import BVM
from .program import ProgramBuilder

__all__ = ["bitonic_sort", "benes_permute", "BenesPlan"]

_XNOR = FN.XNOR


def bitonic_sort(prog: ProgramBuilder, word: list, pid: list) -> None:
    """Emit a full bitonic sort of each PE's ``word`` (ascending by PE
    address).  ``pid`` must hold the processor-ID rows."""
    m = dims_of(prog)
    W = len(word)
    partner = prog.pool.alloc(W)
    keep_min, lt, eq, take = prog.pool.alloc(4)
    for s in range(m):
        for d in range(s, -1, -1):
            route_dim(prog, word, partner, d)
            # keep_min = (bit d of addr) == (bit s+1 of addr); bit m == 0.
            if s + 1 >= m:
                prog.logic(keep_min, FN.NOT_F, pid[d], pid[d])
            else:
                prog.logic(keep_min, _XNOR, pid[d], pid[s + 1])
            bs.less_than(prog, partner, word, lt)    # partner < own
            bs.equal_words(prog, partner, word, eq)  # partner == own
            # take partner when (keep_min and lt) or (keep_max and not lt
            # and not eq); keep_max = ~keep_min.
            gt = prog.pool.alloc1()
            prog.logic(gt, FN.OR, lt, eq)
            prog.logic(gt, FN.NOT_F, gt, gt)         # gt = partner > own
            prog.logic(take, FN.AND, keep_min, lt)
            prog.logic(gt, FN.ANDN, gt, keep_min)    # gt & ~keep_min
            prog.logic(take, FN.OR, take, gt)
            bs.select_word(prog, word, take, partner, word)
            prog.pool.free(gt)
    prog.pool.free(*partner, keep_min, lt, eq, take)


class BenesPlan:
    """Host-precalculated Beneš control rows plus the machine program."""

    def __init__(self, prog: ProgramBuilder, word: list, dest):
        dest = np.asarray(dest, dtype=np.int64)
        n = prog.Q * (1 << prog.Q)
        if dest.size != n:
            raise ValueError(f"permutation must cover all {n} PEs")
        self.schedule = benes_schedule(dest)
        self.control_rows = prog.pool.alloc(len(self.schedule))
        partner = prog.pool.alloc(len(word))
        for (dim, _mask), ctrl in zip(self.schedule, self.control_rows):
            route_dim(prog, word, partner, dim)
            bs.select_word(prog, word, ctrl, partner, word)
        prog.pool.free(*partner)

    def load_control_bits(self, machine: BVM) -> None:
        """Poke the precalculated control bits into their rows."""
        for (_dim, mask), ctrl in zip(self.schedule, self.control_rows):
            machine.poke(ctrl, mask)

    @property
    def n_stages(self) -> int:
        return len(self.schedule)


def benes_permute(prog: ProgramBuilder, word: list, dest) -> BenesPlan:
    """Emit a Beneš permutation of each PE's ``word`` to PE ``dest[pe]``.

    Returns the :class:`BenesPlan`; call ``plan.load_control_bits(m)``
    on the machine before running.  Stage count is ``2·(r+Q) - 1``
    (:func:`~repro.hypercube.benes.benes_stage_count`), each stage one
    word route plus one conditional word move.
    """
    plan = BenesPlan(prog, word, dest)
    assert plan.n_stages == benes_stage_count(dims_of(prog))
    return plan
