"""Layer stores: where a solve's DP tables live and how they survive.

Two backends behind one contract (:class:`~repro.store.base.LayerStore`):

* :class:`~repro.store.ram.RamStore` — shared-memory tables (the
  classic path) plus legacy ``.ckpt`` checkpoint handling;
* :class:`~repro.store.spill.MmapStore` — memory-mapped tables spilled
  to a directory with durable, checksummed per-layer commits, so large
  ``k`` runs out-of-core and any crash or corruption is recovered by
  re-deriving layers from the layers below.

The solve loop (:func:`repro.core.parallel.solve_dp_parallel`) is
backend-agnostic; pick a store with
:class:`~repro.store.base.StoreSpec` through ``repro.core.solve(...,
store=..., spill_dir=...)`` or the CLI ``--store/--spill-dir`` flags.
"""

from __future__ import annotations

from ..core.errors import InvalidProblem, StoreCorruption, StoreWriteError
from .base import (
    RAM_BUDGET_ENV,
    STORE_KINDS,
    LayerStore,
    OpenReport,
    StoreSpec,
    ram_budget,
    tables_nbytes,
)
from .drill import run_crash_drill
from .pipeline import COMMIT_MODE_ENV, COMMIT_MODES, AsyncCommitter, commit_mode
from .ram import RamStore
from .spill import MmapStore

__all__ = [
    "LayerStore",
    "OpenReport",
    "StoreSpec",
    "RamStore",
    "MmapStore",
    "AsyncCommitter",
    "open_store",
    "run_crash_drill",
    "commit_mode",
    "StoreCorruption",
    "StoreWriteError",
    "ram_budget",
    "tables_nbytes",
    "RAM_BUDGET_ENV",
    "STORE_KINDS",
    "COMMIT_MODES",
    "COMMIT_MODE_ENV",
]


def open_store(spec: StoreSpec, problem, *, policy=None, p=None) -> LayerStore:
    """Construct (not yet open) the store a :class:`StoreSpec` selects."""
    kind = spec.resolve()
    if kind == "mmap":
        if policy is not None and policy.checkpoint is not None:
            raise InvalidProblem(
                "checkpoint= cannot be combined with the mmap store: the "
                "spill directory's manifest already persists every layer "
                "durably (resume simply reopens the same --spill-dir)"
            )
        return MmapStore(problem, spill_dir=spec.spill_dir, fsync=spec.fsync)
    return RamStore(problem, policy=policy, p=p)
