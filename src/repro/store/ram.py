"""In-RAM layer store: shared-memory tables + the legacy checkpoint.

This wraps what the parallel engine always did — tables in
``multiprocessing.shared_memory`` owned by a leak-proof
:class:`~repro.core.supervisor.SharedTables`, with optional
layer-granular ``.ckpt`` persistence — behind the :class:`LayerStore`
contract, and adds the checkpoint-hygiene rules:

* stale ``.ckpt.tmp`` files (a crash mid-write) are swept on open;
* a finished solve removes its checkpoint unless the policy opts out
  (``keep_checkpoint``) — checkpoints exist to survive crashes, not to
  accumulate;
* the RAM budget (``REPRO_RAM_BUDGET_BYTES``) is enforced up front: when
  the four ``2^k`` tables exceed it, opening fails loudly and points at
  the spill store.

A second, shared-memory-free mode backs the ``ENOSPC`` degradation path:
:meth:`RamStore.adopt` builds a store around plain-RAM copies of another
store's tables so a solve whose spill directory filled up mid-run can
finish single-process (when the budget allows).
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..core.durable import sweep_tmp_files
from ..core.kernels import layer_plan, solve_layer_kernel_fused
from ..core.sequential import INF, subset_weights
from ..core.supervisor import SharedTables, load_checkpoint, save_checkpoint
from .base import LayerStore, OpenReport, tables_nbytes

__all__ = ["RamStore"]


class RamStore(LayerStore):
    kind = "ram"

    def __init__(self, problem, *, policy=None, p=None, use_shm=True):
        super().__init__()
        self._problem = problem
        self._policy = policy
        self._p_in = p
        self._use_shm = use_shm
        self._tables: SharedTables | None = None
        self._ckpt = None
        if policy is not None and policy.checkpoint is not None:
            self._ckpt = os.fspath(policy.checkpoint)
        self._ckpt_base = 1  # first non-resumed layer, for the every-Nth schedule
        self.k = problem.k
        self.n_sub = 1 << problem.k

    def open(self) -> OpenReport:
        self.check_budget(
            tables_nbytes(self.k),
            f"the in-RAM DP tables for k={self.k}",
        )
        plan = layer_plan(self.k)
        self.starts = plan.starts

        events: list = []
        resume = None
        if self._ckpt is not None:
            swept = sweep_tmp_files([self._ckpt + ".tmp"])
            if swept:
                events.append({"kind": "tmp-swept", "count": len(swept)})
            resume = load_checkpoint(self._ckpt, self._problem)

        if self._use_shm:
            self._tables = SharedTables(self.n_sub)
            self.cost = self._tables.cost
            self.best = self._tables.best
            self.p = self._tables.p
            self.order = self._tables.order
        else:
            self.cost = np.empty(self.n_sub, dtype=np.float64)
            self.best = np.empty(self.n_sub, dtype=np.int64)
            self.p = np.empty(self.n_sub, dtype=np.float64)
            self.order = np.empty(self.n_sub, dtype=np.int64)

        self.order[:] = plan.order
        self.p[:] = subset_weights(self._problem) if self._p_in is None else self._p_in

        completed = 0
        if resume is not None:
            ckpt_cost, ckpt_best, completed = resume
            self.cost[:] = ckpt_cost
            self.best[:] = ckpt_best
        else:
            self.cost[:] = INF
            self.cost[0] = 0.0
            self.best[:] = -1
        self._ckpt_base = completed + 1
        return OpenReport(
            valid_layers=frozenset(range(1, completed + 1)),
            completed_prefix=completed,
            resumed=resume is not None,
            events=events,
        )

    @classmethod
    def adopt(cls, problem, cost, best, p, order, starts) -> "RamStore":
        """A ready (already-open) store around RAM copies of live tables.

        Used when a spill store dies mid-solve (``ENOSPC``): the solve
        keeps the layers it already computed and finishes in RAM.  The
        budget gate applies — degrading must not blow the limit the
        spill store existed to honor.
        """
        self = cls(problem, use_shm=False)
        self.check_budget(
            tables_nbytes(problem.k),
            "falling back from the spill store to in-RAM tables",
        )
        self.cost = np.array(cost, dtype=np.float64)
        self.best = np.array(best, dtype=np.int64)
        self.p = np.array(p, dtype=np.float64)
        self.order = np.array(order, dtype=np.int64)
        self.starts = np.asarray(starts)
        return self

    def worker_spec(self) -> dict | None:
        if self._tables is None:
            return None
        return {"mode": "shm", "names": dict(self._tables.names), "n_sub": self.n_sub}

    @property
    def persists(self) -> bool:
        return self._ckpt is not None

    def commit_layer(self, j: int) -> None:
        if self._ckpt is None:
            return
        policy = self._policy
        if j == self.k or (j - self._ckpt_base) % policy.checkpoint_every == 0:
            t0 = time.monotonic()
            save_checkpoint(self._ckpt, self._problem, self.cost, self.best, j)
            t1 = time.monotonic()
            if self._metrics is not None:
                self._metrics.inc("store.commits")
                self._metrics.observe("store.checkpoint_s", t1 - t0)
            if self._tracer is not None and self._tracer.collecting:
                self._tracer.complete(
                    "store.checkpoint", "store", t0, t1,
                    layer=j, bytes=int(self.cost.nbytes + self.best.nbytes),
                )

    def run_parent_slice(self, lo, hi, subsets, costs, is_test, arena) -> int:
        # Strict by default: explicit validity masks make the result
        # independent of whatever this layer's table entries hold, so no
        # table snapshot and no re-INF pass are needed even while a stale
        # duplicate shard races us.  The legacy snapshot discipline
        # (REPRO_SHARD_DISCIPLINE=snapshot) keeps the old copy + re-INF
        # route for one release: same bytes either way, pinned by the
        # exhaustive sweep.
        layer = self.order[lo:hi]
        strict = self._discipline != "snapshot"
        if strict:
            table = self.cost
        else:
            table = arena.table(self.n_sub)
            np.copyto(table, self.cost)
            table[layer] = INF
        layer_best, layer_arg = solve_layer_kernel_fused(
            layer, self.p[layer], table, subsets, costs, is_test,
            arena=arena, strict=strict,
        )
        self.cost[layer] = layer_best
        self.best[layer] = layer_arg
        return hi - lo

    def finish(self, success: bool) -> None:
        if not success or self._ckpt is None:
            return
        if self._policy is not None and self._policy.keep_checkpoint:
            return
        for path in (self._ckpt, self._ckpt + ".tmp"):
            try:
                os.unlink(path)
            except OSError:
                pass

    def result_tables(self) -> tuple[np.ndarray, np.ndarray]:
        if self._tables is None:
            return self.cost, self.best
        return self.cost.copy(), self.best.copy()

    def close(self) -> None:
        if self._tables is not None:
            self.cost = self.best = self.p = self.order = None
            self._tables.close()
            self._tables = None

    @property
    def resident_nbytes(self) -> int:
        return tables_nbytes(self.k)
