"""Memory-mapped spill store: out-of-core DP tables with durable layers.

Layout of a spill directory::

    <spill-dir>/
      manifest.json     control state (see below) — atomic + fsync'd
      cost.dat          float64[2^k]   C table        (np.memmap, r+)
      best.dat          int64[2^k]     argmin table
      p.dat             float64[2^k]   subset weights (recomputed on open)
      order.dat         int64[2^k]     popcount-sorted masks (checksummed)
      layers/
        layer_07.slab   committed layer payloads (cost then best bytes,
        ...             in layer order), one file per popcount layer

The tables are plain ``MAP_SHARED`` file mappings, so pool workers
attach by path and parent/worker writes are coherent; the pages are
reclaimable page cache, which is what lets a ``k=26+`` solve run under a
RAM budget far below ``32 * 2^k`` bytes.  All streaming I/O (order
generation, slab commit/validate/scatter, the in-parent kernel path)
moves through fixed-size chunks, never a full table.

Durability model (DESIGN.md §5.5)
---------------------------------

The memmapped tables are *scratch*: nothing guarantees what subset of
their pages hit disk before a crash.  Truth lives in the slab files and
the manifest, and a layer counts as committed only after the full
protocol ran::

    write layer_J.slab.tmp -> flush -> fsync -> rename -> fsync(dir)
    manifest.json gains layers[J] = {sha256, nbytes}   (same protocol)

A crash at any point leaves either no manifest entry (the layer is
simply recomputed — slab bytes without a manifest entry are ignored) or
a full entry whose checksum the next open verifies.  ``open()`` trusts a
layer only when its slab exists, has the recorded size, and hashes to
the recorded sha256; everything else — torn writes, flipped bits,
deleted slabs, a crashed process's half-written temp — lands in the
re-derivation set and is recomputed from the layers below, which is
always sound because layer ``j`` is a pure bit-reproducible function of
layers ``< j``.  Only two failures are loud: a manifest that cannot be
parsed (:class:`StoreCorruption` — control state is gone, nothing can
be trusted) and a manifest written for a *different problem*
(:class:`CheckpointMismatch` — resuming someone else's tables would be
silent corruption).

``order.dat`` is checksummed in the manifest too: every slab stores
values *in layer order*, so a rotted order file would scatter good slabs
to wrong masks.  A mismatch regenerates the file (it is derivable from
``k`` alone) rather than failing.

Storage faults from ``REPRO_FAULT_SPEC`` (``torn-write``, ``bitflip``,
``enospc``, ``slow-io``) are applied at commit time; the first two
corrupt the slab bytes while the manifest records the checksum of the
*true* payload — exactly the shape of real torn writes and bit rot.
``REPRO_STORE_CRASH`` SIGKILLs the process at a named point of the
protocol (the crash-drill harness drives this).
"""

from __future__ import annotations

import errno as errno_mod
import hashlib
import json
import math
import os
import time
from itertools import islice

import numpy as np

from ..core import faults
from ..core.durable import atomic_write_bytes, fsync_dir, sweep_tmp_files
from ..core.errors import CheckpointMismatch, StoreCorruption, StoreWriteError
from ..core.kernels import solve_layer_kernel_fused
from ..core.sequential import INF
from ..core.supervisor import problem_content_hash
from ..util.bitops import subsets_of_size
from .base import LayerStore, OpenReport

__all__ = ["MmapStore", "MANIFEST_NAME", "SPILL_FORMAT"]

MANIFEST_NAME = "manifest.json"
SPILL_FORMAT = 1

# Subsets per streamed chunk for every table-sized pass (order
# generation/hashing, slab gather/scatter): 2^18 masks = 2 MiB of
# float64 per buffer, so the store's anonymous scratch stays a few MiB
# regardless of k.
CHUNK = 1 << 18

# Subsets per in-parent kernel call: bounds the arena's full-layer
# output buffers the same way (each subset's argmin is independent, so
# chunking the layer cannot change a result).
PARENT_CHUNK = 1 << 18

_DATA_FILES = (
    ("cost", np.float64),
    ("best", np.int64),
    ("p", np.float64),
    ("order", np.int64),
)


class MmapStore(LayerStore):
    kind = "mmap"

    def __init__(self, problem, *, spill_dir, fsync: bool = True):
        super().__init__()
        self._problem = problem
        self._dir = os.fspath(spill_dir)
        self._layers_dir = os.path.join(self._dir, "layers")
        self._fsync = fsync
        self._sha = problem_content_hash(problem)
        self._manifest: dict | None = None
        self._commit_attempts: dict = {}
        self._spilled = 0
        self.k = problem.k
        self.n_sub = 1 << problem.k

    @property
    def persists(self) -> bool:
        return True

    def commit_nbytes(self, j: int) -> int:
        lo, hi = self.bounds(j)
        return (hi - lo) * 16

    def _committed_nbytes(self) -> int:
        return self._spilled

    # -- paths ----------------------------------------------------------

    def _data_path(self, name: str) -> str:
        return os.path.join(self._dir, name + ".dat")

    def _slab_path(self, j: int) -> str:
        return os.path.join(self._layers_dir, f"layer_{j:02d}.slab")

    @property
    def _manifest_path(self) -> str:
        return os.path.join(self._dir, MANIFEST_NAME)

    # -- open -----------------------------------------------------------

    def open(self) -> OpenReport:
        os.makedirs(self._layers_dir, exist_ok=True)
        events: list = []
        swept = sweep_tmp_files([self._dir, self._layers_dir])
        if swept:
            events.append({"kind": "tmp-swept", "count": len(swept)})

        manifest = self._load_manifest()
        fresh = manifest is None

        self._allocate_data_files()
        for name, dtype in _DATA_FILES:
            setattr(
                self,
                name,
                np.memmap(self._data_path(name), dtype=dtype, mode="r+",
                          shape=(self.n_sub,)),
            )
        self.starts = np.cumsum(
            [0] + [math.comb(self.k, j) for j in range(self.k + 1)], dtype=np.int64
        )

        if fresh:
            order_sha = self._generate_order()
            manifest = {
                "format": SPILL_FORMAT,
                "problem_sha": self._sha,
                "k": self.k,
                "order_sha": order_sha,
                "layers": {},
                "complete": False,
            }
        elif self._hash_order() != manifest["order_sha"]:
            # order.dat rotted (or vanished into fresh zero pages): every
            # slab indexes through it, but it is derivable from k alone —
            # rebuild rather than fail.
            manifest["order_sha"] = self._generate_order()
            events.append({"kind": "order-rebuilt"})
        self._manifest = manifest
        self._write_manifest()

        # The mapped tables are scratch: wipe and re-scatter only what
        # the manifest can vouch for.
        self.cost[:] = INF
        self.cost[0] = 0.0
        self.best[:] = -1
        self._fill_p()

        valid: set = set()
        rederive: list = []
        try:
            layer_keys = sorted(manifest["layers"], key=int)
        except (TypeError, ValueError) as exc:
            raise StoreCorruption(
                f"spill manifest {self._manifest_path!r} holds a non-integer "
                f"layer key: {exc}"
            ) from exc
        for key in layer_keys:
            j = int(key)
            if not (1 <= j <= self.k):
                raise StoreCorruption(
                    f"spill manifest {self._manifest_path!r} records layer "
                    f"{j}, outside [1, {self.k}]"
                )
            status = self._validate_slab(j, manifest["layers"][key])
            if status == "ok":
                self._scatter_slab(j)
                valid.add(j)
            else:
                events.append({"kind": f"slab-{status}", "layer": j})
                rederive.append(j)

        completed = 0
        while completed + 1 in valid:
            completed += 1
        return OpenReport(
            valid_layers=frozenset(valid),
            completed_prefix=completed,
            rederive_layers=tuple(rederive),
            resumed=not fresh and bool(valid),
            events=events,
        )

    def _load_manifest(self) -> dict | None:
        path = self._manifest_path
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            raise StoreCorruption(
                f"unreadable spill manifest {path!r}: {exc} — the store's "
                "control state cannot be trusted; remove the spill "
                "directory to start over"
            ) from exc
        if not isinstance(data, dict) or data.get("format") != SPILL_FORMAT:
            raise StoreCorruption(
                f"spill manifest {path!r} has format "
                f"{data.get('format') if isinstance(data, dict) else data!r}, "
                f"expected {SPILL_FORMAT}"
            )
        for key, typ in (("problem_sha", str), ("k", int), ("order_sha", str),
                         ("layers", dict)):
            if not isinstance(data.get(key), typ):
                raise StoreCorruption(
                    f"spill manifest {path!r} is missing or mistypes {key!r}"
                )
        if data["problem_sha"] != self._sha or data["k"] != self.k:
            raise CheckpointMismatch(
                f"spill directory {self._dir!r} was written for a different "
                "problem (content hash mismatch) — refusing to resume from "
                "someone else's tables"
            )
        return data

    def _allocate_data_files(self) -> None:
        """Create + fully allocate the table files up front.

        ``posix_fallocate`` (not just ftruncate) so a full disk surfaces
        here as a loud :class:`StoreWriteError` instead of as a SIGBUS
        the first time a sparse page cannot be materialized mid-kernel.
        """
        nbytes = self.n_sub * 8
        for name, _ in _DATA_FILES:
            path = self._data_path(name)
            try:
                fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
            except OSError as exc:
                raise StoreWriteError(
                    f"cannot create spill file {path!r}: {exc}", errno=exc.errno
                ) from exc
            try:
                if os.fstat(fd).st_size < nbytes:
                    try:
                        if hasattr(os, "posix_fallocate"):
                            os.posix_fallocate(fd, 0, nbytes)
                        else:  # pragma: no cover - non-POSIX fallback
                            os.ftruncate(fd, nbytes)
                    except OSError as exc:
                        raise StoreWriteError(
                            f"cannot allocate {nbytes} bytes for spill file "
                            f"{path!r}: {exc}", errno=exc.errno
                        ) from exc
            finally:
                os.close(fd)

    def _generate_order(self) -> str:
        """Stream the popcount-sorted mask order into ``order.dat``.

        Chunked Gosper enumeration — identical to ``LayerPlan.order``
        (stable popcount sort keeps masks ascending within a layer, and
        Gosper's hack walks each layer ascending) but never materializes
        the ``2^k`` argsort in RAM.  Returns the sha256 of the bytes.
        """
        h = hashlib.sha256()
        pos = 0
        for j in range(self.k + 1):
            gen = subsets_of_size(self.k, j)
            remaining = math.comb(self.k, j)
            while remaining:
                n = min(CHUNK, remaining)
                chunk = np.fromiter(islice(gen, n), dtype=np.int64, count=n)
                self.order[pos:pos + n] = chunk
                h.update(chunk.tobytes())
                pos += n
                remaining -= n
        self.order.flush()
        return h.hexdigest()

    def _hash_order(self) -> str:
        h = hashlib.sha256()
        for lo in range(0, self.n_sub, CHUNK):
            h.update(np.ascontiguousarray(self.order[lo:lo + CHUNK]).tobytes())
        return h.hexdigest()

    def _fill_p(self) -> None:
        """Subset weights via the in-place butterfly, directly on p.dat."""
        p = self.p
        p[:] = 0.0
        for j, w in enumerate(self._problem.weights):
            half = 1 << j
            p.reshape(-1, 2 * half)[:, half:] += w

    # -- slabs ----------------------------------------------------------

    def _validate_slab(self, j: int, entry: dict) -> str:
        """``"ok"`` | ``"missing"`` | ``"corrupt"`` for one manifest entry."""
        if not isinstance(entry, dict):
            return "corrupt"
        lo, hi = self.bounds(j)
        expect = (hi - lo) * 16
        path = self._slab_path(j)
        try:
            size = os.path.getsize(path)
        except OSError:
            return "missing"
        if size != expect or entry.get("nbytes") != expect:
            return "corrupt"
        t0 = time.monotonic()
        h = hashlib.sha256()
        with open(path, "rb") as fh:
            for block in iter(lambda: fh.read(1 << 20), b""):
                h.update(block)
        if self._metrics is not None:
            self._metrics.observe("store.rehash_s", time.monotonic() - t0)
        return "ok" if h.hexdigest() == entry.get("sha256") else "corrupt"

    def _scatter_slab(self, j: int) -> None:
        """Stream a validated slab back into the mapped tables."""
        lo, hi = self.bounds(j)
        size = hi - lo
        with open(self._slab_path(j), "rb") as fh:
            for table, dtype in ((self.cost, np.float64), (self.best, np.int64)):
                for off in range(0, size, CHUNK):
                    n = min(CHUNK, size - off)
                    block = np.frombuffer(fh.read(n * 8), dtype=dtype)
                    table[self.order[lo + off:lo + off + n]] = block

    def commit_layer(self, j: int) -> None:
        """Durably persist layer ``j``: slab protocol + manifest entry."""
        t0 = time.monotonic()
        attempt = self._commit_attempts.get(j, 0)
        self._commit_attempts[j] = attempt + 1
        torn = flip = False
        for fault in faults.storage_faults_for(j, attempt):
            if fault.kind == "slow-io":
                time.sleep(fault.ms / 1000.0)
            elif fault.kind == "enospc":
                raise StoreWriteError(
                    f"injected ENOSPC committing layer {j}",
                    layer=j, errno=errno_mod.ENOSPC,
                )
            elif fault.kind == "torn-write":
                torn = True
            elif fault.kind == "bitflip":
                flip = True

        lo, hi = self.bounds(j)
        size = hi - lo
        total = size * 16
        # A torn write stops half-way; a bitflip corrupts the first byte.
        # Both happen *after* hashing, so the manifest records the true
        # payload's checksum and the next open must catch the mismatch.
        write_budget = total // 2 if torn else total
        written = 0
        first = True
        h = hashlib.sha256()
        path = self._slab_path(j)
        tmp = path + ".tmp"
        try:
            with open(tmp, "wb") as fh:
                for table in (self.cost, self.best):
                    for off in range(0, size, CHUNK):
                        n = min(CHUNK, size - off)
                        idx = self.order[lo + off:lo + off + n]
                        data = np.ascontiguousarray(table[idx]).tobytes()
                        h.update(data)
                        if flip and first:
                            buf = bytearray(data)
                            buf[0] ^= 0x01
                            data = bytes(buf)
                        first = False
                        room = write_budget - written
                        if room > 0:
                            fh.write(data[:room])
                            written += min(len(data), room)
                    if table is self.cost:
                        faults.maybe_crash("mid-write", j)
                fh.flush()
                t_write = time.monotonic()
                if self._fsync:
                    os.fsync(fh.fileno())
                t_fsync = time.monotonic()
            faults.maybe_crash("pre-rename", j)
            os.replace(tmp, path)
            if self._fsync:
                fsync_dir(self._layers_dir)
            t_rename = time.monotonic()
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise StoreWriteError(
                f"slab write failed for layer {j}: {exc}",
                layer=j, errno=exc.errno,
            ) from exc
        faults.maybe_crash("post-rename", j)
        self._manifest["layers"][str(j)] = {"sha256": h.hexdigest(), "nbytes": total}
        self._write_manifest()
        t_manifest = time.monotonic()
        # Under the commit mutex: the async committer runs this method on
        # its own thread while the solve thread snapshots progress.
        with self._commit_mutex:
            self._spilled += written
        if self._metrics is not None:
            m = self._metrics
            m.inc("store.commits")
            m.inc("store.bytes_written", written)
            m.observe("store.commit_s", t_manifest - t0)
            m.observe("store.fsync_s", t_fsync - t_write)
        if self._tracer is not None and self._tracer.collecting:
            # One span per commit with the protocol phases broken out in
            # args: write+hash, fsync, rename+dirsync, manifest.
            self._tracer.complete(
                "store.commit", "store", t0, t_manifest,
                layer=j, bytes=written,
                write_ms=round((t_write - t0) * 1e3, 3),
                fsync_ms=round((t_fsync - t_write) * 1e3, 3),
                rename_ms=round((t_rename - t_fsync) * 1e3, 3),
                manifest_ms=round((t_manifest - t_rename) * 1e3, 3),
            )
        faults.maybe_crash("post-commit", j)

    def _write_manifest(self) -> None:
        payload = json.dumps(self._manifest, indent=1, sort_keys=True).encode()
        try:
            atomic_write_bytes(self._manifest_path, payload, fsync=self._fsync)
        except OSError as exc:
            raise StoreWriteError(
                f"manifest write failed: {exc}", errno=exc.errno
            ) from exc

    # -- solve-loop hooks -----------------------------------------------

    def worker_spec(self) -> dict | None:
        return {"mode": "mmap", "dir": self._dir, "n_sub": self.n_sub}

    def run_parent_slice(self, lo, hi, subsets, costs, is_test, arena) -> int:
        # Strict mode: gathers run directly against the file-backed
        # table, whose entries inside this layer may be resume garbage —
        # no snapshot, no re-INF pass, bounded scratch via chunking.
        done = 0
        for off in range(lo, hi, PARENT_CHUNK):
            end = min(off + PARENT_CHUNK, hi)
            layer = np.asarray(self.order[off:end])
            layer_best, layer_arg = solve_layer_kernel_fused(
                layer, self.p[layer], self.cost, subsets, costs, is_test,
                arena=arena, strict=True,
            )
            self.cost[layer] = layer_best
            self.best[layer] = layer_arg
            done += end - off
        return done

    def finish(self, success: bool) -> None:
        if success and self._manifest is not None:
            self._manifest["complete"] = True
            self._write_manifest()

    def result_tables(self) -> tuple[np.ndarray, np.ndarray]:
        # Fresh read-only mappings: valid after close(), and the result
        # stays page-cache-backed instead of forcing a 2 * 8 * 2^k RAM
        # copy at the end of an out-of-core solve.
        cost = np.memmap(self._data_path("cost"), dtype=np.float64, mode="r",
                         shape=(self.n_sub,))
        best = np.memmap(self._data_path("best"), dtype=np.int64, mode="r",
                         shape=(self.n_sub,))
        return cost, best

    def close(self) -> None:
        # Drop the r+ views; workers hold their own mappings and the
        # result tables are independent read-only maps.
        self.cost = self.best = self.p = self.order = None

    @property
    def resident_nbytes(self) -> int:
        # Streaming scratch only: one gather chunk + its byte copy per
        # pass.  The mapped tables are reclaimable page cache, not
        # anonymous memory.
        return CHUNK * 16
