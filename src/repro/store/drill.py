"""Crash drills: prove resume-after-SIGKILL is bit-identical.

A drill runs one ``--store=mmap`` solve in a *subprocess* with
``REPRO_STORE_CRASH`` armed at a chosen point of the slab commit
protocol (see :mod:`repro.core.faults`), lets the process SIGKILL itself
there — a real, unhandleable kill, not an exception — then reopens the
surviving spill directory in-process and compares the resumed tables
byte-for-byte against an undisturbed solve of the same instance.

The four crash points bracket the commit protocol's two durability
boundaries:

``mid-write``
    Between the cost and best halves of the slab temp file: the temp is
    swept on reopen, the layer has no manifest entry, it is recomputed.
``pre-rename``
    Slab fully written and fsync'd but still ``.tmp``: same outcome —
    bytes without a manifest entry are not trusted.
``post-rename``
    Slab durable under its final name but the manifest not yet updated:
    still recomputed (the manifest is the single source of truth).
``post-commit``
    Manifest entry durable: the layer is validated and *skipped* on
    resume.

Every point must end in bit-identical tables; they differ only in how
much work the resume repeats.  All four fire in the solving process (the
commit protocol is parent-side), so ``workers=1`` exercises them fully.

With the default asynchronous commit pipeline the SIGKILL lands *inside
the committer thread* while the solve thread may already be computing
the next layer — the drill proves that making commits concurrent did not
open a new crash window.  ``commit="sync"`` drills the inline protocol;
``congest=True`` additionally arms a ``slow-io`` storage fault so
commits crawl, the solve thread runs ahead, and the kill fires with a
*non-empty commit queue* (the mid-queue case: the queued layer's slab
must simply be recomputed on resume).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

from ..core.dispatch import solve
from ..core.errors import InvalidProblem
from ..core.faults import CRASH_POINT_ENV, CRASH_POINTS, FAULT_SPEC_ENV
from .pipeline import COMMIT_MODE_ENV, commit_mode
from .spill import MANIFEST_NAME

__all__ = ["run_crash_drill"]


def _committed_layers(spill_dir: str) -> int:
    """How many layers the manifest vouches for (0 if none/unreadable)."""
    try:
        with open(os.path.join(spill_dir, MANIFEST_NAME), encoding="utf-8") as fh:
            manifest = json.load(fh)
        return len(manifest.get("layers", {}))
    except (OSError, ValueError, AttributeError):
        return 0


def run_crash_drill(
    problem,
    point: str,
    *,
    workdir: str,
    layer: int | None = None,
    workers: int = 1,
    timeout: float = 600.0,
    commit: str | None = None,
    congest: bool = False,
) -> dict:
    """SIGKILL a spilled solve at ``point``, resume, compare bit-for-bit.

    ``commit`` selects the drilled commit mode (``"async"`` default /
    ``"sync"``); ``congest=True`` slows every commit (``slow-io``) so the
    async kill fires while a further layer is queued behind it.

    Returns a report dict: ``point``, ``layer``, ``killed`` (the
    subprocess actually died by SIGKILL), ``committed_at_kill`` (layers
    the surviving manifest vouches for), ``resumed_from_layer`` and
    ``rederived`` (from the resume's recovery log), and ``identical``
    (resumed tables == undisturbed tables, byte-for-byte).  A drill
    *passes* iff ``killed and identical``.
    """
    if point not in CRASH_POINTS:
        raise InvalidProblem(
            f"unknown crash point {point!r}; expected one of {CRASH_POINTS}"
        )
    commit = commit_mode(commit)
    if layer is None:
        layer = max(1, problem.k // 2)
    if not (1 <= layer <= problem.k):
        raise InvalidProblem(
            f"crash layer must be in [1, {problem.k}], got {layer}"
        )

    os.makedirs(workdir, exist_ok=True)
    spill_dir = os.path.join(workdir, "spill")
    problem_file = os.path.join(workdir, "problem.json")
    with open(problem_file, "w", encoding="utf-8") as fh:
        fh.write(problem.to_json())

    # The truth to resume toward: an undisturbed in-process solve.
    expected = solve(problem)

    env = dict(os.environ)
    env[CRASH_POINT_ENV] = f"{point}:layer={layer}"
    env[COMMIT_MODE_ENV] = commit
    if congest:
        # Slow every layer's first commit so the solve thread runs ahead
        # of the committer and the SIGKILL lands with a layer queued
        # behind the in-flight commit.
        env[FAULT_SPEC_ENV] = "slow-io:ms=150"
    # The subprocess must import *this* repro, wherever it runs from.
    pkg_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")

    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "solve",
            "--file", problem_file,
            "--backend", "parallel",
            "--workers", str(workers),
            "--store", "mmap",
            "--spill-dir", spill_dir,
            "--json",
        ],
        env=env,
        capture_output=True,
        timeout=timeout,
    )
    killed = proc.returncode == -signal.SIGKILL
    committed = _committed_layers(spill_dir)

    # Resume in-process from whatever the kill left behind.  The crash
    # trap is gone here (env untouched), so the resume runs to the end.
    result = solve(
        problem,
        backend="parallel",
        workers=workers,
        store="mmap",
        spill_dir=spill_dir,
        commit=commit,
    )
    recovery = result.recovery or {}
    identical = (
        result.cost.tobytes() == expected.cost.tobytes()
        and result.best_action.tobytes() == expected.best_action.tobytes()
    )
    return {
        "point": point,
        "layer": layer,
        "workers": workers,
        "commit": commit,
        "congest": congest,
        "killed": killed,
        "returncode": proc.returncode,
        "committed_at_kill": committed,
        "resumed_from_layer": recovery.get("resumed_from_layer"),
        "rederived": recovery.get("rederived", 0),
        "identical": identical,
    }
