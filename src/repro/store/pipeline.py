"""Pipelined layer commits: persistence overlapped with compute.

The solve loop's per-layer barrier used to be two serial phases — compute
the layer, then durably commit it (slab write + incremental sha256 +
fsync + rename + manifest for the spill store; checkpoint save for the
RAM store).  Nothing forces that ordering between *adjacent* layers:
layer ``j``'s table entries are final at its barrier and the pool
computing layer ``j + 1`` only ever writes layer ``j + 1``'s own masks,
so committing ``j`` can run concurrently with computing ``j + 1``.

:class:`AsyncCommitter` is that overlap: one background thread draining
a bounded FIFO of layer indices, calling the store's own
``commit_layer`` — unchanged protocol, unchanged bytes, unchanged
``REPRO_STORE_CRASH`` points (a SIGKILL in the committer thread kills
the whole process exactly like one in the old inline commit).  The
semantics the solve loop relies on:

* **Ordering** — commits run strictly in submission order (single
  consumer, FIFO queue), so the manifest's layer set is always a
  contiguous story and a crash leaves the same resume states the
  synchronous protocol could.
* **Bounded pipeline** — at most ``max_pending`` layers may be queued
  behind the commit in flight (default 1: a double-buffer).  A faster
  pool blocks at :meth:`submit` rather than letting dirty, unpersisted
  layers pile up without bound.
* **Errors surface at the next barrier** — a ``StoreWriteError``
  (ENOSPC and friends) raised inside ``commit_layer`` is captured,
  every queued commit after it is discarded, and the error re-raises
  from the next :meth:`submit` or :meth:`drain` call — the same places
  the synchronous loop would have raised, one barrier later.
* **Drain on finish** — :meth:`drain` blocks until the queue is empty
  and the last commit retired; the loop calls it before
  ``store.finish(True)`` so "manifest marked complete" still implies
  "every layer durably committed".

Telemetry: each async commit lands a ``store.commit.async`` span on the
solve timeline (enclosing the store's own ``store.commit`` span, from
the committer thread's tid) with the queue depth it saw; the registry
gains ``commit.async`` (count), ``commit.blocked_s`` (time the solve
thread spent waiting on the bounded queue) and — the headline —
``commit.overlap_s``: commit seconds that ran concurrently with
compute, i.e. the serial tax the pipeline removed.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

from ..core.errors import InvalidProblem, SolverError, StoreWriteError

__all__ = ["AsyncCommitter", "COMMIT_MODES", "COMMIT_MODE_ENV", "commit_mode"]

COMMIT_MODES = ("async", "sync")
COMMIT_MODE_ENV = "REPRO_COMMIT_MODE"


def commit_mode(requested: str | None = None) -> str:
    """Resolve the layer-commit mode: explicit request, else env, else async.

    ``async`` (the default) overlaps layer ``j``'s durable commit with
    the compute of layer ``j + 1`` through :class:`AsyncCommitter`;
    ``sync`` keeps the pre-pipeline behavior of committing inline at the
    barrier.  Both write identical bytes through the identical protocol —
    the knob exists for A/B benchmarking and as an escape hatch, not as a
    durability trade-off.  A typo fails the solve loudly.
    """
    value = requested
    source = "commit mode"
    if value is None:
        value = os.environ.get(COMMIT_MODE_ENV, "").strip().lower()
        source = COMMIT_MODE_ENV
        if not value:
            return "async"
    if value not in COMMIT_MODES:
        raise InvalidProblem(
            f"{source} must be one of {', '.join(COMMIT_MODES)}, got {value!r}"
        )
    return value


class AsyncCommitter:
    """Background, ordered, bounded ``commit_layer`` pipeline over a store.

    ``max_pending`` bounds how many layers may wait *behind* the commit
    in flight; :meth:`submit` blocks once the bound is reached.  The
    committer owns no table memory — it reads the store's live tables,
    which is safe because a layer's entries never change after its
    barrier.
    """

    def __init__(self, store, *, max_pending: int = 1, tracer=None, metrics=None):
        self._store = store
        self._max_pending = max(1, int(max_pending))
        self._tracer = tracer
        self._metrics = metrics
        self._cv = threading.Condition()
        self._queue: deque[int] = deque()
        self._active: int | None = None  # layer currently committing
        self._error: BaseException | None = None
        self._stop = False
        self._commit_s = 0.0
        self._blocked_s = 0.0
        self._committed = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-async-committer", daemon=True
        )
        self._thread.start()

    # -- committer thread ----------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stop:
                    self._cv.wait()
                if not self._queue:
                    return  # stopped and drained
                j = self._queue.popleft()
                self._active = j
                depth = len(self._queue)
                failed = self._error is not None or self._stop
                self._cv.notify_all()  # a blocked submit may proceed
            if not failed:
                t0 = time.monotonic()
                try:
                    # Unchanged protocol: the store streams tiles with an
                    # incremental sha256 and runs every REPRO_STORE_CRASH
                    # point; a SIGKILL here kills the whole process, same
                    # as the old inline commit.
                    self._store.commit_layer(j)
                except BaseException as exc:  # surfaced at the next barrier
                    with self._cv:
                        self._error = exc
                else:
                    t1 = time.monotonic()
                    with self._cv:
                        self._commit_s += t1 - t0
                        self._committed += 1
                    if self._metrics is not None:
                        self._metrics.inc("commit.async")
                        self._metrics.observe("commit.async_s", t1 - t0)
                    if self._tracer is not None and self._tracer.collecting:
                        self._tracer.complete(
                            "store.commit.async", "store", t0, t1,
                            layer=j, queue_depth=depth,
                        )
            with self._cv:
                self._store.note_commit_done(j)
                self._active = None
                self._cv.notify_all()

    # -- solve-loop side -----------------------------------------------

    def _raise_pending(self) -> None:
        exc = self._error
        if exc is None:
            return
        self._error = None  # surfaced once; the loop degrades or dies
        if isinstance(exc, (StoreWriteError, SolverError)):
            raise exc
        raise SolverError(f"async layer commit failed: {exc!r}") from exc

    def submit(self, j: int) -> None:
        """Queue layer ``j`` for commit; raise any earlier commit's error.

        Blocks while ``max_pending`` layers are already queued behind the
        in-flight commit — the pipeline is a double-buffer, not an
        unbounded backlog of dirty layers.
        """
        t0 = time.monotonic()
        with self._cv:
            self._raise_pending()
            if self._stop:
                raise SolverError("AsyncCommitter is closed")
            while len(self._queue) >= self._max_pending and self._error is None:
                self._cv.wait()
            self._raise_pending()
            self._queue.append(j)
            self._cv.notify_all()
        self._blocked_s += time.monotonic() - t0
        self._store.note_commit_queued(j)

    def drain(self) -> None:
        """Block until every queued commit retired; raise a pending error.

        Called before ``store.finish(True)`` — completion must never be
        declared while a commit is still in flight — and again by tests
        that assert ordering.
        """
        t0 = time.monotonic()
        with self._cv:
            while self._queue or self._active is not None:
                self._cv.wait()
            self._blocked_s += time.monotonic() - t0
            self._publish_metrics_locked()
            self._raise_pending()

    def close(self) -> None:
        """Stop the committer; queued-but-unstarted commits are discarded.

        Idempotent.  The commit in flight (if any) finishes — aborting a
        half-run protocol would create exactly the torn states the
        protocol exists to prevent — then the thread exits.
        """
        with self._cv:
            self._stop = True
            self._queue.clear()
            self._cv.notify_all()
        self._thread.join()
        with self._cv:
            self._publish_metrics_locked()

    def _publish_metrics_locked(self) -> None:
        if self._metrics is None:
            return
        overlap = max(0.0, self._commit_s - self._blocked_s)
        self._metrics.set_gauge("commit.overlap_s", round(overlap, 6))
        self._metrics.set_gauge("commit.blocked_s", round(self._blocked_s, 6))

    @property
    def committed(self) -> int:
        """Commits retired successfully (test/diagnostic hook)."""
        with self._cv:
            return self._committed
