"""The :class:`LayerStore` contract shared by the RAM and spill backends.

A *layer store* owns the four DP tables of one solve — ``cost``,
``best``, the subset weights ``p`` and the popcount-sorted mask
``order`` — plus whatever persistence those tables have.  The solve loop
in :mod:`repro.core.parallel` is written against this contract only:

1. ``open()`` materializes the tables and returns an
   :class:`OpenReport` saying which popcount layers already hold
   *trusted* values (validated against checksums for the spill backend,
   a validated checkpoint prefix for the RAM backend);
2. the loop computes every layer **not** in ``valid_layers`` — in
   ascending order, so any layer being computed only reads finalized
   layers below it — and calls ``commit_layer(j)`` after each;
3. ``finish(success)`` runs cleanup (durably mark the manifest
   complete / delete a completed checkpoint);
4. ``close()`` releases OS resources (idempotent, crash-ordered before
   table teardown).

That one mechanism — *skip valid, compute the rest* — covers a cold
solve (nothing valid), checkpoint/SIGKILL resume (a valid prefix), and
corruption recovery (holes in the valid set re-derived from the layers
below), because layer ``j`` is a pure, bit-reproducible function of
layers ``< j``.

The RAM budget
--------------

``REPRO_RAM_BUDGET_BYTES`` bounds the *anonymous* working memory a solve
may allocate for its tables.  The RAM backend refuses to open when the
four tables exceed the budget (pointing at ``--store=mmap``); the spill
backend keeps the tables file-backed — its pages are reclaimable page
cache the OS evicts under pressure, not committed anonymous memory — and
bounds its own scratch (kernel arena, commit/scatter chunks) far below
any sane budget.  The budget also gates the ``ENOSPC`` degradation path:
falling back from a failed spill store to RAM is only allowed when the
tables fit.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

from ..core.errors import InvalidProblem, SolverError

__all__ = [
    "RAM_BUDGET_ENV",
    "STORE_KINDS",
    "ram_budget",
    "tables_nbytes",
    "StoreSpec",
    "OpenReport",
    "LayerStore",
]

RAM_BUDGET_ENV = "REPRO_RAM_BUDGET_BYTES"

STORE_KINDS = ("auto", "ram", "mmap")


def ram_budget() -> int | None:
    """The RAM budget from the environment; ``None`` when unset.

    Must be a positive integer number of bytes — a typo fails the solve
    loudly instead of silently disabling the budget.
    """
    env = os.environ.get(RAM_BUDGET_ENV)
    if env is None or not env.strip():
        return None
    try:
        value = int(env)
    except ValueError:
        raise InvalidProblem(
            f"{RAM_BUDGET_ENV} must be a positive integer (bytes), got {env!r}"
        ) from None
    if value < 1:
        raise InvalidProblem(f"{RAM_BUDGET_ENV} must be >= 1, got {value}")
    return value


def tables_nbytes(k: int) -> int:
    """Bytes of the four full tables (cost, best, p, order: 8 bytes each)."""
    return (1 << k) * 32


@dataclass(frozen=True)
class StoreSpec:
    """How a solve wants its tables stored.

    ``kind="auto"`` picks the spill backend exactly when a spill
    directory was provided, the RAM backend otherwise — predictable, and
    the RAM budget then gets enforced by whichever backend opens.
    ``fsync=False`` keeps the atomic write-temp/rename protocol but skips
    the fsyncs (for harnesses hammering tiny solves where power-loss
    durability is irrelevant).
    """

    kind: str = "auto"
    spill_dir: str | os.PathLike | None = None
    fsync: bool = True

    def __post_init__(self) -> None:
        if self.kind not in STORE_KINDS:
            raise InvalidProblem(
                f"unknown store kind {self.kind!r} (expected one of "
                f"{', '.join(STORE_KINDS)})"
            )
        if self.kind == "mmap" and self.spill_dir is None:
            raise InvalidProblem("store 'mmap' requires a spill directory")
        if self.kind == "ram" and self.spill_dir is not None:
            raise InvalidProblem(
                "a spill directory is meaningless for store 'ram' — "
                "use store 'mmap' (or 'auto')"
            )

    def resolve(self) -> str:
        """The concrete backend this spec selects: ``"ram"`` or ``"mmap"``."""
        if self.kind == "mmap":
            return "mmap"
        if self.kind == "auto" and self.spill_dir is not None:
            return "mmap"
        return "ram"


@dataclass
class OpenReport:
    """What ``LayerStore.open()`` found on disk (or in a checkpoint).

    ``valid_layers`` holds every popcount layer whose values are already
    in the tables *and* trusted; the solve loop skips exactly these.
    ``completed_prefix`` is the largest ``j`` with layers ``1..j`` all
    valid (0 = nothing), reported as ``resumed_from_layer``.
    ``rederive_layers`` are layers that *were* persisted but failed
    validation (corrupt/torn slab) — they are also absent from
    ``valid_layers``, listed separately so recovery is observable.
    ``events`` are recovery-log entries describing what open had to do
    (swept temp files, corrupt slabs, a rebuilt order file).
    """

    valid_layers: frozenset = frozenset()
    completed_prefix: int = 0
    rederive_layers: tuple = ()
    resumed: bool = False
    events: list = field(default_factory=list)


class LayerStore:
    """Base class: table ownership + the commit/validate lifecycle.

    After ``open()`` a store exposes ``cost``, ``best``, ``p``,
    ``order`` (each a length-``2^k`` array — shared memory, plain RAM,
    or a file-backed memmap) and ``starts`` (the ``k + 2`` layer
    offsets).  ``worker_spec()`` returns a picklable description pool
    workers use to attach to the same tables, or ``None`` when this
    store cannot be shared with workers (the solve then runs
    single-process).  ``set_discipline`` selects how shards treat the
    layer being computed — strict validity masks (the default) or the
    legacy snapshot copy (see :mod:`repro.core.kernels`); file-backed
    stores are always strict because their tables may hold resume
    garbage in the current layer, which only strict mode tolerates.
    """

    kind: str = "?"

    # Telemetry sinks (see repro.obs): disabled until the solve loop
    # calls bind_telemetry.  Class-level defaults keep every subclass
    # constructor untouched and the unbound cost at attribute lookups.
    _tracer = None
    _metrics = None

    # Shard discipline for in-parent slices over these tables.  "strict"
    # (the default — explicit validity masks, no table snapshot) or
    # "snapshot" (the legacy copy + re-INF pass, kept one release behind
    # REPRO_SHARD_DISCIPLINE).  File-backed stores ignore this and stay
    # strict: their tables may hold resume garbage in the layer being
    # computed, which only strict mode tolerates.
    _discipline = "strict"

    cost: np.ndarray
    best: np.ndarray
    p: np.ndarray
    order: np.ndarray
    starts: np.ndarray

    def __init__(self) -> None:
        # Commit accounting crosses threads: the async committer
        # (repro.store.pipeline) retires commits while the solve thread
        # reads progress, so every mutation and every read snapshot goes
        # through one mutex — the progress line must never show torn
        # queued/committed byte counts.
        self._commit_mutex = threading.Lock()
        self._queued_commits: dict[int, int] = {}

    def bind_telemetry(self, tracer, metrics) -> None:
        """Attach the solve's tracer/metrics registry (observational only)."""
        self._tracer = tracer
        self._metrics = metrics

    def set_discipline(self, discipline: str) -> None:
        """Select snapshot vs strict for in-parent slices (see kernels)."""
        self._discipline = discipline

    @property
    def persists(self) -> bool:
        """Whether ``commit_layer`` durably writes anything at all.

        The solve loop only spins up an async committer over a store
        whose commits do real I/O — pipelining no-op commits would add a
        thread for nothing.
        """
        return False

    def commit_nbytes(self, j: int) -> int:
        """Bytes ``commit_layer(j)`` will durably write (0 for a no-op)."""
        return 0

    def note_commit_queued(self, j: int) -> None:
        """Record layer ``j`` as queued behind an asynchronous commit."""
        with self._commit_mutex:
            self._queued_commits.setdefault(j, self.commit_nbytes(j))

    def note_commit_done(self, j: int) -> None:
        """Retire layer ``j`` from the queued set (committed or dropped)."""
        with self._commit_mutex:
            self._queued_commits.pop(j, None)

    def commit_stats(self) -> dict:
        """Atomic snapshot: ``{"committed_bytes", "queued_bytes"}``.

        Safe to call from the solve thread while the committer thread
        mutates the counters — both sides hold ``_commit_mutex``.
        """
        with self._commit_mutex:
            return {
                "committed_bytes": self._committed_nbytes(),
                "queued_bytes": sum(self._queued_commits.values()),
            }

    def _committed_nbytes(self) -> int:
        """Durably-written bytes; called with ``_commit_mutex`` held."""
        return 0

    @property
    def spilled_nbytes(self) -> int:
        """Bytes durably written to the spill directory so far (0 for RAM)."""
        with self._commit_mutex:
            return self._committed_nbytes()

    def open(self) -> OpenReport:
        raise NotImplementedError

    def bounds(self, j: int) -> tuple[int, int]:
        """``(lo, hi)`` such that ``order[lo:hi]`` is popcount layer ``j``."""
        return int(self.starts[j]), int(self.starts[j + 1])

    def worker_spec(self) -> dict | None:
        return None

    def commit_layer(self, j: int) -> None:
        """Persist layer ``j`` (a no-op for an unpersisted store)."""

    def run_parent_slice(self, lo, hi, subsets, costs, is_test, arena) -> int:
        """Solve ``order[lo:hi]`` in-process over this store's tables."""
        raise NotImplementedError

    def finish(self, success: bool) -> None:
        """Post-solve cleanup; ``success=False`` must leave resume state."""

    def close(self) -> None:
        """Release OS resources (idempotent)."""

    def result_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """``(cost, best)`` arrays that stay valid after ``close()``."""
        raise NotImplementedError

    @property
    def resident_nbytes(self) -> int:
        """Anonymous (non-reclaimable) bytes this store holds resident."""
        return 0

    def check_budget(self, need: int, what: str) -> None:
        """Raise loudly when ``need`` anonymous bytes exceed the budget."""
        budget = ram_budget()
        if budget is not None and need > budget:
            raise SolverError(
                f"{what} needs {need} bytes of RAM but {RAM_BUDGET_ENV}="
                f"{budget} — use --store=mmap with --spill-dir to run "
                "out-of-core, or raise the budget"
            )
