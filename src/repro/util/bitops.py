"""Bit-level helpers shared across the library.

Sets of objects are represented throughout as Python ``int`` bitmasks over a
universe ``U = {0, .., k-1}``: bit ``j`` of the mask is 1 iff object ``j`` is
in the set.  These helpers keep all subset manipulation in one place and
provide vectorized (NumPy) counterparts for the simulators, which operate on
whole arrays of masks at once.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = [
    "popcount",
    "popcount_array",
    "bit",
    "bits_of",
    "mask_of",
    "subsets_of_size",
    "all_subsets",
    "iter_submasks",
    "subset_str",
    "is_power_of_two",
    "ilog2",
    "bit_matrix",
    "from_bit_matrix",
]


def popcount(mask: int) -> int:
    """Number of set bits in ``mask`` (i.e. ``#S`` in the paper's notation)."""
    return int(mask).bit_count()


def popcount_array(masks: np.ndarray, k: int | None = None) -> np.ndarray:
    """Vectorized popcount of an integer array.

    Parameters
    ----------
    masks:
        Array of non-negative integer bitmasks.
    k:
        Optional upper bound on the bit width; if given only bits
        ``0..k-1`` are counted (masks must fit in ``k`` bits anyway).
    """
    masks = np.asarray(masks)
    width = k if k is not None else int(masks.max(initial=0)).bit_length()
    out = np.zeros(masks.shape, dtype=np.int64)
    for b in range(width):
        out += (masks >> b) & 1
    return out


def bit(mask: int, j: int) -> int:
    """The ``j``-th bit of ``mask`` (0 or 1); ``bit(p, q)`` in the paper."""
    return (mask >> j) & 1


def bits_of(mask: int) -> Iterator[int]:
    """Iterate the indices of set bits of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of(items) -> int:
    """Bitmask with exactly the bits in the iterable ``items`` set."""
    out = 0
    for j in items:
        out |= 1 << j
    return out


def subsets_of_size(k: int, j: int) -> Iterator[int]:
    """All subsets of ``{0..k-1}`` with exactly ``j`` elements, ascending.

    Uses Gosper's hack to walk same-popcount masks in increasing numeric
    order, which is the layer order of the DP (`#S = j` layers).
    """
    if j < 0 or j > k:
        return
    if j == 0:
        yield 0
        return
    mask = (1 << j) - 1
    limit = 1 << k
    while mask < limit:
        yield mask
        # Gosper's hack: next mask with the same popcount.
        c = mask & -mask
        r = mask + c
        mask = (((r ^ mask) >> 2) // c) | r


def all_subsets(k: int) -> range:
    """All ``2**k`` subsets of ``{0..k-1}`` as a range of masks."""
    return range(1 << k)


def iter_submasks(mask: int) -> Iterator[int]:
    """All submasks of ``mask``, including ``0`` and ``mask`` itself."""
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def subset_str(mask: int, k: int | None = None) -> str:
    """Human-readable set notation, e.g. ``{0,2,3}`` (``{}`` for empty)."""
    return "{" + ",".join(str(j) for j in bits_of(mask)) + "}"


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def ilog2(n: int) -> int:
    """Exact integer log2; raises if ``n`` is not a power of two."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def bit_matrix(values: np.ndarray, width: int) -> np.ndarray:
    """Bit-slice an integer vector into a ``(width, n)`` boolean matrix.

    Row ``w`` holds bit ``w`` (LSB first) of each value — the *vertical*
    number layout used by bit-serial machines like the BVM.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1:
        raise ValueError("values must be a 1-D array")
    if width <= 0:
        raise ValueError("width must be positive")
    if (values < 0).any():
        raise ValueError("values must be non-negative")
    if width < 64 and (values >= (1 << width)).any():
        raise ValueError(f"values do not fit in {width} bits")
    rows = [(values >> w) & 1 for w in range(width)]
    return np.array(rows, dtype=bool)


def from_bit_matrix(rows: np.ndarray) -> np.ndarray:
    """Inverse of :func:`bit_matrix`: rebuild integers from bit slices."""
    rows = np.asarray(rows, dtype=bool)
    if rows.ndim != 2:
        raise ValueError("rows must be a 2-D (width, n) matrix")
    out = np.zeros(rows.shape[1], dtype=np.int64)
    for w in range(rows.shape[0]):
        out |= rows[w].astype(np.int64) << w
    return out
