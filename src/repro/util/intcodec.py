"""Vertical (bit-sliced) integer packing helpers.

Bit-serial SIMD machines store a vector of ``W``-bit numbers as ``W``
one-bit register rows: row ``w`` holds bit ``w`` of every number.  These
helpers convert between that layout and ordinary integer vectors, and expose
the handful of word-level operations the simulators need to cross-check the
machine-level implementations against plain integer arithmetic.
"""

from __future__ import annotations

import numpy as np

from .bitops import bit_matrix, from_bit_matrix

__all__ = [
    "pack_vertical",
    "unpack_vertical",
    "saturating_add",
    "unsigned_less_than",
]


def pack_vertical(values, width: int) -> np.ndarray:
    """Pack an integer vector into a ``(width, n)`` bool matrix (LSB row 0)."""
    return bit_matrix(np.asarray(values, dtype=np.int64), width)


def unpack_vertical(rows: np.ndarray) -> np.ndarray:
    """Unpack a ``(width, n)`` bool matrix back into integers."""
    return from_bit_matrix(rows)


def saturating_add(a, b, width: int) -> np.ndarray:
    """Elementwise ``min(a + b, 2**width - 1)`` — the BVM add semantics.

    The all-ones word doubles as the ``INF`` sentinel, so saturation makes
    ``INF`` absorbing under addition, which is exactly what the TT dataflow
    relies on to exclude invalid actions.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    top = (1 << width) - 1
    s = a + b
    return np.minimum(s, top)


def unsigned_less_than(a, b) -> np.ndarray:
    """Elementwise unsigned comparison ``a < b`` for int64 word vectors."""
    return np.asarray(a, dtype=np.int64) < np.asarray(b, dtype=np.int64)
