"""Shared low-level utilities: bitmask sets, fixed-point, vertical integers."""

from .bitops import (
    all_subsets,
    bit,
    bit_matrix,
    bits_of,
    from_bit_matrix,
    ilog2,
    is_power_of_two,
    iter_submasks,
    mask_of,
    popcount,
    popcount_array,
    subset_str,
    subsets_of_size,
)
from .fixedpoint import INF_WORD, FixedPointScale, choose_scale
from .intcodec import (
    pack_vertical,
    saturating_add,
    unpack_vertical,
    unsigned_less_than,
)

__all__ = [
    "all_subsets",
    "bit",
    "bit_matrix",
    "bits_of",
    "from_bit_matrix",
    "ilog2",
    "is_power_of_two",
    "iter_submasks",
    "mask_of",
    "popcount",
    "popcount_array",
    "subset_str",
    "subsets_of_size",
    "INF_WORD",
    "FixedPointScale",
    "choose_scale",
    "pack_vertical",
    "saturating_add",
    "unpack_vertical",
    "unsigned_less_than",
]
