"""Fixed-point cost encoding for the bit-serial machine.

The BVM computes on ``W``-bit unsigned integers stored *vertically* (one bit
per register row).  Core-level TT instances carry float costs and weights;
before a problem is run on the BVM its arithmetic is rescaled to integers so
that every intermediate value of the DP fits in ``W`` bits, with the all-ones
word reserved as the ``INF`` sentinel (saturating arithmetic keeps it
absorbing).

The scaler chooses a power-of-two multiplier so the rescaling is exact for
costs/weights that are already integers, and bounds the worst-case DP value
by a (loose but safe) upper bound: every root-to-leaf path can charge each
action at most once per DP layer, so ``sum_i c_i * p(U) * k`` dominates any
reachable ``M[S,i]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointScale", "choose_scale", "INF_WORD"]


def INF_WORD(width: int) -> int:
    """The all-ones ``width``-bit word used as the +infinity sentinel."""
    return (1 << width) - 1


@dataclass(frozen=True)
class FixedPointScale:
    """An exact mapping between float costs and ``width``-bit integers.

    Attributes
    ----------
    width:
        Word size in bits.  The encodable range is ``[0, 2**width - 2]``;
        ``2**width - 1`` is reserved for ``INF``.
    scale:
        Multiplier applied to float quantities before rounding.
    """

    width: int
    scale: float

    @property
    def inf(self) -> int:
        return INF_WORD(self.width)

    @property
    def max_value(self) -> int:
        return self.inf - 1

    def encode(self, x: float) -> int:
        """Encode a single non-negative float (``math.inf`` -> sentinel)."""
        if np.isinf(x):
            return self.inf
        if x < 0:
            raise ValueError("fixed-point encoding requires non-negative values")
        v = int(round(x * self.scale))
        if v > self.max_value:
            raise OverflowError(
                f"value {x} needs more than {self.width} bits at scale {self.scale}"
            )
        return v

    def encode_array(self, xs) -> np.ndarray:
        return np.array([self.encode(float(x)) for x in np.asarray(xs).ravel()], dtype=np.int64).reshape(np.shape(xs))

    def decode(self, v: int) -> float:
        """Decode an integer word back to a float (sentinel -> ``inf``)."""
        if v == self.inf:
            return float("inf")
        return v / self.scale

    def decode_array(self, vs) -> np.ndarray:
        vs = np.asarray(vs, dtype=np.int64)
        out = vs.astype(np.float64) / self.scale
        out[vs == self.inf] = np.inf
        return out


def _pow2_at_most(x: float) -> float:
    """Largest power of two ``<= x`` (negative exponents allowed for x < 1).

    ``math.log2`` rounds to nearest, so for ``x`` a hair *below* a power of
    two (e.g. ``nextafter(2**20, 0)``) the naive ``2**floor(log2(x))``
    lands one power too high — the classic off-by-one that would let
    ``choose_scale`` hand out a scale whose encoded bound overflows the
    word.  Clamp down explicitly.
    """
    if x <= 0:
        raise ValueError("bound must be positive")
    import math

    cand = 2.0 ** math.floor(math.log2(x))
    if cand > x:
        cand /= 2.0
    return cand


def choose_scale(costs, weights, k: int, width: int) -> FixedPointScale:
    """Pick a power-of-two scale so all DP values fit in ``width`` bits.

    ``costs`` are the action costs ``c_i``, ``weights`` the object weights
    ``P_j`` of a TT instance over ``k`` objects.  The bound
    ``B = k * p(U) * sum_i c_i`` dominates every finite ``M[S,i]``: a DP value
    is a sum of terms ``c_i * p(S')`` over a recursion tree in which each
    (action, layer) pair contributes at most once per branch and
    ``p(S') <= p(U)``.
    """
    costs = np.asarray(costs, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    total_w = float(weights.sum())
    bound = max(1.0, float(costs.sum()) * total_w * max(4, k))
    max_enc = (1 << width) - 2  # == FixedPointScale.max_value == INF_WORD - 1
    if max_enc < 1:
        raise OverflowError(f"width {width} too small for this instance")
    scale = _pow2_at_most(max_enc / bound)
    # Boundary safety at max_value = INF_WORD - 1: ``max_enc / bound``
    # rounds to nearest, so the quotient itself may sit a fraction above
    # the true ratio; an instance whose optimum lands exactly on ``bound``
    # must still encode without tripping the sentinel.  Multiplication by
    # a power of two is exact, so this check is decisive, not heuristic.
    while round(bound * scale) > max_enc:  # pragma: no cover - belt and braces
        scale /= 2.0
    if scale < 2.0**-20:
        # A scale this small quantizes every cost to zero bits of
        # precision; the instance genuinely needs a wider word.
        raise OverflowError(
            f"width {width} leaves no usable precision for values up to {bound:g}"
        )
    return FixedPointScale(width=width, scale=scale)
