"""Independent verification of TT cost tables.

A full cost table ``C`` is *self-certifying*: it is the optimal value
function iff it satisfies the Bellman conditions of the §5 recurrence.
This gives a cross-check on every solver that is independent of how the
table was produced (sequential DP, hypercube dataflow, CCC run, or the
bit-level BVM program):

1. ``C(∅) = 0``;
2. feasibility: for every ``S`` and applicable action ``i``,
   ``C(S) <= M[S, i]`` (no action beats the table);
3. attainment: every nonempty ``S`` with finite ``C(S)`` has an action
   achieving ``M[S, i] = C(S)`` (the table is realizable);
4. infinite entries have *no* applicable action with finite value.

``verify_cost_table`` checks all four vectorized; ``residuals`` returns
the worst violation per condition for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.problem import TTProblem
from ..core.sequential import subset_weights

__all__ = ["VerificationReport", "verify_cost_table", "bellman_values"]


def bellman_values(problem: TTProblem, cost: np.ndarray) -> np.ndarray:
    """``min_i M[S, i]`` computed *from* the table: the Bellman operator
    applied once.  A correct table is a fixed point (for nonempty S)."""
    n_sub = 1 << problem.k
    masks = np.arange(n_sub, dtype=np.int64)
    p = subset_weights(problem)
    best = np.full(n_sub, np.inf)
    for act in problem.actions:
        t = act.subset
        inter = masks & t
        rest = masks & ~t
        with np.errstate(invalid="ignore"):
            value = act.cost * p[masks] + cost[rest]
            if act.is_test:
                value = value + cost[inter]
                invalid = (inter == 0) | (rest == 0)
            else:
                invalid = inter == 0
        value = np.where(invalid, np.inf, value)
        np.minimum(best, value, out=best)
    best[0] = 0.0
    return best


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of a Bellman check."""

    ok: bool
    max_residual: float
    n_violations: int
    first_violation: int | None  # subset mask, for diagnostics

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def verify_cost_table(
    problem: TTProblem, cost: np.ndarray, atol: float = 1e-9
) -> VerificationReport:
    """Check that ``cost`` is the optimal TT value function.

    Because the Bellman operator here only consults strictly smaller
    subsets for its finite values (progress-making actions shrink the
    set), a table that is a fixed point *is* the unique optimal value
    function — no separate uniqueness argument needed.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.shape != (1 << problem.k,):
        raise ValueError("cost table has the wrong shape")
    target = bellman_values(problem, cost)
    both_inf = np.isinf(cost) & np.isinf(target)
    with np.errstate(invalid="ignore"):  # inf - inf handled via both_inf
        diff = np.where(both_inf, 0.0, np.abs(cost - target))
    diff = np.where(np.isnan(diff), np.inf, diff)  # inf vs finite mismatch
    bad = diff > atol
    if cost[0] != 0.0:
        bad[0] = True
    n_bad = int(bad.sum())
    first = int(np.argmax(bad)) if n_bad else None
    finite = diff[np.isfinite(diff)]
    return VerificationReport(
        ok=n_bad == 0,
        max_residual=float(finite.max()) if finite.size else float("inf"),
        n_violations=n_bad,
        first_violation=first,
    )
