"""PE layout for the parallel TT algorithm (paper §7).

Each PE stands for a pair ``(S, i)``: ``S`` a subset of the universe
(``k`` bits) and ``i`` an action index (``p = log2(N')`` bits, where the
action list is padded to the next power of two ``N'`` with treatments
``T = U`` of cost ``INF`` exactly as the paper prescribes).  The PE
address is the concatenation — ``addr = (S << p) | i`` — so that

* dims ``0 .. p-1`` flip bits of ``i``   (the §6 ASCEND minimization),
* dims ``p .. p+k-1`` flip bits of ``S`` (the §6 ``e``-loop propagation).

On the CCC/BVM realization, ``i`` lands on the in-cycle bits and ``S``
(mostly) on the lateral bits, which is what makes the minimization an
in-cycle shuffle and the subset propagation a lateral sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.problem import Action, TTProblem
from ..util.bitops import popcount_array

__all__ = ["TTLayout", "pad_actions", "choose_ccc_r"]

INF = np.inf


def pad_actions(problem: TTProblem) -> TTProblem:
    """Pad the action list to a power of two with ``T = U``, cost ``INF``
    treatments ("we let T_N = .. = T_{2^p - 1} = U and all of them will be
    treatments with cost INF")."""
    n = problem.n_actions
    target = 1 << max(1, (n - 1).bit_length())
    if target == n:
        return problem
    pad = [
        Action.treatment(problem.universe, float("inf"), name=f"pad{t}")
        for t in range(target - n)
    ]
    return problem.with_actions(list(problem.actions) + pad)


@dataclass(frozen=True)
class TTLayout:
    """Address bookkeeping for one padded TT instance.

    Attributes
    ----------
    k:
        Universe size (bits of ``S``).
    p:
        Bits of the action index (``N' = 2^p`` padded actions).
    """

    k: int
    p: int

    @property
    def dims(self) -> int:
        """Hypercube dimensions needed: ``k + p``."""
        return self.k + self.p

    @property
    def n(self) -> int:
        """PE count ``N' * 2^k`` — the paper's ``O(N * 2^k)`` demand."""
        return 1 << self.dims

    @property
    def n_actions(self) -> int:
        return 1 << self.p

    def addr(self, s: int, i: int) -> int:
        """PE address of pair ``(S, i)``."""
        return (s << self.p) | i

    def action_of(self, addr: np.ndarray) -> np.ndarray:
        """Action index ``i`` of each (possibly replicated) address."""
        return np.asarray(addr) & (self.n_actions - 1)

    def subset_of(self, addr: np.ndarray) -> np.ndarray:
        """Subset ``S`` of each address (replica bits above ``k+p`` masked
        off, so replicated PEs on an oversized CCC compute identically)."""
        return (np.asarray(addr) >> self.p) & ((1 << self.k) - 1)

    def subset_dim(self, e: int) -> int:
        """Hypercube dimension that flips element ``e`` of ``S``."""
        if not (0 <= e < self.k):
            raise ValueError(f"element {e} outside the universe")
        return self.p + e

    def layer_of(self, addr: np.ndarray) -> np.ndarray:
        """``#S`` per address — the DP layer each PE belongs to."""
        return popcount_array(self.subset_of(addr), self.k)

    @staticmethod
    def for_problem(problem: TTProblem) -> "TTLayout":
        padded = pad_actions(problem)
        p = (padded.n_actions - 1).bit_length()
        return TTLayout(k=problem.k, p=p)


def choose_ccc_r(dims: int, max_r: int = 5) -> int:
    """Smallest ``r`` with ``r + 2^r >= dims`` (CCC(r) simulates a
    ``2^(r + 2^r)``-PE hypercube; smaller problems replicate)."""
    for r in range(1, max_r + 1):
        if r + (1 << r) >= dims:
            return r
    raise ValueError(
        f"a {dims}-dim problem needs CCC(r>{max_r}) — more than "
        f"{max_r + (1 << max_r)} dims; too large to simulate"
    )
