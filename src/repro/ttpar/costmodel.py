"""Closed-form cycle model of the bit-level TT program.

The paper's ``O(k · p · (k + log N))`` bound, with the constants written
out: for each of the ``k`` DP layers the program spends

* ``2W`` cycles copying ``R = Q = M``,
* the ``e``-loop: per element, two word routes along the subset
  dimension plus two predicate-gated conditional moves,
* the finalize combine: masked copy + two saturating adds + the argmin
  reset,
* the minimization: per ``i``-dimension, routing ``M`` and ``ARG`` to
  the partner and one bit-serial tagged min.

``predict_phase_cycles`` evaluates these formulas **without building the
program**; the test suite asserts exact equality against the emitted
instruction counts per phase, so any change to either the macros or the
model is caught.  ``route_dim_cost`` supplies the per-dimension routing
constants (``2·2^d + 4`` in-cycle, ``2Q + 1`` lateral) — the concrete
numbers behind the CCC's "constant-factor" communication overhead.
"""

from __future__ import annotations

from ..bvm.hyperops import route_dim_cost
from ..core.problem import TTProblem
from .layout import TTLayout

__all__ = [
    "predict_phase_cycles",
    "predict_phase_cycles_for",
    "predict_loop_cycles",
    "dominant_term",
    "paper_scale_estimate",
]


def predict_phase_cycles(
    problem: TTProblem, width: int, r: int
) -> dict[str, int]:
    """Exact per-phase cycle counts for the §6 loop phases.

    Covers the phases repeated every DP layer (``copy-buffers``,
    ``e-loop``, ``finalize``, ``min-ascend``); the one-off setup phases
    (processor-ID, control bits, arithmetic inputs) depend on the
    action table's bit patterns and are reported by the builder's
    ``phase_breakdown`` instead.
    """
    layout = TTLayout.for_problem(problem)
    return predict_phase_cycles_for(layout.k, layout.p, width, r)


def predict_phase_cycles_for(k: int, p: int, width: int, r: int) -> dict[str, int]:
    """Phase model from raw sizes (no instance needed) — lets the
    analysis estimate machine time at paper scale (e.g. a ``2^20``-PE
    CCC(4) that is too large to simulate bit by bit)."""
    layout = TTLayout(k=k, p=p)
    W = width
    lk = max(1, k.bit_length())

    copy_buffers = k * (2 * W)

    eloop = 0
    for e in range(k):
        c = route_dim_cost(r, layout.subset_dim(e))
        # two word routes (R and Q) + per half: predicate logic (1) and
        # a conditional word move (1 load_b + W cmovs)
        eloop += 2 * (W * c + 1 + 1 + W)
    eloop *= k

    finalize = k * ((1 + lk) + 1 + W + (2 * W + 2) + 1 + 1 + 1 + (2 * W + 2) + 1 + 1 + p + 1)

    min_ascend = 0
    for t in range(p):
        c = route_dim_cost(r, t)
        tagged_min = (W + 2) + (W + 2) + (p + 2) + 3 + 1 + W + 1 + p
        min_ascend += (W + p) * c + tagged_min
    min_ascend *= k

    return {
        "copy-buffers": copy_buffers,
        "e-loop": eloop,
        "finalize": finalize,
        "min-ascend": min_ascend,
    }


def predict_loop_cycles(problem: TTProblem, width: int, r: int) -> int:
    """Total cycles of the repeated §6 loop (sum of the phase model)."""
    return sum(predict_phase_cycles(problem, width, r).values())


def paper_scale_estimate(
    k: int, n_actions: int, width: int = 64, r: int = 4, clock_hz: float = 10e6
) -> dict:
    """Estimated wall time of the §6 loop on the paper's hardware.

    ``r = 4`` is the 2^20-PE machine the paper calls currently
    implementable; mid-1980s bit-serial VLSI clocks sat around 10 MHz.
    Returns the loop cycle count and the implied seconds — the number the
    paper's speedup story promises for, e.g., 10 disease candidates with
    1024 actions.
    """
    p = max(1, (max(1, n_actions) - 1).bit_length())
    if k + p > r + (1 << r):
        raise ValueError(f"k + log N = {k + p} dims exceed CCC({r})")
    phases = predict_phase_cycles_for(k, p, width, r)
    cycles = sum(phases.values())
    return {
        "k": k,
        "n_actions": n_actions,
        "pe_count": 1 << (r + (1 << r)),
        "loop_cycles": cycles,
        "seconds_at_clock": cycles / clock_hz,
        "phases": phases,
    }


def dominant_term(problem: TTProblem, width: int, r: int) -> float:
    """The asymptotic driver ``k · W · (k + log N') · (2Q + 1)``.

    Useful for shape checks: the ratio of the measured loop cycles to
    this term stays bounded as instances grow.
    """
    layout = TTLayout.for_problem(problem)
    Q = 1 << r
    return problem.k * width * (layout.k + layout.p) * (2 * Q + 1)
