"""Parallel policy extraction: a DESCEND marking pass.

The ASCEND phases of §6 leave ``C(S)`` and the argmin action flooded in
every PE.  Reading the optimal *procedure* out of the machine is the
mirror problem: starting from ``U``, each on-path subset must notify its
children under the argmin policy — ``S ∩ T_a`` and ``S - T_a`` for an
argmin test ``a``, ``S - T_a`` for a treatment.  A child differs from
its parent in *several* subset bits, so the notification travels exactly
like the §6 ``e``-loop, but downward: one exchange per element, dims in
**descending** order, dropping the elements of ``S ∩ T_a`` (for the
``-`` child) or ``S - T_a`` (for the ``∩`` child) one at a time.

To keep marks self-routing we propagate one (layer, argmin-action) class
at a time: within a class the drop condition per element is a host
constant (``e ∈ T_a``), merged marks follow identical routes, and a mark
has *landed* exactly when no droppable element remains — an address
predicate.  Cost: ``O(N * k)`` exchanges per layer, all DESCEND runs (so
the CCC executes them with pipelined descend sweeps).

The result is the set of live sets of the optimal procedure — verified
in the tests against the tree the host-side extractor builds.
"""

from __future__ import annotations

import numpy as np

from ..core.problem import TTProblem
from ..hypercube.ccc import CCC
from ..hypercube.machine import DimOp, Hypercube, LocalOp, Program, State
from .dataflow import _prepare
from .layout import TTLayout, choose_ccc_r, pad_actions

__all__ = ["build_marking_program", "mark_policy_subsets", "policy_subsets_reference"]


def build_marking_program(problem: TTProblem) -> tuple[TTLayout, Program]:
    """The DESCEND marking pass (appended after the §6 TT program)."""
    padded = pad_actions(problem)
    layout = TTLayout.for_problem(problem)
    k, p = layout.k, layout.p
    t_masks = padded.subset_array
    is_test = padded.test_mask_array
    program: Program = []

    def seed_op(j: int, a: int) -> LocalOp:
        def fn(own, addr):
            mine = (own["LAYER"] == j) & own["ONPATH"].astype(bool) & (own["ARG"] == a)
            tq = mine & bool(is_test[a])
            return {"TM": mine, "TQ": tq}

        return LocalOp(fn, label=f"seed layer {j} action {a}")

    def drop_op(e: int, a: int) -> DimOp:
        dim = layout.subset_dim(e)
        in_t = bool((t_masks[a] >> e) & 1)

        def fn(own, partner, addr):
            sender_has_e = ((addr >> dim) & 1) == 0  # receiver bit e is 0
            # TM (toward S - T_a) drops elements of T_a; TQ (toward
            # S ∩ T_a) drops elements outside T_a.
            take_m = sender_has_e & partner["TM"].astype(bool) if in_t else np.zeros(len(addr), bool)
            take_q = sender_has_e & partner["TQ"].astype(bool) if not in_t else np.zeros(len(addr), bool)
            return {
                "TM": own["TM"].astype(bool) | take_m,
                "TQ": own["TQ"].astype(bool) | take_q,
            }

        return DimOp(dim=dim, fn=fn, label=f"mark drop e={e}")

    def land_op(a: int) -> LocalOp:
        t = int(t_masks[a])

        def fn(own, addr):
            s_of = layout.subset_of(addr)
            landed_m = own["TM"].astype(bool) & ((s_of & t) == 0) & (s_of != 0)
            landed_q = own["TQ"].astype(bool) & ((s_of & ~t) == 0) & (s_of != 0)
            return {"ONPATH": own["ONPATH"].astype(bool) | landed_m | landed_q}

        return LocalOp(fn, label=f"land action {a}")

    n_actions = padded.n_actions
    for j in range(k, 0, -1):
        for a in range(n_actions):
            program.append(seed_op(j, a))
            for e in range(k - 1, -1, -1):
                program.append(drop_op(e, a))
            program.append(land_op(a))
    return layout, program


def _init_marks(layout: TTLayout, st: State) -> None:
    addr = st.addresses
    st["ONPATH"] = layout.subset_of(addr) == ((1 << layout.k) - 1)
    st["TM"] = np.zeros(st.n, dtype=bool)
    st["TQ"] = np.zeros(st.n, dtype=bool)


def mark_policy_subsets(problem: TTProblem, machine: str = "hypercube") -> np.ndarray:
    """Run ASCEND TT then the DESCEND marking; return the boolean vector
    over subset masks that the optimal procedure visits (``U`` included,
    ``∅`` excluded).  ``machine`` is ``"hypercube"`` or ``"ccc"``."""
    problem.require_adequate()
    if machine == "ccc":
        layout = TTLayout.for_problem(problem)
        ccc = CCC(choose_ccc_r(layout.dims))
        layout, st, tt_program = _prepare(problem, state_dims=ccc.dims)
        _init_marks(layout, st)
        _, marking = build_marking_program(problem)
        ccc.run(st, tt_program + marking)
    else:
        layout, st, tt_program = _prepare(problem, state_dims=None)
        _init_marks(layout, st)
        _, marking = build_marking_program(problem)
        Hypercube(layout.dims).run(st, tt_program + marking)

    n_sub = 1 << layout.k
    masks = np.arange(n_sub, dtype=np.int64)
    onpath = np.asarray(st["ONPATH"])[masks << layout.p].astype(bool)
    onpath[0] = False
    return onpath


def policy_subsets_reference(problem: TTProblem) -> np.ndarray:
    """Host-side truth: the live sets of the extracted optimal tree."""
    from ..core.dispatch import solve

    tree = solve(problem).tree()
    seen = np.zeros(1 << problem.k, dtype=bool)
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        seen[node.live_set] = True
        stack.extend(node.children())
    return seen
