"""Complexity accounting and the paper's headline claims, as computable
functions.

The paper's quantitative statements:

* parallel time ``O(k * p * (k + log N))`` on ``O(N * 2^k)`` PEs, where
  ``p`` is the arithmetic precision in bits (our ``W``) — §1;
* speedup ``O(P / log P)`` over the sequential backward induction, for
  ``P`` PEs, after granting the sequential machine its 64-bit word
  parallelism — §1;
* a ``2^30``-PE machine handles ``k ≈ 15`` candidates even when every
  subset is an action (``N = O(2^k)``), and ``k ≈ 20`` when
  ``N = O(k^2)`` — §1 (the abstract pegs ``2^20`` as currently
  implementable and ``2^30`` as feasible).

This module turns each into a function of the instance/machine size so
the benchmark harness can tabulate model-vs-measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "model_route_steps",
    "model_bit_steps",
    "sequential_word_ops",
    "SpeedupPoint",
    "speedup_point",
    "speedup_curve",
    "max_k_for_budget",
    "machine_sizing_table",
]


def padded_p(n_actions: int) -> int:
    """Bits of the padded action index: ``p = ceil(log2(N))`` (min 1)."""
    return max(1, (max(1, n_actions) - 1).bit_length())


def model_route_steps(k: int, n_actions: int) -> int:
    """Word-level parallel steps of the §6 program: ``k * (k + log N')``.

    Each DP layer runs the ``k``-step ``e``-loop plus the ``log N'``-step
    minimization; there are ``k`` layers.  The dataflow executor's
    ``route_steps`` counter must match this exactly (tested).
    """
    return k * (k + padded_p(n_actions))


def model_bit_steps(k: int, n_actions: int, width: int) -> int:
    """Bit-level parallel time ``O(k * W * (k + log N))``: every word
    routed or combined costs ``W`` single-bit instruction cycles on the
    BVM.  This is the paper's ``O(k p (k + log N))`` with ``p = W``."""
    return model_route_steps(k, n_actions) * width


def sequential_word_ops(k: int, n_actions: int) -> int:
    """Work of the sequential backward induction: ``(2^k - 1) * N``
    action evaluations (each O(1) word operations on a 64-bit machine)."""
    return ((1 << k) - 1) * n_actions


@dataclass(frozen=True)
class SpeedupPoint:
    """One row of the speedup study."""

    k: int
    n_actions: int
    pe_count: int          # P = N' * 2^k
    seq_ops: int
    par_steps: int
    speedup: float         # seq_ops / par_steps (word-level, both sides)
    p_over_logp: float     # the claimed asymptote, for shape comparison

    @property
    def efficiency(self) -> float:
        """Speedup per PE (1.0 would be perfect linear speedup)."""
        return self.speedup / self.pe_count


def speedup_point(k: int, n_actions: int) -> SpeedupPoint:
    """Word-level speedup of the parallel algorithm at ``(k, N)``.

    Both sides are counted in word operations, so the bit-serial factor
    ``W`` and the sequential machine's 64-bit datapath (which the paper
    nets off against each other) cancel out of the ratio.
    """
    p = padded_p(n_actions)
    pe = (1 << p) * (1 << k)
    seq = sequential_word_ops(k, n_actions)
    par = model_route_steps(k, n_actions)
    logp = math.log2(pe)
    return SpeedupPoint(
        k=k,
        n_actions=n_actions,
        pe_count=pe,
        seq_ops=seq,
        par_steps=par,
        speedup=seq / par,
        p_over_logp=pe / logp,
    )


def speedup_curve(ks, n_of_k) -> list[SpeedupPoint]:
    """Speedup across instance sizes; ``n_of_k`` maps ``k`` to ``N``.

    The claim to check is *shape*: ``speedup / (P / log P)`` should be
    bounded between positive constants along the curve.
    """
    return [speedup_point(k, max(1, int(n_of_k(k)))) for k in ks]


def max_k_for_budget(pe_budget: int, n_of_k) -> int:
    """Largest ``k`` whose PE demand ``N'(k) * 2^k`` fits the budget."""
    best = 0
    k = 1
    while True:
        n = max(1, int(n_of_k(k)))
        demand = (1 << padded_p(n)) * (1 << k)
        if demand > pe_budget:
            return best
        best = k
        k += 1
        if k > 64:  # no machine is that big
            return best


def machine_sizing_table(budgets=(2**20, 2**30)) -> list[dict]:
    """The paper's sizing claims: max candidates per machine size for the
    ``N = 2^k`` (all subsets available) and ``N = k^2`` regimes."""
    rows = []
    for budget in budgets:
        rows.append(
            {
                "pe_budget": budget,
                "max_k_exponential_actions": max_k_for_budget(budget, lambda k: 2**k),
                "max_k_quadratic_actions": max_k_for_budget(budget, lambda k: k * k),
            }
        )
    return rows
