"""Optimal-tree reconstruction from parallel cost tables.

After the parallel run, every PE ``(S, ·)`` holds ``C(S)`` and the index
of a minimizing action (the ``ARG`` register flooded alongside ``M``).
Turning the tables into an explicit procedure is the standard DP policy
walk; the only wrinkle is that ``ARG`` may name a *padding* treatment only
on infeasible subsets, which reconstruction must treat as failure.

``tree_from_tables`` also re-derives the argmin from the cost table when
the recorded policy is missing/stale (``best_action=None``), which doubles
as an internal consistency check between ``C`` and the recurrence.
"""

from __future__ import annotations

import numpy as np

from ..core.problem import TTProblem
from ..core.tree import TTNode, TTTree

__all__ = ["tree_from_tables", "rederive_policy"]


def rederive_policy(problem: TTProblem, cost: np.ndarray) -> np.ndarray:
    """Recompute a minimizing action per subset from the cost table alone.

    Follows the determinism contract of :mod:`repro.core.sequential`
    exactly — candidates scanned in action-index order, strict ``<``
    replacement, and the float evaluation order
    ``((c_i * p(S)) + C(inter)) + C(rest)`` — so on a table produced by
    any in-tree backend the result is bit-for-bit ``DPResult.best_action``.
    (An earlier version added ``C(rest)`` before ``C(inter)``; float
    addition is not associative, so on near-tied candidates that flipped
    argmins relative to the DP and could claim values the table never
    contained.)

    Infeasible subsets (``C(S)`` infinite) always get ``-1``: even on an
    inconsistent table no action is ever emitted for a live-set that has
    no successful sub-procedure.
    """
    n_sub = 1 << problem.k
    best = np.full(n_sub, -1, dtype=np.int64)
    masks = np.arange(n_sub, dtype=np.int64)
    running = np.full(n_sub, np.inf)
    p = _subset_weight_vector(problem)
    for i, act in enumerate(problem.actions):
        t = act.subset
        inter = masks & t
        rest = masks & ~t
        value = act.cost * p
        if act.is_test:
            value = value + cost[inter] + cost[rest]
            invalid = (inter == 0) | (rest == 0)
        else:
            value = value + cost[rest]
            invalid = inter == 0
        value = np.where(invalid, np.inf, value)
        better = value < running
        running = np.where(better, value, running)
        best = np.where(better, i, best)
    best[0] = -1
    best[~np.isfinite(np.asarray(cost, dtype=np.float64))] = -1
    return best


def _subset_weight_vector(problem: TTProblem) -> np.ndarray:
    from ..core.sequential import subset_weights

    return subset_weights(problem)


def tree_from_tables(
    problem: TTProblem, cost: np.ndarray, best_action: np.ndarray | None
) -> TTTree:
    """Build an optimal :class:`TTTree` from ``C(S)`` (+ optional policy)."""
    if not np.isfinite(cost[problem.universe]):
        raise ValueError("no successful procedure exists (C(U) is infinite)")
    if best_action is None:
        best_action = rederive_policy(problem, cost)

    n_real = problem.n_actions

    def build(live: int) -> TTNode | None:
        if live == 0:
            return None
        i = int(best_action[live])
        if i < 0 or i >= n_real:
            raise ValueError(
                f"policy names action {i} on subset {live:#x}; table is "
                "inconsistent or the subset is infeasible"
            )
        act = problem.actions[i]
        node = TTNode(action_index=i, live_set=live)
        if act.is_test:
            node.pos = build(live & act.subset)
            node.neg = build(live & ~act.subset)
        else:
            node.cont = build(live & ~act.subset)
        return node

    return TTTree(problem, build(problem.universe))
