"""The complete TT algorithm as a bit-level BVM program (paper §7).

This is the paper's actual artifact: the §6 ASCEND scheme compiled down
to single-bit CCC instructions.  Per the implementation scheme of §7:

* each PE stands for a pair ``(S, i)`` — ``S`` on the high address bits,
  the action index ``i`` on the low bits (which land inside the cycles);
* the predicates ``e ∈ S ∩ T_i`` and ``e ∈ S - T_i`` are built from the
  **processor-ID** bits and per-action membership rows ``TB[e]`` loaded
  by matching the ``i`` bits against each action index (the paper:
  "``T_i`` should be input to the BVM");
* the ``e``-loop moves ``R``/``Q`` words along the subset dimensions via
  the lateral sweeps of :mod:`repro.bvm.hyperops`, with the dataflow
  controlled by the enable register;
* the minimization is the §6 ASCEND over the ``i`` dimensions, done with
  the bit-serial tagged-min so the argmin rides along;
* arithmetic is ``W``-bit saturating fixed point; the all-ones word is
  ``INF`` and stays absorbing, which implements the paper's sentinel
  argument at the bit level.

Everything after the initial host pokes (none are needed — even the
processor-ID, layer popcounts, ``p(S)`` prefix sums and ``t_i * p(S)``
products are computed *in machine* with host-immediate constants folded
into instruction truth tables) runs through the simulator's five-line
execution core, so the returned tables carry an honest cycle count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..bvm import bitserial as bs
from ..bvm.hyperops import route_dim
from ..bvm.isa import FN, Reg
from ..bvm.machine import BVM
from ..bvm.primitives import processor_id
from ..bvm.program import ProgramBuilder
from ..core.problem import TTProblem
from ..util.fixedpoint import FixedPointScale, choose_scale
from .layout import TTLayout, pad_actions

__all__ = ["BVMTTResult", "build_bvm_tt", "solve_tt_bvm"]


@dataclass
class BVMTTResult:
    """Decoded output of a bit-level TT run.

    ``cost``/``best_action`` have the same shape and semantics as the
    sequential :class:`~repro.core.sequential.DPResult` tables; ``cycles``
    is the exact number of single-bit machine instructions executed and
    ``scale`` the fixed-point encoding used.
    """

    problem: TTProblem
    layout: TTLayout
    scale: FixedPointScale
    cost: np.ndarray
    best_action: np.ndarray
    cycles: int
    r: int
    width: int
    backend: str = "bool"

    @property
    def optimal_cost(self) -> float:
        return float(self.cost[self.problem.universe])

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.optimal_cost)

    def tree(self):
        from .extract import tree_from_tables

        return tree_from_tables(self.problem, self.cost, self.best_action)


def _choose_r(dims: int) -> int:
    for r in range(1, 5):
        if r + (1 << r) >= dims:
            return r
    raise ValueError(f"problem needs {dims} hypercube dims; CCC(r<=4) is the cap")


@dataclass
class _Plan:
    """Program plus the register map needed to decode the results."""

    prog: ProgramBuilder
    layout: TTLayout
    scale: FixedPointScale
    M: list
    ARG: list
    r: int
    width: int

    def input_bits(self) -> list[int]:
        return [0] * self.prog.Q  # consumed by cycle-ID inside processor-ID


def build_bvm_tt(problem: TTProblem, width: int = 16, r: int | None = None) -> _Plan:
    """Emit the full TT program for ``problem`` (no execution)."""
    problem.require_adequate()
    padded = pad_actions(problem)
    layout = TTLayout.for_problem(problem)
    k, p = layout.k, layout.p
    r = _choose_r(layout.dims) if r is None else r
    if r + (1 << r) < layout.dims:
        raise ValueError(f"CCC(r={r}) too small for {layout.dims} dims")

    finite_costs = [a.cost for a in problem.actions if math.isfinite(a.cost)]
    scale = choose_scale(finite_costs or [1.0], problem.weights, k, width)
    # Split scaling: the machine multiplies encoded costs by encoded
    # weights, so the two factors must carry *square roots* of the overall
    # scale — encoding both at `scale.scale` would square it and overflow.
    m_exp = int(round(math.log2(scale.scale)))
    scale_w = 2.0 ** (m_exp - m_exp // 2)
    scale_c = 2.0 ** (m_exp // 2)
    enc_costs = [
        scale.inf if math.isinf(a.cost) else int(round(a.cost * scale_c))
        for a in padded.actions
    ]
    enc_weights = [int(round(w * scale_w)) for w in problem.weights]
    if any(c > scale.max_value for c in enc_costs if c != scale.inf) or any(
        w > scale.max_value for w in enc_weights
    ):
        raise OverflowError("split-scale encoding overflows the word width")

    prog = ProgramBuilder(r, L=256)
    pool = prog.pool
    W = width

    # ------------------------------------------------------------------
    # Register map (data first — see the allocation discipline note).
    # ------------------------------------------------------------------
    M = pool.alloc(W)
    Rw = pool.alloc(W)
    Qw = pool.alloc(W)
    TP = pool.alloc(W)
    PB = pool.alloc(W)       # shared partner-copy buffer (R/Q/M routes)
    ARG = pool.alloc(p)
    ARG0 = pool.alloc(p)
    PARG = pool.alloc(p)
    lk = max(1, k.bit_length())
    LAYER = pool.alloc(lk)
    TB = pool.alloc(k)       # TB[e] = (e ∈ T_i) per PE
    IS_TEST = pool.alloc1()
    GATE = pool.alloc1()
    GATE2 = pool.alloc1()
    pid = pool.alloc(r + (1 << r))

    # ------------------------------------------------------------------
    # Phase 1: self-knowledge — processor-ID and per-action structure.
    # ------------------------------------------------------------------
    prog.mark("processor-id")
    processor_id(prog, pid)
    i_word = pid[:p]          # action index bits
    s_bits = pid[p : p + k]   # subset membership bits

    prog.mark("control-bits")
    prog.clear(IS_TEST)
    for row in TB:
        prog.clear(row)
    match = pool.alloc1()
    for v, act in enumerate(padded.actions):
        bs.equals_const(prog, i_word, v, match)
        if act.is_test:
            prog.logic(IS_TEST, FN.OR, IS_TEST, match)
        for e in range(k):
            if (act.subset >> e) & 1:
                prog.logic(TB[e], FN.OR, TB[e], match)

    # LAYER = popcount of the S bits (in-machine, gated unit adds).
    for row in LAYER:
        prog.clear(row)
    for e in range(k):
        prog.enable_from(s_bits[e])
        bs.add_const_into(prog, LAYER, 1, saturate=False)
        prog.enable_all()

    # ------------------------------------------------------------------
    # Phase 2: arithmetic inputs — p(S), t_i, TP = t_i * p(S).
    # ------------------------------------------------------------------
    prog.mark("arith-inputs")
    PS = pool.alloc(W)
    CW = pool.alloc(W)
    for row in PS:
        prog.clear(row)
    for e in range(k):
        prog.enable_from(s_bits[e])
        bs.add_const_into(prog, PS, enc_weights[e])
        prog.enable_all()
    for v, act in enumerate(padded.actions):
        bs.equals_const(prog, i_word, v, match)
        prog.enable_from(match)
        bs.set_word_const(prog, CW, min(enc_costs[v], scale.inf))
        prog.enable_all()
    bs.mult_into(prog, TP, PS, CW)
    # Infinite-cost actions (pads and any user INF) force TP = INF
    # directly — the sentinel must not depend on p(S)'s encoding.
    for v, act in enumerate(padded.actions):
        if enc_costs[v] == scale.inf:
            bs.equals_const(prog, i_word, v, match)
            prog.enable_from(match)
            bs.set_word_const(prog, TP, scale.inf)
            prog.enable_all()
    pool.free(*PS, *CW, match)

    # M init: INF everywhere, 0 on the empty set's PEs.
    prog.mark("m-init")
    bs.set_word_const(prog, M, scale.inf)
    bs.equals_const(prog, LAYER, 0, GATE)
    prog.enable_from(GATE)
    bs.set_word_const(prog, M, 0)
    prog.enable_all()
    bs.copy_word(prog, ARG0, i_word)
    bs.copy_word(prog, ARG, ARG0)

    # ------------------------------------------------------------------
    # Phase 3: the §6 TT() loop.
    # ------------------------------------------------------------------
    for j in range(1, k + 1):
        prog.mark("copy-buffers")
        bs.copy_word(prog, Rw, M)
        bs.copy_word(prog, Qw, M)

        # e-loop: R[S,i] = R[S-{e},i] if e ∈ S∩T_i ; Q likewise for S-T_i.
        prog.mark("e-loop")
        for e in range(k):
            dim = layout.subset_dim(e)
            # cond_r = s_bit_e & TB[e] ; cond_q = s_bit_e & ~TB[e]
            route_dim(prog, Rw, PB, dim)
            prog.logic(GATE2, FN.AND, s_bits[e], TB[e])
            bs.select_word(prog, Rw, GATE2, PB, Rw)
            route_dim(prog, Qw, PB, dim)
            prog.logic(GATE2, FN.ANDN, s_bits[e], TB[e])
            bs.select_word(prog, Qw, GATE2, PB, Qw)

        # finalize layer j: M = R + TP (+ Q if test), ARG = own index.
        prog.mark("finalize")
        bs.equals_const(prog, LAYER, j, GATE)
        prog.enable_from(GATE)
        bs.copy_word(prog, M, Rw)
        bs.add_into(prog, M, TP)
        prog.enable_all()
        prog.logic(GATE2, FN.AND, GATE, IS_TEST)
        prog.enable_from(GATE2)
        bs.add_into(prog, M, Qw)
        prog.enable_all()
        prog.enable_from(GATE)
        bs.copy_word(prog, ARG, ARG0)
        prog.enable_all()

        # §6 ASCEND minimization over the i dimensions, argmin riding along.
        prog.mark("min-ascend")
        for t in range(p):
            route_dim(prog, M, PB, t)
            route_dim(prog, ARG, PARG, t)
            bs.min_tagged_into(prog, M, ARG, PB, PARG, gate=GATE)

    return _Plan(prog=prog, layout=layout, scale=scale, M=M, ARG=ARG, r=r, width=width)


def _decode(plan: _Plan, machine: BVM, problem: TTProblem) -> tuple[np.ndarray, np.ndarray]:
    layout, scale = plan.layout, plan.scale
    n_sub = 1 << layout.k
    m_words = np.zeros(machine.n, dtype=np.int64)
    for w, row in enumerate(plan.M):
        m_words |= machine.read(row).astype(np.int64) << w
    args = np.zeros(machine.n, dtype=np.int64)
    for w, row in enumerate(plan.ARG):
        args |= machine.read(row).astype(np.int64) << w

    masks = np.arange(n_sub, dtype=np.int64)
    addr0 = masks << layout.p
    cost = scale.decode_array(m_words[addr0])
    best = args[addr0]
    best = np.where(np.isfinite(cost), best, -1)
    best[0] = -1
    # Clamp pad indices (only reachable on infeasible subsets anyway).
    best = np.where(best >= problem.n_actions, -1, best)
    return cost, best


def solve_tt_bvm(
    problem: TTProblem,
    width: int = 16,
    r: int | None = None,
    backend: str | None = None,
) -> BVMTTResult:
    """Build, run and decode the bit-level TT program.

    Practical sizes: ``k + ceil(log2 N) <= 11`` (a 2048-PE CCC(3) at
    most), which covers the same instances the CCC emulator handles.

    ``backend`` selects the execution engine (``"bool"``/``"packed"``;
    default from ``REPRO_BVM_BACKEND``).  Both return identical tables
    and the identical ``cycles`` count — the packed backend only changes
    how fast the simulation runs, not what the simulated machine does.
    """
    plan = build_bvm_tt(problem, width=width, r=r)
    machine = plan.prog.build_machine(backend=backend)
    machine.feed_input(plan.input_bits())
    cycles = plan.prog.run(machine)
    cost, best = _decode(plan, machine, problem)
    return BVMTTResult(
        problem=problem,
        layout=plan.layout,
        scale=plan.scale,
        cost=cost,
        best_action=best,
        cycles=cycles,
        r=plan.r,
        width=width,
        backend=machine.backend,
    )
