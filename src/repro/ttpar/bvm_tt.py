"""The complete TT algorithm as a bit-level BVM program (paper §7).

This is the paper's actual artifact: the §6 ASCEND scheme compiled down
to single-bit CCC instructions.  Per the implementation scheme of §7:

* each PE stands for a pair ``(S, i)`` — ``S`` on the high address bits,
  the action index ``i`` on the low bits (which land inside the cycles);
* the predicates ``e ∈ S ∩ T_i`` and ``e ∈ S - T_i`` are built from the
  **processor-ID** bits and per-action membership rows ``TB[e]`` loaded
  by matching the ``i`` bits against each action index (the paper:
  "``T_i`` should be input to the BVM");
* the ``e``-loop moves ``R``/``Q`` words along the subset dimensions via
  the lateral sweeps of :mod:`repro.bvm.hyperops`, with the dataflow
  controlled by the enable register;
* the minimization is the §6 ASCEND over the ``i`` dimensions, done with
  the bit-serial tagged-min so the argmin rides along;
* arithmetic is ``W``-bit saturating fixed point; the all-ones word is
  ``INF`` and stays absorbing, which implements the paper's sentinel
  argument at the bit level.

Everything after the initial host pokes (none are needed — even the
processor-ID, layer popcounts, ``p(S)`` prefix sums and ``t_i * p(S)``
products are computed *in machine* with host-immediate constants folded
into instruction truth tables) runs through the simulator's five-line
execution core, so the returned tables carry an honest cycle count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..bvm import bitserial as bs
from ..bvm.batch import PackedBatchBVM
from ..bvm.hyperops import route_dim
from ..bvm.isa import FN, Reg
from ..bvm.machine import BVM
from ..bvm.primitives import processor_id
from ..bvm.program import ProgramBuilder
from ..core.errors import InvalidProblem
from ..core.problem import TTProblem
from ..obs import trace as _trace
from ..util.bitops import popcount_array
from ..util.fixedpoint import FixedPointScale, choose_scale
from .layout import TTLayout, pad_actions

__all__ = [
    "BVMTTResult",
    "build_bvm_tt",
    "build_bvm_tt_batch",
    "solve_tt_bvm",
    "solve_tt_bvm_batch",
]


@dataclass
class BVMTTResult:
    """Decoded output of a bit-level TT run.

    ``cost``/``best_action`` have the same shape and semantics as the
    sequential :class:`~repro.core.sequential.DPResult` tables; ``cycles``
    is the exact number of single-bit machine instructions executed and
    ``scale`` the fixed-point encoding used.
    """

    problem: TTProblem
    layout: TTLayout
    scale: FixedPointScale
    cost: np.ndarray
    best_action: np.ndarray
    cycles: int
    r: int
    width: int
    backend: str = "bool"

    @property
    def optimal_cost(self) -> float:
        return float(self.cost[self.problem.universe])

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.optimal_cost)

    def tree(self):
        from .extract import tree_from_tables

        return tree_from_tables(self.problem, self.cost, self.best_action)


def _choose_r(dims: int) -> int:
    for r in range(1, 5):
        if r + (1 << r) >= dims:
            return r
    raise ValueError(f"problem needs {dims} hypercube dims; CCC(r<=4) is the cap")


@dataclass
class _Plan:
    """Program plus the register map needed to decode the results."""

    prog: ProgramBuilder
    layout: TTLayout
    scale: FixedPointScale
    M: list
    ARG: list
    r: int
    width: int

    def input_bits(self) -> list[int]:
        return [0] * self.prog.Q  # consumed by cycle-ID inside processor-ID


def _encode_instance(
    problem: TTProblem, padded: TTProblem, k: int, width: int
) -> tuple[FixedPointScale, list[int], list[int]]:
    """Fixed-point encode one instance's costs and weights.

    Split scaling: the machine multiplies encoded costs by encoded
    weights, so the two factors must carry *square roots* of the overall
    scale — encoding both at ``scale.scale`` would square it and
    overflow.
    """
    finite_costs = [a.cost for a in problem.actions if math.isfinite(a.cost)]
    scale = choose_scale(finite_costs or [1.0], problem.weights, k, width)
    m_exp = int(round(math.log2(scale.scale)))
    scale_w = 2.0 ** (m_exp - m_exp // 2)
    scale_c = 2.0 ** (m_exp // 2)
    enc_costs = [
        scale.inf if math.isinf(a.cost) else int(round(a.cost * scale_c))
        for a in padded.actions
    ]
    enc_weights = [int(round(w * scale_w)) for w in problem.weights]
    if any(c > scale.max_value for c in enc_costs if c != scale.inf) or any(
        w > scale.max_value for w in enc_weights
    ):
        raise OverflowError("split-scale encoding overflows the word width")
    return scale, enc_costs, enc_weights


def build_bvm_tt(problem: TTProblem, width: int = 16, r: int | None = None) -> _Plan:
    """Emit the full TT program for ``problem`` (no execution)."""
    problem.require_adequate()
    padded = pad_actions(problem)
    layout = TTLayout.for_problem(problem)
    k, p = layout.k, layout.p
    r = _choose_r(layout.dims) if r is None else r
    if r + (1 << r) < layout.dims:
        raise ValueError(f"CCC(r={r}) too small for {layout.dims} dims")

    scale, enc_costs, enc_weights = _encode_instance(problem, padded, k, width)

    prog = ProgramBuilder(r, L=256)
    pool = prog.pool
    W = width

    # ------------------------------------------------------------------
    # Register map (data first — see the allocation discipline note).
    # ------------------------------------------------------------------
    M = pool.alloc(W)
    Rw = pool.alloc(W)
    Qw = pool.alloc(W)
    TP = pool.alloc(W)
    PB = pool.alloc(W)       # shared partner-copy buffer (R/Q/M routes)
    ARG = pool.alloc(p)
    ARG0 = pool.alloc(p)
    PARG = pool.alloc(p)
    lk = max(1, k.bit_length())
    LAYER = pool.alloc(lk)
    TB = pool.alloc(k)       # TB[e] = (e ∈ T_i) per PE
    IS_TEST = pool.alloc1()
    GATE = pool.alloc1()
    GATE2 = pool.alloc1()
    pid = pool.alloc(r + (1 << r))

    # ------------------------------------------------------------------
    # Phase 1: self-knowledge — processor-ID and per-action structure.
    # ------------------------------------------------------------------
    prog.mark("processor-id")
    processor_id(prog, pid)
    i_word = pid[:p]          # action index bits
    s_bits = pid[p : p + k]   # subset membership bits

    prog.mark("control-bits")
    prog.clear(IS_TEST)
    for row in TB:
        prog.clear(row)
    match = pool.alloc1()
    for v, act in enumerate(padded.actions):
        bs.equals_const(prog, i_word, v, match)
        if act.is_test:
            prog.logic(IS_TEST, FN.OR, IS_TEST, match)
        for e in range(k):
            if (act.subset >> e) & 1:
                prog.logic(TB[e], FN.OR, TB[e], match)

    # LAYER = popcount of the S bits (in-machine, gated unit adds).
    for row in LAYER:
        prog.clear(row)
    for e in range(k):
        prog.enable_from(s_bits[e])
        bs.add_const_into(prog, LAYER, 1, saturate=False)
        prog.enable_all()

    # ------------------------------------------------------------------
    # Phase 2: arithmetic inputs — p(S), t_i, TP = t_i * p(S).
    # ------------------------------------------------------------------
    prog.mark("arith-inputs")
    PS = pool.alloc(W)
    CW = pool.alloc(W)
    for row in PS:
        prog.clear(row)
    for e in range(k):
        prog.enable_from(s_bits[e])
        bs.add_const_into(prog, PS, enc_weights[e])
        prog.enable_all()
    for v, act in enumerate(padded.actions):
        bs.equals_const(prog, i_word, v, match)
        prog.enable_from(match)
        bs.set_word_const(prog, CW, min(enc_costs[v], scale.inf))
        prog.enable_all()
    bs.mult_into(prog, TP, PS, CW)
    # Infinite-cost actions (pads and any user INF) force TP = INF
    # directly — the sentinel must not depend on p(S)'s encoding.
    for v, act in enumerate(padded.actions):
        if enc_costs[v] == scale.inf:
            bs.equals_const(prog, i_word, v, match)
            prog.enable_from(match)
            bs.set_word_const(prog, TP, scale.inf)
            prog.enable_all()
    pool.free(*PS, *CW, match)

    # M init: INF everywhere, 0 on the empty set's PEs.
    prog.mark("m-init")
    bs.set_word_const(prog, M, scale.inf)
    bs.equals_const(prog, LAYER, 0, GATE)
    prog.enable_from(GATE)
    bs.set_word_const(prog, M, 0)
    prog.enable_all()
    bs.copy_word(prog, ARG0, i_word)
    bs.copy_word(prog, ARG, ARG0)

    # ------------------------------------------------------------------
    # Phase 3: the §6 TT() loop.
    # ------------------------------------------------------------------
    for j in range(1, k + 1):
        prog.mark("copy-buffers")
        bs.copy_word(prog, Rw, M)
        bs.copy_word(prog, Qw, M)

        # e-loop: R[S,i] = R[S-{e},i] if e ∈ S∩T_i ; Q likewise for S-T_i.
        prog.mark("e-loop")
        for e in range(k):
            dim = layout.subset_dim(e)
            # cond_r = s_bit_e & TB[e] ; cond_q = s_bit_e & ~TB[e]
            route_dim(prog, Rw, PB, dim)
            prog.logic(GATE2, FN.AND, s_bits[e], TB[e])
            bs.select_word(prog, Rw, GATE2, PB, Rw)
            route_dim(prog, Qw, PB, dim)
            prog.logic(GATE2, FN.ANDN, s_bits[e], TB[e])
            bs.select_word(prog, Qw, GATE2, PB, Qw)

        # finalize layer j: M = R + TP (+ Q if test), ARG = own index.
        prog.mark("finalize")
        bs.equals_const(prog, LAYER, j, GATE)
        prog.enable_from(GATE)
        bs.copy_word(prog, M, Rw)
        bs.add_into(prog, M, TP)
        prog.enable_all()
        prog.logic(GATE2, FN.AND, GATE, IS_TEST)
        prog.enable_from(GATE2)
        bs.add_into(prog, M, Qw)
        prog.enable_all()
        prog.enable_from(GATE)
        bs.copy_word(prog, ARG, ARG0)
        prog.enable_all()

        # §6 ASCEND minimization over the i dimensions, argmin riding along.
        prog.mark("min-ascend")
        for t in range(p):
            route_dim(prog, M, PB, t)
            route_dim(prog, ARG, PARG, t)
            bs.min_tagged_into(prog, M, ARG, PB, PARG, gate=GATE)

    return _Plan(prog=prog, layout=layout, scale=scale, M=M, ARG=ARG, r=r, width=width)


def _decode_tables(
    M_rows, ARG_rows, read, n: int, layout: TTLayout,
    scale: FixedPointScale, problem: TTProblem,
) -> tuple[np.ndarray, np.ndarray]:
    """Read the M/ARG planes (via ``read(row) -> bool array``) and decode
    them into the DP-shaped cost/best-action tables."""
    n_sub = 1 << layout.k
    m_words = np.zeros(n, dtype=np.int64)
    for w, row in enumerate(M_rows):
        m_words |= read(row).astype(np.int64) << w
    args = np.zeros(n, dtype=np.int64)
    for w, row in enumerate(ARG_rows):
        args |= read(row).astype(np.int64) << w

    masks = np.arange(n_sub, dtype=np.int64)
    addr0 = masks << layout.p
    cost = scale.decode_array(m_words[addr0])
    best = args[addr0]
    best = np.where(np.isfinite(cost), best, -1)
    best[0] = -1
    # Clamp pad indices (only reachable on infeasible subsets anyway).
    best = np.where(best >= problem.n_actions, -1, best)
    return cost, best


def _decode(plan: _Plan, machine: BVM, problem: TTProblem) -> tuple[np.ndarray, np.ndarray]:
    return _decode_tables(
        plan.M, plan.ARG, machine.read, machine.n, plan.layout, plan.scale, problem
    )


def solve_tt_bvm(
    problem: TTProblem,
    width: int = 16,
    r: int | None = None,
    backend: str | None = None,
) -> BVMTTResult:
    """Build, run and decode the bit-level TT program.

    Practical sizes: ``k + ceil(log2 N) <= 11`` (a 2048-PE CCC(3) at
    most), which covers the same instances the CCC emulator handles.

    ``backend`` selects the execution engine (``"bool"``/``"packed"``;
    default from ``REPRO_BVM_BACKEND``).  Both return identical tables
    and the identical ``cycles`` count — the packed backend only changes
    how fast the simulation runs, not what the simulated machine does.
    """
    plan = build_bvm_tt(problem, width=width, r=r)
    machine = plan.prog.build_machine(backend=backend)
    machine.feed_input(plan.input_bits())
    cycles = plan.prog.run(machine)
    cost, best = _decode(plan, machine, problem)
    return BVMTTResult(
        problem=problem,
        layout=plan.layout,
        scale=plan.scale,
        cost=cost,
        best_action=best,
        cycles=cycles,
        r=plan.r,
        width=width,
        backend=machine.backend,
    )


# ----------------------------------------------------------------------
# Instance batching: one shape-generic program, B lockstep instances
# ----------------------------------------------------------------------
#
# ``build_bvm_tt`` folds the per-problem constants (action membership,
# encoded weights and costs) into instruction truth tables, so two
# different instances never share a program.  The batch path splits the
# two concerns: a *shape-generic* program — a pure function of
# ``(r, k, p, width)`` — carries the whole §6/§7 dataflow, and the
# per-instance data lands in host-poked register rows (the paper's
# "T_i should be input to the BVM" host-load, which costs no machine
# cycles).  Every instance of the same shape then replays the identical
# compiled instruction stream, which is exactly what lets a
# :class:`~repro.bvm.batch.PackedBatchBVM` run B of them in lockstep.

BATCH_BACKENDS = ("packed", "bool")


@dataclass
class _BatchPlan:
    """Shape-generic program plus the rows the host pokes per lane."""

    prog: ProgramBuilder
    layout: TTLayout
    M: list
    ARG: list
    IWORD: list
    SBITS: list
    LAYER: list
    TB: list
    IS_TEST: Reg
    PS: list
    CW: list
    INFM: Reg
    r: int
    width: int
    # Shape-level PE decodes (action index / subset / popcount per PE).
    i_pe: np.ndarray
    s_pe: np.ndarray
    layer_pe: np.ndarray


@lru_cache(maxsize=64)
def _batch_plan(r: int, k: int, p: int, width: int) -> _BatchPlan:
    """Emit the shape-generic TT program for ``(r, k, p, width)``.

    The emitted stream is *identical* for every instance of the shape:
    all immediates are shape facts (the INF sentinel of the word width,
    the layer indices, the subset dimensions), never problem data — so
    the compiled program and its replay cycle count are properties of
    the shape, and one compile serves every batch of that shape.
    """
    layout = TTLayout(k=k, p=p)
    if r + (1 << r) < layout.dims:
        raise ValueError(f"CCC(r={r}) too small for {layout.dims} dims")
    inf = (1 << width) - 1  # FixedPointScale's INF sentinel for this width
    prog = ProgramBuilder(r, L=256)
    pool = prog.pool
    W = width

    # ------------------------------------------------------------------
    # Register map — every host-poked row allocated before any macro
    # emits (see the allocation discipline note in bvm.program).
    # ------------------------------------------------------------------
    M = pool.alloc(W)
    Rw = pool.alloc(W)
    Qw = pool.alloc(W)
    TP = pool.alloc(W)
    PB = pool.alloc(W)       # shared partner-copy buffer (R/Q/M routes)
    ARG = pool.alloc(p)
    ARG0 = pool.alloc(p)
    PARG = pool.alloc(p)
    lk = max(1, k.bit_length())
    LAYER = pool.alloc(lk)   # poked: popcount of S per PE
    TB = pool.alloc(k)       # poked: TB[e] = (e ∈ T_i) per PE
    IS_TEST = pool.alloc1()  # poked
    GATE = pool.alloc1()
    GATE2 = pool.alloc1()
    IWORD = pool.alloc(p)    # poked: action-index bits of the PE address
    SBITS = pool.alloc(k)    # poked: subset-membership bits of the address
    PS = pool.alloc(W)       # poked: encoded p(S) per PE
    CW = pool.alloc(W)       # poked: encoded cost t_i per PE
    INFM = pool.alloc1()     # poked: 1 where t_i = INF (pads, user INF)

    # ------------------------------------------------------------------
    # Arithmetic: TP = t_i * p(S), with the INF sentinel forced.
    # ------------------------------------------------------------------
    prog.mark("arith-inputs")
    bs.mult_into(prog, TP, PS, CW)
    # Infinite-cost actions force TP = INF directly — the sentinel must
    # not depend on p(S)'s encoding.
    prog.enable_from(INFM)
    bs.set_word_const(prog, TP, inf)
    prog.enable_all()
    pool.free(*PS, *CW, INFM)

    # M init: INF everywhere, 0 on the empty set's PEs.
    prog.mark("m-init")
    bs.set_word_const(prog, M, inf)
    bs.equals_const(prog, LAYER, 0, GATE)
    prog.enable_from(GATE)
    bs.set_word_const(prog, M, 0)
    prog.enable_all()
    bs.copy_word(prog, ARG0, IWORD)
    bs.copy_word(prog, ARG, ARG0)

    # ------------------------------------------------------------------
    # The §6 TT() loop — verbatim the single-instance phase 3.
    # ------------------------------------------------------------------
    for j in range(1, k + 1):
        prog.mark("copy-buffers")
        bs.copy_word(prog, Rw, M)
        bs.copy_word(prog, Qw, M)

        prog.mark("e-loop")
        for e in range(k):
            dim = layout.subset_dim(e)
            route_dim(prog, Rw, PB, dim)
            prog.logic(GATE2, FN.AND, SBITS[e], TB[e])
            bs.select_word(prog, Rw, GATE2, PB, Rw)
            route_dim(prog, Qw, PB, dim)
            prog.logic(GATE2, FN.ANDN, SBITS[e], TB[e])
            bs.select_word(prog, Qw, GATE2, PB, Qw)

        prog.mark("finalize")
        bs.equals_const(prog, LAYER, j, GATE)
        prog.enable_from(GATE)
        bs.copy_word(prog, M, Rw)
        bs.add_into(prog, M, TP)
        prog.enable_all()
        prog.logic(GATE2, FN.AND, GATE, IS_TEST)
        prog.enable_from(GATE2)
        bs.add_into(prog, M, Qw)
        prog.enable_all()
        prog.enable_from(GATE)
        bs.copy_word(prog, ARG, ARG0)
        prog.enable_all()

        prog.mark("min-ascend")
        for t in range(p):
            route_dim(prog, M, PB, t)
            route_dim(prog, ARG, PARG, t)
            bs.min_tagged_into(prog, M, ARG, PB, PARG, gate=GATE)

    n = (1 << r) * (1 << (1 << r))
    q = np.arange(n, dtype=np.int64)
    i_pe = q & ((1 << p) - 1)
    s_pe = (q >> p) & ((1 << k) - 1)
    layer_pe = popcount_array(s_pe, k)
    return _BatchPlan(
        prog=prog, layout=layout, M=M, ARG=ARG,
        IWORD=IWORD, SBITS=SBITS, LAYER=LAYER, TB=TB, IS_TEST=IS_TEST,
        PS=PS, CW=CW, INFM=INFM, r=r, width=width,
        i_pe=i_pe, s_pe=s_pe, layer_pe=layer_pe,
    )


def build_bvm_tt_batch(r: int, k: int, p: int, width: int = 16) -> _BatchPlan:
    """Public wrapper of the cached shape-generic batch program."""
    return _batch_plan(r, k, p, width)


def _saturating_subset_sums(enc_weights: list[int], k: int, width: int) -> np.ndarray:
    """Encoded p(S) for every subset, replicating the machine's sticky
    saturating bit-serial adds (element order, all-ones absorbing)."""
    limit = 1 << width
    inf = limit - 1
    acc = np.zeros(1 << k, dtype=np.int64)
    sub = np.arange(1 << k, dtype=np.int64)
    for e in range(k):
        sel = ((sub >> e) & 1) == 1
        acc[sel] += enc_weights[e]
        acc[acc >= limit] = inf
    return acc


def _poke_lane(poke, plan: _BatchPlan, padded: TTProblem, scale, enc_costs, enc_weights) -> None:
    """Load one instance's data rows (host pokes, zero machine cycles)."""
    i_pe, s_pe = plan.i_pe, plan.s_pe
    for w, row in enumerate(plan.IWORD):
        poke(row, ((i_pe >> w) & 1).astype(bool))
    for e, row in enumerate(plan.SBITS):
        poke(row, ((s_pe >> e) & 1).astype(bool))
    for w, row in enumerate(plan.LAYER):
        poke(row, ((plan.layer_pe >> w) & 1).astype(bool))
    subs = np.array([a.subset for a in padded.actions], dtype=np.int64)
    tests = np.array([a.is_test for a in padded.actions], dtype=bool)
    for e, row in enumerate(plan.TB):
        poke(row, ((subs[i_pe] >> e) & 1).astype(bool))
    poke(plan.IS_TEST, tests[i_pe])
    ps = _saturating_subset_sums(enc_weights, plan.layout.k, plan.width)[s_pe]
    for w, row in enumerate(plan.PS):
        poke(row, ((ps >> w) & 1).astype(bool))
    cw = np.array([min(c, scale.inf) for c in enc_costs], dtype=np.int64)[i_pe]
    for w, row in enumerate(plan.CW):
        poke(row, ((cw >> w) & 1).astype(bool))
    is_inf = np.array([c == scale.inf for c in enc_costs], dtype=bool)
    poke(plan.INFM, is_inf[i_pe])


def solve_tt_bvm_batch(
    problems,
    width: int = 16,
    r: int | None = None,
    backend: str = "packed",
) -> list[BVMTTResult]:
    """Solve many TT instances through lockstep batched replays.

    Instances are grouped by shape ``(r, k, p)``; each group pokes its
    per-lane data into one :class:`~repro.bvm.batch.PackedBatchBVM` and
    replays the shape's compiled program *once*, so B instances cost one
    replay's interpreter overhead.  Ragged batches (mixed ``k``/``N``)
    simply form several groups.  Results come back in input order, each
    lane bit-identical to a ``B = 1`` run and to
    :func:`solve_tt_bvm` on the same instance.

    ``backend="bool"`` runs each lane of the *same* shape-generic poked
    program on the boolean oracle machine instead (slow; differential
    use).  ``cycles`` is the lockstep replay's machine-cycle count — a
    shape property, identical for every lane of a group.
    """
    if backend not in BATCH_BACKENDS:
        raise InvalidProblem(
            f"unknown batch backend {backend!r} (choose from {BATCH_BACKENDS})"
        )
    problems = list(problems)
    results: list[BVMTTResult | None] = [None] * len(problems)
    groups: dict[tuple[int, int, int], list] = {}
    for idx, problem in enumerate(problems):
        problem.require_adequate()
        padded = pad_actions(problem)
        layout = TTLayout.for_problem(problem)
        rr = _choose_r(layout.dims) if r is None else r
        if rr + (1 << rr) < layout.dims:
            raise ValueError(f"CCC(r={rr}) too small for {layout.dims} dims")
        scale, enc_costs, enc_weights = _encode_instance(
            problem, padded, layout.k, width
        )
        groups.setdefault((rr, layout.k, layout.p), []).append(
            (idx, problem, padded, scale, enc_costs, enc_weights)
        )

    tr = _trace.current()
    for (rr, k, p), lanes in groups.items():
        plan = _batch_plan(rr, k, p, width)
        B = len(lanes)
        if tr.collecting:
            with tr.span(
                "bvm.compile", cat="bvm", r=rr, k=k, p=p, batch=B,
                instructions=len(plan.prog.instructions),
            ):
                compiled = plan.prog.compiled()
        else:
            compiled = plan.prog.compiled()

        if backend == "packed":
            machine = PackedBatchBVM(rr, batch=B, L=plan.prog.L)
            for lane, (_, _, padded, scale, enc_costs, enc_weights) in enumerate(lanes):
                _poke_lane(
                    lambda row, bits, lane=lane: machine.poke_lane(row, lane, bits),
                    plan, padded, scale, enc_costs, enc_weights,
                )
            cycles = compiled.run(machine)
            for lane, (idx, problem, padded, scale, enc_costs, enc_weights) in enumerate(lanes):
                cost, best = _decode_tables(
                    plan.M, plan.ARG,
                    lambda row, lane=lane: machine.read_lane(row, lane),
                    machine.n, plan.layout, scale, problem,
                )
                results[idx] = BVMTTResult(
                    problem=problem, layout=plan.layout, scale=scale,
                    cost=cost, best_action=best, cycles=cycles,
                    r=rr, width=width, backend="packed-batch",
                )
        else:
            for idx, problem, padded, scale, enc_costs, enc_weights in lanes:
                machine = plan.prog.build_machine(backend="bool")
                _poke_lane(machine.poke, plan, padded, scale, enc_costs, enc_weights)
                cycles = plan.prog.run(machine)
                cost, best = _decode_tables(
                    plan.M, plan.ARG, machine.read, machine.n,
                    plan.layout, scale, problem,
                )
                results[idx] = BVMTTResult(
                    problem=problem, layout=plan.layout, scale=scale,
                    cost=cost, best_action=best, cycles=cycles,
                    r=rr, width=width, backend="bool",
                )
    return results  # type: ignore[return-value]
