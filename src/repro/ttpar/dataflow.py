"""The paper's parallel TT algorithm (§5–§6) as an ASCEND program.

One PE per ``(S, i)`` pair.  Registers:

=========  ====================================================
``M``      the DP value table ``M[S,i]`` (``C(S)`` after flooding)
``R``      propagation buffer for ``M[S - T_i, i]``
``Q``      propagation buffer for ``M[S ∩ T_i, i]``
``TP``     precomputed charge ``t_i * p(S)``
``ARG``    action index carried through the minimization
``LAYER``  ``#S`` (which DP layer this PE belongs to)
``GATE``   scratch: "my layer is the one being finalized"
=========  ====================================================

Program structure, per layer ``j = 1..k`` (exactly the TT() loop of §6):

1. ``R = Q = M`` everywhere (local);
2. the ``e``-loop: for ``e = 0..k-1``, one exchange along subset
   dimension ``p+e``; a PE with ``e ∈ S ∩ T_i`` pulls ``R`` from its
   ``S - {e}`` neighbour, and a PE with ``e ∈ S - T_i`` pulls ``Q`` —
   after which ``R[S,i] = M[S-T_i, i]`` and ``Q[S,i] = M[S∩T_i, i]``
   (the broadcast of Figs. 8–9);
3. finalize (local, layer ``j`` only):
   ``M = R + TP (+ Q if i is a test)`` — ``INF`` charges automatically
   exclude non-splitting tests and non-progressing treatments;
4. the §6 ASCEND minimization over the ``i`` dimensions ``0..p-1``,
   flooding ``C(S)`` (and the argmin index) into every ``(S, ·)`` PE.

The whole program is built once and runs on either the ideal
:class:`~repro.hypercube.machine.Hypercube` or the
:class:`~repro.hypercube.ccc.CCC` emulator (with replication when the CCC
is larger than the problem), giving identical tables — one of the central
correctness claims of the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.problem import TTProblem
from ..core.sequential import subset_weights
from ..hypercube.ccc import CCC, CCCStats
from ..hypercube.machine import DimOp, Hypercube, LocalOp, Program, RunStats, State
from .layout import TTLayout, choose_ccc_r, pad_actions

__all__ = [
    "ParallelTTResult",
    "build_tt_state",
    "build_tt_program",
    "solve_tt_hypercube",
    "solve_tt_ccc",
    "EloopTrace",
    "trace_r_propagation",
]

INF = np.inf


@dataclass
class ParallelTTResult:
    """Cost table and machine counters from a parallel TT run."""

    problem: TTProblem
    layout: TTLayout
    cost: np.ndarray         # C(S) per subset mask, shape (2^k,)
    best_action: np.ndarray  # argmin action per subset (into *padded* list)
    stats: RunStats | None = None
    ccc_stats: CCCStats | None = None

    @property
    def optimal_cost(self) -> float:
        return float(self.cost[self.problem.universe])

    @property
    def feasible(self) -> bool:
        return np.isfinite(self.optimal_cost)

    def tree(self):
        """Extract an optimal procedure (see :mod:`repro.ttpar.extract`)."""
        from .extract import tree_from_tables

        return tree_from_tables(self.problem, self.cost, self.best_action)


def build_tt_state(problem: TTProblem, state_dims: int | None = None) -> tuple[TTLayout, State]:
    """Initialize machine registers for ``problem``.

    ``state_dims`` may exceed the layout's ``k + p`` (CCC replication):
    all register contents depend only on the low ``k + p`` address bits,
    so replica PEs march in lockstep with their originals.
    """
    padded = pad_actions(problem)
    layout = TTLayout.for_problem(problem)
    dims = layout.dims if state_dims is None else state_dims
    if dims < layout.dims:
        raise ValueError(f"need at least {layout.dims} dims, got {dims}")

    st = State(dims)
    addr = st.addresses
    s_of = layout.subset_of(addr)
    i_of = layout.action_of(addr)

    p_table = subset_weights(problem)  # p(S) over 2^k masks
    costs = padded.cost_array          # padded costs; pads are INF
    is_test = padded.test_mask_array

    ps = p_table[s_of]
    with np.errstate(invalid="ignore"):  # INF pad cost * p(∅)=0 -> overwritten
        tp = costs[i_of] * ps
    tp[s_of == 0] = 0.0

    st["M"] = np.where(s_of == 0, 0.0, INF)
    st["R"] = st["M"]
    st["Q"] = st["M"]
    st["TP"] = tp
    st["ARG"] = i_of
    st["LAYER"] = layout.layer_of(addr)
    st["GATE"] = np.zeros(st.n, dtype=bool)
    st["IS_TEST"] = is_test[i_of]
    return layout, st


def _eloop_op(layout: TTLayout, padded: TTProblem, e: int) -> DimOp:
    """One ``e``-loop exchange: fused R- and Q-pulls along dim ``p+e``."""
    t_masks = padded.subset_array
    dim = layout.subset_dim(e)

    def fn(own, partner, addr):
        i_of = layout.action_of(addr)
        in_t = ((t_masks[i_of] >> e) & 1).astype(bool)
        in_s = ((addr >> dim) & 1).astype(bool)  # e ∈ S for the receiver
        take_r = in_s & in_t          # e ∈ S ∩ T_i : pull R from S - {e}
        take_q = in_s & ~in_t         # e ∈ S - T_i : pull Q from S - {e}
        return {
            "R": np.where(take_r, partner["R"], own["R"]),
            "Q": np.where(take_q, partner["Q"], own["Q"]),
        }

    return DimOp(dim=dim, fn=fn, label=f"e-loop e={e}")


def _copy_buffers_op() -> LocalOp:
    def fn(own, addr):
        return {"R": own["M"].copy(), "Q": own["M"].copy()}

    return LocalOp(fn, label="R = Q = M")


def _finalize_op(j: int) -> LocalOp:
    """Layer-``j`` combine: ``M = R + TP (+ Q if test)``; reset ``ARG``."""

    def fn(own, addr):
        gate = own["LAYER"] == j
        m = own["R"] + own["TP"] + np.where(own["IS_TEST"], own["Q"], 0.0)
        return {
            "M": np.where(gate, m, own["M"]),
            # ARG restarts from this PE's own action index each layer
            # (stored once in ARG0 at init).
            "ARG": np.where(gate, own["ARG0"], own["ARG"]),
            "GATE": gate,
        }

    return LocalOp(fn, label=f"finalize layer {j}")


def _min_op(t: int) -> DimOp:
    """§6 minimization step ``M[S,i] = min(M[S,i], M[S,i#t])`` with argmin
    carried along (smaller action index wins ties, matching the DP)."""

    def fn(own, partner, addr):
        better = partner["M"] < own["M"]
        tie = (partner["M"] == own["M"]) & (partner["ARG"] < own["ARG"])
        take = own["GATE"] & (better | tie)
        return {
            "M": np.where(take, partner["M"], own["M"]),
            "ARG": np.where(take, partner["ARG"], own["ARG"]),
        }

    return DimOp(dim=t, fn=fn, label=f"min dim {t}")


def build_tt_program(problem: TTProblem) -> tuple[TTLayout, Program]:
    """The complete TT() program of §6 for ``problem``."""
    padded = pad_actions(problem)
    layout = TTLayout.for_problem(problem)
    program: Program = []
    for j in range(1, layout.k + 1):
        program.append(_copy_buffers_op())
        for e in range(layout.k):
            program.append(_eloop_op(layout, padded, e))
        program.append(_finalize_op(j))
        for t in range(layout.p):
            program.append(_min_op(t))
    return layout, program


def _prepare(problem: TTProblem, state_dims: int | None):
    layout, st = build_tt_state(problem, state_dims)
    # Keep each PE's own action index available for ARG resets.
    st["ARG0"] = st["ARG"]
    _, program = build_tt_program(problem)
    return layout, st, program


def _collect(problem: TTProblem, layout: TTLayout, st: State) -> tuple[np.ndarray, np.ndarray]:
    n_sub = 1 << layout.k
    masks = np.arange(n_sub, dtype=np.int64)
    addr0 = (masks << layout.p)  # representative PE (S, i=0)
    cost = np.asarray(st["M"])[addr0].astype(np.float64)
    best = np.asarray(st["ARG"])[addr0].astype(np.int64)
    best[~np.isfinite(cost)] = -1
    best[0] = -1
    return cost, best


def solve_tt_hypercube(problem: TTProblem) -> ParallelTTResult:
    """Run the parallel TT algorithm on the ideal hypercube simulator."""
    problem.require_adequate()
    layout, st, program = _prepare(problem, state_dims=None)
    hc = Hypercube(layout.dims)
    stats = hc.run(st, program)
    cost, best = _collect(problem, layout, st)
    return ParallelTTResult(problem, layout, cost, best, stats=stats)


def solve_tt_ccc(
    problem: TTProblem, r: int | None = None, schedule: str = "pipelined"
) -> ParallelTTResult:
    """Run the parallel TT algorithm on the CCC emulator.

    ``r`` defaults to the smallest CCC that fits ``k + p`` dimensions;
    smaller problems are replicated across the unused high dimensions.
    """
    problem.require_adequate()
    layout = TTLayout.for_problem(problem)
    r = choose_ccc_r(layout.dims) if r is None else r
    ccc = CCC(r)
    if ccc.dims < layout.dims:
        raise ValueError(f"CCC(r={r}) has {ccc.dims} dims; need {layout.dims}")
    layout, st, program = _prepare(problem, state_dims=ccc.dims)
    ccc_stats = ccc.run(st, program, schedule=schedule)
    cost, best = _collect(problem, layout, st)
    return ParallelTTResult(problem, layout, cost, best, ccc_stats=ccc_stats)


# ----------------------------------------------------------------------
# Fig 8/9 tracing: the R-propagation broadcast, step by step
# ----------------------------------------------------------------------


@dataclass
class EloopTrace:
    """Snapshots of where each ``R[S,i]`` value originates, per ``e`` step.

    ``source[e][S]`` is the subset whose ``M`` value PE ``(S, i)`` holds
    after the ``e``-th iteration — the contents of the paper's Fig. 9
    table (which tracks ``R`` for one fixed test ``T``)."""

    test_mask: int
    k: int
    source: list[dict[int, int]]


def trace_r_propagation(k: int, test_mask: int) -> EloopTrace:
    """Reproduce Fig. 9: run the ``e``-loop on symbolic origins.

    Instead of numeric ``M`` values each PE carries the *mask it got its
    value from*; after the full loop PE ``S`` must hold ``S - T`` — the
    correctness invariant proved in §6 (Fig. 8's table).
    """
    n_sub = 1 << k
    origin = np.arange(n_sub, dtype=np.int64)  # R[S] = M[S] initially
    snaps: list[dict[int, int]] = []
    masks = np.arange(n_sub, dtype=np.int64)
    for e in range(k):
        in_s = (masks >> e) & 1
        in_t = (test_mask >> e) & 1
        take = (in_s == 1) & (in_t == 1)
        partner = masks ^ (1 << e)
        origin = np.where(take, origin[partner], origin)
        snaps.append({int(s): int(origin[s]) for s in range(n_sub)})
    return EloopTrace(test_mask=test_mask, k=k, source=snaps)
