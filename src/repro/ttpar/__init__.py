"""The paper's parallel TT algorithm and its complexity analysis."""

from .analysis import (
    SpeedupPoint,
    machine_sizing_table,
    max_k_for_budget,
    model_bit_steps,
    model_route_steps,
    sequential_word_ops,
    speedup_curve,
    speedup_point,
)
from .bvm_tt import BVMTTResult, build_bvm_tt, solve_tt_bvm
from .costmodel import (
    dominant_term,
    paper_scale_estimate,
    predict_loop_cycles,
    predict_phase_cycles,
    predict_phase_cycles_for,
)
from .dataflow import (
    EloopTrace,
    ParallelTTResult,
    build_tt_program,
    build_tt_state,
    solve_tt_ccc,
    solve_tt_hypercube,
    trace_r_propagation,
)
from .extract import rederive_policy, tree_from_tables
from .layout import TTLayout, choose_ccc_r, pad_actions
from .marking import (
    build_marking_program,
    mark_policy_subsets,
    policy_subsets_reference,
)
from .verify import VerificationReport, bellman_values, verify_cost_table

__all__ = [
    "TTLayout",
    "pad_actions",
    "choose_ccc_r",
    "ParallelTTResult",
    "build_tt_state",
    "build_tt_program",
    "solve_tt_hypercube",
    "solve_tt_ccc",
    "solve_tt_bvm",
    "build_bvm_tt",
    "BVMTTResult",
    "EloopTrace",
    "trace_r_propagation",
    "tree_from_tables",
    "rederive_policy",
    "SpeedupPoint",
    "speedup_point",
    "speedup_curve",
    "model_route_steps",
    "model_bit_steps",
    "sequential_word_ops",
    "max_k_for_budget",
    "machine_sizing_table",
    "verify_cost_table",
    "bellman_values",
    "VerificationReport",
    "predict_phase_cycles",
    "predict_phase_cycles_for",
    "predict_loop_cycles",
    "dominant_term",
    "paper_scale_estimate",
    "build_marking_program",
    "mark_policy_subsets",
    "policy_subsets_reference",
]
