"""The LayerStore contract: spec routing, budgets, cold-solve identity.

Both store backends sit behind one solve loop, so the observable
contract is simple: any store, any worker count, same bytes as the
reference oracle — and every misconfiguration (unknown kind, missing
spill dir, checkpoint on the mmap store, tables over the RAM budget)
fails loudly before any work is dispatched.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import solve
from repro.core.errors import InvalidProblem, SolverError
from repro.core.generators import random_instance
from repro.core.parallel import solve_dp_parallel
from repro.core.sequential import solve_dp_reference
from repro.core.supervisor import ResiliencePolicy
from repro.store import (
    RAM_BUDGET_ENV,
    MmapStore,
    RamStore,
    StoreSpec,
    open_store,
    ram_budget,
    tables_nbytes,
)

PROBLEM = random_instance(6, n_tests=6, n_treatments=4, seed=21)
REF = solve_dp_reference(PROBLEM)


def assert_ref_tables(result):
    assert np.array_equal(result.cost, REF.cost)
    assert np.array_equal(result.best_action, REF.best_action)


class TestStoreSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidProblem, match="unknown store kind"):
            StoreSpec(kind="tape")

    def test_mmap_requires_spill_dir(self):
        with pytest.raises(InvalidProblem, match="spill directory"):
            StoreSpec(kind="mmap")

    def test_ram_rejects_spill_dir(self, tmp_path):
        with pytest.raises(InvalidProblem, match="meaningless"):
            StoreSpec(kind="ram", spill_dir=str(tmp_path))

    def test_auto_resolution(self, tmp_path):
        assert StoreSpec().resolve() == "ram"
        assert StoreSpec(kind="ram").resolve() == "ram"
        assert StoreSpec(kind="auto", spill_dir=str(tmp_path)).resolve() == "mmap"
        assert StoreSpec(kind="mmap", spill_dir=str(tmp_path)).resolve() == "mmap"

    def test_open_store_kinds(self, tmp_path):
        assert isinstance(open_store(StoreSpec(), PROBLEM), RamStore)
        spec = StoreSpec(kind="mmap", spill_dir=str(tmp_path / "s"))
        assert isinstance(open_store(spec, PROBLEM), MmapStore)

    def test_open_store_rejects_checkpoint_with_mmap(self, tmp_path):
        spec = StoreSpec(kind="mmap", spill_dir=str(tmp_path / "s"))
        policy = ResiliencePolicy(checkpoint=str(tmp_path / "c.ckpt"))
        with pytest.raises(InvalidProblem, match="manifest already persists"):
            open_store(spec, PROBLEM, policy=policy)


class TestRamBudget:
    def test_unset_means_unlimited(self, monkeypatch):
        monkeypatch.delenv(RAM_BUDGET_ENV, raising=False)
        assert ram_budget() is None

    @pytest.mark.parametrize("bad", ["lots", "-1", "0"])
    def test_garbage_budget_is_loud(self, monkeypatch, bad):
        monkeypatch.setenv(RAM_BUDGET_ENV, bad)
        with pytest.raises(InvalidProblem, match=RAM_BUDGET_ENV):
            ram_budget()

    def test_ram_store_refuses_over_budget(self, monkeypatch):
        monkeypatch.setenv(RAM_BUDGET_ENV, str(tables_nbytes(PROBLEM.k) - 1))
        with pytest.raises(SolverError, match="--store=mmap"):
            solve_dp_parallel(PROBLEM, workers=1)

    def test_mmap_store_runs_under_budget(self, monkeypatch, tmp_path):
        # The same budget that stops the RAM store: file-backed tables
        # are page cache, not anonymous memory, so the spill store runs.
        monkeypatch.setenv(RAM_BUDGET_ENV, str(tables_nbytes(PROBLEM.k) - 1))
        spec = StoreSpec(kind="mmap", spill_dir=str(tmp_path / "spill"))
        result = solve_dp_parallel(PROBLEM, workers=1, store=spec)
        assert_ref_tables(result)

    def test_mmap_resident_scratch_is_bounded(self, tmp_path):
        store = MmapStore(PROBLEM, spill_dir=str(tmp_path / "spill"))
        assert store.resident_nbytes < tables_nbytes(20)


class TestColdSolveIdentity:
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("kind", ["ram", "mmap"])
    def test_bit_identical_to_reference(self, tmp_path, kind, workers):
        if kind == "mmap":
            spec = StoreSpec(kind="mmap", spill_dir=str(tmp_path / "spill"))
        else:
            spec = StoreSpec(kind="ram")
        result = solve_dp_parallel(
            PROBLEM, workers=workers, min_shard=1, store=spec
        )
        assert_ref_tables(result)
        assert result.recovery["store"] == kind

    def test_completed_spill_dir_resumes_instantly(self, tmp_path):
        spec = StoreSpec(kind="mmap", spill_dir=str(tmp_path / "spill"))
        first = solve_dp_parallel(PROBLEM, workers=1, store=spec)
        assert_ref_tables(first)
        again = solve_dp_parallel(PROBLEM, workers=1, store=spec)
        assert_ref_tables(again)
        assert again.recovery["resumed_from_layer"] == PROBLEM.k
        assert again.recovery["layers"] == []  # nothing recomputed


class TestDispatchRouting:
    def test_spill_dir_alone_selects_mmap(self, tmp_path):
        result = solve(PROBLEM, spill_dir=str(tmp_path / "spill"))
        assert_ref_tables(result)
        assert result.recovery["store"] == "mmap"

    def test_mmap_forces_parallel_under_auto(self, tmp_path):
        # PROBLEM.k is far below the auto parallel threshold; without
        # the routing rule the numpy backend would run and the spill
        # directory silently never materialize.
        small = random_instance(4, n_tests=3, n_treatments=3, seed=5)
        result = solve(
            small, backend="auto", store="mmap", spill_dir=str(tmp_path / "s")
        )
        cold = solve_dp_reference(small)
        assert np.array_equal(result.cost, cold.cost)
        assert (tmp_path / "s" / "manifest.json").exists()

    @pytest.mark.parametrize("backend", ["numpy", "reference"])
    def test_single_process_backend_with_mmap_raises(self, tmp_path, backend):
        with pytest.raises(InvalidProblem, match="parallel backend"):
            solve(
                PROBLEM, backend=backend,
                store="mmap", spill_dir=str(tmp_path / "s"),
            )

    def test_checkpoint_with_mmap_raises(self, tmp_path):
        with pytest.raises(InvalidProblem, match="manifest already persists"):
            solve(
                PROBLEM,
                checkpoint=str(tmp_path / "c.ckpt"),
                store="mmap", spill_dir=str(tmp_path / "s"),
            )

    def test_spec_with_conflicting_spill_dir_kwarg_raises(self, tmp_path):
        spec = StoreSpec(kind="mmap", spill_dir=str(tmp_path / "a"))
        with pytest.raises(InvalidProblem, match="StoreSpec"):
            solve(PROBLEM, store=spec, spill_dir=str(tmp_path / "b"))

    def test_explicit_ram_store_still_solves(self):
        result = solve(PROBLEM, backend="parallel", workers=2, store="ram")
        assert_ref_tables(result)


class TestPolicyKnobs:
    def test_keep_checkpoint_default_off(self):
        assert ResiliencePolicy().keep_checkpoint is False
        kept = dataclasses.replace(ResiliencePolicy(), keep_checkpoint=True)
        assert kept.keep_checkpoint is True
