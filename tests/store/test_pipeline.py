"""The async commit pipeline: ordering, bounds, drain, error surfacing.

The :class:`~repro.store.pipeline.AsyncCommitter` is tested against a
fake store first (ordering/drain/error semantics are pure thread
mechanics), then end-to-end: an async-committed mmap solve must write
byte-identical slabs, manifest and tables to a synchronous one.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.core import solve
from repro.core.errors import InvalidProblem, SolverError, StoreWriteError
from repro.core.generators import random_instance
from repro.core.sequential import solve_dp_reference
from repro.store import (
    COMMIT_MODE_ENV,
    AsyncCommitter,
    LayerStore,
    MmapStore,
    StoreSpec,
    commit_mode,
)

PROBLEM = random_instance(6, n_tests=6, n_treatments=4, seed=33)
REF = solve_dp_reference(PROBLEM)


class FakeStore(LayerStore):
    """Records commit order; optionally blocks or fails per layer."""

    def __init__(self, *, fail_layers=(), block=None, commit_s=0.0):
        super().__init__()
        self.committed = []
        self.fail_layers = set(fail_layers)
        self.block = block  # threading.Event the commit waits on
        self.commit_s = commit_s

    def commit_nbytes(self, j):
        return 100 * j

    def commit_layer(self, j):
        if self.block is not None:
            assert self.block.wait(timeout=30.0)
        if self.commit_s:
            time.sleep(self.commit_s)
        if j in self.fail_layers:
            raise StoreWriteError(f"injected failure at layer {j}", layer=j)
        self.committed.append(j)


class TestCommitMode:
    def test_default_is_async(self, monkeypatch):
        monkeypatch.delenv(COMMIT_MODE_ENV, raising=False)
        assert commit_mode() == "async"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(COMMIT_MODE_ENV, "sync")
        assert commit_mode() == "sync"

    def test_explicit_request_wins(self, monkeypatch):
        monkeypatch.setenv(COMMIT_MODE_ENV, "sync")
        assert commit_mode("async") == "async"

    def test_env_normalizes_case_and_whitespace(self, monkeypatch):
        monkeypatch.setenv(COMMIT_MODE_ENV, " ASYNC ")
        assert commit_mode() == "async"

    @pytest.mark.parametrize("bad", ["later", "asynchronously", "0"])
    def test_typo_fails_loudly(self, monkeypatch, bad):
        monkeypatch.setenv(COMMIT_MODE_ENV, bad)
        with pytest.raises(InvalidProblem, match="REPRO_COMMIT_MODE"):
            commit_mode()

    def test_explicit_typo_fails_loudly(self):
        with pytest.raises(InvalidProblem, match="commit mode"):
            commit_mode("eventually")


class TestAsyncCommitter:
    def test_commits_in_submission_order(self):
        store = FakeStore()
        committer = AsyncCommitter(store)
        try:
            for j in range(1, 9):
                committer.submit(j)
            committer.drain()
        finally:
            committer.close()
        assert store.committed == list(range(1, 9))

    def test_drain_blocks_until_retired(self):
        gate = threading.Event()
        store = FakeStore(block=gate)
        committer = AsyncCommitter(store)
        try:
            committer.submit(1)
            assert store.committed == []  # still parked behind the gate
            gate.set()
            committer.drain()
            assert store.committed == [1]
        finally:
            committer.close()

    def test_bounded_queue_blocks_submit(self):
        # max_pending=1: with one commit in flight and one queued, the
        # next submit must wait for a slot instead of growing a backlog.
        gate = threading.Event()
        store = FakeStore(block=gate)
        committer = AsyncCommitter(store, max_pending=1)
        t_blocked = {}

        def feeder():
            t0 = time.monotonic()
            committer.submit(1)  # taken in flight
            committer.submit(2)  # queued
            committer.submit(3)  # must block until 1 retires
            t_blocked["s"] = time.monotonic() - t0

        thread = threading.Thread(target=feeder)
        try:
            thread.start()
            time.sleep(0.15)
            assert store.committed == []
            gate.set()
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            committer.drain()
            assert store.committed == [1, 2, 3]
            assert t_blocked["s"] >= 0.1
        finally:
            committer.close()

    def test_error_surfaces_at_next_submit(self):
        store = FakeStore(fail_layers={2})
        committer = AsyncCommitter(store)
        try:
            committer.submit(1)
            committer.submit(2)
            committer.drain()  # let the failure land
            pytest.fail("drain should have raised")
        except StoreWriteError as exc:
            assert exc.layer == 2
        finally:
            committer.close()
        assert store.committed == [1]

    def test_queued_commits_discarded_after_error(self):
        gate = threading.Event()
        store = FakeStore(fail_layers={1}, block=gate)
        committer = AsyncCommitter(store, max_pending=2)
        try:
            committer.submit(1)
            committer.submit(2)
            committer.submit(3)
            gate.set()
            with pytest.raises(StoreWriteError):
                committer.drain()
            committer.drain()  # error already surfaced; queue is empty
        finally:
            committer.close()
        assert store.committed == []  # 2 and 3 never ran after 1 failed

    def test_submit_after_close_raises(self):
        committer = AsyncCommitter(FakeStore())
        committer.close()
        with pytest.raises(SolverError, match="closed"):
            committer.submit(1)

    def test_close_is_idempotent(self):
        committer = AsyncCommitter(FakeStore())
        committer.close()
        committer.close()

    def test_unexpected_exception_wrapped(self):
        class Exploding(FakeStore):
            def commit_layer(self, j):
                raise RuntimeError("boom")

        committer = AsyncCommitter(Exploding())
        try:
            committer.submit(1)
            with pytest.raises(SolverError, match="async layer commit failed"):
                committer.drain()
        finally:
            committer.close()


class TestCommitStats:
    def test_queued_then_retired(self):
        gate = threading.Event()
        store = FakeStore(block=gate)
        committer = AsyncCommitter(store, max_pending=2)
        try:
            committer.submit(1)
            committer.submit(2)
            stats = store.commit_stats()
            assert stats["queued_bytes"] == 100 + 200
            assert stats["committed_bytes"] == 0
            gate.set()
            committer.drain()
            stats = store.commit_stats()
            assert stats["queued_bytes"] == 0
        finally:
            committer.close()

    def test_no_torn_reads_under_concurrent_commits(self):
        # Hammer commit_stats from the "solve thread" while the committer
        # retires layers; every snapshot must be internally consistent
        # (queued_bytes only ever holds whole per-layer contributions).
        store = FakeStore(commit_s=0.002)
        committer = AsyncCommitter(store, max_pending=4)
        seen = []

        def reader():
            for _ in range(300):
                seen.append(store.commit_stats()["queued_bytes"])

        thread = threading.Thread(target=reader)
        try:
            thread.start()
            for j in range(1, 9):
                committer.submit(j)
            committer.drain()
            thread.join(timeout=30.0)
        finally:
            committer.close()
        partial_sums = {
            sum(100 * j for j in range(lo, hi + 1))
            for lo in range(1, 9)
            for hi in range(lo - 1, 9)
        } | {0}
        assert set(seen) <= partial_sums


class TestEndToEnd:
    def _solve(self, tmp_path, name, commit):
        spec = StoreSpec(kind="mmap", spill_dir=os.fspath(tmp_path / name))
        return solve(
            PROBLEM, backend="parallel", workers=1, store=spec, commit=commit
        )

    def test_async_solve_matches_sync_bytes(self, tmp_path):
        sync = self._solve(tmp_path, "sync", "sync")
        async_ = self._solve(tmp_path, "async", "async")
        assert np.array_equal(sync.cost, async_.cost)
        assert np.array_equal(sync.best_action, async_.best_action)
        assert np.array_equal(async_.cost, REF.cost)
        # Durable artifacts are byte-identical too: same slabs, same
        # manifest layer entries (sha256 + sizes).
        for j in range(1, PROBLEM.k + 1):
            slab = f"layers/layer_{j:02d}.slab"
            a = (tmp_path / "sync" / slab).read_bytes()
            b = (tmp_path / "async" / slab).read_bytes()
            assert a == b, f"slab bytes differ for layer {j}"
        with open(tmp_path / "sync" / "manifest.json") as fh:
            m_sync = json.load(fh)
        with open(tmp_path / "async" / "manifest.json") as fh:
            m_async = json.load(fh)
        assert m_sync["layers"] == m_async["layers"]
        assert m_async["complete"] is True

    def test_async_metrics_present(self, tmp_path):
        result = self._solve(tmp_path, "m", "async")
        assert result.metrics["commit.async"] == PROBLEM.k
        assert "commit.overlap_s" in result.metrics
        assert result.metrics["store.commits"] == PROBLEM.k

    def test_sync_solve_has_no_async_commits(self, tmp_path):
        result = self._solve(tmp_path, "s", "sync")
        assert result.metrics.get("commit.async", 0) == 0

    def test_env_typo_fails_before_any_work(self, tmp_path, monkeypatch):
        monkeypatch.setenv(COMMIT_MODE_ENV, "pipelined")
        with pytest.raises(InvalidProblem, match="REPRO_COMMIT_MODE"):
            self._solve(tmp_path, "t", None)

    def test_checkpointed_ram_solve_async(self, tmp_path):
        # The RAM store persists through .ckpt saves; async mode must
        # produce the same tables and clean up its checkpoint on success.
        ckpt = tmp_path / "solve.ckpt"
        result = solve(
            PROBLEM,
            backend="parallel",
            workers=1,
            checkpoint=os.fspath(ckpt),
            commit="async",
        )
        assert np.array_equal(result.cost, REF.cost)
        assert not ckpt.exists()

    def test_mmap_store_commit_nbytes(self, tmp_path):
        store = MmapStore(PROBLEM, spill_dir=os.fspath(tmp_path / "sp"))
        store.open()
        try:
            total = sum(store.commit_nbytes(j) for j in range(1, PROBLEM.k + 1))
            # Every mask except the empty set, cost + best halves.
            assert total == ((1 << PROBLEM.k) - 1) * 16
        finally:
            store.close()
