"""Injected storage faults: detected or recovered, never silent.

``REPRO_FAULT_SPEC`` carries four storage fault kinds fired at slab
commit time (see :mod:`repro.core.faults`).  The contract for each:

* ``torn-write`` / ``bitflip`` — the bytes on disk are corrupted while
  the manifest records the true payload's checksum, so the *next open*
  must flag the slab and re-derive it (the solve that wrote it is
  unaffected: its tables were never the corrupted copy);
* ``enospc`` — the commit fails; the solve degrades to in-RAM tables
  when they fit ``REPRO_RAM_BUDGET_BYTES`` (observable in the recovery
  log) and fails loudly when they do not;
* ``slow-io`` — pure latency, no effect on any byte.
"""

import numpy as np
import pytest

from repro.core.errors import InvalidProblem, SolverError
from repro.core.faults import FAULT_SPEC_ENV, parse_fault_spec, storage_faults_for
from repro.core.generators import random_instance
from repro.core.parallel import solve_dp_parallel
from repro.core.sequential import solve_dp_reference
from repro.store import RAM_BUDGET_ENV, StoreSpec

PROBLEM = random_instance(6, n_tests=6, n_treatments=4, seed=41)
REF = solve_dp_reference(PROBLEM)


def spilled_solve(spill_dir, monkeypatch=None, fault=None, workers=1):
    if fault is not None:
        monkeypatch.setenv(FAULT_SPEC_ENV, fault)
    try:
        return solve_dp_parallel(
            PROBLEM, workers=workers,
            store=StoreSpec(kind="mmap", spill_dir=str(spill_dir)),
        )
    finally:
        if fault is not None:
            monkeypatch.delenv(FAULT_SPEC_ENV)


class TestSpecGrammar:
    def test_storage_kinds_parse(self):
        faults = parse_fault_spec("torn-write:layer=3;bitflip;enospc;slow-io:ms=5")
        assert [f.kind for f in faults] == [
            "torn-write", "bitflip", "enospc", "slow-io"
        ]
        assert all(f.is_storage for f in faults)

    def test_shard_selector_rejected_for_storage(self):
        # Storage faults fire in the parent at commit time; a shard
        # selector can never match and must not parse quietly.
        with pytest.raises(InvalidProblem, match="shard"):
            parse_fault_spec("torn-write:shard=1")

    def test_storage_faults_for_matches_layer_and_attempt(self):
        spec = "bitflip:layer=3"
        assert [f.kind for f in storage_faults_for(3, 0, spec=spec)] == ["bitflip"]
        assert list(storage_faults_for(2, 0, spec=spec)) == []
        # times=1 default: the re-commit after recovery escapes the fault.
        assert list(storage_faults_for(3, 1, spec=spec)) == []

    def test_worker_faults_not_returned_as_storage(self):
        assert list(storage_faults_for(3, 0, spec="kill:layer=3")) == []

    def test_typod_spec_fails_solve_before_dispatch(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_SPEC_ENV, "torn-wrote:layer=1")
        with pytest.raises(InvalidProblem, match="unknown kind"):
            solve_dp_parallel(
                PROBLEM, workers=1,
                store=StoreSpec(kind="mmap", spill_dir=str(tmp_path / "s")),
            )


class TestCorruptingFaultsAreCaughtOnReopen:
    @pytest.mark.parametrize("kind", ["torn-write", "bitflip"])
    def test_corruption_detected_and_rederived(self, tmp_path, monkeypatch, kind):
        spill = tmp_path / "spill"
        # The writing solve is unaffected: its tables never held the
        # corrupted bytes.
        first = spilled_solve(spill, monkeypatch, fault=f"{kind}:layer=3")
        assert np.array_equal(first.cost, REF.cost)

        # The next open must catch the checksum mismatch — silence here
        # would resume from rotted bytes.
        second = spilled_solve(spill)
        assert np.array_equal(second.cost, REF.cost)
        assert np.array_equal(second.best_action, REF.best_action)
        assert second.recovery["rederived"] == 1
        assert {"kind": "slab-corrupt", "layer": 3} in second.recovery["events"]
        assert [e["layer"] for e in second.recovery["layers"]] == [3]


class TestEnospc:
    def test_degrades_to_ram_and_finishes(self, tmp_path, monkeypatch):
        spill = tmp_path / "spill"
        result = spilled_solve(spill, monkeypatch, fault="enospc:layer=3")
        assert np.array_equal(result.cost, REF.cost)
        assert np.array_equal(result.best_action, REF.best_action)
        assert result.recovery["degraded"] is True
        degr = [e for e in result.recovery["events"] if e["kind"] == "store-degraded"]
        assert degr and degr[0]["fallback"] == "ram"
        assert "ENOSPC" in degr[0]["reason"]

    def test_degradation_respects_ram_budget(self, tmp_path, monkeypatch):
        # Tables over the budget: the spill store existed to honour the
        # limit, so falling back to RAM is refused and the original
        # disk failure surfaces loudly.
        monkeypatch.setenv(RAM_BUDGET_ENV, "1024")  # < the 2 KiB of k=6 tables
        spill = tmp_path / "spill"
        with pytest.raises(SolverError, match="not possible"):
            spilled_solve(spill, monkeypatch, fault="enospc:layer=3")

    def test_degraded_solve_still_bit_identical_with_pool(self, tmp_path, monkeypatch):
        spill = tmp_path / "spill"
        monkeypatch.setenv(FAULT_SPEC_ENV, "enospc:layer=2")
        try:
            result = solve_dp_parallel(
                PROBLEM, workers=2, min_shard=1,
                store=StoreSpec(kind="mmap", spill_dir=str(spill)),
            )
        finally:
            monkeypatch.delenv(FAULT_SPEC_ENV)
        # Layers 1-2 ran on the pool against the spill tables; 3-6 ran
        # in-process on the adopted RAM tables.  Same bytes regardless.
        assert np.array_equal(result.cost, REF.cost)
        assert np.array_equal(result.best_action, REF.best_action)


class TestSlowIo:
    def test_latency_only(self, tmp_path, monkeypatch):
        spill = tmp_path / "spill"
        result = spilled_solve(spill, monkeypatch, fault="slow-io:ms=20:layer=2")
        assert np.array_equal(result.cost, REF.cost)
        # No recovery events: latency is not a failure.
        assert result.recovery["rederived"] == 0
        assert result.recovery["degraded"] is False
        # And the commits it slowed are intact: instant resume.
        again = spilled_solve(spill)
        assert again.recovery["resumed_from_layer"] == PROBLEM.k
