"""Corruption drills for the spill store.

The durability model (DESIGN.md §5.5): truth lives in the slabs and the
manifest; anything that fails validation on open — flipped bits, torn
sizes, deleted files, a stale temp from a dead process — is *recovered*
by re-deriving the layer from the layers below, bit-for-bit.  Only two
things are loud: unreadable control state (:class:`StoreCorruption`) and
a manifest from a different problem (:class:`CheckpointMismatch`).
"""

import json
import os

import numpy as np
import pytest

from repro.core.errors import CheckpointMismatch, StoreCorruption
from repro.core.generators import random_instance
from repro.core.parallel import solve_dp_parallel
from repro.core.sequential import solve_dp_reference
from repro.store import StoreSpec
from repro.store.spill import MANIFEST_NAME

PROBLEM = random_instance(6, n_tests=6, n_treatments=4, seed=31)
REF = solve_dp_reference(PROBLEM)


@pytest.fixture
def spill(tmp_path):
    """A completed, manifest-verified spill directory for PROBLEM."""
    spill_dir = tmp_path / "spill"
    result = solve_dp_parallel(
        PROBLEM, workers=1, store=StoreSpec(kind="mmap", spill_dir=str(spill_dir))
    )
    assert np.array_equal(result.cost, REF.cost)
    return spill_dir


def reopen(spill_dir, workers=1):
    return solve_dp_parallel(
        PROBLEM, workers=workers,
        store=StoreSpec(kind="mmap", spill_dir=str(spill_dir)),
    )


def slab(spill_dir, j):
    return spill_dir / "layers" / f"layer_{j:02d}.slab"


def events_of(result, kind):
    return [e for e in result.recovery["events"] if e["kind"] == kind]


class TestSlabCorruptionIsRecovered:
    def test_bitflip_rederives_layer(self, spill):
        raw = bytearray(slab(spill, 3).read_bytes())
        raw[7] ^= 0x40
        slab(spill, 3).write_bytes(bytes(raw))
        result = reopen(spill)
        assert np.array_equal(result.cost, REF.cost)
        assert np.array_equal(result.best_action, REF.best_action)
        assert result.recovery["rederived"] == 1
        assert events_of(result, "slab-corrupt") == [
            {"kind": "slab-corrupt", "layer": 3}
        ]
        # Only the corrupt layer was recomputed.
        assert [e["layer"] for e in result.recovery["layers"]] == [3]

    def test_truncated_slab_rederives_layer(self, spill):
        raw = slab(spill, 4).read_bytes()
        slab(spill, 4).write_bytes(raw[: len(raw) // 2])
        result = reopen(spill)
        assert np.array_equal(result.cost, REF.cost)
        assert events_of(result, "slab-corrupt") == [
            {"kind": "slab-corrupt", "layer": 4}
        ]

    def test_deleted_slab_rederives_layer(self, spill):
        os.unlink(slab(spill, 2))
        result = reopen(spill)
        assert np.array_equal(result.cost, REF.cost)
        assert events_of(result, "slab-missing") == [
            {"kind": "slab-missing", "layer": 2}
        ]
        assert [e["layer"] for e in result.recovery["layers"]] == [2]

    def test_every_slab_gone_recomputes_everything(self, spill):
        for j in range(1, PROBLEM.k + 1):
            os.unlink(slab(spill, j))
        result = reopen(spill)
        assert np.array_equal(result.cost, REF.cost)
        assert result.recovery["rederived"] == PROBLEM.k
        assert len(result.recovery["layers"]) == PROBLEM.k

    def test_corruption_recovery_under_worker_pool(self, spill):
        raw = bytearray(slab(spill, 3).read_bytes())
        raw[0] ^= 0x01
        slab(spill, 3).write_bytes(bytes(raw))
        result = reopen(spill, workers=2)
        assert np.array_equal(result.cost, REF.cost)
        assert np.array_equal(result.best_action, REF.best_action)

    def test_rederived_layer_recommits_durably(self, spill):
        os.unlink(slab(spill, 2))
        reopen(spill)
        # The re-derived slab is back on disk and verifies: a third open
        # resumes instantly.
        third = reopen(spill)
        assert third.recovery["resumed_from_layer"] == PROBLEM.k
        assert third.recovery["layers"] == []


class TestControlStateIsLoud:
    def test_garbage_manifest_raises(self, spill):
        (spill / MANIFEST_NAME).write_bytes(b"{not json")
        with pytest.raises(StoreCorruption, match="unreadable"):
            reopen(spill)

    def test_wrong_format_raises(self, spill):
        path = spill / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["format"] = 99
        path.write_text(json.dumps(manifest))
        with pytest.raises(StoreCorruption, match="format"):
            reopen(spill)

    def test_missing_keys_raise(self, spill):
        path = spill / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        del manifest["order_sha"]
        path.write_text(json.dumps(manifest))
        with pytest.raises(StoreCorruption, match="order_sha"):
            reopen(spill)

    def test_wrong_problem_raises(self, spill):
        other = random_instance(6, n_tests=6, n_treatments=4, seed=99)
        with pytest.raises(CheckpointMismatch, match="different problem"):
            solve_dp_parallel(
                other, workers=1,
                store=StoreSpec(kind="mmap", spill_dir=str(spill)),
            )

    def test_out_of_range_layer_key_raises(self, spill):
        path = spill / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["layers"]["40"] = {"sha256": "x", "nbytes": 1}
        path.write_text(json.dumps(manifest))
        with pytest.raises(StoreCorruption, match="outside"):
            reopen(spill)


class TestDerivableStateIsRepaired:
    def test_corrupt_order_file_is_rebuilt(self, spill):
        order = spill / "order.dat"
        raw = bytearray(order.read_bytes())
        raw[11] ^= 0xFF
        order.write_bytes(bytes(raw))
        result = reopen(spill)
        # order.dat is derivable from k alone: rebuilt, then the (still
        # valid) slabs scatter through the repaired order.
        assert events_of(result, "order-rebuilt") == [{"kind": "order-rebuilt"}]
        assert np.array_equal(result.cost, REF.cost)
        assert np.array_equal(result.best_action, REF.best_action)
        assert result.recovery["layers"] == []

    def test_stale_tmp_files_swept(self, spill):
        litter = spill / "layers" / "layer_03.slab.tmp"
        litter.write_bytes(b"half a slab from a dead process")
        result = reopen(spill)
        assert not litter.exists()
        assert events_of(result, "tmp-swept") == [{"kind": "tmp-swept", "count": 1}]
        assert np.array_equal(result.cost, REF.cost)
