"""SIGKILL crash drills through the real commit protocol.

Each drill SIGKILLs a subprocess solve at one point of the slab commit
protocol (``REPRO_STORE_CRASH``), resumes from the surviving spill
directory, and holds the resumed tables bit-for-bit to an undisturbed
solve.  The four points bracket both durability boundaries of the
protocol — see :mod:`repro.store.drill`.
"""

import pytest

from repro.core.errors import InvalidProblem
from repro.core.faults import CRASH_POINTS, maybe_crash, parse_crash_spec
from repro.core.generators import random_instance
from repro.store.drill import run_crash_drill

pytestmark = pytest.mark.slow

PROBLEM = random_instance(7, n_tests=6, n_treatments=4, seed=51)


class TestCrashSpecParsing:
    def test_point_with_layer(self):
        assert parse_crash_spec("pre-rename:layer=3") == ("pre-rename", 3)

    def test_point_alone_matches_any_layer(self):
        assert parse_crash_spec("mid-write") == ("mid-write", None)

    def test_unknown_point_rejected(self):
        with pytest.raises(InvalidProblem):
            parse_crash_spec("post-fsync:layer=1")

    def test_maybe_crash_without_spec_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_CRASH", raising=False)
        maybe_crash("pre-rename", 3)  # must not kill the test process


class TestDrills:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_sigkill_then_resume_is_bit_identical(self, tmp_path, point):
        report = run_crash_drill(
            PROBLEM, point, workdir=str(tmp_path / point), layer=3
        )
        assert report["killed"], report
        assert report["identical"], report
        if point == "post-commit":
            # The kill landed after the manifest entry: layer 3 is
            # durable, the resume skips it.
            assert report["committed_at_kill"] == 3
            assert report["resumed_from_layer"] == 3
        else:
            # Before the manifest entry: layers 1-2 are durable, layer 3
            # is recomputed on resume.
            assert report["committed_at_kill"] == 2
            assert report["resumed_from_layer"] == 2

    def test_unknown_point_raises(self, tmp_path):
        with pytest.raises(InvalidProblem, match="crash point"):
            run_crash_drill(PROBLEM, "post-fsync", workdir=str(tmp_path))

    def test_out_of_range_layer_raises(self, tmp_path):
        with pytest.raises(InvalidProblem, match="layer"):
            run_crash_drill(
                PROBLEM, "pre-rename", workdir=str(tmp_path), layer=99
            )
