"""Prefix-sum collective on hypercube and CCC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypercube.ccc import CCC
from repro.hypercube.collectives import prefix_sum_program
from repro.hypercube.machine import Hypercube, make_state


def _run_prefix(dims, vals, machine=None, schedule="pipelined"):
    st_ = make_state(dims, PRE=vals, TOT=vals)
    prog = prefix_sum_program(dims)
    if machine is None:
        Hypercube(dims).run(st_, prog, discipline="ascend")
    else:
        machine.run(st_, prog, schedule=schedule)
    return st_


class TestHypercubePrefix:
    @pytest.mark.parametrize("dims", [1, 3, 6])
    def test_matches_cumsum(self, dims):
        rng = np.random.default_rng(dims)
        vals = rng.integers(0, 10, 1 << dims).astype(float)
        st_ = _run_prefix(dims, vals)
        assert np.allclose(st_["PRE"], np.cumsum(vals))

    def test_total_flooded(self):
        vals = np.arange(8.0)
        st_ = _run_prefix(3, vals)
        assert (st_["TOT"] == vals.sum()).all()

    def test_is_ascend(self):
        dims = [op.dim for op in prefix_sum_program(5)]
        assert dims == sorted(dims)

    @settings(max_examples=25)
    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=16, max_size=16))
    def test_property(self, vals):
        arr = np.array(vals, dtype=float)
        st_ = _run_prefix(4, arr)
        assert np.allclose(st_["PRE"], np.cumsum(arr))


class TestCCCPrefix:
    @pytest.mark.parametrize("schedule", ["pipelined", "naive"])
    def test_matches_hypercube(self, schedule):
        ccc = CCC(2)
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 100, ccc.n).astype(float)
        ideal = _run_prefix(ccc.dims, vals)
        emu = _run_prefix(ccc.dims, vals, machine=ccc, schedule=schedule)
        assert ideal.equal(emu)
        assert np.allclose(emu["PRE"], np.cumsum(vals))
