"""§4 dataflow algorithms on the ideal hypercube: broadcast, propagation,
minimization — checked against closed-form expectations and the paper's
worked examples."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypercube.collectives import (
    broadcast_program,
    broadcast_schedule,
    min_reduce_program,
    propagation1_program,
    propagation2_program,
    reduce_program,
)
from repro.hypercube.machine import Hypercube, make_state
from repro.util.bitops import popcount


def _state_with_sender(dims, origin, value):
    n = 1 << dims
    v = np.zeros(n)
    v[origin] = value
    s = np.zeros(n, dtype=bool)
    s[origin] = True
    return make_state(dims, V=v, SENDER=s)


class TestBroadcast:
    @pytest.mark.parametrize("dims", [1, 2, 4, 6])
    def test_floods_from_pe0(self, dims):
        st_ = _state_with_sender(dims, 0, 42.0)
        stats = Hypercube(dims).run(st_, broadcast_program(dims), discipline="ascend")
        assert (st_["V"] == 42.0).all()
        assert st_["SENDER"].all()
        assert stats.route_steps == dims

    def test_broadcast_is_ascend(self):
        prog = broadcast_program(5)
        assert [op.dim for op in prog] == list(range(5))

    @given(st.integers(min_value=1, max_value=6))
    def test_nonzero_origin_reaches_upward_closure(self, dims):
        """Starting the paper's schedule from PE x floods exactly the PEs
        whose address contains x (the 1-END condition is one-directional)."""
        origin = (1 << dims) - 1 if dims > 1 else 1
        origin = 1  # PE 0b1
        st_ = _state_with_sender(dims, origin, 9.0)
        Hypercube(dims).run(st_, broadcast_program(dims))
        addrs = np.arange(1 << dims)
        expected = (addrs & origin) == origin
        assert (st_["SENDER"] == expected).all()
        assert (st_["V"][expected] == 9.0).all()


class TestBroadcastSchedule:
    def test_fig6_rounds(self):
        """Paper Fig. 6: the 16-PE broadcast transmission list."""
        rounds = broadcast_schedule(4)
        assert rounds[0] == [(0b0000, 0b0001)]
        assert rounds[1] == [(0b0000, 0b0010), (0b0001, 0b0011)]
        assert rounds[2] == [
            (0b0000, 0b0100),
            (0b0001, 0b0101),
            (0b0010, 0b0110),
            (0b0011, 0b0111),
        ]
        assert rounds[3] == [(s, s | 8) for s in range(8)]

    def test_total_transmissions(self):
        # Doubling each round: 1 + 2 + 4 + 8 = 15 = n - 1 receivers.
        rounds = broadcast_schedule(4)
        assert sum(len(r) for r in rounds) == 15

    def test_schedule_matches_machine(self):
        """Every scheduled receiver ends up a sender; nobody else does."""
        dims = 4
        st_ = _state_with_sender(dims, 0, 1.0)
        Hypercube(dims).run(st_, broadcast_program(dims))
        receivers = {r for rnd in broadcast_schedule(dims) for _, r in rnd}
        assert receivers == set(range(1, 16))


class TestPropagation1:
    def test_paper_example(self):
        """N=2 example: PE 0111 receives from PEs 0110, 0101 and 0011."""
        dims = 4
        n = 16
        addrs = np.arange(n)
        sender = np.array([popcount(a) == 2 for a in addrs])
        v = np.where(sender, 1 << addrs, 0).astype(np.int64)  # unique tags
        st_ = make_state(dims, V=v, SENDER=sender)
        prog = propagation1_program(dims, combine=np.bitwise_or)
        Hypercube(dims).run(st_, prog, discipline="ascend")
        got = int(st_["V"][0b0111])
        expected = (1 << 0b0110) | (1 << 0b0101) | (1 << 0b0011)
        assert got == expected

    def test_senders_unchanged(self):
        dims = 3
        addrs = np.arange(8)
        sender = np.array([popcount(a) == 1 for a in addrs])
        st_ = make_state(dims, V=np.zeros(8), SENDER=sender)
        Hypercube(dims).run(st_, propagation1_program(dims, np.maximum))
        assert (st_["SENDER"] == sender).all()

    @settings(max_examples=20)
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=4))
    def test_group_to_next_group(self, dims, grp):
        """Every (grp+1)-group PE combines exactly its grp-subsets."""
        if grp >= dims:
            grp = dims - 1
        n = 1 << dims
        addrs = np.arange(n)
        pop = np.array([popcount(a) for a in addrs])
        sender = pop == grp
        v = np.where(sender, addrs + 1, 0).astype(np.int64)  # tag = addr+1
        st_ = make_state(dims, V=v, SENDER=sender)
        Hypercube(dims).run(st_, propagation1_program(dims, np.maximum))
        for a in addrs[pop == grp + 1]:
            # max over subsets of a with popcount grp, tagged addr+1
            subs = [
                (a & ~(1 << b)) + 1 for b in range(dims) if (a >> b) & 1
            ]
            assert st_["V"][a] == max(subs)


class TestPropagation2:
    def test_paper_example_1_to_4_group(self):
        """n=4 dims example: data floods from the 1-PE group to 1111,
        which must combine the data of all four singletons."""
        dims = 4
        addrs = np.arange(16)
        sender = np.array([popcount(a) == 1 for a in addrs])
        v = np.where(sender, addrs, 0).astype(np.int64)
        st_ = make_state(dims, V=v, SENDER=sender)
        Hypercube(dims).run(st_, propagation2_program(dims, np.bitwise_or))
        assert int(st_["V"][0b1111]) == 0b1111
        assert int(st_["V"][0b0111]) == 0b0111

    def test_receivers_become_senders(self):
        dims = 3
        addrs = np.arange(8)
        sender = np.array([popcount(a) == 1 for a in addrs])
        st_ = make_state(dims, V=np.zeros(8), SENDER=sender)
        Hypercube(dims).run(st_, propagation2_program(dims, np.maximum))
        pop = np.array([popcount(a) for a in addrs])
        assert (st_["SENDER"] == (pop >= 1)).all()

    @settings(max_examples=20)
    @given(st.integers(min_value=2, max_value=6))
    def test_flood_from_singletons_gives_or_of_elements(self, dims):
        """After flooding from the 1-group with OR, every PE S holds the
        OR of its elements' tags, i.e. S itself."""
        n = 1 << dims
        addrs = np.arange(n)
        sender = np.array([popcount(a) == 1 for a in addrs])
        v = np.where(sender, addrs, 0).astype(np.int64)
        st_ = make_state(dims, V=v, SENDER=sender)
        Hypercube(dims).run(st_, propagation2_program(dims, np.bitwise_or))
        nonzero = addrs != 0
        assert (st_["V"][nonzero] == addrs[nonzero]).all()


class TestMinReduce:
    def test_fig7_flood(self):
        """§6 example with p=3: all 8 PEs end with the column minimum."""
        vals = np.array([31.0, 5.0, 17.0, 9.0, 22.0, 5.0, 40.0, 11.0])
        st_ = make_state(3, M=vals)
        stats = Hypercube(3).run(st_, min_reduce_program(0, 3), discipline="ascend")
        assert (st_["M"] == 5.0).all()
        assert stats.route_steps == 3

    def test_grouped_reduction(self):
        """Reducing dims 0..1 of a 3-cube gives per-quadruple minima."""
        vals = np.arange(8.0)[::-1]  # 7..0
        st_ = make_state(3, M=vals)
        Hypercube(3).run(st_, min_reduce_program(0, 2))
        assert st_["M"].tolist() == [4.0] * 4 + [0.0] * 4

    def test_gated_reduction_leaves_others_alone(self):
        vals = np.array([4.0, 3.0, 2.0, 1.0])
        gate = np.array([True, True, False, False])
        st_ = make_state(2, M=vals, GATE=gate)
        Hypercube(2).run(st_, min_reduce_program(0, 2, gate="GATE"))
        # Gated PEs reduce (they read partners regardless); ungated keep values.
        assert st_["M"][2] == 2.0 and st_["M"][3] == 1.0
        assert st_["M"][0] <= 3.0

    @given(st.integers(min_value=1, max_value=7), st.integers(min_value=0, max_value=99))
    def test_full_min_flood_property(self, dims, seed):
        rng = np.random.default_rng(seed)
        vals = rng.uniform(0, 1, 1 << dims)
        st_ = make_state(dims, M=vals)
        Hypercube(dims).run(st_, min_reduce_program(0, dims))
        assert np.allclose(st_["M"], vals.min())

    def test_general_reduce_with_sum(self):
        vals = np.arange(1.0, 9.0)
        st_ = make_state(3, M=vals)
        Hypercube(3).run(st_, reduce_program(0, 3, np.add))
        assert np.allclose(st_["M"], vals.sum())
