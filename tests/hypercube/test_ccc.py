"""CCC emulation: bit-for-bit agreement with the ideal hypercube under
both schedules, step accounting, and the link-count claims."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypercube.ccc import CCC, ccc_links, hypercube_links
from repro.hypercube.collectives import (
    broadcast_program,
    min_reduce_program,
    propagation2_program,
    reduce_program,
)
from repro.hypercube.machine import DimOp, Hypercube, LocalOp, make_state
from repro.util.bitops import popcount


def _random_state(dims, seed, with_sender=False):
    rng = np.random.default_rng(seed)
    st_ = make_state(dims, M=rng.integers(0, 1000, 1 << dims).astype(float))
    if with_sender:
        st_["V"] = rng.integers(0, 1000, 1 << dims).astype(float)
        st_["SENDER"] = rng.integers(0, 2, 1 << dims).astype(bool)
    return st_


class TestGeometry:
    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_sizes(self, r):
        ccc = CCC(r)
        assert ccc.Q == 1 << r
        assert ccc.n == ccc.Q * (1 << ccc.Q)
        assert ccc.n == 1 << ccc.dims

    def test_rejects_r0(self):
        with pytest.raises(ValueError):
            CCC(0)

    def test_position_items_offset0(self):
        ccc = CCC(2)  # Q=4, 16 cycles
        items = ccc.position_items(pos=2, offset=0)
        # Items at position 2, unrotated: virtual (c, 2) for every cycle.
        assert items.tolist() == [(c << 2) | 2 for c in range(16)]

    def test_position_items_wraps_with_offset(self):
        ccc = CCC(2)
        items = ccc.position_items(pos=0, offset=1)
        # After one forward rotation, position 0 holds origin j = Q-1 = 3.
        assert items.tolist() == [(c << 2) | 3 for c in range(16)]


class TestEquivalenceWithHypercube:
    """The core Preparata–Vuillemin property: identical results."""

    @pytest.mark.parametrize("r", [1, 2])
    @pytest.mark.parametrize("schedule", ["pipelined", "naive"])
    def test_min_flood_all_dims(self, r, schedule):
        ccc = CCC(r)
        a = _random_state(ccc.dims, seed=1)
        b = a.copy()
        prog = min_reduce_program(0, ccc.dims)
        Hypercube(ccc.dims).run(a, prog, discipline="ascend")
        ccc.run(b, prog, schedule=schedule)
        assert a.equal(b)

    @pytest.mark.parametrize("schedule", ["pipelined", "naive"])
    def test_broadcast(self, schedule):
        ccc = CCC(2)
        n = 1 << ccc.dims
        v = np.zeros(n)
        v[0] = 3.14
        sender = np.zeros(n, dtype=bool)
        sender[0] = True
        a = make_state(ccc.dims, V=v, SENDER=sender)
        b = a.copy()
        prog = broadcast_program(ccc.dims)
        Hypercube(ccc.dims).run(a, prog)
        ccc.run(b, prog, schedule=schedule)
        assert a.equal(b)
        assert (b["V"] == 3.14).all()

    @pytest.mark.parametrize("schedule", ["pipelined", "naive"])
    def test_propagation2(self, schedule):
        ccc = CCC(2)
        n = 1 << ccc.dims
        addrs = np.arange(n)
        sender = np.array([popcount(a) == 1 for a in addrs])
        v = np.where(sender, addrs, 0).astype(np.int64)
        a = make_state(ccc.dims, V=v, SENDER=sender)
        b = a.copy()
        prog = propagation2_program(ccc.dims, np.bitwise_or)
        Hypercube(ccc.dims).run(a, prog)
        ccc.run(b, prog, schedule=schedule)
        assert a.equal(b)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=999), st.booleans())
    def test_random_sum_programs(self, seed, pipelined):
        """Random ascending dim subsets with a sum combiner."""
        ccc = CCC(2)
        rng = np.random.default_rng(seed)
        dims = sorted(rng.choice(ccc.dims, size=rng.integers(1, ccc.dims + 1), replace=False))
        prog = [
            DimOp(int(d), lambda o, p, a: {"M": o["M"] + p["M"]}) for d in dims
        ]
        a = _random_state(ccc.dims, seed=seed)
        b = a.copy()
        Hypercube(ccc.dims).run(a, prog, discipline="ascend")
        ccc.run(b, prog, schedule="pipelined" if pipelined else "naive")
        assert a.equal(b)

    def test_local_ops_interleaved(self):
        ccc = CCC(1)
        prog = [
            DimOp(0, lambda o, p, a: {"M": np.minimum(o["M"], p["M"])}),
            LocalOp(lambda o, a: {"M": o["M"] * 2}),
            DimOp(1, lambda o, p, a: {"M": o["M"] + p["M"]}),
            DimOp(2, lambda o, p, a: {"M": np.maximum(o["M"], p["M"])}),
        ]
        a = _random_state(ccc.dims, seed=5)
        b = a.copy()
        Hypercube(ccc.dims).run(a, prog)
        ccc.run(b, prog)
        assert a.equal(b)

    def test_descending_highdims_fall_back_to_naive(self):
        """A DESCEND-ordered program still runs correctly (naive fallback
        breaks the sweep batching)."""
        ccc = CCC(2)
        prog = [
            DimOp(d, lambda o, p, a: {"M": np.minimum(o["M"], p["M"])})
            for d in reversed(range(ccc.dims))
        ]
        a = _random_state(ccc.dims, seed=6)
        b = a.copy()
        Hypercube(ccc.dims).run(a, prog, discipline="descend")
        stats = ccc.run(b, prog, schedule="pipelined")
        assert a.equal(b)
        assert stats.sweeps <= ccc.dims  # each high dim its own batch


class TestStepAccounting:
    def test_pipelined_sweep_counts(self):
        """One full high-dim sweep on CCC(2): laterals <= 2Q-1, rotations
        = (2Q-2) + unwind, regardless of how many dims it covers."""
        ccc = CCC(2)
        Q = ccc.Q
        prog = min_reduce_program(ccc.r, ccc.dims)  # all Q high dims
        st_ = _random_state(ccc.dims, seed=2)
        stats = ccc.run(st_, prog, schedule="pipelined")
        assert stats.sweeps == 1
        assert stats.lateral_steps <= 2 * Q - 1
        assert stats.rotation_steps >= 2 * Q - 2
        assert stats.ideal_dimops == Q

    def test_naive_highdim_counts(self):
        ccc = CCC(2)
        Q = ccc.Q
        prog = min_reduce_program(ccc.r, ccc.r + 1)  # a single high dim
        st_ = _random_state(ccc.dims, seed=3)
        stats = ccc.run(st_, prog, schedule="naive")
        assert stats.lateral_steps == Q
        assert stats.rotation_steps == Q

    def test_lowdim_counts(self):
        ccc = CCC(2)
        prog = min_reduce_program(0, ccc.r)  # dims 0..r-1
        st_ = _random_state(ccc.dims, seed=4)
        stats = ccc.run(st_, prog)
        # dim d costs 2^d unit shifts: 1 + 2 = 3 for r=2.
        assert stats.lowsheaf_steps == 3
        assert stats.lateral_steps == 0

    def test_slowdown_in_constant_band(self):
        """Full-cube ASCEND slowdown on the pipelined schedule stays in a
        small constant band (the paper claims 4-6 with its counting)."""
        for r in (1, 2):
            ccc = CCC(r)
            prog = min_reduce_program(0, ccc.dims)
            st_ = _random_state(ccc.dims, seed=7)
            stats = ccc.run(st_, prog, schedule="pipelined")
            assert 1.0 <= stats.slowdown <= 6.0

    def test_naive_slowdown_grows(self):
        """The naive schedule's slowdown must exceed the pipelined one —
        the paper's motivation for the ASCEND transformation."""
        results = {}
        for sched in ("pipelined", "naive"):
            ccc = CCC(2)
            prog = min_reduce_program(0, ccc.dims)
            st_ = _random_state(ccc.dims, seed=8)
            results[sched] = ccc.run(st_, prog, schedule=sched).slowdown
        assert results["naive"] > results["pipelined"]

    def test_compute_steps_counted(self):
        ccc = CCC(1)
        st_ = _random_state(ccc.dims, seed=9)
        stats = ccc.run(st_, [LocalOp(lambda o, a: {})])
        assert stats.compute_steps == 1
        assert stats.route_steps == 0


class TestValidationErrors:
    def test_wrong_state_size(self):
        with pytest.raises(ValueError):
            CCC(1).run(make_state(2, M=np.zeros(4)), [])

    def test_unknown_schedule(self):
        ccc = CCC(1)
        with pytest.raises(ValueError):
            ccc.run(make_state(ccc.dims, M=np.zeros(ccc.n)), [], schedule="magic")

    def test_unknown_op(self):
        ccc = CCC(1)
        with pytest.raises(TypeError):
            ccc.run(make_state(ccc.dims, M=np.zeros(ccc.n)), [42])


class TestLinkCounts:
    @pytest.mark.parametrize("r", [2, 3, 4])
    def test_ccc_is_3n_over_2(self, r):
        Q = 1 << r
        n = Q * (1 << Q)
        assert ccc_links(r) == 3 * n // 2

    def test_hypercube_is_nlogn_over_2(self):
        assert hypercube_links(10) == 1024 * 10 // 2

    def test_ccc_asymptotically_cheaper(self):
        """The paper's hardware argument: for matching PE counts the CCC
        needs a vanishing fraction of the hypercube's wiring."""
        r = 3
        dims = r + (1 << r)  # CCC(r) simulates this hypercube
        assert ccc_links(r) * 3 < hypercube_links(dims)
