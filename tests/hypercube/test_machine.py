"""Ideal hypercube machine: state handling, exchanges, disciplines."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hypercube.machine import (
    DimOp,
    Hypercube,
    LocalOp,
    ScheduleError,
    State,
    dims_for,
    make_state,
)


class TestState:
    def test_register_creation_and_shape(self):
        st_ = State(3)
        st_["X"] = np.arange(8)
        assert st_["X"].tolist() == list(range(8))

    def test_scalar_broadcasts(self):
        st_ = State(2)
        st_["X"] = 7.0
        assert st_["X"].tolist() == [7.0] * 4

    def test_wrong_shape_rejected(self):
        st_ = State(2)
        with pytest.raises(ValueError):
            st_["X"] = np.arange(5)

    def test_copy_is_deep(self):
        a = make_state(2, X=np.arange(4))
        b = a.copy()
        b["X"] = np.zeros(4)
        assert a["X"].tolist() == [0, 1, 2, 3]

    def test_assignment_copies_input(self):
        arr = np.arange(4)
        st_ = make_state(2, X=arr)
        arr[:] = 0
        assert st_["X"].tolist() == [0, 1, 2, 3]

    def test_contains_and_names(self):
        st_ = make_state(1, A=[1, 2], B=[3, 4])
        assert "A" in st_ and "C" not in st_
        assert st_.names() == ["A", "B"]

    def test_equal(self):
        a = make_state(1, X=[1, 2])
        b = make_state(1, X=[1, 2])
        c = make_state(1, X=[1, 3])
        assert a.equal(b)
        assert not a.equal(c)

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            State(-1)


class TestPartnerIndex:
    def test_partner_is_involution(self):
        hc = Hypercube(4)
        for d in range(4):
            perm = hc.partner_index(d)
            assert (perm[perm] == np.arange(16)).all()

    def test_partner_differs_in_one_bit(self):
        hc = Hypercube(4)
        for d in range(4):
            perm = hc.partner_index(d)
            assert ((perm ^ np.arange(16)) == (1 << d)).all()

    def test_out_of_range_dim(self):
        with pytest.raises(ValueError):
            Hypercube(3).partner_index(3)


class TestExecution:
    def test_dimop_swap(self):
        hc = Hypercube(2)
        st_ = make_state(2, X=np.array([10.0, 20.0, 30.0, 40.0]))
        op = DimOp(0, lambda own, other, addr: {"X": other["X"]})
        hc.run(st_, [op])
        assert st_["X"].tolist() == [20.0, 10.0, 40.0, 30.0]

    def test_simultaneous_semantics(self):
        """Both partners must see each other's *old* values."""
        hc = Hypercube(1)
        st_ = make_state(1, X=np.array([1.0, 2.0]))
        op = DimOp(0, lambda own, other, addr: {"X": own["X"] + other["X"]})
        hc.run(st_, [op])
        assert st_["X"].tolist() == [3.0, 3.0]

    def test_localop(self):
        hc = Hypercube(2)
        st_ = make_state(2, X=np.arange(4.0))
        hc.run(st_, [LocalOp(lambda own, addr: {"X": own["X"] * 2})])
        assert st_["X"].tolist() == [0.0, 2.0, 4.0, 6.0]

    def test_stats_counting(self):
        hc = Hypercube(3)
        st_ = make_state(3, X=np.zeros(8))
        prog = [
            LocalOp(lambda own, addr: {}),
            DimOp(0, lambda o, p, a: {}),
            DimOp(2, lambda o, p, a: {}),
        ]
        stats = hc.run(st_, prog)
        assert stats.route_steps == 2
        assert stats.compute_steps == 1
        assert stats.total_steps == 3
        assert stats.dims_used == [0, 2]

    def test_state_size_mismatch(self):
        with pytest.raises(ValueError):
            Hypercube(3).run(make_state(2, X=np.zeros(4)), [])

    def test_unknown_op_rejected(self):
        with pytest.raises(TypeError):
            Hypercube(1).run(make_state(1, X=[0, 0]), ["bogus"])


class TestDiscipline:
    def _noop(self, d):
        return DimOp(d, lambda o, p, a: {})

    def test_ascend_accepts_nondecreasing(self):
        hc = Hypercube(3)
        hc.run(make_state(3, X=np.zeros(8)), [self._noop(d) for d in [0, 0, 1, 2]],
               discipline="ascend")

    def test_ascend_rejects_decrease(self):
        hc = Hypercube(3)
        with pytest.raises(ScheduleError):
            hc.run(make_state(3, X=np.zeros(8)), [self._noop(d) for d in [1, 0]],
                   discipline="ascend")

    def test_descend_rejects_increase(self):
        hc = Hypercube(3)
        with pytest.raises(ScheduleError):
            hc.run(make_state(3, X=np.zeros(8)), [self._noop(d) for d in [1, 2]],
                   discipline="descend")

    def test_descend_accepts_nonincreasing(self):
        hc = Hypercube(3)
        hc.run(make_state(3, X=np.zeros(8)), [self._noop(d) for d in [2, 1, 1, 0]],
               discipline="descend")


class TestDimsFor:
    def test_round_numbers(self):
        assert dims_for(8) == 3
        assert dims_for(1024) == 10

    def test_rejects_non_powers(self):
        with pytest.raises(ValueError):
            dims_for(12)


class TestReductionProperty:
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=99))
    def test_allreduce_sum_over_all_dims(self, dims, seed):
        """Summing along every dimension gives every PE the global sum."""
        rng = np.random.default_rng(seed)
        vals = rng.integers(0, 100, size=1 << dims).astype(float)
        hc = Hypercube(dims)
        st_ = make_state(dims, X=vals)
        prog = [
            DimOp(d, lambda o, p, a: {"X": o["X"] + p["X"]}) for d in range(dims)
        ]
        hc.run(st_, prog, discipline="ascend")
        assert np.allclose(st_["X"], vals.sum())
