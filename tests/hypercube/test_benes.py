"""Beneš permutation routing (the paper's §2 O(log n) permutation claim)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypercube.benes import (
    benes_schedule,
    benes_stage_count,
    permutation_program,
    route_permutation,
)
from repro.hypercube.ccc import CCC
from repro.hypercube.machine import Hypercube, make_state


def _expected(dest, values):
    out = np.empty(len(dest), dtype=np.asarray(values).dtype)
    out[np.asarray(dest)] = values
    return out


class TestSchedule:
    @pytest.mark.parametrize("m", [1, 2, 3, 5])
    def test_stage_count_is_2m_minus_1(self, m):
        rng = np.random.default_rng(m)
        sched = benes_schedule(rng.permutation(1 << m))
        assert len(sched) == benes_stage_count(m)

    def test_stage_dims_descend_then_ascend(self):
        sched = benes_schedule(np.random.default_rng(0).permutation(16))
        dims = [d for d, _ in sched]
        assert dims == [3, 2, 1, 0, 1, 2, 3]

    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_masks_symmetric(self, m):
        rng = np.random.default_rng(m + 10)
        n = 1 << m
        for dim, mask in benes_schedule(rng.permutation(n)):
            assert (mask == mask[np.arange(n) ^ (1 << dim)]).all()

    def test_identity_needs_no_swaps(self):
        sched = benes_schedule(np.arange(32))
        assert sum(int(mask.sum()) for _, mask in sched) == 0

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            benes_schedule([0, 0, 1, 2])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            benes_schedule([2, 0, 1])


class TestRouting:
    @pytest.mark.parametrize("m", [1, 2, 4, 6])
    def test_random_permutations(self, m):
        rng = np.random.default_rng(m)
        n = 1 << m
        for _ in range(5):
            dest = rng.permutation(n)
            vals = rng.integers(0, 10_000, n)
            assert (route_permutation(dest, vals) == _expected(dest, vals)).all()

    def test_reversal(self):
        n = 32
        dest = np.arange(n)[::-1].copy()
        vals = np.arange(n)
        assert (route_permutation(dest, vals) == vals[::-1]).all()

    def test_cyclic_shift(self):
        n = 16
        dest = (np.arange(n) + 5) % n
        vals = np.arange(n) * 3
        assert (route_permutation(dest, vals) == _expected(dest, vals)).all()

    def test_swap_pairs(self):
        n = 8
        dest = np.arange(n) ^ 1
        vals = np.arange(n)
        assert (route_permutation(dest, vals) == _expected(dest, vals)).all()

    @settings(max_examples=40, deadline=None)
    @given(st.permutations(list(range(16))))
    def test_property(self, dest):
        dest = np.array(dest)
        vals = np.arange(16) + 100
        assert (route_permutation(dest, vals) == _expected(dest, vals)).all()

    def test_multiple_registers_travel_together(self):
        n = 16
        rng = np.random.default_rng(3)
        dest = rng.permutation(n)
        st_ = make_state(4, X=np.arange(n).astype(float), Y=(np.arange(n) * 7).astype(float))
        Hypercube(4).run(st_, permutation_program(dest, value_regs=("X", "Y")))
        assert (st_["X"] == _expected(dest, np.arange(n).astype(float))).all()
        assert (st_["Y"] == _expected(dest, (np.arange(n) * 7).astype(float))).all()


class TestOnCCC:
    @pytest.mark.parametrize("schedule", ["pipelined", "naive"])
    def test_matches_on_ccc(self, schedule):
        ccc = CCC(2)
        rng = np.random.default_rng(7)
        dest = rng.permutation(ccc.n)
        vals = rng.integers(0, 999, ccc.n).astype(float)
        st_ = make_state(ccc.dims, X=vals)
        stats = ccc.run(st_, permutation_program(dest), schedule=schedule)
        assert (st_["X"] == _expected(dest, vals)).all()
        assert stats.ideal_dimops == benes_stage_count(ccc.dims)

    def test_constant_slowdown(self):
        ccc = CCC(2)
        rng = np.random.default_rng(8)
        dest = rng.permutation(ccc.n)
        st_ = make_state(ccc.dims, X=rng.uniform(0, 1, ccc.n))
        stats = ccc.run(st_, permutation_program(dest), schedule="pipelined")
        assert stats.slowdown < 6.0
