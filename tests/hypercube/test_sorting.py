"""Bitonic sorting: the canonical ASCEND/DESCEND workload."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypercube.ccc import CCC
from repro.hypercube.machine import Hypercube, make_state
from repro.hypercube.sorting import (
    bitonic_sort_program,
    bitonic_stage_count,
    compare_exchange_op,
)


def _sort_on_hypercube(vals, tag=None):
    dims = int(np.log2(len(vals)))
    regs = {"X": np.asarray(vals, dtype=float)}
    if tag is not None:
        regs["T"] = np.asarray(tag)
    st_ = make_state(dims, **regs)
    Hypercube(dims).run(st_, bitonic_sort_program(dims, tag="T" if tag is not None else None))
    return st_


class TestHypercubeSort:
    @pytest.mark.parametrize("dims", [1, 2, 3, 5, 7])
    def test_sorts_random(self, dims):
        rng = np.random.default_rng(dims)
        vals = rng.uniform(0, 1, 1 << dims)
        st_ = _sort_on_hypercube(vals)
        assert (st_["X"] == np.sort(vals)).all()

    def test_sorts_with_duplicates(self):
        vals = np.array([3.0, 1.0, 3.0, 1.0, 2.0, 2.0, 0.0, 3.0])
        st_ = _sort_on_hypercube(vals)
        assert (st_["X"] == np.sort(vals)).all()

    def test_already_sorted(self):
        vals = np.arange(16.0)
        assert (_sort_on_hypercube(vals)["X"] == vals).all()

    def test_reverse_sorted(self):
        vals = np.arange(16.0)[::-1]
        assert (_sort_on_hypercube(vals)["X"] == np.sort(vals)).all()

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=8, max_size=8))
    def test_property_multiset_preserved(self, vals):
        st_ = _sort_on_hypercube(np.array(vals, dtype=float))
        out = st_["X"]
        assert sorted(out.tolist()) == sorted(float(v) for v in vals)
        assert (np.diff(out) >= 0).all()

    def test_tags_travel_with_keys(self):
        rng = np.random.default_rng(1)
        vals = rng.integers(0, 50, 32).astype(float)
        tags = np.arange(32)
        st_ = _sort_on_hypercube(vals, tag=tags)
        # tags are a permutation and each tag still indexes its key
        assert sorted(st_["T"].tolist()) == list(range(32))
        assert (vals[st_["T"]] == st_["X"]).all()

    def test_stage_count(self):
        assert bitonic_stage_count(4) == 10
        prog = bitonic_sort_program(4)
        assert len(prog) == 10

    def test_stages_are_descend_runs(self):
        prog = bitonic_sort_program(4)
        dims = [op.dim for op in prog]
        assert dims == [0, 1, 0, 2, 1, 0, 3, 2, 1, 0]


class TestCCCSort:
    @pytest.mark.parametrize("schedule", ["pipelined", "naive"])
    @pytest.mark.parametrize("r", [1, 2])
    def test_matches_numpy(self, schedule, r):
        ccc = CCC(r)
        rng = np.random.default_rng(r)
        vals = rng.integers(0, 1000, ccc.n).astype(float)
        st_ = make_state(ccc.dims, X=vals)
        stats = ccc.run(st_, bitonic_sort_program(ccc.dims), schedule=schedule)
        assert (st_["X"] == np.sort(vals)).all()
        assert stats.ideal_dimops == bitonic_stage_count(ccc.dims)

    def test_pipelined_uses_descend_sweeps(self):
        ccc = CCC(2)
        vals = np.random.default_rng(0).uniform(0, 1, ccc.n)
        st_ = make_state(ccc.dims, X=vals)
        stats = ccc.run(st_, bitonic_sort_program(ccc.dims), schedule="pipelined")
        assert stats.sweeps >= 1  # descend runs were batched
        assert (st_["X"] == np.sort(vals)).all()

    def test_pipelined_beats_naive(self):
        ccc = CCC(2)
        vals = np.random.default_rng(3).uniform(0, 1, ccc.n)
        steps = {}
        for sched in ("pipelined", "naive"):
            st_ = make_state(ccc.dims, X=vals)
            steps[sched] = ccc.run(st_, bitonic_sort_program(ccc.dims), schedule=sched).route_steps
        assert steps["pipelined"] < steps["naive"]

    def test_big_machine(self):
        ccc = CCC(3)  # 2048 PEs
        rng = np.random.default_rng(9)
        vals = rng.uniform(0, 1, ccc.n)
        st_ = make_state(ccc.dims, X=vals)
        stats = ccc.run(st_, bitonic_sort_program(ccc.dims))
        assert (st_["X"] == np.sort(vals)).all()
        assert stats.slowdown < 6.0


class TestCompareExchangeOp:
    def test_single_step(self):
        # stage 0, dim 0 on 4 PEs: pairs (0,1) asc, (2,3) desc.
        st_ = make_state(2, X=np.array([5.0, 2.0, 1.0, 4.0]))
        Hypercube(2).run(st_, [compare_exchange_op(0, 0)])
        assert st_["X"].tolist() == [2.0, 5.0, 4.0, 1.0]
