"""Cross-layer integration: every solver, one instance, one truth.

These tests tie the whole reproduction together: a single integral
instance is solved by the sequential DP, the hypercube dataflow, the CCC
emulation (both schedules) and the bit-level BVM program; all tables
must agree exactly, satisfy the Bellman verification, and extract
structurally identical optimal procedures.  Preprocessing and the
binary-testing anchors are folded through the same pipeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    Action,
    TTProblem,
    canonicalize,
    solve_dp,
    trees_equal,
)
from repro.ttpar import (
    solve_tt_bvm,
    solve_tt_ccc,
    solve_tt_hypercube,
    verify_cost_table,
)
from tests.conftest import tt_problems


def _integral(k, seed, n_tests=2, n_treats=2):
    rng = np.random.default_rng(seed)
    full = (1 << k) - 1
    weights = rng.integers(1, 6, k).astype(float)
    acts = []
    for _ in range(n_tests):
        acts.append(Action.test(int(rng.integers(1, full)), float(rng.integers(0, 6))))
    cov = 0
    for _ in range(n_treats):
        s = int(rng.integers(1, full + 1))
        acts.append(Action.treatment(s, float(rng.integers(1, 6))))
        cov |= s
    if cov != full:
        acts.append(Action.treatment(full & ~cov, 3.0))
    return TTProblem.build(weights, acts)


class TestFourWayAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_solvers_one_truth(self, seed):
        problem = _integral(3, seed)
        dp = solve_dp(problem)
        hyper = solve_tt_hypercube(problem)
        ccc_p = solve_tt_ccc(problem, schedule="pipelined")
        ccc_n = solve_tt_ccc(problem, schedule="naive")
        bvm = solve_tt_bvm(problem, width=16)

        for other in (hyper, ccc_p, ccc_n, bvm):
            assert np.allclose(dp.cost, other.cost)
            assert (dp.best_action == other.best_action).all()

        # One verification certifies them all.
        assert verify_cost_table(problem, dp.cost).ok

        # Extracted procedures are structurally identical (same tiebreaks).
        trees = [r.tree() for r in (dp, hyper, ccc_p, bvm)]
        for t in trees:
            t.validate()
        assert all(trees_equal(trees[0], t) for t in trees[1:])

    @settings(max_examples=6, deadline=None)
    @given(tt_problems(min_k=2, max_k=3, max_actions=3, integral=True))
    def test_property_three_machines(self, problem):
        dp = solve_dp(problem)
        hyper = solve_tt_hypercube(problem)
        bvm = solve_tt_bvm(problem, width=20)
        assert np.allclose(dp.cost, hyper.cost)
        assert np.allclose(dp.cost, bvm.cost)
        assert verify_cost_table(problem, bvm.cost).ok


class TestPreprocessingPipeline:
    def test_canonicalize_then_solve_agrees(self):
        problem = _integral(4, 5, n_tests=3, n_treats=3)
        # inject redundancy
        bloated = problem.with_actions(
            list(problem.actions)
            + [Action(a.kind, a.subset, a.cost + 2.0, "dup") for a in problem.actions[:2]]
        )
        report = canonicalize(bloated)
        a = solve_dp(bloated).optimal_cost
        b = solve_dp(report.problem).optimal_cost
        assert a == pytest.approx(b)
        assert report.problem.n_actions <= bloated.n_actions

    def test_canonical_instance_through_parallel_machine(self):
        problem = _integral(4, 9)
        report = canonicalize(problem)
        par = solve_tt_hypercube(report.problem)
        assert par.optimal_cost == pytest.approx(solve_dp(problem).optimal_cost)


class TestScaleLimits:
    def test_k8_hypercube_matches_dp(self):
        """A 2^12-PE virtual machine, beyond any BVM test size."""
        problem = _integral(8, 3, n_tests=6, n_treats=5)
        dp = solve_dp(problem)
        par = solve_tt_hypercube(problem)
        assert np.allclose(dp.cost, par.cost)
        assert verify_cost_table(problem, par.cost).ok

    def test_k10_dp_self_consistent(self):
        problem = _integral(10, 4, n_tests=8, n_treats=6)
        dp = solve_dp(problem)
        assert verify_cost_table(problem, dp.cost).ok
        tree = dp.tree()
        tree.validate()
        assert tree.expected_cost() == pytest.approx(dp.optimal_cost)
