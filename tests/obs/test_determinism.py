"""Telemetry is observational only: tables are bit-identical on/off.

This is the acceptance gate for the whole subsystem — tracing, metrics
and progress reporting may observe a solve but must never perturb its
``cost``/``best_action`` output, on any backend, with any store.
"""

import io

import numpy as np
import pytest

from repro.core import WORKLOADS, solve
from repro.core.parallel import solve_dp_parallel
from repro.core.sequential import solve_dp
from repro.obs import ProgressReporter, Tracer, tracing
from repro.store import StoreSpec

pytestmark = pytest.mark.timeout(180)


def _assert_identical(a, b):
    assert np.array_equal(a.cost, b.cost)
    assert np.array_equal(a.best_action, b.best_action)
    assert a.op_count == b.op_count


@pytest.fixture
def problem():
    return WORKLOADS["random"](9, seed=3)


class TestBitIdentityTracingOnOff:
    def test_numpy_backend(self, problem):
        plain = solve_dp(problem)
        tr = Tracer()
        with tracing(tr):
            traced = solve_dp(problem)
        _assert_identical(plain, traced)
        assert len(tr) > 0, "ambient tracer recorded nothing"

    def test_parallel_backend(self, problem):
        plain = solve_dp_parallel(problem, workers=2, min_shard=4)
        traced = solve_dp_parallel(
            problem, workers=2, min_shard=4, tracer=Tracer()
        )
        _assert_identical(plain, traced)

    def test_parallel_backend_mmap_store(self, problem, tmp_path):
        plain = solve_dp_parallel(
            problem,
            workers=2,
            min_shard=4,
            store=StoreSpec(kind="mmap", spill_dir=tmp_path / "plain"),
        )
        tr = Tracer()
        traced = solve_dp_parallel(
            problem,
            workers=2,
            min_shard=4,
            store=StoreSpec(kind="mmap", spill_dir=tmp_path / "traced"),
            tracer=tr,
        )
        _assert_identical(plain, traced)
        cats = {e["cat"] for e in tr.raw_events()}
        assert "store" in cats, "mmap commits left no store spans"

    def test_solve_front_door_with_progress(self, problem):
        plain = solve(problem, backend="parallel", workers=2)
        traced = solve(
            problem,
            backend="parallel",
            workers=2,
            tracer=Tracer(),
            progress=ProgressReporter(stream=io.StringIO()),
        )
        _assert_identical(plain, traced)

    def test_metrics_present_and_uniform_across_backends(self, problem):
        seq = solve_dp(problem)
        par = solve_dp_parallel(problem, workers=2, min_shard=4)
        assert set(seq.metrics) == set(par.metrics)
        assert set(seq.recovery) == set(par.recovery)
        # Single-process stub is zeroed, parallel solve actually counted.
        assert seq.metrics["layers.computed"] == 0
        assert par.metrics["layers.computed"] == problem.k
