"""Cross-process tracing: worker spans merge into one coherent timeline.

Workers record into private capped tracers and flush through the result
channel; these tests prove the merged timeline is consistent — distinct
worker pids, shard spans nested inside their layer span, layers in
order — and that injected faults leave tagged events on it.
"""

import numpy as np
import pytest

from repro.core import WORKLOADS
from repro.core.parallel import solve_dp_parallel
from repro.obs import Tracer
from repro.obs.export import normalized_events, summarize_trace

pytestmark = pytest.mark.timeout(120)


def _solve_traced(k=8, workers=4, min_shard=1, **kw):
    problem = WORKLOADS["random"](k, seed=0)
    tracer = Tracer()
    result = solve_dp_parallel(
        problem, workers=workers, min_shard=min_shard, tracer=tracer, **kw
    )
    return problem, tracer, result


class TestCrossProcessTimeline:
    def test_worker_spans_merge_with_distinct_pids(self):
        _, tracer, result = _solve_traced()
        events = normalized_events(tracer)
        shard = [e for e in events if e["cat"] == "shard" and e["ph"] == "X"]
        layer = [e for e in events if e["cat"] == "layer" and e["ph"] == "X"]
        assert len(layer) == 8
        # Pool layers were actually dispatched (min_shard=1 forces it).
        assert result.metrics["shard.dispatched"] > 0
        pids = {e["pid"] for e in shard}
        assert len(pids) >= 2, "expected spans from more than one process"

    def test_shard_spans_nest_inside_their_layer(self):
        _, tracer, _ = _solve_traced()
        events = normalized_events(tracer)
        layer_bounds = {
            e["args"]["layer"]: (e["ts"], e["ts"] + e["dur"])
            for e in events
            if e["cat"] == "layer" and e["ph"] == "X"
        }
        shard = [e for e in events if e["cat"] == "shard" and e["ph"] == "X"]
        assert shard
        slack = 2000  # µs: rounding + result-channel delivery jitter
        for ev in shard:
            lo, hi = layer_bounds[ev["args"]["layer"]]
            assert ev["ts"] >= lo - slack
            assert ev["ts"] + ev["dur"] <= hi + slack

    def test_layers_appear_in_ascending_order(self):
        _, tracer, _ = _solve_traced()
        layer_events = [
            e
            for e in normalized_events(tracer)
            if e["cat"] == "layer" and e["ph"] == "X"
        ]
        starts = [e["ts"] for e in sorted(layer_events, key=lambda e: e["args"]["layer"])]
        assert starts == sorted(starts), "layer spans out of order"
        # Barriers: layer j ends before layer j+1 begins.
        ordered = sorted(layer_events, key=lambda e: e["args"]["layer"])
        for prev, nxt in zip(ordered, ordered[1:]):
            assert prev["ts"] + prev["dur"] <= nxt["ts"]

    def test_shard_metrics_follow_ingested_spans(self):
        _, tracer, result = _solve_traced()
        events = normalized_events(tracer)
        worker_spans = [
            e
            for e in events
            if e["cat"] == "shard" and e["ph"] == "X" and "shard" in (e["args"] or {})
        ]
        assert result.metrics["shard.seconds"]["count"] >= len(worker_spans)

    def test_tracing_off_result_is_untouched(self):
        problem = WORKLOADS["random"](8, seed=0)
        plain = solve_dp_parallel(problem, workers=4, min_shard=1)
        _, _, traced = _solve_traced()
        assert np.array_equal(plain.cost, traced.cost)
        assert np.array_equal(plain.best_action, traced.best_action)


class TestFaultEvents:
    def test_worker_fault_instant_flushed_through_result_channel(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "slow:layer=4:shard=0:ms=30")
        _, tracer, result = _solve_traced()
        faults = [
            e
            for e in normalized_events(tracer)
            if e["cat"] == "fault" and e["name"] == "fault.slow"
        ]
        assert len(faults) == 1
        args = faults[0]["args"]
        assert args["layer"] == 4 and args["shard"] == 0
        # Observational only: the slow shard still completed correctly.
        assert result.metrics["layers.computed"] == 8

    def test_worker_crash_leaves_recovery_events(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "exc:layer=3:shard=1")
        _, tracer, result = _solve_traced()
        recov = [
            e for e in normalized_events(tracer) if e["cat"] == "recovery"
        ]
        kinds = {e["name"] for e in recov}
        assert "crash" in kinds or "retry" in kinds
        assert result.recovery["retries"] + result.recovery["fallback_shards"] >= 1

    def test_storage_fault_instant_lands_parent_side(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "torn-write:layer=2")
        from repro.store import StoreSpec

        problem = WORKLOADS["random"](8, seed=0)
        tracer = Tracer()
        result = solve_dp_parallel(
            problem,
            workers=1,
            tracer=tracer,
            store=StoreSpec(kind="mmap", spill_dir=tmp_path / "spill"),
        )
        events = normalized_events(tracer)
        torn = [e for e in events if e["name"] == "fault.torn-write"]
        assert torn and torn[0]["args"]["layer"] == 2
        # The summary counts the fault on its layer's row.
        rows = {r["layer"]: r for r in summarize_trace(events)["layers"]}
        assert rows[2]["faults"] >= 1
        assert result.recovery["rederived"] >= 0  # uniform keys present
