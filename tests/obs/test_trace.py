"""Unit tests for the telemetry core: tracer, metrics, exporters, progress.

The golden-file check pins the on-disk JSONL schema: any change to the
record shape must bump ``TRACE_SCHEMA_VERSION`` *and* update
``golden_trace_schema.json`` deliberately, in the same commit.
"""

import doctest
import io
import json
from pathlib import Path

import pytest

import repro
from repro.core.supervisor import RecoveryLog
from repro.obs import (
    NULL,
    MetricsRegistry,
    NullTracer,
    ProgressReporter,
    Tracer,
    chrome_trace,
    current,
    load_trace,
    render_report,
    summarize_trace,
    tracing,
    write_trace,
    zeroed_metrics,
    zeroed_recovery,
)
from repro.obs.export import normalized_events
from repro.obs.metrics import METRIC_COUNTERS, METRIC_GAUGES, METRIC_HISTOGRAMS
from repro.obs.trace import TRACE_SCHEMA_VERSION

GOLDEN = Path(__file__).parent / "golden_trace_schema.json"


class TestTracer:
    def test_span_records_complete_event(self):
        tr = Tracer()
        with tr.span("work", cat="test", layer=3):
            pass
        (ev,) = tr.raw_events()
        assert ev["ph"] == "X"
        assert ev["name"] == "work"
        assert ev["cat"] == "test"
        assert ev["t1"] >= ev["t0"]
        assert ev["args"] == {"layer": 3}

    def test_instant_and_counter(self):
        tr = Tracer()
        tr.instant("tick", cat="test", n=1)
        tr.counter("gauge", 7.5)
        phases = [ev["ph"] for ev in tr.raw_events()]
        assert phases == ["i", "C"]
        assert tr.raw_events()[1]["args"] == {"value": 7.5}

    def test_complete_merges_extra_args(self):
        tr = Tracer()
        tr.complete("s", "test", 1.0, 2.0, args={"a": 1}, b=2)
        assert tr.raw_events()[0]["args"] == {"a": 1, "b": 2}

    def test_cap_counts_drops(self):
        tr = Tracer(max_events=2)
        for _ in range(5):
            tr.instant("e")
        assert len(tr) == 2
        assert tr.dropped == 3

    def test_ingest_respects_cap(self):
        src = Tracer()
        for _ in range(4):
            src.instant("e")
        dst = Tracer(max_events=3)
        accepted = dst.ingest(src.raw_events())
        assert accepted == 3
        assert dst.dropped == 1
        assert dst.ingest([]) == 0

    def test_null_tracer_is_inert(self):
        assert not NULL.collecting
        with NULL.span("x"):
            pass
        NULL.instant("x")
        NULL.complete("x", "c", 0.0, 1.0)
        assert NULL.raw_events() == []
        assert len(NULL) == 0
        assert isinstance(NULL, NullTracer)

    def test_ambient_activation_restores(self):
        assert current() is NULL
        tr = Tracer()
        with tracing(tr):
            assert current() is tr
            with tracing(None):
                assert current() is NULL
            assert current() is tr
        assert current() is NULL


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.inc("c")
        reg.set_gauge("g", 1.5)
        reg.observe("h", 2.0)
        reg.observe("h", 4.0)
        d = reg.as_dict()
        assert d["c"] == 3
        assert d["g"] == 1.5
        assert d["h"]["count"] == 2
        assert d["h"]["min"] == 2.0
        assert d["h"]["max"] == 4.0
        assert d["h"]["mean"] == 3.0

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(TypeError):
            reg.observe("x", 1.0)

    def test_as_dict_includes_all_standard_keys_zeroed(self):
        d = MetricsRegistry().as_dict()
        for name in METRIC_COUNTERS:
            assert d[name] == 0, name
        for name in METRIC_GAUGES:
            assert d[name] == 0.0, name
        for name in METRIC_HISTOGRAMS:
            assert d[name]["count"] == 0, name

    def test_zeroed_recovery_matches_recovery_log_shape(self):
        # The single-process stub must stay field-for-field in sync with
        # what the supervised engine actually reports.
        stub = zeroed_recovery()
        live = RecoveryLog().as_dict()
        assert set(stub) == set(live)
        assert stub == live

    def test_zeroed_metrics_covers_registry(self):
        assert set(zeroed_metrics()) == set(MetricsRegistry().as_dict())


def _sample_tracer() -> Tracer:
    tr = Tracer()
    tr.complete("layer", "layer", tr.epoch + 0.001, tr.epoch + 0.002,
                layer=1, masks=4, shards=1, mode="parent")
    tr.complete("shard", "shard", tr.epoch + 0.001, tr.epoch + 0.0015,
                layer=1, shard=0, attempt=0, masks=4)
    tr.complete("store.commit", "store", tr.epoch + 0.002, tr.epoch + 0.003,
                layer=1, bytes=64)
    tr.instant("fault.slow", cat="fault", layer=1)
    tr.instant("retry", cat="recovery", layer=1)
    tr.counter("rss", 12.0)
    return tr


class TestExport:
    def test_jsonl_golden_schema(self, tmp_path):
        golden = json.loads(GOLDEN.read_text())
        assert golden["schema"] == TRACE_SCHEMA_VERSION, (
            "schema version changed: update golden_trace_schema.json "
            "in the same commit"
        )
        path = tmp_path / "t.jsonl"
        write_trace(path, _sample_tracer())
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        meta, events = lines[0], lines[1:]
        assert meta["type"] == "meta"
        assert sorted(meta) == sorted(golden["meta_keys"])
        assert meta["schema"] == golden["schema"]
        assert meta["clock"] == golden["clock"]
        assert meta["unit"] == golden["unit"]
        assert events, "sample trace exported no events"
        for ev in events:
            assert sorted(ev) == sorted(golden["event_keys"])
            assert ev["ph"] in golden["phases"]
            assert isinstance(ev["ts"], int)
            assert ev["dur"] is None or isinstance(ev["dur"], int)

    def test_chrome_trace_shape(self):
        doc = chrome_trace(_sample_tracer(), meta={"solver": "dp"})
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["solver"] == "dp"
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                assert "dur" in ev
            if ev["ph"] == "i":
                assert ev["s"] == "p"

    def test_load_roundtrip_both_formats(self, tmp_path):
        tr = _sample_tracer()
        jl, ch = tmp_path / "t.jsonl", tmp_path / "t.json"
        write_trace(jl, tr, meta={"k": 3})
        write_trace(ch, tr, meta={"k": 3})
        meta_j, ev_j = load_trace(jl)
        meta_c, ev_c = load_trace(ch)
        assert meta_j["k"] == meta_c["k"] == 3
        assert ev_j == ev_c == normalized_events(tr)

    def test_events_sorted_by_start(self):
        tr = Tracer()
        tr.complete("b", "x", tr.epoch + 0.2, tr.epoch + 0.3)
        tr.complete("a", "x", tr.epoch + 0.1, tr.epoch + 0.4)
        ts = [e["ts"] for e in normalized_events(tr)]
        assert ts == sorted(ts)

    def test_summarize_and_render(self, tmp_path):
        _, events = (lambda p: (write_trace(p, _sample_tracer()), load_trace(p))[1])(
            tmp_path / "t.jsonl"
        )
        s = summarize_trace(events)
        (row,) = s["layers"]
        assert row["layer"] == 1
        assert row["masks"] == 4
        assert row["shard_spans"] == 1
        assert row["commit_bytes"] == 64
        assert row["faults"] == 1
        assert row["recovery"] == 1
        text = render_report(s)
        assert "layer" in text and "commit_MB" in text
        assert "total:" in text

    def test_render_report_empty_trace(self):
        text = render_report(summarize_trace([]))
        assert "total: 0 events" in text


class TestProgress:
    def test_reports_and_finishes(self):
        buf = io.StringIO()
        rep = ProgressReporter(stream=buf)
        rep.begin(total_layers=4, total_masks=16)
        rep.layer_done(2, 8, spilled_bytes=2 << 20)
        rep.finish()
        text = buf.getvalue()
        assert "layer 2/4" in text
        assert "50.0%" in text
        assert "2 MB" in text
        assert text.endswith("\n")

    def test_broken_stream_never_raises(self):
        class Broken:
            def write(self, s):
                raise OSError("gone")

            def flush(self):
                raise OSError("gone")

        rep = ProgressReporter(stream=Broken())
        rep.begin(2, 4)
        rep.layer_done(1, 2)
        rep.finish()  # must not raise

    def test_silent_before_begin(self):
        buf = io.StringIO()
        rep = ProgressReporter(stream=buf)
        rep.finish()
        assert buf.getvalue() == ""


def test_package_docstring_examples():
    results = doctest.testmod(repro)
    assert results.failed == 0
    assert results.attempted >= 3
