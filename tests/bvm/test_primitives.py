"""§4 BVM primitives against closed-form golden patterns (Figs. 3-6)."""

import numpy as np
import pytest

from repro.bvm.hyperops import route_dim
from repro.bvm.primitives import (
    broadcast_bit,
    cycle_id,
    cycle_id_input_bits,
    processor_id,
    propagation1,
    propagation2,
)
from repro.bvm.program import ProgramBuilder
from repro.util.bitops import popcount


def _run_with_pid(r, data_rows, body):
    """Build a program: allocate data rows first, then PID, then body."""
    prog = ProgramBuilder(r)
    data = prog.pool.alloc(data_rows)
    pid = prog.pool.alloc(r + (1 << r))
    processor_id(prog, pid)
    body(prog, data, pid)
    m = prog.build_machine()
    m.feed_input(cycle_id_input_bits(prog.Q))
    return prog, m, data


class TestCycleID:
    """Fig. 3: the bit at cycle i, position j is bit j of i."""

    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_golden_pattern(self, r):
        prog = ProgramBuilder(r)
        dst = prog.pool.alloc1()
        cycle_id(prog, dst)
        m = prog.build_machine()
        m.feed_input(cycle_id_input_bits(prog.Q))
        prog.run(m)
        topo = m.topology
        want = ((topo.cycle_of >> topo.pos_of) & 1).astype(bool)
        assert (m.read(dst) == want).all()

    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_log_n_instructions(self, r):
        """O(Q) = O(log n) instruction count, as the paper claims."""
        prog = ProgramBuilder(r)
        dst = prog.pool.alloc1()
        cycle_id(prog, dst)
        Q = prog.Q
        assert len(prog) <= 4 * Q + 4

    def test_one_end_interpretation(self):
        """Equivalent view: the bit is 1 iff the PE is at the 1-end of its
        lateral link."""
        r = 2
        prog = ProgramBuilder(r)
        dst = prog.pool.alloc1()
        cycle_id(prog, dst)
        m = prog.build_machine()
        m.feed_input(cycle_id_input_bits(prog.Q))
        prog.run(m)
        topo = m.topology
        got = m.read(dst)
        partner = topo.lateral_index
        # exactly one end of every lateral link holds a 1
        assert (got ^ got[partner]).all()
        # and it is the end with the larger cycle number
        is_upper = topo.cycle_of > topo.cycle_of[partner]
        assert (got == is_upper).all()

    def test_consumes_q_input_bits(self):
        prog = ProgramBuilder(2)
        dst = prog.pool.alloc1()
        cycle_id(prog, dst)
        m = prog.build_machine()
        m.feed_input(cycle_id_input_bits(prog.Q))
        prog.run(m)
        assert len(m.input_queue) == 0

    def test_input_bits_helper(self):
        assert cycle_id_input_bits(4) == [0, 0, 0, 0]


class TestProcessorID:
    """Fig. 4: each PE holds its own address."""

    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_golden_pattern(self, r):
        prog = ProgramBuilder(r)
        w = r + (1 << r)
        pid = prog.pool.alloc(w)
        processor_id(prog, pid)
        m = prog.build_machine()
        m.feed_input(cycle_id_input_bits(prog.Q))
        prog.run(m)
        addr = np.zeros(m.n, dtype=np.int64)
        for b, reg in enumerate(pid):
            addr |= m.read(reg).astype(np.int64) << b
        assert (addr == np.arange(m.n)).all()

    def test_row_count_validated(self):
        prog = ProgramBuilder(2)
        with pytest.raises(ValueError):
            processor_id(prog, prog.pool.alloc(3))

    def test_log_squared_instructions(self):
        """O(Q^2) = O(log^2 n) instruction count."""
        for r in (1, 2, 3):
            prog = ProgramBuilder(r)
            pid = prog.pool.alloc(r + (1 << r))
            processor_id(prog, pid)
            Q = prog.Q
            assert len(prog) <= Q * Q + 8 * Q + 10

    def test_accepts_precomputed_cycle_id(self):
        prog = ProgramBuilder(1)
        pid = prog.pool.alloc(3)
        cid = prog.pool.alloc1()
        cycle_id(prog, cid)
        processor_id(prog, pid, cid=cid)
        m = prog.build_machine()
        m.feed_input(cycle_id_input_bits(prog.Q))
        prog.run(m)
        addr = np.zeros(m.n, dtype=np.int64)
        for b, reg in enumerate(pid):
            addr |= m.read(reg).astype(np.int64) << b
        assert (addr == np.arange(m.n)).all()


class TestBroadcast:
    """§4.3 / Fig. 6: flood PE 0's bit to the whole machine."""

    @pytest.mark.parametrize("r", [1, 2])
    @pytest.mark.parametrize("bit", [0, 1])
    def test_floods_value(self, r, bit):
        def body(prog, data, pid):
            broadcast_bit(prog, data[0], data[1], pid, route_dim)

        prog, m, data = _run_with_pid(r, 2, body)
        v = np.zeros(m.n, bool)
        s = np.zeros(m.n, bool)
        v[0] = bool(bit)
        s[0] = True
        m.poke(data[0], v)
        m.poke(data[1], s)
        prog.run(m)
        assert (m.read(data[0]) == bool(bit)).all()
        assert m.read(data[1]).all()

    def test_matches_hypercube_collective(self):
        """BVM broadcast == the hypercube-level broadcast program."""
        from repro.hypercube.collectives import broadcast_program
        from repro.hypercube.machine import Hypercube, make_state

        r = 2
        dims = r + (1 << r)

        def body(prog, data, pid):
            broadcast_bit(prog, data[0], data[1], pid, route_dim)

        prog, m, data = _run_with_pid(r, 2, body)
        v = np.zeros(m.n, bool)
        s = np.zeros(m.n, bool)
        v[0] = True
        s[0] = True
        m.poke(data[0], v.copy())
        m.poke(data[1], s.copy())
        prog.run(m)

        st = make_state(dims, V=v.astype(float), SENDER=s)
        Hypercube(dims).run(st, broadcast_program(dims))
        assert (m.read(data[0]) == st["V"].astype(bool)).all()


class TestPropagation:
    @pytest.mark.parametrize("r", [1, 2])
    def test_propagation1_group_step(self, r):
        """1-group to 2-group: each 2-set PE ORs its two singletons."""

        def body(prog, data, pid):
            propagation1(prog, data[0], data[1], pid, route_dim)

        prog, m, data = _run_with_pid(r, 2, body)
        addrs = np.arange(m.n)
        pops = np.array([popcount(a) for a in addrs])
        sender = pops == 1
        value = sender & (addrs % 3 == 0)  # some singletons carry a 1
        m.poke(data[0], value.copy())
        m.poke(data[1], sender.copy())
        prog.run(m)
        got = m.read(data[0])
        for a in addrs[pops == 2]:
            subs = [a & ~(1 << b) for b in range(20) if (a >> b) & 1]
            want = any(value[s] for s in subs)
            assert got[a] == want
        # senders keep their group membership
        assert (m.read(data[1]) == sender).all()

    @pytest.mark.parametrize("r", [1, 2])
    def test_propagation2_floods_upward(self, r):
        def body(prog, data, pid):
            propagation2(prog, data[0], data[1], pid, route_dim)

        prog, m, data = _run_with_pid(r, 2, body)
        addrs = np.arange(m.n)
        pops = np.array([popcount(a) for a in addrs])
        sender = pops == 1
        m.poke(data[0], sender.copy())
        m.poke(data[1], sender.copy())
        prog.run(m)
        want = addrs != 0
        assert (m.read(data[0]) == want).all()
        assert (m.read(data[1]) == want).all()
