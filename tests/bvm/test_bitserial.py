"""Bit-serial arithmetic vs. plain integer arithmetic (hypothesis-driven)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvm import bitserial as bs
from repro.bvm.program import ProgramBuilder

W = 8
R_MACHINE = 1  # 8 PEs is plenty; every PE checks a different operand pair
TOP = (1 << W) - 1

words8 = st.lists(
    st.integers(min_value=0, max_value=TOP), min_size=8, max_size=8
)


def _setup(n_words):
    prog = ProgramBuilder(R_MACHINE)
    words = [prog.pool.alloc(W) for _ in range(n_words)]
    return prog, words


def _poke_word(m, word, vals):
    vals = np.asarray(vals, dtype=np.int64)
    for w, row in enumerate(word):
        m.poke(row, (vals >> w) & 1)


def _read_word(m, word):
    out = np.zeros(m.n, dtype=np.int64)
    for w, row in enumerate(word):
        out |= m.read(row).astype(np.int64) << w
    return out


class TestAdd:
    @settings(max_examples=30, deadline=None)
    @given(words8, words8)
    def test_saturating_add(self, av, bv):
        prog, (a, b) = _setup(2)
        bs.add_into(prog, a, b)
        m = prog.build_machine()
        _poke_word(m, a, av)
        _poke_word(m, b, bv)
        prog.run(m)
        want = np.minimum(np.array(av) + np.array(bv), TOP)
        assert (_read_word(m, a) == want).all()

    def test_inf_absorbing(self):
        prog, (a, b) = _setup(2)
        bs.add_into(prog, a, b)
        m = prog.build_machine()
        _poke_word(m, a, [TOP] * 8)
        _poke_word(m, b, list(range(8)))
        prog.run(m)
        assert (_read_word(m, a) == TOP).all()

    @settings(max_examples=20, deadline=None)
    @given(words8, st.integers(min_value=0, max_value=TOP))
    def test_add_const(self, av, c):
        prog, (a,) = _setup(1)
        bs.add_const_into(prog, a, c)
        m = prog.build_machine()
        _poke_word(m, a, av)
        prog.run(m)
        want = np.minimum(np.array(av) + c, TOP)
        assert (_read_word(m, a) == want).all()

    def test_nonsaturating_wraps(self):
        prog, (a, b) = _setup(2)
        bs.add_into(prog, a, b, saturate=False)
        m = prog.build_machine()
        _poke_word(m, a, [200] * 8)
        _poke_word(m, b, [100] * 8)
        prog.run(m)
        assert (_read_word(m, a) == (300 % 256)).all()

    def test_width_mismatch(self):
        prog, (a,) = _setup(1)
        short = prog.pool.alloc(4)
        with pytest.raises(ValueError):
            bs.add_into(prog, a, short)

    def test_const_out_of_range(self):
        prog, (a,) = _setup(1)
        with pytest.raises(ValueError):
            bs.add_const_into(prog, a, 1 << W)


class TestCompare:
    @settings(max_examples=30, deadline=None)
    @given(words8, words8)
    def test_less_than(self, av, bv):
        prog, (a, b) = _setup(2)
        out = prog.pool.alloc1()
        bs.less_than(prog, a, b, out)
        m = prog.build_machine()
        _poke_word(m, a, av)
        _poke_word(m, b, bv)
        prog.run(m)
        assert (m.read(out) == (np.array(av) < np.array(bv))).all()

    @settings(max_examples=30, deadline=None)
    @given(words8, words8)
    def test_equal_words(self, av, bv):
        prog, (a, b) = _setup(2)
        out = prog.pool.alloc1()
        bs.equal_words(prog, a, b, out)
        m = prog.build_machine()
        _poke_word(m, a, av)
        _poke_word(m, b, bv)
        prog.run(m)
        assert (m.read(out) == (np.array(av) == np.array(bv))).all()

    @settings(max_examples=20, deadline=None)
    @given(words8, st.integers(min_value=0, max_value=TOP))
    def test_equals_const(self, av, c):
        prog, (a,) = _setup(1)
        out = prog.pool.alloc1()
        bs.equals_const(prog, a, c, out)
        m = prog.build_machine()
        _poke_word(m, a, av)
        prog.run(m)
        assert (m.read(out) == (np.array(av) == c)).all()


class TestMinSelect:
    @settings(max_examples=30, deadline=None)
    @given(words8, words8)
    def test_min_into(self, av, bv):
        prog, (a, b) = _setup(2)
        bs.min_into(prog, a, b)
        m = prog.build_machine()
        _poke_word(m, a, av)
        _poke_word(m, b, bv)
        prog.run(m)
        assert (_read_word(m, a) == np.minimum(av, bv)).all()

    @settings(max_examples=20, deadline=None)
    @given(words8, words8)
    def test_select_word(self, xv, yv):
        prog, (x, y, d) = _setup(3)
        cond = prog.pool.alloc1()
        bs.select_word(prog, d, cond, x, y)
        m = prog.build_machine()
        cv = np.arange(m.n) % 2 == 0
        m.poke(cond, cv)
        _poke_word(m, x, xv)
        _poke_word(m, y, yv)
        prog.run(m)
        want = np.where(cv, xv, yv)
        assert (_read_word(m, d) == want).all()

    def test_min_into_instruction_count(self):
        """2W+1 instructions: borrow chain + conditional moves."""
        prog, (a, b) = _setup(2)
        base = len(prog)
        bs.min_into(prog, a, b)
        assert len(prog) - base == 2 * W + 1


class TestTaggedMin:
    @settings(max_examples=25, deadline=None)
    @given(words8, words8, words8, words8)
    def test_lexicographic(self, va, ta, vb, tb):
        prog, (a_val, a_tag, b_val, b_tag) = _setup(4)
        bs.min_tagged_into(prog, a_val, a_tag, b_val, b_tag)
        m = prog.build_machine()
        _poke_word(m, a_val, va)
        _poke_word(m, a_tag, ta)
        _poke_word(m, b_val, vb)
        _poke_word(m, b_tag, tb)
        prog.run(m)
        take = (np.array(vb) < va) | ((np.array(vb) == va) & (np.array(tb) < ta))
        assert (_read_word(m, a_val) == np.where(take, vb, va)).all()
        assert (_read_word(m, a_tag) == np.where(take, tb, ta)).all()

    def test_gated(self):
        prog, (a_val, a_tag, b_val, b_tag) = _setup(4)
        gate = prog.pool.alloc1()
        bs.min_tagged_into(prog, a_val, a_tag, b_val, b_tag, gate=gate)
        m = prog.build_machine()
        _poke_word(m, a_val, [9] * 8)
        _poke_word(m, a_tag, [1] * 8)
        _poke_word(m, b_val, [3] * 8)
        _poke_word(m, b_tag, [2] * 8)
        gv = np.arange(m.n) < 4
        m.poke(gate, gv)
        prog.run(m)
        assert (_read_word(m, a_val) == np.where(gv, 3, 9)).all()


class TestMult:
    @settings(max_examples=25, deadline=None)
    @given(words8, st.lists(st.integers(min_value=0, max_value=15), min_size=8, max_size=8))
    def test_saturating_product(self, xv, yv):
        prog, (x, y, acc) = _setup(3)
        bs.mult_into(prog, acc, x, y)
        m = prog.build_machine()
        _poke_word(m, x, xv)
        _poke_word(m, y, yv)
        prog.run(m)
        want = np.minimum(np.array(xv) * np.array(yv), TOP)
        assert (_read_word(m, acc) == want).all()

    def test_times_zero(self):
        prog, (x, y, acc) = _setup(3)
        bs.mult_into(prog, acc, x, y)
        m = prog.build_machine()
        _poke_word(m, x, [255] * 8)
        _poke_word(m, y, [0] * 8)
        prog.run(m)
        assert (_read_word(m, acc) == 0).all()

    def test_overflow_saturates(self):
        prog, (x, y, acc) = _setup(3)
        bs.mult_into(prog, acc, x, y)
        m = prog.build_machine()
        _poke_word(m, x, [100] * 8)
        _poke_word(m, y, [100] * 8)
        prog.run(m)
        assert (_read_word(m, acc) == TOP).all()


class TestWordUtilities:
    def test_copy_word(self):
        prog, (a, b) = _setup(2)
        bs.copy_word(prog, b, a)
        m = prog.build_machine()
        _poke_word(m, a, list(range(8)))
        prog.run(m)
        assert (_read_word(m, b) == np.arange(8)).all()

    def test_set_word_const(self):
        prog, (a,) = _setup(1)
        bs.set_word_const(prog, a, 0xA5)
        m = prog.build_machine()
        prog.run(m)
        assert (_read_word(m, a) == 0xA5).all()

    def test_set_word_const_range_checked(self):
        prog, (a,) = _setup(1)
        with pytest.raises(ValueError):
            bs.set_word_const(prog, a, 1 << W)
