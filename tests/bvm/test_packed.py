"""The word-packed backend against the boolean oracle.

Three layers of evidence that ``PackedBVM`` is bit-for-bit the same
machine as ``BVM``:

* *lowering*: every one of the 256 F/G truth tables, lowered to its
  bitwise expression, agrees with an independent sum-of-minterms
  evaluation on random planes — and the full 256x256 dual-assignment
  grid is swept at machine level on a CCC(1);
* *replays*: the real program suites (processor id, route sweeps,
  bit-serial arithmetic, streamed IO) produce identical registers,
  output logs and cycle counts on both backends;
* *fuzz*: hypothesis-generated instruction sequences (same strategy as
  the scalar differential suite) are executed in lockstep.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvm.bitserial import add_into, min_tagged_into, set_word_const
from repro.bvm.hyperops import route_dim
from repro.bvm.isa import A, B, E, FN, Instruction, Operand, R, Reg, activation_if
from repro.bvm.machine import BVM, resolve_backend
from repro.bvm.packed import PackedBVM, compile_step, lower_table, lowered_fn
from repro.bvm.primitives import broadcast_bit, cycle_id_input_bits, processor_id
from repro.bvm.program import CompiledProgram, ProgramBuilder
from repro.bvm.streams import stream_bits_for, stream_load, stream_read
from repro.bvm.topology import CCCTopology, pack_row, unpack_plane
from tests.bvm.test_differential import instructions

# ----------------------------------------------------------------------
# Packing helpers
# ----------------------------------------------------------------------


class TestPacking:
    @pytest.mark.parametrize("n", [1, 7, 8, 64, 65, 2048])
    def test_roundtrip(self, n):
        rng = np.random.default_rng(n)
        row = rng.integers(0, 2, n).astype(bool)
        plane = pack_row(row)
        assert plane >> n == 0, "tail bits must be zero"
        assert (unpack_plane(plane, n) == row).all()

    def test_bit_order(self):
        # PE q maps to bit q, LSB first.
        row = np.zeros(70, dtype=bool)
        row[0] = row[65] = True
        assert pack_row(row) == (1 << 0) | (1 << 65)

    @pytest.mark.parametrize("r", [1, 2, 3])
    @pytest.mark.parametrize("name", ["S", "P", "L", "XS", "XP"])
    def test_packed_plan_matches_gather(self, r, name):
        topo = CCCTopology(r)
        idx = topo.neighbor_index(name)
        rng = np.random.default_rng(r * 31 + len(name))
        for _ in range(5):
            row = rng.integers(0, 2, topo.n).astype(bool)
            want = row[idx]
            got = unpack_plane(topo.packed_plan(name)(pack_row(row)), topo.n)
            assert (got == want).all()

    def test_packed_plan_preserves_tail(self):
        topo = CCCTopology(2)
        ones = topo.full_mask
        for name in ("S", "P", "L", "XS", "XP"):
            out = topo.packed_plan(name)(ones)
            assert out == ones  # a permutation of all-ones is all-ones

    def test_packed_activation_matches_mask(self):
        topo = CCCTopology(2)
        for act in (None, (False, frozenset({0, 2})), (True, frozenset({1}))):
            plane = topo.packed_activation(act)
            if act is None:
                assert plane == topo.full_mask
            else:
                assert plane == pack_row(topo.activation_mask(act))


# ----------------------------------------------------------------------
# Truth-table lowering
# ----------------------------------------------------------------------


def _minterm_reference(table: int, F: int, D: int, B: int, M: int) -> int:
    """Independent evaluation: OR of the table's minterms."""
    out = 0
    for f in (0, 1):
        for d in (0, 1):
            for b in (0, 1):
                if (table >> (f * 4 + d * 2 + b)) & 1:
                    term = (F if f else F ^ M) & (D if d else D ^ M)
                    term &= B if b else B ^ M
                    out |= term
    return out


class TestLowering:
    def test_all_256_tables_exact(self):
        rng = np.random.default_rng(0)
        n = 192  # three words, odd tail exercised below
        M = (1 << n) - 1
        rows = [pack_row(rng.integers(0, 2, n).astype(bool)) for _ in range(3)]
        F, D, B = rows
        for table in range(256):
            fn = lowered_fn(table)
            got = fn(F, D, B, M)
            assert got == _minterm_reference(table, F, D, B, M), lower_table(table)
            assert got >> n == 0, "lowered form must keep the tail clear"

    def test_known_shapes(self):
        assert lower_table(FN.ZERO) == "0"
        assert lower_table(FN.ONE) == "M"
        assert lower_table(FN.F) == "F"
        assert lower_table(FN.XOR) == "(F^D)"
        assert lower_table(FN.B) == "B"
        # B-mux: SEL_B_FD = B ? F : D
        assert lowered_fn(FN.SEL_B_FD)(0b11, 0b01, 0b10, 0b11) == 0b11

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            lower_table(256)

    def test_exhaustive_fg_grid_machine_level(self):
        """All 256x256 (f, g) dual assignments, packed vs boolean.

        One long synchronized walk on a CCC(1): both machines start from
        the same random state and execute the full grid in sequence, so
        every pair runs against the evolving state left by its
        predecessors.  States are compared at every grid row boundary.
        """
        r, L = 1, 4
        fast = PackedBVM(r, L=L)
        ref = BVM(r, L=L, backend="bool")
        rng = np.random.default_rng(7)
        for reg in (R(0), R(1), R(2), A, B, E):
            row = rng.integers(0, 2, ref.n).astype(bool)
            fast.poke(reg, row)
            ref.poke(reg, row)
        acts = [None, activation_if({0}), (True, frozenset({1}))]
        for f in range(256):
            for g in range(256):
                instr = Instruction(
                    dest=R(0), f=f, fsrc=R(1), dsrc=Operand(R(2)), g=g,
                    activation=acts[(f * 256 + g) % 3],
                )
                fast.execute(instr)
                ref.execute(instr)
            assert fast.plane(R(0)) == pack_row(ref.read(R(0))), f"f={f}"
            assert fast.plane(B) == pack_row(ref.read(B)), f"f={f}"
            assert fast.plane(E) == pack_row(ref.read(E)), f"f={f}"
        assert fast.cycles == ref.cycles == 256 * 256


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------


class TestBackendSelection:
    def test_dispatch_by_argument(self):
        assert BVM(1, backend="bool").backend == "bool"
        m = BVM(1, backend="packed")
        assert isinstance(m, PackedBVM)
        assert m.backend == "packed"

    def test_dispatch_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BVM_BACKEND", "packed")
        assert isinstance(BVM(1), PackedBVM)
        monkeypatch.setenv("REPRO_BVM_BACKEND", "bool")
        assert BVM(1).backend == "bool"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BVM_BACKEND", "packed")
        assert BVM(1, backend="bool").backend == "bool"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("simd512")
        with pytest.raises(ValueError):
            BVM(1, backend="nope")

    def test_default_is_bool(self, monkeypatch):
        monkeypatch.delenv("REPRO_BVM_BACKEND", raising=False)
        assert resolve_backend() == "bool"

    def test_planes_shape_and_content(self):
        m = BVM(2, L=5, backend="packed")
        rng = np.random.default_rng(3)
        row = rng.integers(0, 2, m.n).astype(bool)
        m.poke(R(1), row)
        planes = m.planes
        assert planes.shape == (5, (m.n + 63) // 64)
        words = np.frombuffer(
            pack_row(row).to_bytes(planes.shape[1] * 8, "little"), dtype="<u8"
        )
        assert (planes[1] == words).all()


# ----------------------------------------------------------------------
# Program replays: packed vs bool on the real suites
# ----------------------------------------------------------------------


def _both(prog: ProgramBuilder, pokes=(), inputs=None):
    """Run the program on both backends from identical state."""
    machines = {}
    for backend in ("bool", "packed"):
        m = prog.build_machine(backend=backend)
        for reg, row in pokes:
            m.poke(reg, row)
        if inputs is not None:
            m.feed_input(inputs)
        prog.run(m)
        machines[backend] = m
    return machines["bool"], machines["packed"]


def _assert_same(ref: BVM, fast: PackedBVM, regs):
    for reg in regs:
        assert fast.plane(reg) == pack_row(ref.read(reg)), str(reg)
    for reg in (A, B, E):
        assert fast.plane(reg) == pack_row(ref.read(reg)), str(reg)
    assert [bool(x) for x in fast.output_log] == [bool(x) for x in ref.output_log]
    assert fast.cycles == ref.cycles


class TestProgramReplays:
    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_processor_id(self, r):
        prog = ProgramBuilder(r)
        pid = prog.pool.alloc(r + (1 << r))
        processor_id(prog, pid)
        ref, fast = _both(prog, inputs=cycle_id_input_bits(prog.Q))
        _assert_same(ref, fast, pid)

    @pytest.mark.parametrize("r", [1, 2])
    def test_route_every_dimension(self, r):
        rng = np.random.default_rng(r)
        for dim in range(r + (1 << r)):
            prog = ProgramBuilder(r)
            src, dst = prog.pool.alloc(2)
            route_dim(prog, [src], [dst], dim)
            n = (1 << r) * (1 << (1 << r))
            vals = rng.integers(0, 2, n).astype(bool)
            ref, fast = _both(prog, pokes=[(src, vals)])
            _assert_same(ref, fast, [src, dst])

    def test_bitserial_arithmetic(self):
        r, w = 2, 6
        prog = ProgramBuilder(r)
        x = prog.pool.alloc(w)
        y = prog.pool.alloc(w)
        tx = prog.pool.alloc(3)
        ty = prog.pool.alloc(3)
        set_word_const(prog, x, 11)
        set_word_const(prog, y, 25)
        set_word_const(prog, tx, 2)
        set_word_const(prog, ty, 5)
        add_into(prog, x, y)
        min_tagged_into(prog, x, tx, y, ty)
        ref, fast = _both(prog)
        _assert_same(ref, fast, x + y + tx + ty)

    def test_broadcast(self):
        r = 2
        prog = ProgramBuilder(r)
        value, sender = prog.pool.alloc(2)
        pid = prog.pool.alloc(r + (1 << r))
        processor_id(prog, pid)
        broadcast_bit(prog, value, sender, pid, route_dim)
        n = (1 << r) * (1 << (1 << r))
        vals = np.zeros(n, dtype=bool)
        vals[3] = True
        ref, fast = _both(
            prog,
            pokes=[(value, vals), (sender, vals)],
            inputs=cycle_id_input_bits(prog.Q),
        )
        _assert_same(ref, fast, [value, sender])

    def test_streamed_io(self):
        r = 1
        prog = ProgramBuilder(r)
        dst, scratch = prog.pool.alloc(2)
        n = prog.Q << prog.Q
        rng = np.random.default_rng(5)
        row = rng.integers(0, 2, n).astype(bool)
        stream_load(prog, dst)
        stream_read(prog, dst, scratch)
        ref, fast = _both(prog, inputs=stream_bits_for(row))
        _assert_same(ref, fast, [dst])


# ----------------------------------------------------------------------
# Compiled programs
# ----------------------------------------------------------------------


class TestCompiledProgram:
    def test_replay_equals_interpretation(self):
        r = 2
        prog = ProgramBuilder(r)
        pid = prog.pool.alloc(r + (1 << r))
        processor_id(prog, pid)
        cp = prog.compiled()
        assert len(cp) == len(prog)
        m1 = PackedBVM(r, L=prog.L)
        m1.feed_input(cycle_id_input_bits(prog.Q))
        cp.run(m1)
        m2 = PackedBVM(r, L=prog.L)
        m2.feed_input(cycle_id_input_bits(prog.Q))
        for instr in prog.instructions:
            m2.execute(instr)
        for reg in pid:
            assert m1.plane(reg) == m2.plane(reg)
        assert m1.cycles == m2.cycles

    def test_compiled_cache_invalidation(self):
        prog = ProgramBuilder(1)
        a, b = prog.pool.alloc(2)
        prog.copy(a, b)
        first = prog.compiled()
        assert prog.compiled() is first  # cached
        prog.copy(b, a)
        second = prog.compiled()
        assert second is not first and len(second) == 2

    def test_geometry_mismatch_rejected(self):
        prog = ProgramBuilder(1)
        a, b = prog.pool.alloc(2)
        prog.copy(a, b)
        cp = prog.compiled()
        with pytest.raises(ValueError):
            cp.run(PackedBVM(2, L=prog.L))
        with pytest.raises(ValueError):
            cp.run(PackedBVM(1, L=prog.L + 1))

    def test_bool_machine_falls_back_to_source(self):
        prog = ProgramBuilder(1)
        a, b = prog.pool.alloc(2)
        prog.set_ones(b)
        prog.copy(a, b)
        m = BVM(1, L=prog.L, backend="bool")
        assert prog.compiled().run(m) == 2
        assert m.read(a).all()

    def test_register_beyond_l_rejected(self):
        topo = CCCTopology.shared(1)
        instr = Instruction(dest=R(9), f=FN.ONE, fsrc=R(9), dsrc=Operand(R(9)))
        with pytest.raises(IndexError):
            compile_step(instr, topo, L=4)


# ----------------------------------------------------------------------
# Fuzz: packed vs bool in lockstep
# ----------------------------------------------------------------------


def _sync(fast: PackedBVM, ref: BVM, rng) -> None:
    for j in range(4):
        row = rng.integers(0, 2, ref.n).astype(bool)
        fast.poke(R(j), row)
        ref.poke(R(j), row)
    for reg in (A, B, E):
        row = rng.integers(0, 2, ref.n).astype(bool)
        fast.poke(reg, row)
        ref.poke(reg, row)


class TestFuzzDifferential:
    @settings(max_examples=60, deadline=None)
    @given(st.data(), st.integers(min_value=0, max_value=10_000))
    def test_random_programs_r1(self, data, seed):
        self._run(1, data, seed, max_size=8)

    @settings(max_examples=25, deadline=None)
    @given(st.data(), st.integers(min_value=0, max_value=10_000))
    def test_random_programs_r2(self, data, seed):
        self._run(2, data, seed, max_size=5)

    def _run(self, r, data, seed, max_size):
        Q = 1 << r
        fast = BVM(r, L=16, backend="packed")
        ref = BVM(r, L=16, backend="bool")
        rng = np.random.default_rng(seed)
        _sync(fast, ref, rng)
        in_bits = rng.integers(0, 2, 8).astype(bool).tolist()
        fast.feed_input(in_bits)
        ref.feed_input(in_bits)
        program = data.draw(st.lists(instructions(Q), min_size=1, max_size=max_size))
        for instr in program:
            fast.execute(instr)
            ref.execute(instr)
        for j in range(4):
            assert fast.plane(R(j)) == pack_row(ref.read(R(j)))
        _assert_same(ref, fast, [])
