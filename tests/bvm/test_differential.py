"""Differential testing of the BVM execution core.

A deliberately slow, scalar, per-PE reference interpreter re-implements
the instruction semantics straight from the paper's §2 description; the
vectorized simulator must agree with it on randomly generated
instruction sequences (registers, truth tables, neighbor modes,
activation sets, enable gating, input shifts all fuzzed together).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvm.isa import FN, A, B, E, Instruction, Operand, R, activation_if, activation_nf
from repro.bvm.machine import BVM
from repro.bvm.topology import CCCTopology


class ScalarBVM:
    """Per-PE scalar reference: no NumPy in the execution path."""

    def __init__(self, r: int, L: int = 16):
        self.topo = CCCTopology(r)
        self.L = L
        n = self.topo.n
        self.regs = [[False] * n for _ in range(L)]
        self.a = [False] * n
        self.b = [False] * n
        self.e = [True] * n
        self.inputs: list[bool] = []
        self.outputs: list[bool] = []

    def _row(self, reg):
        if reg.kind == "A":
            return self.a
        if reg.kind == "B":
            return self.b
        if reg.kind == "E":
            return self.e
        return self.regs[reg.index]

    def _fetch_d(self, op):
        row = self._row(op.reg)
        n = self.topo.n
        if op.neighbor is None:
            return list(row)
        if op.neighbor == "I":
            self.outputs.append(row[-1])
            in_bit = self.inputs.pop(0) if self.inputs else False
            return [in_bit] + row[:-1]
        idx = self.topo.neighbor_index(op.neighbor)
        return [row[int(idx[q])] for q in range(n)]

    def execute(self, instr: Instruction) -> None:
        n = self.topo.n
        f_row = list(self._row(instr.fsrc))
        d_row = self._fetch_d(instr.dsrc)
        b_row = list(self.b)
        out_f = [
            FN.apply(instr.f, int(f_row[q]), int(d_row[q]), int(b_row[q])) == 1
            for q in range(n)
        ]
        out_b = [
            FN.apply(instr.g, int(f_row[q]), int(d_row[q]), int(b_row[q])) == 1
            for q in range(n)
        ]
        if instr.activation is None:
            active = [True] * n
        else:
            invert, positions = instr.activation
            active = [
                ((int(self.topo.pos_of[q]) in positions) != invert) for q in range(n)
            ]
        gated = [active[q] and self.e[q] for q in range(n)]
        if instr.dest.kind == "E":
            self.e = out_f
        else:
            dst = self._row(instr.dest)
            for q in range(n):
                if gated[q]:
                    dst[q] = out_f[q]
        for q in range(n):
            if gated[q]:
                self.b[q] = out_b[q]


REGS = [A, E] + [R(j) for j in range(4)]
DSRC_REGS = [A, B, E] + [R(j) for j in range(4)]
NEIGHBORS = [None, "S", "P", "L", "XS", "XP", "I"]


@st.composite
def instructions(draw, Q):
    dest = draw(st.sampled_from(REGS))
    fsrc = draw(st.sampled_from(DSRC_REGS))
    dreg = draw(st.sampled_from(DSRC_REGS))
    neighbor = draw(st.sampled_from(NEIGHBORS))
    f = draw(st.integers(min_value=0, max_value=255))
    g = draw(st.integers(min_value=0, max_value=255))
    act = draw(
        st.one_of(
            st.none(),
            st.builds(
                activation_if,
                st.sets(st.integers(min_value=0, max_value=Q - 1), max_size=Q),
            ),
            st.builds(
                activation_nf,
                st.sets(st.integers(min_value=0, max_value=Q - 1), max_size=Q),
            ),
        )
    )
    return Instruction(
        dest=dest, f=f, fsrc=fsrc, dsrc=Operand(dreg, neighbor), g=g, activation=act
    )


def _sync_state(fast: BVM, slow: ScalarBVM, rng) -> None:
    for j in range(4):
        row = rng.integers(0, 2, fast.n).astype(bool)
        fast.poke(R(j), row)
        slow.regs[j] = row.tolist()
    a = rng.integers(0, 2, fast.n).astype(bool)
    b = rng.integers(0, 2, fast.n).astype(bool)
    e = rng.integers(0, 2, fast.n).astype(bool)
    fast.a, fast.b = a.copy(), b.copy()
    fast.poke(E, e)
    slow.a, slow.b, slow.e = a.tolist(), b.tolist(), e.tolist()


def _agree(fast: BVM, slow: ScalarBVM) -> bool:
    for j in range(4):
        if fast.read(R(j)).tolist() != slow.regs[j]:
            return False
    return (
        fast.a.tolist() == slow.a
        and fast.b.tolist() == slow.b
        and fast.e.tolist() == slow.e
        and [bool(x) for x in fast.output_log] == slow.outputs
    )


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(
        st.data(),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_random_programs_r1(self, data, seed):
        r = 1
        Q = 1 << r
        fast = BVM(r, L=16)
        slow = ScalarBVM(r, L=16)
        rng = np.random.default_rng(seed)
        _sync_state(fast, slow, rng)
        in_bits = rng.integers(0, 2, 8).astype(bool).tolist()
        fast.feed_input(in_bits)
        slow.inputs = list(in_bits)
        program = data.draw(
            st.lists(instructions(Q), min_size=1, max_size=8)
        )
        for instr in program:
            fast.execute(instr)
            slow.execute(instr)
        assert _agree(fast, slow)

    @settings(max_examples=20, deadline=None)
    @given(st.data(), st.integers(min_value=0, max_value=10_000))
    def test_random_programs_r2(self, data, seed):
        r = 2
        Q = 1 << r
        fast = BVM(r, L=16)
        slow = ScalarBVM(r, L=16)
        rng = np.random.default_rng(seed)
        _sync_state(fast, slow, rng)
        program = data.draw(st.lists(instructions(Q), min_size=1, max_size=5))
        for instr in program:
            fast.execute(instr)
            slow.execute(instr)
        assert _agree(fast, slow)
