"""Instruction-set representation: registers, truth tables, instructions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bvm.isa import (
    A,
    B,
    E,
    FN,
    Instruction,
    Operand,
    R,
    Reg,
    activation_if,
    activation_nf,
    tt,
)


class TestReg:
    def test_named(self):
        assert str(A) == "A" and str(B) == "B" and str(E) == "E"

    def test_r(self):
        assert str(R(7)) == "R[7]"
        assert R(7).index == 7

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            Reg("X")

    def test_r_needs_index(self):
        with pytest.raises(ValueError):
            Reg("R")


class TestTruthTables:
    def test_tt_builds_8_bits(self):
        assert tt(lambda f, d, b: 1) == 255
        assert tt(lambda f, d, b: 0) == 0

    def test_projections(self):
        for f in (0, 1):
            for d in (0, 1):
                for b in (0, 1):
                    assert FN.apply(FN.F, f, d, b) == f
                    assert FN.apply(FN.D, f, d, b) == d
                    assert FN.apply(FN.B, f, d, b) == b

    def test_adder_tables(self):
        for f in (0, 1):
            for d in (0, 1):
                for b in (0, 1):
                    assert FN.apply(FN.SUM3, f, d, b) == (f + d + b) % 2
                    assert FN.apply(FN.MAJ3, f, d, b) == int(f + d + b >= 2)

    def test_borrow_table(self):
        # borrow-out of f - d with borrow-in b
        for f in (0, 1):
            for d in (0, 1):
                for b in (0, 1):
                    expect = int(f - d - b < 0)
                    assert FN.apply(FN.BORROW, f, d, b) == expect

    def test_select_tables(self):
        for f in (0, 1):
            for d in (0, 1):
                assert FN.apply(FN.SEL_B_FD, f, d, 1) == f
                assert FN.apply(FN.SEL_B_FD, f, d, 0) == d
                assert FN.apply(FN.SEL_B_DF, f, d, 1) == d
                assert FN.apply(FN.SEL_B_DF, f, d, 0) == f

    def test_eq_acc(self):
        assert FN.apply(FN.EQ_ACC, 1, 1, 1) == 1
        assert FN.apply(FN.EQ_ACC, 1, 0, 1) == 0
        assert FN.apply(FN.EQ_ACC, 0, 0, 0) == 0  # prior mismatch sticks

    @given(st.integers(min_value=0, max_value=255))
    def test_roundtrip_table(self, table):
        rebuilt = tt(lambda f, d, b: (table >> (f * 4 + d * 2 + b)) & 1)
        assert rebuilt == table


class TestInstruction:
    def test_str_contains_parts(self):
        i = Instruction(dest=R(3), f=FN.AND, fsrc=A, dsrc=Operand(R(1), "L"))
        s = str(i)
        assert "R[3]" in s and "R[1].L" in s

    def test_b_not_a_dest(self):
        with pytest.raises(ValueError):
            Instruction(dest=B, f=FN.F, fsrc=A, dsrc=Operand(A))

    def test_truth_table_range(self):
        with pytest.raises(ValueError):
            Instruction(dest=A, f=999, fsrc=A, dsrc=Operand(A))

    def test_activation_rendering(self):
        i = Instruction(
            dest=A, f=FN.F, fsrc=A, dsrc=Operand(A), activation=activation_if([0, 2])
        )
        assert "IF {0,2}" in str(i)
        j = Instruction(
            dest=A, f=FN.F, fsrc=A, dsrc=Operand(A), activation=activation_nf([1])
        )
        assert "NF {1}" in str(j)


class TestActivations:
    def test_if(self):
        inv, pos = activation_if([1, 3])
        assert not inv and pos == frozenset({1, 3})

    def test_nf(self):
        inv, pos = activation_nf([0])
        assert inv and pos == frozenset({0})
