"""The instance-batched packed backend against the single-instance machines.

Every lane of a :class:`PackedBatchBVM` must be bit-for-bit the machine
state a standalone :class:`PackedBVM` (itself differential-tested against
the boolean oracle) reaches on the same program and the same lane data —
registers, output log and cycle count.  The word-plane helpers that
carry the batch backend are checked against big-int arithmetic directly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvm.batch import PackedBatchBVM
from repro.bvm.isa import A, B, E, R
from repro.bvm.machine import BVM
from repro.bvm.topology import (
    CCCTopology,
    pack_row_words,
    plane_to_words,
    shift_words,
    unpack_words,
    words_to_plane,
)
from repro.obs import trace as obs_trace
from tests.bvm.test_differential import instructions


class TestWordHelpers:
    @pytest.mark.parametrize("n_words", [1, 2, 4])
    def test_pack_unpack_roundtrip(self, n_words):
        rng = np.random.default_rng(n_words)
        for n in (1, 17, 64 * n_words - 3, 64 * n_words):
            bits = rng.integers(0, 2, n).astype(bool)
            words = pack_row_words(bits, n_words)
            assert words.shape == (n_words,)
            assert unpack_words(words, n).tolist() == bits.tolist()

    def test_plane_word_roundtrip(self):
        rng = np.random.default_rng(7)
        for n_words in (1, 2, 3):
            plane = int(rng.integers(0, 1 << 62)) | (1 << (64 * n_words - 1))
            words = plane_to_words(plane, n_words)
            assert words_to_plane(words) == plane

    @pytest.mark.parametrize(
        "d", [-130, -65, -64, -63, -1, 0, 1, 63, 64, 65, 130]
    )
    def test_shift_words_matches_bigint(self, d):
        rng = np.random.default_rng(abs(d))
        for n_words in (1, 2, 3):
            width = 64 * n_words
            plane = int.from_bytes(rng.bytes(8 * n_words), "little")
            x = plane_to_words(plane, n_words)
            out = np.empty_like(x)
            shift_words(x, d, out)
            if d >= 0:
                expect = plane >> d
            else:
                expect = (plane << -d) & ((1 << width) - 1)
            assert words_to_plane(out) == expect
            # The source operand is never clobbered.
            assert words_to_plane(x) == plane

    def test_packed_plans_match_bigint_apply(self):
        topo = CCCTopology.shared(2)
        rng = np.random.default_rng(5)
        nw = (topo.n + 63) // 64
        for name, plan in topo.packed_plans.items():
            plane = int.from_bytes(rng.bytes(8 * nw), "little") & topo.full_mask
            x = plane_to_words(plane, nw)[None, :]
            out = np.empty_like(x)
            scratch = np.empty_like(x)
            plan.apply_words(x, out, scratch)
            assert words_to_plane(out[0]) == plan.apply(plane), name


REGS_TO_CHECK = [R(j) for j in range(4)] + [A, B, E]


def _seed_lanes(batch, singles, rng):
    for lane, m in enumerate(singles):
        for reg in REGS_TO_CHECK:
            row = rng.integers(0, 2, batch.n).astype(bool)
            m.poke(reg, row)
            batch.poke_lane(reg, lane, row)
        bits = rng.integers(0, 2, 8).astype(bool).tolist()
        m.feed_input(bits)
        batch.feed_input_lane(lane, bits)


def _lanes_agree(batch, singles):
    for lane, m in enumerate(singles):
        for reg in REGS_TO_CHECK:
            if batch.plane_lane(reg, lane) != m.plane(reg):
                return False
        if [bool(x) for x in batch.output_logs[lane]] != [
            bool(x) for x in m.output_log
        ]:
            return False
        if batch.cycles != m.cycles:
            return False
    return True


class TestLockstepDifferential:
    @settings(max_examples=40, deadline=None)
    @given(st.data(), st.integers(min_value=0, max_value=10_000))
    def test_random_programs_match_packed_r1(self, data, seed):
        r, Q, lanes = 1, 2, 3
        batch = PackedBatchBVM(r, batch=lanes, L=16)
        singles = [BVM(r, L=16, backend="packed") for _ in range(lanes)]
        rng = np.random.default_rng(seed)
        _seed_lanes(batch, singles, rng)
        program = data.draw(st.lists(instructions(Q), min_size=1, max_size=8))
        for instr in program:
            batch.execute(instr)
            for m in singles:
                m.execute(instr)
        assert _lanes_agree(batch, singles)

    @settings(max_examples=15, deadline=None)
    @given(st.data(), st.integers(min_value=0, max_value=10_000))
    def test_random_programs_match_packed_r2(self, data, seed):
        r, Q, lanes = 2, 4, 2
        batch = PackedBatchBVM(r, batch=lanes, L=16)
        singles = [BVM(r, L=16, backend="packed") for _ in range(lanes)]
        rng = np.random.default_rng(seed)
        _seed_lanes(batch, singles, rng)
        program = data.draw(st.lists(instructions(Q), min_size=1, max_size=5))
        for instr in program:
            batch.execute(instr)
            for m in singles:
                m.execute(instr)
        assert _lanes_agree(batch, singles)

    def test_batch_of_one_equals_single(self):
        from repro.bvm.isa import FN, Instruction, Operand

        r = 2
        batch = PackedBatchBVM(r, batch=1, L=16)
        single = BVM(r, L=16, backend="packed")
        rng = np.random.default_rng(3)
        _seed_lanes(batch, [single], rng)
        program = [
            Instruction(dest=R(0), f=FN.XOR, fsrc=R(0), dsrc=Operand(R(1), "S")),
            Instruction(dest=R(2), f=FN.D, fsrc=R(2), dsrc=Operand(R(0), "I")),
            Instruction(dest=E, f=FN.F, fsrc=R(3), dsrc=Operand(R(3))),
            Instruction(dest=R(1), f=FN.OR, fsrc=R(1), dsrc=Operand(R(2), "L"),
                        g=FN.AND),
            Instruction(dest=E, f=FN.ONE, fsrc=E, dsrc=Operand(E)),
        ]
        for instr in program:
            batch.execute(instr)
            single.execute(instr)
        assert _lanes_agree(batch, [single])


class TestHostAccess:
    def test_poke_read_roundtrip_per_lane(self):
        batch = PackedBatchBVM(1, batch=3, L=8)
        rng = np.random.default_rng(0)
        rows = [rng.integers(0, 2, batch.n).astype(bool) for _ in range(3)]
        for lane, row in enumerate(rows):
            batch.poke_lane(R(0), lane, row)
        for lane, row in enumerate(rows):
            assert batch.read_lane(R(0), lane).tolist() == row.tolist()

    def test_poke_lane_shape_checked(self):
        batch = PackedBatchBVM(1, batch=2, L=8)
        with pytest.raises(ValueError, match="shape"):
            batch.poke_lane(R(0), 0, np.zeros(batch.n + 1, dtype=bool))

    def test_batch_must_be_positive(self):
        with pytest.raises(ValueError, match="batch"):
            PackedBatchBVM(1, batch=0)

    def test_tail_bits_stay_zero(self):
        # The tail invariant (bits >= n are zero) must survive pokes of
        # all-ones rows and constant-1 writes.
        batch = PackedBatchBVM(1, batch=2, L=8)
        batch.poke_lane(R(0), 0, np.ones(batch.n, dtype=bool))
        full = batch.topology.full_mask
        assert batch.plane_lane(R(0), 0) == full
        from repro.bvm.isa import FN, Instruction, Operand

        batch.execute(
            Instruction(dest=R(1), f=FN.ONE, fsrc=R(1), dsrc=Operand(R(1)))
        )
        for lane in range(2):
            assert batch.plane_lane(R(1), lane) == full


class TestTelemetry:
    def test_replay_emits_one_span_with_batch_attr(self):
        from repro.bvm.isa import FN, Instruction, Operand

        program = [
            Instruction(dest=R(0), f=FN.ONE, fsrc=R(0), dsrc=Operand(R(0)))
        ] * 3
        batch = PackedBatchBVM(1, batch=5, L=8)
        tracer = obs_trace.Tracer()
        with obs_trace.tracing(tracer):
            batch.run(program)
        replays = [e for e in tracer.raw_events() if e["name"] == "bvm.replay"]
        assert len(replays) == 1
        assert replays[0]["args"]["batch"] == 5
        assert replays[0]["args"]["cycles"] == 3

    def test_tracing_does_not_change_state(self):
        from repro.bvm.isa import FN, Instruction, Operand

        program = [
            Instruction(dest=R(0), f=FN.XOR, fsrc=R(0), dsrc=Operand(R(1)))
        ] * 4
        rng = np.random.default_rng(11)

        def run(traced):
            batch = PackedBatchBVM(1, batch=2, L=8)
            r = np.random.default_rng(11)
            for lane in range(2):
                batch.poke_lane(R(1), lane, r.integers(0, 2, batch.n).astype(bool))
            if traced:
                with obs_trace.tracing(obs_trace.Tracer()):
                    batch.run(program)
            else:
                batch.run(program)
            return [batch.plane_lane(R(0), lane) for lane in range(2)]

        assert run(False) == run(True)
