"""BVM execution semantics: dual assignment, masking, neighbors, I/O."""

import numpy as np
import pytest

from repro.bvm.isa import A, E, FN, Instruction, Operand, R, activation_if
from repro.bvm.machine import BVM


@pytest.fixture
def m():
    return BVM(r=1)  # 8 PEs: 4 cycles x 2 positions


def instr(dest, f, fsrc, dsrc, g=FN.B, activation=None):
    if not isinstance(dsrc, Operand):
        dsrc = Operand(dsrc)
    return Instruction(dest=dest, f=f, fsrc=fsrc, dsrc=dsrc, g=g, activation=activation)


class TestBasicExecution:
    def test_constant_write(self, m):
        m.execute(instr(R(0), FN.ONE, A, A))
        assert m.read(R(0)).all()
        assert m.cycles == 1

    def test_dual_assignment(self, m):
        """dest and B are written simultaneously from the same inputs."""
        m.poke(R(0), np.ones(8, bool))
        m.execute(instr(R(1), FN.F, R(0), R(0), g=FN.NOT_F))
        assert m.read(R(1)).all()
        assert not m.b.any()

    def test_reads_precede_writes(self, m):
        """An in-place update sees the old value (A = ~A works)."""
        m.execute(instr(A, FN.NOT_F, A, A))
        assert m.a.all()

    def test_logic_between_registers(self, m):
        x = np.array([1, 0, 1, 0, 1, 0, 1, 0], bool)
        y = np.array([1, 1, 0, 0, 1, 1, 0, 0], bool)
        m.poke(R(0), x)
        m.poke(R(1), y)
        m.execute(instr(R(2), FN.XOR, R(0), R(1)))
        assert (m.read(R(2)) == (x ^ y)).all()

    def test_b_in_dataflow(self, m):
        m.poke(R(0), np.ones(8, bool))
        m.execute(instr(A, FN.F, R(0), R(0), g=FN.F))  # B = R0 = 1
        m.execute(instr(R(1), FN.B, A, A))  # R1 = B
        assert m.read(R(1)).all()

    def test_register_bounds(self):
        m = BVM(r=1, L=4)
        with pytest.raises(IndexError):
            m.execute(instr(R(4), FN.ONE, A, A))

    def test_run_counts_cycles(self, m):
        prog = [instr(A, FN.ONE, A, A)] * 5
        assert m.run(prog) == 5
        assert m.cycles == 5


class TestNeighborReads:
    def test_lateral(self, m):
        vals = np.zeros(8, bool)
        vals[0] = True  # PE (0,0)
        m.poke(R(0), vals)
        m.execute(instr(R(1), FN.D, A, Operand(R(0), "L")))
        got = m.read(R(1))
        # lateral of (1,0)=addr2 is (0,0): PE 2 must see the 1.
        assert got[2] and got.sum() == 1

    def test_succ_pred_shift(self, m):
        vals = np.zeros(8, bool)
        vals[0] = True  # (0,0)
        m.poke(R(0), vals)
        m.execute(instr(R(1), FN.D, A, Operand(R(0), "P")))
        # (0,1) reads its predecessor (0,0): addr 1 gets the bit.
        assert m.read(R(1))[1]

    def test_xs_swaps_pairs(self):
        m = BVM(r=2)  # Q=4
        vals = np.zeros(m.n, bool)
        vals[m.topology.address(0, 0)] = True
        m.poke(R(0), vals)
        m.execute(instr(R(1), FN.D, A, Operand(R(0), "XS")))
        assert m.read(R(1))[m.topology.address(0, 1)]

    def test_input_shift(self, m):
        m.poke(R(0), np.zeros(8, bool))
        m.feed_input([1])
        m.execute(instr(R(0), FN.D, A, Operand(R(0), "I")))
        got = m.read(R(0))
        assert got[0] and got.sum() == 1

    def test_output_logged(self, m):
        vals = np.zeros(8, bool)
        vals[-1] = True
        m.poke(R(0), vals)
        m.execute(instr(R(0), FN.D, A, Operand(R(0), "I")))
        assert m.output_log == [True]

    def test_empty_input_queue_shifts_zero(self, m):
        m.poke(R(0), np.ones(8, bool))
        m.execute(instr(R(0), FN.D, A, Operand(R(0), "I")))
        assert not m.read(R(0))[0]


class TestMasking:
    def test_if_activation_by_position(self, m):
        m.execute(instr(R(0), FN.ONE, A, A, activation=activation_if([1])))
        got = m.read(R(0))
        assert (got == (m.topology.pos_of == 1)).all()

    def test_enable_register_gates_writes(self, m):
        e = np.zeros(8, bool)
        e[:4] = True
        m.poke(E, e)
        m.execute(instr(R(0), FN.ONE, A, A))
        assert m.read(R(0)).tolist() == [True] * 4 + [False] * 4

    def test_disabled_pe_keeps_b(self, m):
        m.poke(E, np.zeros(8, bool))
        m.execute(instr(A, FN.F, A, A, g=FN.ONE))
        assert not m.b.any()

    def test_e_write_ignores_disable(self, m):
        """Writes to E are always enabled — otherwise a fully disabled
        machine could never recover (the paper's exception)."""
        m.poke(E, np.zeros(8, bool))
        m.execute(instr(E, FN.ONE, A, A))
        assert m.e.all()

    def test_combined_if_and_enable(self, m):
        e = np.zeros(8, bool)
        e[::2] = True
        m.poke(E, e)
        m.execute(instr(R(0), FN.ONE, A, A, activation=activation_if([0])))
        want = e & (m.topology.pos_of == 0)
        assert (m.read(R(0)) == want).all()


class TestHostInterface:
    def test_poke_shape_checked(self, m):
        with pytest.raises(ValueError):
            m.poke(R(0), np.ones(7, bool))

    def test_poke_read_roundtrip(self, m):
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 2, 8).astype(bool)
        m.poke(R(5), vals)
        assert (m.read(R(5)) == vals).all()

    def test_poke_costs_no_cycles(self, m):
        m.poke(R(0), np.ones(8, bool))
        assert m.cycles == 0

    def test_render_contains_bits(self, m):
        m.poke(R(0), np.ones(8, bool))
        text = m.render([("M0", R(0)), ("A", A)])
        assert "M0" in text and "1" in text

    def test_initial_state(self, m):
        assert m.e.all()          # enabled at power-on
        assert not m.a.any()
        assert not m.regs.any()
