"""CCC topology of the BVM: neighbor maps and structural facts."""

import numpy as np
import pytest

from repro.bvm.topology import CCCTopology


@pytest.fixture(params=[1, 2, 3])
def topo(request):
    return CCCTopology(request.param)


class TestGeometry:
    def test_sizes(self, topo):
        assert topo.Q == 1 << topo.r
        assert topo.n == topo.Q * (1 << topo.Q)

    def test_rejects_r0(self):
        with pytest.raises(ValueError):
            CCCTopology(0)

    def test_cycle_pos_decomposition(self, topo):
        assert (topo.address(topo.cycle_of, topo.pos_of) == topo.addresses).all()
        assert (topo.pos_of < topo.Q).all()
        assert (topo.cycle_of < topo.n_cycles).all()


class TestNeighborMaps:
    def test_succ_pred_are_inverse(self, topo):
        assert (topo.succ_index[topo.pred_index] == topo.addresses).all()
        assert (topo.pred_index[topo.succ_index] == topo.addresses).all()

    def test_succ_stays_in_cycle(self, topo):
        assert (topo.cycle_of[topo.succ_index] == topo.cycle_of).all()

    def test_succ_advances_position(self, topo):
        assert (topo.pos_of[topo.succ_index] == (topo.pos_of + 1) % topo.Q).all()

    def test_lateral_is_involution(self, topo):
        lat = topo.lateral_index
        assert (lat[lat] == topo.addresses).all()

    def test_lateral_flips_cycle_bit_at_position(self, topo):
        lat = topo.lateral_index
        assert (topo.pos_of[lat] == topo.pos_of).all()
        flipped = topo.cycle_of[lat] ^ topo.cycle_of
        assert (flipped == (1 << topo.pos_of)).all()

    def test_xs_is_involution(self, topo):
        if topo.Q == 2:
            pytest.skip("Q=2: XS pairs coincide with the 2-cycle itself")
        xs = topo.xs_index
        assert (xs[xs] == topo.addresses).all()

    def test_xs_pairs_even_with_successor(self, topo):
        xs = topo.xs_index
        even = topo.pos_of % 2 == 0
        assert (xs[even] == topo.succ_index[even]).all()
        assert (xs[~even] == topo.pred_index[~even]).all()

    def test_xp_pairs_even_with_predecessor(self, topo):
        xp = topo.xp_index
        even = topo.pos_of % 2 == 0
        assert (xp[even] == topo.pred_index[even]).all()
        assert (xp[~even] == topo.succ_index[~even]).all()

    def test_linear_pred(self, topo):
        lp = topo.linear_pred_index
        assert lp[0] == 0  # PE 0 handled by the input port
        assert (lp[1:] == topo.addresses[:-1]).all()

    def test_unknown_neighbor_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.neighbor_index("Z")

    def test_named_lookup(self, topo):
        assert (topo.neighbor_index("S") == topo.succ_index).all()
        assert (topo.neighbor_index("L") == topo.lateral_index).all()


class TestStructure:
    def test_degree_three(self, topo):
        assert topo.degree() == 3

    def test_link_count_3n_over_2(self):
        for r in (2, 3):
            topo = CCCTopology(r)
            assert topo.link_count() == 3 * topo.n // 2

    def test_link_count_q2_special_case(self):
        topo = CCCTopology(1)
        # 2-PE cycles have one edge each: 4 cycle edges + 4 laterals.
        assert topo.link_count() == 8

    def test_hypercube_dims(self, topo):
        assert topo.hypercube_dims() == topo.r + topo.Q
        assert 1 << topo.hypercube_dims() == topo.n

    def test_every_pe_reachable(self):
        """The CCC is connected: BFS over the three link types covers n."""
        topo = CCCTopology(2)
        seen = {0}
        frontier = [0]
        maps = [topo.succ_index, topo.pred_index, topo.lateral_index]
        while frontier:
            q = frontier.pop()
            for m in maps:
                t = int(m[q])
                if t not in seen:
                    seen.add(t)
                    frontier.append(t)
        assert len(seen) == topo.n
