"""Program builder and register pool."""

import numpy as np
import pytest

from repro.bvm.isa import A, FN, R
from repro.bvm.program import ProgramBuilder, RegisterPool


class TestRegisterPool:
    def test_alloc_low_first(self):
        pool = RegisterPool(0, 8)
        regs = pool.alloc(3)
        assert [r.index for r in regs] == [0, 1, 2]

    def test_exhaustion(self):
        pool = RegisterPool(0, 2)
        pool.alloc(2)
        with pytest.raises(RuntimeError):
            pool.alloc1()

    def test_free_and_reuse(self):
        pool = RegisterPool(0, 2)
        a = pool.alloc1()
        pool.free(a)
        b = pool.alloc1()
        assert b.index == a.index

    def test_double_free_rejected(self):
        pool = RegisterPool(0, 4)
        a = pool.alloc1()
        pool.free(a)
        with pytest.raises(ValueError):
            pool.free(a)

    def test_reserved_range(self):
        pool = RegisterPool(4, 8)
        assert pool.alloc1().index == 4

    def test_high_water(self):
        pool = RegisterPool(0, 16)
        pool.alloc(5)
        assert pool.high_water == 5

    def test_in_use(self):
        pool = RegisterPool(0, 8)
        regs = pool.alloc(3)
        assert pool.in_use == 3
        pool.free(*regs)
        assert pool.in_use == 0


class TestProgramBuilder:
    def test_macros_execute(self):
        prog = ProgramBuilder(r=1)
        x = prog.pool.alloc1()
        y = prog.pool.alloc1()
        prog.set_ones(x)
        prog.copy(y, x)
        prog.clear(x)
        m = prog.build_machine()
        prog.run(m)
        assert m.read(y).all()
        assert not m.read(x).any()

    def test_copy_neighbor(self):
        prog = ProgramBuilder(r=1)
        x, y = prog.pool.alloc(2)
        prog.copy_neighbor(y, x, "L")
        m = prog.build_machine()
        vals = np.zeros(m.n, bool)
        vals[0] = True
        m.poke(x, vals)
        prog.run(m)
        assert m.read(y)[2]  # lateral of (1,0) is (0,0)

    def test_logic(self):
        prog = ProgramBuilder(r=1)
        x, y, z = prog.pool.alloc(3)
        prog.set_ones(x)
        prog.logic(z, FN.XOR, x, y)
        m = prog.build_machine()
        prog.run(m)
        assert m.read(z).all()

    def test_enable_macros(self):
        prog = ProgramBuilder(r=1)
        mask, out = prog.pool.alloc(2)
        prog.enable_from(mask)
        prog.set_ones(out)   # gated: only where mask
        prog.enable_all()
        m = prog.build_machine()
        mk = np.zeros(m.n, bool)
        mk[:3] = True
        m.poke(mask, mk)
        prog.run(m)
        assert (m.read(out) == mk).all()

    def test_geometry_mismatch_rejected(self):
        prog = ProgramBuilder(r=1)
        from repro.bvm.machine import BVM

        with pytest.raises(ValueError):
            prog.run(BVM(r=2))

    def test_register_budget_checked(self):
        prog = ProgramBuilder(r=1, L=300)
        prog.pool.alloc(280)
        from repro.bvm.machine import BVM

        with pytest.raises(ValueError):
            prog.run(BVM(r=1, L=256))

    def test_listing(self):
        prog = ProgramBuilder(r=1)
        prog.set_ones(A)
        text = prog.listing()
        assert "A" in text

    def test_listing_truncates(self):
        prog = ProgramBuilder(r=1)
        for _ in range(50):
            prog.set_ones(A)
        assert "more" in prog.listing(limit=10)

    def test_len(self):
        prog = ProgramBuilder(r=1)
        prog.set_ones(A)
        prog.clear(A)
        assert len(prog) == 2

    def test_set_b(self):
        prog = ProgramBuilder(r=1)
        x = prog.pool.alloc1()
        prog.set_ones(x)
        prog.set_b(FN.F, x, x)  # B = x = 1
        y = prog.pool.alloc1()
        prog.emit(y, FN.B, x, x)
        m = prog.build_machine()
        prog.run(m)
        assert m.read(y).all()
