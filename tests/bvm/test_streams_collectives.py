"""Serial I/O streaming and machine-wide reductions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvm.collectives import global_and, global_count, global_or
from repro.bvm.program import ProgramBuilder
from repro.bvm.streams import (
    decode_streamed_row,
    stream_bits_for,
    stream_load,
    stream_read,
)


class TestStreamLoad:
    @pytest.mark.parametrize("r", [1, 2])
    def test_roundtrip_pattern(self, r):
        prog = ProgramBuilder(r)
        dst = prog.pool.alloc1()
        n_bits = stream_load(prog, dst)
        m = prog.build_machine()
        rng = np.random.default_rng(r)
        pattern = rng.integers(0, 2, m.n).astype(bool)
        m.feed_input(stream_bits_for(pattern))
        prog.run(m)
        assert n_bits == m.n
        assert (m.read(dst) == pattern).all()

    def test_streamed_equals_poked(self):
        """The honest serial path produces the same register contents as
        a host poke — nothing depends on magic memory access."""
        r = 1
        pattern = np.array([1, 0, 1, 1, 0, 0, 1, 0], bool)

        prog_a = ProgramBuilder(r)
        row_a = prog_a.pool.alloc1()
        stream_load(prog_a, row_a)
        ma = prog_a.build_machine()
        ma.feed_input(stream_bits_for(pattern))
        prog_a.run(ma)

        prog_b = ProgramBuilder(r)
        row_b = prog_b.pool.alloc1()
        mb = prog_b.build_machine()
        mb.poke(row_b, pattern)
        prog_b.run(mb)

        assert (ma.read(row_a) == mb.read(row_b)).all()

    def test_costs_n_cycles(self):
        prog = ProgramBuilder(1)
        dst = prog.pool.alloc1()
        stream_load(prog, dst)
        assert len(prog) == 8


class TestStreamRead:
    @pytest.mark.parametrize("r", [1, 2])
    def test_output_matches_register(self, r):
        prog = ProgramBuilder(r)
        src, scratch = prog.pool.alloc(2)
        n_bits = stream_read(prog, src, scratch)
        m = prog.build_machine()
        rng = np.random.default_rng(r + 10)
        pattern = rng.integers(0, 2, m.n).astype(bool)
        m.poke(src, pattern)
        prog.run(m)
        assert (decode_streamed_row(m, n_bits) == pattern).all()

    def test_source_preserved(self):
        prog = ProgramBuilder(1)
        src, scratch = prog.pool.alloc(2)
        stream_read(prog, src, scratch)
        m = prog.build_machine()
        pattern = np.array([1, 1, 0, 0, 1, 0, 1, 0], bool)
        m.poke(src, pattern)
        prog.run(m)
        assert (m.read(src) == pattern).all()

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.booleans(), min_size=8, max_size=8))
    def test_roundtrip_property(self, bits):
        prog = ProgramBuilder(1)
        src, scratch = prog.pool.alloc(2)
        n_bits = stream_read(prog, src, scratch)
        m = prog.build_machine()
        m.poke(src, np.array(bits, bool))
        prog.run(m)
        assert decode_streamed_row(m, n_bits).tolist() == bits


class TestGlobalOr:
    @pytest.mark.parametrize("r", [1, 2])
    def test_one_hot(self, r):
        prog = ProgramBuilder(r)
        row = prog.pool.alloc1()
        global_or(prog, row)
        m = prog.build_machine()
        pattern = np.zeros(m.n, bool)
        pattern[m.n // 3] = True
        m.poke(row, pattern)
        prog.run(m)
        assert m.read(row).all()

    def test_all_zero(self):
        prog = ProgramBuilder(2)
        row = prog.pool.alloc1()
        global_or(prog, row)
        m = prog.build_machine()
        prog.run(m)
        assert not m.read(row).any()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**8 - 1))
    def test_property(self, bits):
        prog = ProgramBuilder(1)
        row = prog.pool.alloc1()
        global_or(prog, row)
        m = prog.build_machine()
        pattern = np.array([(bits >> i) & 1 for i in range(8)], bool)
        m.poke(row, pattern)
        prog.run(m)
        assert m.read(row).all() == (bits != 0)


class TestGlobalAnd:
    def test_all_ones(self):
        prog = ProgramBuilder(1)
        row = prog.pool.alloc1()
        global_and(prog, row)
        m = prog.build_machine()
        m.poke(row, np.ones(m.n, bool))
        prog.run(m)
        assert m.read(row).all()

    def test_one_zero_kills(self):
        prog = ProgramBuilder(1)
        row = prog.pool.alloc1()
        global_and(prog, row)
        m = prog.build_machine()
        pattern = np.ones(m.n, bool)
        pattern[5] = False
        m.poke(row, pattern)
        prog.run(m)
        assert not m.read(row).any()


class TestGlobalCount:
    @pytest.mark.parametrize("r", [1, 2])
    def test_counts_flags(self, r):
        prog = ProgramBuilder(r)
        flag = prog.pool.alloc1()
        width = (r + (1 << r)) + 1
        count = prog.pool.alloc(width)
        global_count(prog, flag, count)
        m = prog.build_machine()
        rng = np.random.default_rng(r + 7)
        pattern = rng.integers(0, 2, m.n).astype(bool)
        m.poke(flag, pattern)
        prog.run(m)
        got = np.zeros(m.n, dtype=int)
        for w, row in enumerate(count):
            got |= m.read(row).astype(int) << w
        assert (got == pattern.sum()).all()

    def test_width_validated(self):
        prog = ProgramBuilder(2)
        flag = prog.pool.alloc1()
        with pytest.raises(ValueError):
            global_count(prog, flag, prog.pool.alloc(3))

    def test_count_all_set(self):
        prog = ProgramBuilder(1)
        flag = prog.pool.alloc1()
        count = prog.pool.alloc(4)
        global_count(prog, flag, count)
        m = prog.build_machine()
        m.poke(flag, np.ones(m.n, bool))
        prog.run(m)
        got = sum(int(m.read(row)[0]) << w for w, row in enumerate(count))
        assert got == m.n
