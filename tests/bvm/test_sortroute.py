"""Bit-level sorting and permutation routing on the BVM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvm.primitives import cycle_id_input_bits, processor_id
from repro.bvm.program import ProgramBuilder
from repro.bvm.sortroute import benes_permute, bitonic_sort
from repro.hypercube.benes import benes_stage_count

W = 8


def _sorted_machine(r, vals):
    prog = ProgramBuilder(r)
    word = prog.pool.alloc(W)
    pid = prog.pool.alloc(r + (1 << r))
    processor_id(prog, pid)
    bitonic_sort(prog, word, pid)
    m = prog.build_machine()
    m.feed_input(cycle_id_input_bits(prog.Q))
    for w in range(W):
        m.poke(word[w], (np.asarray(vals) >> w) & 1)
    prog.run(m)
    got = np.zeros(m.n, dtype=int)
    for w in range(W):
        got |= m.read(word[w]).astype(int) << w
    return got


class TestBVMBitonicSort:
    @pytest.mark.parametrize("r", [1, 2])
    def test_random_values(self, r):
        rng = np.random.default_rng(r)
        n = (1 << r) * (1 << (1 << r))
        vals = rng.integers(0, 256, n)
        assert (_sorted_machine(r, vals) == np.sort(vals)).all()

    def test_duplicates(self):
        vals = np.array([7, 7, 3, 3, 255, 0, 0, 7])
        assert (_sorted_machine(1, vals) == np.sort(vals)).all()

    def test_already_sorted(self):
        vals = np.arange(8) * 10
        assert (_sorted_machine(1, vals) == vals).all()

    def test_reverse(self):
        vals = np.arange(8)[::-1].copy()
        assert (_sorted_machine(1, vals) == np.arange(8)).all()

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=8, max_size=8))
    def test_property(self, vals):
        assert _sorted_machine(1, np.array(vals)).tolist() == sorted(vals)


class TestBVMBenes:
    @pytest.mark.parametrize("r", [1, 2])
    def test_random_permutation(self, r):
        prog = ProgramBuilder(r)
        word = prog.pool.alloc(W)
        n = prog.Q * (1 << prog.Q)
        rng = np.random.default_rng(r + 20)
        dest = rng.permutation(n)
        plan = benes_permute(prog, word, dest)
        m = prog.build_machine()
        plan.load_control_bits(m)
        vals = rng.integers(0, 256, n)
        for w in range(W):
            m.poke(word[w], (vals >> w) & 1)
        prog.run(m)
        got = np.zeros(n, dtype=int)
        for w in range(W):
            got |= m.read(word[w]).astype(int) << w
        want = np.empty(n, dtype=int)
        want[dest] = vals
        assert (got == want).all()

    def test_stage_count(self):
        prog = ProgramBuilder(2)
        word = prog.pool.alloc(W)
        dest = np.random.default_rng(0).permutation(64)
        plan = benes_permute(prog, word, dest)
        assert plan.n_stages == benes_stage_count(6) == 11

    def test_identity_permutation(self):
        prog = ProgramBuilder(1)
        word = prog.pool.alloc(W)
        plan = benes_permute(prog, word, np.arange(8))
        m = prog.build_machine()
        plan.load_control_bits(m)
        vals = np.arange(8) + 40
        for w in range(W):
            m.poke(word[w], (vals >> w) & 1)
        prog.run(m)
        got = np.zeros(8, dtype=int)
        for w in range(W):
            got |= m.read(word[w]).astype(int) << w
        assert (got == vals).all()

    def test_wrong_size_rejected(self):
        prog = ProgramBuilder(1)
        word = prog.pool.alloc(W)
        with pytest.raises(ValueError):
            benes_permute(prog, word, np.arange(4))
