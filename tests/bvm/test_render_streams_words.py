"""Coverage for the render helpers and word-level streaming."""

import numpy as np
import pytest

from repro.bvm import bitserial as bs
from repro.bvm.isa import A, R
from repro.bvm.machine import BVM
from repro.bvm.primitives import cycle_id, cycle_id_input_bits
from repro.bvm.program import ProgramBuilder
from repro.bvm.render import render_cycle_grid, render_machine, render_pid_columns
from repro.bvm.streams import (
    decode_streamed_row,
    stream_bits_for,
    stream_load_word,
    stream_read_word,
)


class TestRenderMachine:
    def test_shows_rows_and_truncates(self):
        m = BVM(r=2)
        m.poke(R(0), np.ones(m.n, bool))
        text = render_machine(m, [("ones", R(0)), ("A", A)], max_pes=10)
        lines = text.splitlines()
        assert lines[0].startswith("PE")
        assert "ones" in text
        # 10 PEs shown: 10 cells per row
        assert lines[1].count("1") == 10


class TestRenderCycleGrid:
    def test_matches_cycle_id(self):
        prog = ProgramBuilder(2)
        dst = prog.pool.alloc1()
        cycle_id(prog, dst)
        m = prog.build_machine()
        m.feed_input(cycle_id_input_bits(prog.Q))
        prog.run(m)
        text = render_cycle_grid(m, dst, max_cycles=16)
        lines = text.splitlines()
        assert len(lines) == 17  # header + 16 cycles
        # cycle 5 = 0b0101: bits at positions 0..3 are 1 0 1 0
        assert lines[6].split()[-4:] == ["1", "0", "1", "0"]

    def test_truncation_notice(self):
        m = BVM(r=2)
        text = render_cycle_grid(m, R(0), max_cycles=4)
        assert "more cycles" in text


class TestRenderPidColumns:
    def test_addresses_row(self):
        m = BVM(r=1)
        # poke PID rows directly: bit b of each address
        pid = [R(0), R(1), R(2)]
        for b, reg in enumerate(pid):
            m.poke(reg, ((np.arange(8) >> b) & 1).astype(bool))
        text = render_pid_columns(m, pid, max_pes=8)
        assert text.splitlines()[-1].split()[1:] == [str(q) for q in range(8)]


class TestWordStreaming:
    W = 4

    def test_stream_load_word(self):
        prog = ProgramBuilder(1)
        word = prog.pool.alloc(self.W)
        n_bits = stream_load_word(prog, word)
        m = prog.build_machine()
        vals = np.array([3, 7, 0, 15, 9, 1, 5, 12])
        queue = []
        for w in range(self.W):
            queue.extend(stream_bits_for((vals >> w) & 1))
        m.feed_input(queue)
        prog.run(m)
        got = np.zeros(m.n, dtype=int)
        for w, row in enumerate(word):
            got |= m.read(row).astype(int) << w
        assert n_bits == self.W * m.n
        assert (got == vals).all()

    def test_stream_read_word(self):
        prog = ProgramBuilder(1)
        word = prog.pool.alloc(self.W)
        scratch = prog.pool.alloc1()
        n_bits = stream_read_word(prog, word, scratch)
        m = prog.build_machine()
        vals = np.array([1, 2, 3, 4, 5, 6, 7, 8])
        for w, row in enumerate(word):
            m.poke(row, ((vals >> w) & 1).astype(bool))
        prog.run(m)
        assert n_bits == self.W * m.n
        # output log holds W planes, LSB first, each last-PE-first
        planes = []
        per = m.n
        for w in range(self.W):
            chunk = m.output_log[w * per : (w + 1) * per]
            planes.append(np.array(chunk[::-1], dtype=bool))
        got = np.zeros(m.n, dtype=int)
        for w, plane in enumerate(planes):
            got |= plane.astype(int) << w
        assert (got == vals).all()

    def test_decode_streamed_row_tail(self):
        prog = ProgramBuilder(1)
        src, scratch = prog.pool.alloc(2)
        from repro.bvm.streams import stream_read

        n = stream_read(prog, src, scratch)
        m = prog.build_machine()
        pattern = np.array([1, 0, 0, 1, 1, 0, 1, 0], bool)
        m.poke(src, pattern)
        prog.run(m)
        assert (decode_streamed_row(m, n) == pattern).all()


class TestStateView:
    def test_view_with_selection(self):
        from repro.hypercube.machine import make_state

        st = make_state(2, X=np.arange(4.0))
        sel = np.array([0, 2])
        view = st.view(sel=sel)
        assert view["X"].tolist() == [0.0, 2.0]

    def test_view_perm_and_sel(self):
        from repro.hypercube.machine import make_state

        st = make_state(2, X=np.arange(4.0))
        perm = np.array([3, 2, 1, 0])
        view = st.view(perm=perm, sel=np.array([1]))
        assert view["X"].tolist() == [2.0]
