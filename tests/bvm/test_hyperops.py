"""Hypercube dimension routing on CCC links."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvm.hyperops import dims_of, route_dim, route_dim_cost
from repro.bvm.program import ProgramBuilder


def _route(r, dim, vals):
    prog = ProgramBuilder(r)
    src = prog.pool.alloc1()
    dst = prog.pool.alloc1()
    route_dim(prog, [src], [dst], dim)
    m = prog.build_machine()
    m.poke(src, vals)
    prog.run(m)
    return m.read(dst), m.read(src), len(prog)


class TestRouteDim:
    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_every_dimension(self, r):
        dims = r + (1 << r)
        rng = np.random.default_rng(r)
        n = (1 << r) * (1 << (1 << r))
        vals = rng.integers(0, 2, n).astype(bool)
        for dim in range(dims):
            got, src_after, _ = _route(r, dim, vals)
            want = vals[np.arange(n) ^ (1 << dim)]
            assert (got == want).all(), f"dim {dim}"
            assert (src_after == vals).all(), "source must be preserved"

    def test_multiple_rows_in_one_call(self):
        r = 2
        prog = ProgramBuilder(r)
        s1, s2, d1, d2 = prog.pool.alloc(4)
        route_dim(prog, [s1, s2], [d1, d2], 3)
        m = prog.build_machine()
        rng = np.random.default_rng(0)
        v1 = rng.integers(0, 2, m.n).astype(bool)
        v2 = rng.integers(0, 2, m.n).astype(bool)
        m.poke(s1, v1)
        m.poke(s2, v2)
        prog.run(m)
        perm = np.arange(m.n) ^ (1 << 3)
        assert (m.read(d1) == v1[perm]).all()
        assert (m.read(d2) == v2[perm]).all()

    def test_dim_out_of_range(self):
        prog = ProgramBuilder(1)
        s, d = prog.pool.alloc(2)
        with pytest.raises(ValueError):
            route_dim(prog, [s], [d], 3)

    def test_aliased_rows_rejected(self):
        prog = ProgramBuilder(1)
        s = prog.pool.alloc1()
        with pytest.raises(ValueError):
            route_dim(prog, [s], [s], 0)

    def test_length_mismatch_rejected(self):
        prog = ProgramBuilder(1)
        s, d, d2 = prog.pool.alloc(3)
        with pytest.raises(ValueError):
            route_dim(prog, [s], [d, d2], 0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=999))
    def test_involution(self, seed):
        """Routing twice along the same dim restores the original."""
        r = 2
        prog = ProgramBuilder(r)
        src, mid, dst = prog.pool.alloc(3)
        dim = seed % dims_of(prog)
        route_dim(prog, [src], [mid], dim)
        route_dim(prog, [mid], [dst], dim)
        m = prog.build_machine()
        rng = np.random.default_rng(seed)
        vals = rng.integers(0, 2, m.n).astype(bool)
        m.poke(src, vals)
        prog.run(m)
        assert (m.read(dst) == vals).all()


class TestCostModel:
    def test_cost_matches_emitted_instructions(self):
        for r in (1, 2, 3):
            for dim in range(r + (1 << r)):
                prog = ProgramBuilder(r)
                s, d = prog.pool.alloc(2)
                route_dim(prog, [s], [d], dim)
                assert len(prog) == route_dim_cost(r, dim), (r, dim)

    def test_high_dims_cost_2q_plus_1(self):
        r = 3
        Q = 1 << r
        assert route_dim_cost(r, r) == 2 * Q + 1
        assert route_dim_cost(r, r + Q - 1) == 2 * Q + 1

    def test_low_dims_cost_grows_with_distance(self):
        r = 3
        assert route_dim_cost(r, 0) < route_dim_cost(r, 2)

    def test_rows_scale_linearly(self):
        assert route_dim_cost(2, 3, rows=4) == 4 * route_dim_cost(2, 3, rows=1)

    def test_dims_of(self):
        assert dims_of(ProgramBuilder(2)) == 6
