"""The command-line interface."""

import io
import json

import pytest

from repro.cli import main
from repro.core import WORKLOADS


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSolve:
    def test_workload_dp(self):
        code, text = run_cli("solve", "--workload", "medical", "--k", "4", "--solver", "dp")
        assert code == 0
        assert "optimal_cost" in text

    def test_workload_tree(self):
        code, text = run_cli(
            "solve", "--workload", "fault", "--k", "4", "--tree"
        )
        assert code == 0
        assert "treatment" in text

    @pytest.mark.parametrize("solver", ["hypercube", "ccc"])
    def test_parallel_solvers(self, solver):
        code, text = run_cli(
            "solve", "--workload", "random", "--k", "4", "--solver", solver
        )
        assert code == 0
        assert "steps" in text

    def test_bvm_solver(self):
        code, text = run_cli(
            "solve", "--workload", "random", "--k", "3", "--solver", "bvm",
            "--width", "16",
        )
        assert code == 0
        assert "bvm_cycles" in text

    def test_json_output(self):
        code, text = run_cli(
            "solve", "--workload", "lab", "--k", "4", "--json"
        )
        payload = json.loads(text)
        assert payload["solver"] == "dp"
        assert payload["k"] == 4
        assert payload["optimal_cost"] > 0

    def test_solvers_agree_through_cli(self):
        costs = {}
        for solver in ("dp", "hypercube", "ccc"):
            _, text = run_cli(
                "solve", "--workload", "taxonomy", "--k", "4",
                "--solver", solver, "--json",
            )
            costs[solver] = json.loads(text)["optimal_cost"]
        assert costs["dp"] == pytest.approx(costs["hypercube"])
        assert costs["dp"] == pytest.approx(costs["ccc"])

    def test_file_input(self, tmp_path, tiny_problem):
        path = tmp_path / "problem.json"
        path.write_text(tiny_problem.to_json())
        code, text = run_cli("solve", "--file", str(path), "--json")
        assert json.loads(text)["optimal_cost"] == pytest.approx(37.0)

    def test_canonicalize_flag(self):
        code, text = run_cli(
            "solve", "--workload", "medical", "--k", "5", "--canonicalize"
        )
        assert code == 0
        assert "canonicalized" in text

    @pytest.mark.parametrize("backend", ["auto", "numpy", "parallel", "reference"])
    def test_backend_flag(self, backend):
        code, text = run_cli(
            "solve", "--workload", "medical", "--k", "5",
            "--backend", backend, "--workers", "2", "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["backend"] in ("numpy", "parallel", "reference")
        if backend != "auto":
            assert payload["backend"] == backend
        if payload["backend"] == "parallel":
            assert payload["workers"] == 2

    def test_backends_agree_through_cli(self):
        costs = set()
        for backend in ("numpy", "parallel", "reference"):
            _, text = run_cli(
                "solve", "--workload", "fault", "--k", "5",
                "--backend", backend, "--workers", "2", "--json",
            )
            costs.add(json.loads(text)["optimal_cost"])
        assert len(costs) == 1  # bit-for-bit identical across backends

    def test_auto_backend_small_k_reports_numpy(self):
        _, text = run_cli("solve", "--workload", "lab", "--k", "4", "--json")
        assert json.loads(text)["backend"] == "numpy"


class TestResilienceFlags:
    def test_checkpoint_and_knobs_through_cli(self, tmp_path):
        ckpt = tmp_path / "solve.ckpt"
        code, text = run_cli(
            "solve", "--workload", "medical", "--k", "5",
            "--backend", "parallel", "--workers", "2",
            "--timeout", "30", "--retries", "3",
            "--checkpoint", str(ckpt), "--keep-checkpoint", "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["backend"] == "parallel"
        assert payload["recovery"]["retries"] == 0
        assert payload["recovery"]["degraded"] is False
        assert ckpt.exists()
        # Re-running against the finished checkpoint resumes instantly
        # and reports where it picked up from.
        code, text = run_cli(
            "solve", "--workload", "medical", "--k", "5",
            "--backend", "parallel", "--workers", "2",
            "--checkpoint", str(ckpt), "--keep-checkpoint", "--json",
        )
        assert code == 0
        assert json.loads(text)["recovery"]["resumed_from_layer"] == 5

    def test_checkpoint_removed_after_success_by_default(self, tmp_path):
        ckpt = tmp_path / "solve.ckpt"
        code, _ = run_cli(
            "solve", "--workload", "medical", "--k", "5",
            "--backend", "parallel", "--workers", "2",
            "--checkpoint", str(ckpt), "--json",
        )
        assert code == 0
        # Checkpoints exist to survive crashes, not to accumulate: a
        # successful solve cleans up after itself unless --keep-checkpoint.
        assert not ckpt.exists()
        assert not (tmp_path / "solve.ckpt.tmp").exists()

    def test_mmap_store_through_cli(self, tmp_path):
        spill = tmp_path / "spill"
        code, text = run_cli(
            "solve", "--workload", "medical", "--k", "5",
            "--store", "mmap", "--spill-dir", str(spill), "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["backend"] == "parallel"
        assert payload["recovery"]["store"] == "mmap"
        assert (spill / "manifest.json").exists()
        # A completed spill directory re-opens as an instant no-op solve.
        code, text = run_cli(
            "solve", "--workload", "medical", "--k", "5",
            "--store", "mmap", "--spill-dir", str(spill), "--json",
        )
        assert code == 0
        again = json.loads(text)
        assert again["recovery"]["resumed_from_layer"] == 5
        assert again["recovery"]["rederived"] == 0
        assert again["optimal_cost"] == payload["optimal_cost"]

    def test_crash_drill_subcommand_json(self, tmp_path):
        code, text = run_cli(
            "crash-drill", "--workload", "random", "--k", "6", "--seed", "3",
            "--point", "post-commit", "--layer", "2",
            "--dir", str(tmp_path), "--json",
        )
        assert code == 0
        (report,) = json.loads(text)["drills"]
        assert report["point"] == "post-commit"
        assert report["killed"] is True
        assert report["identical"] is True

    def test_no_fallback_flag_parses(self):
        code, text = run_cli(
            "solve", "--workload", "lab", "--k", "5",
            "--backend", "parallel", "--workers", "2",
            "--no-fallback", "--json",
        )
        assert code == 0
        assert json.loads(text)["recovery"]["fallback_shards"] == 0


class TestErrorPaths:
    def test_invalid_problem_file_exits_2_with_one_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{this is not json")
        code, _ = run_cli("solve", "--file", str(bad))
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: invalid problem file")
        assert err.count("\n") == 1  # one line, no traceback

    def test_missing_problem_file_exits_2(self, tmp_path, capsys):
        code, _ = run_cli("solve", "--file", str(tmp_path / "nope.json"))
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_backend_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli("solve", "--workload", "lab", "--backend", "bogus")
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_fault_spec_env_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "explode:layer=1")
        code, _ = run_cli(
            "solve", "--workload", "lab", "--k", "5",
            "--backend", "parallel", "--workers", "2",
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "explode" in err

    def test_bad_workers_env_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        code, _ = run_cli(
            "solve", "--workload", "lab", "--k", "5", "--backend", "parallel"
        )
        assert code == 2
        assert "REPRO_WORKERS" in capsys.readouterr().err

    def test_bad_bvm_backend_env_exits_2(self, monkeypatch, capsys):
        # A typo'd env var must fail loudly and name its source, not
        # silently run the boolean machine (REPRO_WORKERS precedent).
        monkeypatch.setenv("REPRO_BVM_BACKEND", "packd")
        code, _ = run_cli(
            "solve", "--workload", "random", "--k", "3", "--solver", "bvm"
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "REPRO_BVM_BACKEND" in err and "packd" in err
        assert err.count("\n") == 1  # one line, no traceback

    def test_blank_bvm_backend_env_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BVM_BACKEND", "   ")
        code, text = run_cli(
            "solve", "--workload", "random", "--k", "3", "--solver", "bvm",
            "--json",
        )
        assert code == 0
        assert json.loads(text)["bvm_backend"] == "bool"

    def test_bvm_backend_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BVM_BACKEND", "bogus")
        code, text = run_cli(
            "solve", "--workload", "random", "--k", "3", "--solver", "bvm",
            "--bvm-backend", "packed", "--json",
        )
        assert code == 0
        assert json.loads(text)["bvm_backend"] == "packed"


class TestOtherCommands:
    def test_workloads_lists_all(self):
        code, text = run_cli("workloads")
        assert code == 0
        for name in WORKLOADS:
            assert name in text

    def test_figures(self):
        code, text = run_cli("figures")
        assert code == 0
        assert "cycle-ID" in text
        assert "value reached all 64 PEs: True" in text

    def test_claims(self):
        code, text = run_cli("claims")
        assert code == 0
        assert "machine sizing" in text
        assert "2^30" in text

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            run_cli()

    def test_module_entrypoint(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "workloads"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "medical" in proc.stdout


class TestSolveBatch:
    def _write_stream(self, tmp_path, problems):
        path = tmp_path / "stream.jsonl"
        path.write_text(
            "\n".join(problem.to_json() for problem in problems) + "\n"
        )
        return path

    def test_file_roundtrip(self, tmp_path):
        from repro.core import solve_dp
        from repro.core.generators import random_instance

        problems = [random_instance(4, 3, 2, seed=s) for s in range(3)]
        infile = self._write_stream(tmp_path, problems)
        outfile = tmp_path / "results.jsonl"
        code, _ = run_cli(
            "solve-batch", "--in", str(infile), "--out", str(outfile)
        )
        assert code == 0
        lines = outfile.read_text().splitlines()
        assert len(lines) == len(problems)
        for problem, line in zip(problems, lines):
            payload = json.loads(line)
            assert payload["k"] == problem.k
            assert payload["feasible"] is True
            assert payload["optimal_cost"] == pytest.approx(
                solve_dp(problem).optimal_cost
            )

    def test_stdout_and_stdin(self, tmp_path, monkeypatch):
        import io as _io

        from repro.core.generators import random_instance

        problems = [random_instance(3, 2, 2, seed=s) for s in range(2)]
        text = "\n".join(problem.to_json() for problem in problems) + "\n"
        monkeypatch.setattr("sys.stdin", _io.StringIO(text))
        code, out = run_cli("solve-batch")
        assert code == 0
        payloads = [json.loads(line) for line in out.splitlines() if line]
        assert len(payloads) == 2
        assert all(p["sequential_ops"] > 0 for p in payloads)

    def test_infeasible_reports_null_cost(self, tmp_path):
        from repro.core.problem import Action, TTProblem

        problem = TTProblem(
            k=2,
            weights=(1.0, 1.0),
            actions=(Action.test(0b01, 1.0),),
            name="untreatable",
        )
        infile = self._write_stream(tmp_path, [problem])
        code, out = run_cli("solve-batch", "--in", str(infile))
        assert code == 0
        payload = json.loads(out.splitlines()[0])
        assert payload["feasible"] is False
        assert payload["optimal_cost"] is None

    def test_blank_lines_skipped(self, tmp_path):
        from repro.core.generators import random_instance

        problem = random_instance(3, 2, 2, seed=0)
        infile = tmp_path / "stream.jsonl"
        infile.write_text("\n" + problem.to_json() + "\n\n")
        code, out = run_cli("solve-batch", "--in", str(infile))
        assert code == 0
        assert len([l for l in out.splitlines() if l.strip()]) == 1

    def test_bad_line_is_loud(self, tmp_path, capsys):
        infile = tmp_path / "stream.jsonl"
        infile.write_text("{not json}\n")
        code, _ = run_cli("solve-batch", "--in", str(infile))
        assert code != 0

    def test_missing_file_is_loud(self, tmp_path):
        code, _ = run_cli("solve-batch", "--in", str(tmp_path / "nope.jsonl"))
        assert code != 0

    def test_parallel_backend(self, tmp_path):
        from repro.core.generators import random_instance

        problems = [random_instance(4, 3, 2, seed=s) for s in range(2)]
        infile = self._write_stream(tmp_path, problems)
        code, out = run_cli(
            "solve-batch", "--in", str(infile),
            "--backend", "parallel", "--workers", "2",
        )
        assert code == 0
        assert len(out.splitlines()) == 2

    def test_native_backend_parses_and_falls_back(self, tmp_path):
        import warnings

        from repro.core.generators import random_instance

        problems = [random_instance(3, 2, 2, seed=0)]
        infile = self._write_stream(tmp_path, problems)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            code, out = run_cli(
                "solve-batch", "--in", str(infile), "--backend", "native"
            )
        assert code == 0
        assert json.loads(out.splitlines()[0])["feasible"] is True

    def _integral_problems(self, count):
        import numpy as np

        from repro.core.problem import Action, TTProblem

        out = []
        for seed in range(count):
            rng = np.random.default_rng(seed)
            full = 0b111
            acts = [
                Action.test(int(rng.integers(1, full)), float(rng.integers(0, 5))),
                Action.treatment(full, float(rng.integers(1, 5))),
            ]
            out.append(
                TTProblem.build(rng.integers(1, 5, 3).astype(float), acts)
            )
        return out

    def test_bvm_solver_batches_the_stream(self, tmp_path):
        from repro.core import solve_dp

        problems = self._integral_problems(3)
        infile = self._write_stream(tmp_path, problems)
        code, out = run_cli(
            "solve-batch", "--in", str(infile), "--solver", "bvm"
        )
        assert code == 0
        lines = out.splitlines()
        assert len(lines) == 3
        for problem, line in zip(problems, lines):
            payload = json.loads(line)
            assert payload["bvm_backend"] == "packed-batch"
            assert payload["bvm_cycles"] > 0
            assert "ccc_r" in payload
            assert payload["optimal_cost"] == pytest.approx(
                solve_dp(problem).optimal_cost
            )

    def test_bvm_solver_bool_oracle_agrees(self, tmp_path):
        problems = self._integral_problems(2)
        infile = self._write_stream(tmp_path, problems)
        _, packed_out = run_cli(
            "solve-batch", "--in", str(infile), "--solver", "bvm"
        )
        _, bool_out = run_cli(
            "solve-batch", "--in", str(infile),
            "--solver", "bvm", "--bvm-backend", "bool",
        )
        packed = [json.loads(l) for l in packed_out.splitlines()]
        plain = [json.loads(l) for l in bool_out.splitlines()]
        for a, b in zip(packed, plain):
            assert a["optimal_cost"] == b["optimal_cost"]
            assert a["bvm_cycles"] == b["bvm_cycles"]
            assert b["bvm_backend"] == "bool"
