"""``solve_tt_bvm_batch``: lockstep instance batching vs the per-instance
packed path, the boolean oracle and the DP reference.

The batch is ragged on purpose — mixed ``k`` (so instances land in
different shape groups), infeasible lanes, inf-cost treatments — and the
per-lane tables must still be bit-for-bit what a ``B = 1`` replay and
the sequential DP produce.
"""

import numpy as np
import pytest

from repro.core.errors import InvalidProblem
from repro.core.problem import Action, TTProblem
from repro.core.sequential import solve_dp_reference
from repro.obs import trace as obs_trace
from repro.ttpar.bvm_tt import (
    BATCH_BACKENDS,
    build_bvm_tt_batch,
    solve_tt_bvm,
    solve_tt_bvm_batch,
)


def _integral(k, seed, n_tests=2, n_treats=2, inf_treat=False):
    rng = np.random.default_rng(seed)
    full = (1 << k) - 1
    weights = rng.integers(1, 6, k).astype(float)
    acts = []
    for _ in range(n_tests):
        acts.append(Action.test(int(rng.integers(1, full)), float(rng.integers(0, 6))))
    cov = 0
    for _ in range(n_treats):
        s = int(rng.integers(1, full + 1))
        acts.append(Action.treatment(s, float(rng.integers(1, 6))))
        cov |= s
    if cov != full:
        acts.append(Action.treatment(full & ~cov, 3.0))
    if inf_treat:
        acts.append(Action.treatment(full, float("inf")))
    return TTProblem.build(weights, acts)


def _same_shape(k, count, n_actions=4):
    # Instances share a compiled program only when they share the machine
    # shape (r, k, padded action dim); fixing the action count pins it.
    out, seed = [], 0
    while len(out) < count:
        problem = _integral(k, seed)
        if problem.n_actions == n_actions:
            out.append(problem)
        seed += 1
    return out


def _infeasible_lane(k=2):
    # Adequate spec (treatments cover the universe) whose only covering
    # treatment is infinitely expensive: C(U) decodes to inf.
    return TTProblem(
        k=k,
        weights=tuple(1.0 for _ in range(k)),
        actions=(
            Action.test((1 << k) - 2, 1.0),
            Action.treatment((1 << k) - 1, float("inf")),
        ),
        name="infeasible",
    )


def _assert_lane_exact(batch_result, problem):
    single = solve_tt_bvm(problem, backend="packed")
    ref = solve_dp_reference(problem)
    assert np.array_equal(batch_result.cost, single.cost)
    assert np.array_equal(batch_result.best_action, single.best_action)
    assert np.allclose(batch_result.cost, ref.cost)
    assert (batch_result.best_action == ref.best_action).all()


class TestRaggedBatches:
    @pytest.mark.parametrize("lanes", [1, 7])
    def test_mixed_shapes_match_single_and_reference(self, lanes):
        pool = [
            _integral(2, 0),
            _integral(3, 1),
            _integral(2, 2, inf_treat=True),
            _integral(3, 3),
            _infeasible_lane(2),
            _integral(2, 4),
            _integral(3, 5, n_tests=1, n_treats=3),
        ]
        problems = pool[:lanes]
        results = solve_tt_bvm_batch(problems)
        assert len(results) == len(problems)
        for problem, res in zip(problems, results):
            assert res.backend == "packed-batch"
            _assert_lane_exact(res, problem)

    @pytest.mark.slow
    def test_b64_lockstep(self):
        problems = [_integral(2, seed) for seed in range(64)]
        results = solve_tt_bvm_batch(problems)
        singles = [solve_tt_bvm(p, backend="packed") for p in problems]
        for res, single in zip(results, singles):
            assert np.array_equal(res.cost, single.cost)
            assert np.array_equal(res.best_action, single.best_action)

    def test_infeasible_lane_reports_inf(self):
        (res,) = solve_tt_bvm_batch([_infeasible_lane(2)])
        assert not res.feasible
        assert res.best_action[res.problem.universe] == -1

    def test_cycles_uniform_within_shape_group(self):
        problems = _same_shape(3, 4)
        results = solve_tt_bvm_batch(problems)
        assert len({r.cycles for r in results}) == 1

    def test_results_in_input_order_across_groups(self):
        problems = [_integral(3, 0), _integral(2, 1), _integral(3, 2)]
        results = solve_tt_bvm_batch(problems)
        for problem, res in zip(problems, results):
            assert res.problem is problem


class TestBoolOracle:
    def test_bool_backend_matches_packed_batch(self):
        problems = [_integral(2, 0), _integral(2, 9)]
        packed = solve_tt_bvm_batch(problems, backend="packed")
        plain = solve_tt_bvm_batch(problems, backend="bool")
        for a, b in zip(packed, plain):
            assert np.array_equal(a.cost, b.cost)
            assert np.array_equal(a.best_action, b.best_action)
            assert a.cycles == b.cycles
        assert all(r.backend == "bool" for r in plain)

    def test_unknown_backend_raises(self):
        with pytest.raises(InvalidProblem, match="batch backend"):
            solve_tt_bvm_batch([_integral(2, 0)], backend="simd512")
        assert set(BATCH_BACKENDS) == {"packed", "bool"}

    def test_empty_batch(self):
        assert solve_tt_bvm_batch([]) == []


class TestBatchPlanReuse:
    def test_shared_shape_shares_program(self):
        a = build_bvm_tt_batch(2, 2, 2)
        b = build_bvm_tt_batch(2, 2, 2)
        assert a is b  # lru_cache: one compile per shape

    def test_r_too_small_rejected(self):
        with pytest.raises(ValueError, match="dims"):
            solve_tt_bvm_batch([_integral(3, 0)], r=1)


class TestTelemetry:
    def test_spans_carry_batch_attr_never_per_lane(self):
        problems = _same_shape(2, 5)
        tracer = obs_trace.Tracer()
        with obs_trace.tracing(tracer):
            solve_tt_bvm_batch(problems)
        events = tracer.raw_events()
        replays = [e for e in events if e["name"] == "bvm.replay"]
        compiles = [e for e in events if e["name"] == "bvm.compile"]
        # One shape group -> one replay span for all 5 lanes.
        assert len(replays) == 1
        assert replays[0]["args"]["batch"] == 5
        assert any(e["args"].get("batch") == 5 for e in compiles)

    def test_tracing_off_is_bit_identical(self):
        problems = [_integral(2, s) for s in range(3)]
        plain = solve_tt_bvm_batch(problems)
        tracer = obs_trace.Tracer()
        with obs_trace.tracing(tracer):
            traced = solve_tt_bvm_batch(problems)
        for a, b in zip(plain, traced):
            assert np.array_equal(a.cost, b.cost)
            assert np.array_equal(a.best_action, b.best_action)
            assert a.cycles == b.cycles
