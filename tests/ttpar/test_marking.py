"""The DESCEND policy-marking pass vs the host-side tree extraction."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.generators import WORKLOADS, random_instance
from repro.hypercube.machine import DimOp
from repro.ttpar.marking import (
    build_marking_program,
    mark_policy_subsets,
    policy_subsets_reference,
)
from tests.conftest import tt_problems


class TestMarkingCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances(self, seed):
        problem = random_instance(4, 3, 2, seed=seed)
        assert (
            mark_policy_subsets(problem) == policy_subsets_reference(problem)
        ).all()

    @settings(max_examples=20, deadline=None)
    @given(tt_problems(min_k=2, max_k=5, integral=True))
    def test_property(self, problem):
        # Integral draws keep every DP value exact in float64: the host
        # DP and the hypercube dataflow evaluate the recurrence with
        # different float association, so a continuous draw can land a
        # candidate pair within half an ulp where one side sees a tie
        # (broken by index) and the other a strict inequality — a real
        # divergence of the two argmin *policies*, not a marking bug.
        # With exact arithmetic, ties are exact on both sides and the
        # shared lowest-index rule keeps the policies identical.
        got = mark_policy_subsets(problem)
        want = policy_subsets_reference(problem)
        assert (got == want).all()

    def test_workloads(self):
        for name, make in WORKLOADS.items():
            problem = make(4, seed=2)
            assert (
                mark_policy_subsets(problem) == policy_subsets_reference(problem)
            ).all(), name

    def test_on_ccc(self):
        problem = random_instance(3, 2, 2, seed=7)
        got = mark_policy_subsets(problem, machine="ccc")
        assert (got == policy_subsets_reference(problem)).all()

    def test_universe_always_marked(self):
        problem = random_instance(3, 2, 2, seed=1)
        marked = mark_policy_subsets(problem)
        assert marked[problem.universe]
        assert not marked[0]


class TestMarkingStructure:
    def test_drop_ops_are_descend_runs(self):
        problem = random_instance(3, 2, 2, seed=0)
        _, program = build_marking_program(problem)
        dims = [op.dim for op in program if isinstance(op, DimOp)]
        k = 3
        # every consecutive k-chunk is strictly decreasing
        for i in range(0, len(dims), k):
            chunk = dims[i : i + k]
            assert chunk == sorted(chunk, reverse=True)

    def test_marked_count_equals_tree_nodes(self):
        """Each marked subset is one node's live set (live sets in a TT
        tree are pairwise distinct: children are strict subsets and the
        two test children are disjoint)."""
        from repro.core.sequential import solve_dp

        problem = WORKLOADS["fault"](5, seed=0)
        tree = solve_dp(problem).tree()
        marked = mark_policy_subsets(problem)
        assert int(marked.sum()) == tree.node_count()

    def test_marks_form_a_laminar_like_policy_closure(self):
        """Every marked non-root set is a child of some marked set under
        the argmin policy."""
        from repro.core.sequential import solve_dp

        problem = random_instance(4, 3, 3, seed=9)
        dp = solve_dp(problem)
        marked = np.nonzero(mark_policy_subsets(problem))[0]
        marked_set = set(int(s) for s in marked)
        for s in marked_set:
            if s == problem.universe:
                continue
            parents = [
                t
                for t in marked_set
                if t != s
                and (
                    (
                        problem.actions[int(dp.best_action[t])].is_test
                        and s
                        in (
                            t & problem.actions[int(dp.best_action[t])].subset,
                            t & ~problem.actions[int(dp.best_action[t])].subset,
                        )
                    )
                    or (
                        problem.actions[int(dp.best_action[t])].is_treatment
                        and s == t & ~problem.actions[int(dp.best_action[t])].subset
                    )
                )
            ]
            assert parents, f"marked subset {s:#x} has no policy parent"
