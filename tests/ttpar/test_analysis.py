"""Complexity model and the paper's headline claims as checked numbers."""

import math

import pytest

from repro.ttpar.analysis import (
    machine_sizing_table,
    max_k_for_budget,
    model_bit_steps,
    model_route_steps,
    padded_p,
    sequential_word_ops,
    speedup_curve,
    speedup_point,
)


class TestModels:
    def test_padded_p(self):
        assert padded_p(1) == 1
        assert padded_p(2) == 1
        assert padded_p(3) == 2
        assert padded_p(8) == 3
        assert padded_p(9) == 4

    def test_route_steps(self):
        assert model_route_steps(4, 8) == 4 * (4 + 3)

    def test_bit_steps_scale_with_width(self):
        assert model_bit_steps(4, 8, width=16) == 16 * model_route_steps(4, 8)

    def test_sequential_ops(self):
        assert sequential_word_ops(3, 5) == 7 * 5


class TestSpeedup:
    def test_point_fields(self):
        sp = speedup_point(10, 1 << 10)
        assert sp.pe_count == 1 << 20
        assert sp.speedup == sp.seq_ops / sp.par_steps
        assert 0 < sp.efficiency < 1

    def test_speedup_grows_with_k(self):
        s = [speedup_point(k, 1 << k).speedup for k in range(4, 14)]
        assert all(b > a for a, b in zip(s, s[1:]))

    def test_shape_is_p_over_logp(self):
        """speedup / (P / log P) must stay within constant factors along
        the exponential-actions curve — the paper's O(P/log P) claim."""
        pts = speedup_curve(range(6, 16), lambda k: 2**k)
        ratios = [p.speedup / p.p_over_logp for p in pts]
        assert max(ratios) / min(ratios) < 3.0
        assert all(0.01 < r < 10 for r in ratios)

    def test_log_factor_really_present(self):
        """Efficiency (speedup/P) decays like 1/log P, not 1/poly(P)."""
        a = speedup_point(8, 2**8)
        b = speedup_point(16, 2**16)
        # P grows by 2^16; efficiency should shrink only ~ log ratio (2x).
        assert a.efficiency / b.efficiency < 4.0


class TestMachineSizing:
    def test_paper_figures(self):
        """2^30 PEs: ~15 candidates with N=O(2^k), ~20 with N=O(k^2)."""
        table = {row["pe_budget"]: row for row in machine_sizing_table()}
        big = table[2**30]
        assert big["max_k_exponential_actions"] == 15
        assert big["max_k_quadratic_actions"] in (20, 21, 22)

    def test_implementable_machine(self):
        table = {row["pe_budget"]: row for row in machine_sizing_table()}
        small = table[2**20]
        assert small["max_k_exponential_actions"] == 10

    def test_max_k_monotone_in_budget(self):
        ks = [max_k_for_budget(1 << b, lambda k: 2**k) for b in range(10, 40, 4)]
        assert ks == sorted(ks)

    def test_zero_budget(self):
        assert max_k_for_budget(1, lambda k: 2**k) == 0
